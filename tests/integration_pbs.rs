//! Programmable bootstrapping, bucket messages, packing and wire formats,
//! end to end across crates.

use matcha::tfhe::encode::BucketEncoding;
use matcha::tfhe::{packing, pbs::Lut, BootstrapKit, Codec};
use matcha::{ApproxIntFft, ClientKey, F64Fft, LweCiphertext, ParameterSet, Torus32};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client(seed: u64) -> (ClientKey, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    (c, rng)
}

#[test]
fn lut_bootstrap_on_approximate_engine() {
    // The paper's engine must support arbitrary LUTs, not only gates.
    let (client, mut rng) = client(61);
    let engine = ApproxIntFft::new(256, 40);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let enc = BucketEncoding::new(2);
    let double_mod4 = enc.lut(256, |x| (2 * x) % 4);
    for msg in 0..4u32 {
        let c = enc.encrypt(&client, msg, &mut rng);
        let out = kit.bootstrap_with_lut(&engine, &c, &double_mod4);
        assert_eq!(enc.decrypt(&client, &out), (2 * msg) % 4, "msg={msg}");
    }
}

#[test]
fn gate_lut_equivalence() {
    // A constant LUT is exactly the gate bootstrap.
    let (client, mut rng) = client(62);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 3, &mut rng);
    let mu = Torus32::from_dyadic(1, 3);
    let lut = Lut::from_fn(256, |_| mu);
    for msg in [true, false] {
        let c = client.encrypt_with(msg, &mut rng);
        assert_eq!(
            client.decrypt(&kit.bootstrap_with_lut(&engine, &c, &lut)),
            client.decrypt(&kit.bootstrap(&engine, &c, mu))
        );
    }
}

#[test]
fn packed_transport_feeds_lut_pipeline() {
    // Pack bits → extract under the ring key → key-switch → bootstrap.
    let (client, mut rng) = client(63);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let bits = [true, false, true, true];
    let packed = packing::pack_bits(&client, &bits, &engine, &mut rng);
    for (i, &expected) in bits.iter().enumerate() {
        let lwe = packing::extract_bit(&packed, i, kit.key_switch_key(), client.params());
        // Refresh through a gate bootstrap: message must survive.
        let out = kit.bootstrap(&engine, &lwe, Torus32::from_dyadic(1, 3));
        assert_eq!(client.decrypt(&out), expected, "bit {i}");
    }
}

#[test]
fn wire_roundtrip_through_evaluation() {
    // Client serializes inputs; "server" deserializes, evaluates, and
    // serializes the result back.
    let (client, mut rng) = client(64);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 1, &mut rng);
    let a_wire = client.encrypt_with(true, &mut rng).to_bytes();
    let b_wire = client.encrypt_with(true, &mut rng).to_bytes();

    // Server side.
    let a = LweCiphertext::from_bytes(&a_wire).unwrap();
    let b = LweCiphertext::from_bytes(&b_wire).unwrap();
    let n = client.params().lwe_dimension;
    let lin = LweCiphertext::trivial(Torus32::from_dyadic(1, 3), n) - &a - &b;
    let out_wire = kit
        .bootstrap(&engine, &lin, Torus32::from_dyadic(1, 3))
        .to_bytes();

    // Client side.
    let out = LweCiphertext::from_bytes(&out_wire).unwrap();
    assert!(!client.decrypt(&out), "NAND(true, true) = false");
}

#[test]
fn bucket_space_survives_many_chained_luts() {
    // Unlimited depth (Table 1): chain 8 LUT evaluations.
    let (client, mut rng) = client(65);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let enc = BucketEncoding::new(2);
    let inc = enc.lut(256, |x| (x + 1) % 4);
    let mut c = enc.encrypt(&client, 0, &mut rng);
    for step in 1..=8u32 {
        c = kit.bootstrap_with_lut(&engine, &c, &inc);
        assert_eq!(enc.decrypt(&client, &c), step % 4, "step {step}");
    }
}
