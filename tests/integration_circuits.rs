//! Cross-crate circuit integration: word arithmetic and the encrypted ALU
//! running end-to-end on the approximate integer FFT engine.

use matcha::circuits::{adder, alu, alu::AluOp, comparator, mux, shifter, word};
use matcha::{ApproxIntFft, ClientKey, F64Fft, ParameterSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup_approx(seed: u64) -> (ClientKey, ServerKey<ApproxIntFft>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let engine = ApproxIntFft::new(client.params().ring_degree, 40);
    let server = ServerKey::with_unrolling(&client, engine, 3, &mut rng);
    (client, server, rng)
}

#[test]
fn adder_on_approximate_engine() {
    let (client, server, mut rng) = setup_approx(11);
    for (x, y) in [(11u64, 6u64), (15, 15), (0, 9)] {
        let a = word::encrypt(&client, x, 4, &mut rng);
        let b = word::encrypt(&client, y, 4, &mut rng);
        let r = adder::add(&server, &a, &b);
        assert_eq!(word::decrypt(&client, &r.sum), (x + y) & 0xF, "{x}+{y}");
        assert_eq!(client.decrypt(&r.carry), x + y > 15);
    }
}

#[test]
fn comparator_on_approximate_engine() {
    let (client, server, mut rng) = setup_approx(12);
    for (x, y) in [(3u64, 9u64), (9, 3), (6, 6)] {
        let a = word::encrypt(&client, x, 4, &mut rng);
        let b = word::encrypt(&client, y, 4, &mut rng);
        assert_eq!(client.decrypt(&comparator::lt(&server, &a, &b)), x < y);
        assert_eq!(client.decrypt(&comparator::eq(&server, &a, &b)), x == y);
    }
}

#[test]
fn alu_on_approximate_engine() {
    let (client, server, mut rng) = setup_approx(13);
    let (x, y) = (0b110u64, 0b011u64);
    let a = word::encrypt(&client, x, 3, &mut rng);
    let b = word::encrypt(&client, y, 3, &mut rng);
    for op in [AluOp::Add, AluOp::Xor] {
        let bits = op.opcode_bits();
        let opcode = vec![
            client.encrypt_with(bits[0], &mut rng),
            client.encrypt_with(bits[1], &mut rng),
        ];
        let out = alu::execute(&server, &opcode, &a, &b);
        assert_eq!(word::decrypt(&client, &out), op.eval(x, y, 3), "{op:?}");
    }
}

#[test]
fn barrel_shifter_and_mux_tree_compose() {
    let mut rng = StdRng::seed_from_u64(14);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let server = ServerKey::with_unrolling(
        &client,
        F64Fft::new(client.params().ring_degree),
        2,
        &mut rng,
    );
    // Shift an encrypted value by an encrypted amount, then select between
    // the shifted and the original word with an encrypted flag.
    let a = word::encrypt(&client, 0b0101, 4, &mut rng);
    let amount = word::encrypt(&client, 1, 2, &mut rng);
    let shifted = shifter::shl(&server, &a, &amount);
    assert_eq!(word::decrypt(&client, &shifted), 0b1010);
    for flag in [true, false] {
        let cf = client.encrypt_with(flag, &mut rng);
        let out = mux::select_word(&server, &cf, &shifted, &a);
        assert_eq!(
            word::decrypt(&client, &out),
            if flag { 0b1010 } else { 0b0101 }
        );
    }
}

#[test]
fn encrypted_maximum_of_two_values() {
    // max(a, b) = select(a ≥ b, a, b): a composite of comparator + mux.
    let (client, server, mut rng) = setup_approx(15);
    for (x, y) in [(9u64, 4u64), (2, 13)] {
        let a = word::encrypt(&client, x, 4, &mut rng);
        let b = word::encrypt(&client, y, 4, &mut rng);
        let a_ge_b = comparator::ge(&server, &a, &b);
        let max = mux::select_word(&server, &a_ge_b, &a, &b);
        assert_eq!(word::decrypt(&client, &max), x.max(y), "max({x},{y})");
    }
}
