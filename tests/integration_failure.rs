//! Failure injection: the suite must not only show the system working but
//! show it *failing* where theory says it must — noise beyond the margin
//! flips messages, tampered wire bytes are rejected, bad parameters are
//! refused.

use matcha::tfhe::{BootstrapKit, Codec};
use matcha::{ApproxIntFft, ClientKey, F64Fft, LweCiphertext, ParameterSet, Torus32};
use matcha_math::TorusSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client(seed: u64) -> (ClientKey, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    (c, rng)
}

#[test]
fn noise_beyond_margin_flips_decryption() {
    // Inject noise of ~1/4: the ±1/8 plaintexts are only 1/4 apart, so
    // decryption must fail for some samples.
    let (client, mut rng) = client(51);
    let mut sampler = TorusSampler::new(&mut rng);
    let mut flips = 0;
    for _ in 0..50 {
        let c = LweCiphertext::encrypt(
            Torus32::from_bool(true),
            client.lwe_key(),
            0.25,
            &mut sampler,
        );
        if !c.decrypt_bool(client.lwe_key()) {
            flips += 1;
        }
    }
    assert!(
        flips > 5,
        "huge noise should flip many messages, got {flips}/50"
    );
}

#[test]
fn bootstrap_cannot_rescue_an_already_wrong_phase() {
    // Push the phase across the decision boundary before bootstrapping:
    // the bootstrap faithfully refreshes the *wrong* message.
    let (client, mut rng) = client(52);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 1, &mut rng);
    let c = client.encrypt_with(true, &mut rng);
    // Shift the phase by -1/4: +1/8 becomes -1/8.
    let shifted = c - &LweCiphertext::trivial(Torus32::from_dyadic(1, 2), 16);
    let out = kit.bootstrap(&engine, &shifted, Torus32::from_dyadic(1, 3));
    assert!(
        !client.decrypt(&out),
        "bootstrap must preserve the (wrong) sign"
    );
}

#[test]
fn extremely_coarse_twiddles_do_fail() {
    // At 8-bit twiddles the FFT error exceeds the noise budget: gates must
    // actually fail sometimes — the flip side of the paper's claim that
    // 38 bits suffice.
    let (client, mut rng) = client(53);
    let engine = ApproxIntFft::new(256, 8);
    let kit = BootstrapKit::generate(&client, &engine, 1, &mut rng);
    let mu = Torus32::from_dyadic(1, 3);
    let mut wrong = 0;
    for i in 0..12 {
        let msg = i % 2 == 0;
        let c = client.encrypt_with(msg, &mut rng);
        if client.decrypt(&kit.bootstrap(&engine, &c, mu)) != msg {
            wrong += 1;
        }
    }
    assert!(
        wrong > 0,
        "8-bit twiddles should break decryption sometimes"
    );
}

#[test]
fn tampered_ciphertext_bytes_rejected() {
    let (client, mut rng) = client(54);
    let c = client.encrypt_with(true, &mut rng);
    let mut bytes = c.to_bytes();
    bytes[0] ^= 0xFF; // corrupt the magic
    assert!(LweCiphertext::from_bytes(&bytes).is_err());
    let mut truncated = c.to_bytes();
    truncated.truncate(10);
    assert!(LweCiphertext::from_bytes(&truncated).is_err());
}

#[test]
fn invalid_parameter_sets_rejected_everywhere() {
    let mut p = ParameterSet::MATCHA;
    p.ring_degree = 1000; // not a power of two
    assert!(p.validate().is_err());
    assert!(ParameterSet::from_bytes(&{
        let mut out = Vec::new();
        out.extend_from_slice(b"MPAR");
        out.push(1);
        use matcha::tfhe::codec::Codec as _;
        p.encode_body(&mut out).unwrap();
        out
    })
    .is_err());
}

#[test]
fn mismatched_engine_ring_degree_panics() {
    let (client, mut rng) = client(55);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // 512 ≠ the parameter set's 256.
        let _ = matcha::ServerKey::new(&client, F64Fft::new(512), &mut rng);
    }));
    assert!(result.is_err(), "ring-degree mismatch must panic");
}
