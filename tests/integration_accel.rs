//! The accelerator model against the paper's headline evaluation claims
//! (§6 and Table 2).

use matcha::accel::{area_power, pipeline, platforms::Platform, report};
use matcha::{MatchaConfig, WorkloadParams};

#[test]
fn table2_budget_matches_paper_totals() {
    let b = area_power::design_budget(&MatchaConfig::paper());
    assert!(
        (b.total_power_w() - 39.98).abs() < 0.2,
        "power {}",
        b.total_power_w()
    );
    assert!(
        (b.total_area_mm2() - 36.96).abs() < 0.2,
        "area {}",
        b.total_area_mm2()
    );
}

#[test]
fn figure9_shapes_hold() {
    // CPU: m = 2 optimal, m > 2 regresses. GPU: monotone to m = 4.
    // FPGA/ASIC: m = 1 only, > 6.8 ms. MATCHA: m = 3 optimal, sub-ms.
    let cpu = Platform::cpu();
    assert_eq!(cpu.best_unroll(), 2);
    let gpu = Platform::gpu();
    assert_eq!(gpu.best_unroll(), 4);
    let matcha = Platform::matcha_paper();
    assert_eq!(matcha.best_unroll(), 3);
    assert!(matcha.latency_s(3).unwrap() < 1e-3);
    for p in [Platform::fpga(), Platform::asic()] {
        assert!(p.latency_s(1).unwrap() > 6.5e-3);
        assert!(p.latency_s(2).is_none());
    }
}

#[test]
fn headline_speedups_roughly_hold() {
    // Paper abstract: 2.3× gate throughput over the best prior accelerator
    // (the GPU) and 6.3× throughput/Watt over the ASIC baseline.
    let matcha = Platform::matcha_paper();
    let gpu = Platform::gpu();
    let asic = Platform::asic();

    let tput_ratio = matcha.throughput(3).unwrap() / gpu.throughput(gpu.best_unroll()).unwrap();
    assert!(
        tput_ratio > 1.5,
        "MATCHA should clearly out-throughput the GPU, got {tput_ratio:.2}×"
    );

    let eff_ratio = matcha.throughput_per_watt(3).unwrap() / asic.throughput_per_watt(1).unwrap();
    assert!(
        eff_ratio > 4.0,
        "MATCHA should clearly beat the ASIC on throughput/Watt, got {eff_ratio:.2}×"
    );
}

#[test]
fn bottleneck_migrates_with_m() {
    // m small ⇒ EP-bound; m large ⇒ key streaming / TGSW-bound, which is
    // why aggressive BKU stops paying off (§6).
    let cfg = MatchaConfig::paper();
    let w = WorkloadParams::MATCHA;
    let r1 = pipeline::simulate_gate(&cfg, &w, 1);
    let r4 = pipeline::simulate_gate(&cfg, &w, 4);
    assert_eq!(r1.bottleneck, pipeline::Bottleneck::EpCore);
    assert_ne!(r4.bottleneck, pipeline::Bottleneck::EpCore);
    assert!(r4.hbm_bytes > r1.hbm_bytes);
}

#[test]
fn ablation_halving_pipelines_halves_throughput() {
    let mut cfg = MatchaConfig::paper();
    let w = WorkloadParams::MATCHA;
    let full = pipeline::simulate_gate(&cfg, &w, 3).throughput;
    cfg.tgsw_clusters = 4;
    cfg.ep_cores = 4;
    let half = pipeline::simulate_gate(&cfg, &w, 3).throughput;
    let ratio = full / half;
    assert!((1.6..=2.4).contains(&ratio), "throughput ratio {ratio}");
}

#[test]
fn reports_render_every_series() {
    let plats = matcha::accel::evaluation_platforms();
    for text in [
        report::figure9(&plats),
        report::figure10(&plats),
        report::figure11(&plats),
    ] {
        assert!(text.lines().count() >= 7, "short report:\n{text}");
        assert!(text.contains("MATCHA"));
    }
    let t2 = report::table2(&area_power::design_budget(&MatchaConfig::paper()));
    assert!(t2.contains("EP cores") && t2.contains("SPM"));
}

#[test]
fn model_transform_counts_match_software_instrumentation() {
    // The cycle model charges (2ℓ + 2) transforms per blind-rotation step.
    // The software implementation's profiler must agree — this pins the
    // performance model to the functional implementation.
    use matcha::tfhe::{profile, BootstrapKit};
    use matcha::{ClientKey, F64Fft, Torus32};
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(73);
    let params = matcha::ParameterSet::TEST_FAST;
    let client = ClientKey::generate(params, &mut rng);
    let engine = F64Fft::new(params.ring_degree);
    for m in [1usize, 2, 4] {
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        let c = client.encrypt_with(true, &mut rng);
        profile::start();
        let _ = kit.bootstrap(&engine, &c, Torus32::from_dyadic(1, 3));
        let snap = profile::snapshot();
        profile::stop();
        let steps = params.lwe_dimension.div_ceil(m) as u64;
        let expected_ifft = steps * 2 * params.decomp_levels as u64;
        let expected_fft = steps * 2;
        assert_eq!(snap.ifft_calls, expected_ifft, "m={m} IFFT count");
        assert_eq!(snap.fft_calls, expected_fft, "m={m} FFT count");
    }
}

#[test]
fn workload_matches_tfhe_parameters() {
    // The model's workload constants must agree with the actual scheme
    // parameters used by the software implementation.
    let w = WorkloadParams::MATCHA;
    let p = matcha::ParameterSet::MATCHA;
    assert_eq!(w.lwe_dimension, p.lwe_dimension);
    assert_eq!(w.ring_degree, p.ring_degree);
    assert_eq!(w.decomp_levels, p.decomp_levels);
    assert_eq!(w.ks_levels, p.ks_levels);
}
