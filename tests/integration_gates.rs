//! End-to-end gate correctness across FFT engines and unroll factors.

use matcha::{ApproxIntFft, ClientKey, DepthFirstFft, F64Fft, Gate, ParameterSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CASES: [(bool, bool); 4] = [(false, false), (false, true), (true, false), (true, true)];

fn client(seed: u64) -> (ClientKey, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    (c, rng)
}

#[test]
fn every_gate_every_input_f64_engine() {
    let (client, mut rng) = client(1);
    let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
    for gate in Gate::ALL {
        for (a, b) in CASES {
            let ca = client.encrypt_with(a, &mut rng);
            let cb = client.encrypt_with(b, &mut rng);
            assert_eq!(
                client.decrypt(&server.apply(gate, &ca, &cb)),
                gate.eval(a, b),
                "{gate}({a},{b})"
            );
        }
    }
}

#[test]
fn every_gate_with_approximate_integer_fft() {
    let (client, mut rng) = client(2);
    let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
    for gate in Gate::ALL {
        for (a, b) in CASES {
            let ca = client.encrypt_with(a, &mut rng);
            let cb = client.encrypt_with(b, &mut rng);
            assert_eq!(
                client.decrypt(&server.apply(gate, &ca, &cb)),
                gate.eval(a, b),
                "{gate}({a},{b}) with approx FFT"
            );
        }
    }
}

#[test]
fn nand_with_depth_first_conjugate_pair_engine() {
    let (client, mut rng) = client(3);
    let server = ServerKey::new(&client, DepthFirstFft::new(256), &mut rng);
    for (a, b) in CASES {
        let ca = client.encrypt_with(a, &mut rng);
        let cb = client.encrypt_with(b, &mut rng);
        assert_eq!(client.decrypt(&server.nand(&ca, &cb)), !(a && b));
    }
    // The engine actually exercised its twiddle-sharing path.
    assert!(server.engine().twiddle_reads() > 0);
}

#[test]
fn coarse_twiddles_still_decrypt_correctly() {
    // The paper's core claim: FFT approximation error is flushed by the
    // per-gate bootstrap. Even 18-bit twiddles survive at test parameters.
    let (client, mut rng) = client(4);
    let server = ServerKey::new(&client, ApproxIntFft::new(256, 22), &mut rng);
    for (a, b) in CASES {
        let ca = client.encrypt_with(a, &mut rng);
        let cb = client.encrypt_with(b, &mut rng);
        assert_eq!(client.decrypt(&server.xor(&ca, &cb)), a ^ b, "XOR({a},{b})");
    }
}

#[test]
fn long_dependent_gate_chain() {
    // 20 dependent gates: noise must stay bounded thanks to per-gate
    // bootstrapping (TFHE's unlimited-depth property, Table 1).
    let (client, mut rng) = client(5);
    let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
    let mut acc = client.encrypt_with(false, &mut rng);
    let mut expected = false;
    for i in 0..20 {
        let v = i % 3 == 0;
        let c = client.encrypt_with(v, &mut rng);
        if i % 2 == 0 {
            acc = server.xor(&acc, &c);
            expected ^= v;
        } else {
            acc = server.nand(&acc, &c);
            expected = !(expected && v);
        }
        assert_eq!(client.decrypt(&acc), expected, "step {i}");
    }
}

#[test]
fn engines_agree_on_the_same_ciphertext() {
    let (client, mut rng) = client(6);
    let exact = ServerKey::new(&client, F64Fft::new(256), &mut rng);
    let approx = ServerKey::new(&client, ApproxIntFft::new(256, 40), &mut rng);
    for (a, b) in CASES {
        let ca = client.encrypt_with(a, &mut rng);
        let cb = client.encrypt_with(b, &mut rng);
        assert_eq!(
            client.decrypt(&exact.nand(&ca, &cb)),
            client.decrypt(&approx.nand(&ca, &cb)),
            "engines disagree on NAND({a},{b})"
        );
    }
}
