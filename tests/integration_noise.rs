//! Noise behaviour end to end (paper Table 3 and the error-tolerance
//! argument of §4.1): approximate-FFT noise stays within the decryption
//! budget, and key unrolling trades EP noise against BK noise.

use matcha::tfhe::{noise, BootstrapKit};
use matcha::{ApproxIntFft, ClientKey, F64Fft, ParameterSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client(seed: u64) -> (ClientKey, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    (c, rng)
}

#[test]
fn bootstrap_noise_within_margin_for_both_engines() {
    let (client, mut rng) = client(31);
    let exact = F64Fft::new(256);
    let kit_exact = BootstrapKit::generate(&client, &exact, 2, &mut rng);
    let s_exact = noise::bootstrap_noise(&client, &kit_exact, &exact, 10, &mut rng);

    let approx = ApproxIntFft::new(256, 40);
    let kit_approx = BootstrapKit::generate(&client, &approx, 2, &mut rng);
    let s_approx = noise::bootstrap_noise(&client, &kit_approx, &approx, 10, &mut rng);

    // Both must stay far below the 1/16 decryption margin.
    assert!(s_exact.max_abs < 1.0 / 16.0, "exact: {}", s_exact.max_abs);
    assert!(
        s_approx.max_abs < 1.0 / 16.0,
        "approx: {}",
        s_approx.max_abs
    );
}

#[test]
fn coarse_twiddles_increase_noise_but_not_failures() {
    // §4.1: approximation errors behave like extra noise, flushed at each
    // bootstrap. Coarser twiddles ⇒ more noise, same decryptions.
    let (client, mut rng) = client(32);
    let fine = ApproxIntFft::new(256, 50);
    let coarse = ApproxIntFft::new(256, 22);
    let kit_fine = BootstrapKit::generate(&client, &fine, 1, &mut rng);
    let kit_coarse = BootstrapKit::generate(&client, &coarse, 1, &mut rng);
    let s_fine = noise::bootstrap_noise(&client, &kit_fine, &fine, 12, &mut rng);
    let s_coarse = noise::bootstrap_noise(&client, &kit_coarse, &coarse, 12, &mut rng);
    assert!(
        s_coarse.stdev > s_fine.stdev,
        "coarse {} should exceed fine {}",
        s_coarse.stdev,
        s_fine.stdev
    );
    assert_eq!(
        noise::failure_count(&client, &kit_coarse, &coarse, 16, &mut rng),
        0,
        "coarse twiddles must still decrypt correctly"
    );
}

#[test]
fn nand_failure_probe_is_clean() {
    // The paper's 10^8-gate failure test, scaled to CI size.
    let (client, mut rng) = client(33);
    let engine = ApproxIntFft::new(256, 38); // the paper's minimum width
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    assert_eq!(
        noise::failure_count(&client, &kit, &engine, 40, &mut rng),
        0
    );
}

#[test]
fn fresh_noise_matches_parameters() {
    let (client, mut rng) = client(34);
    let stats = noise::fresh_noise(&client, 500, &mut rng);
    let sigma = client.params().lwe_noise_stdev;
    assert!(stats.stdev < 3.0 * sigma && stats.stdev > sigma / 3.0);
}

#[test]
fn unrolling_does_not_blow_the_noise_budget() {
    // Table 3's trade-off: more BK noise terms per bundle (2^m − 1), fewer
    // rounding/EP steps. At our parameters every m must stay decryptable.
    let (client, mut rng) = client(35);
    let engine = F64Fft::new(256);
    for m in 1..=4 {
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        let stats = noise::bootstrap_noise(&client, &kit, &engine, 8, &mut rng);
        assert!(stats.max_abs < 1.0 / 16.0, "m={m}: {}", stats.max_abs);
    }
}
