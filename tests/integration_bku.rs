//! Bootstrapping key unrolling, end to end: semantic equivalence across
//! unroll factors, key-size scaling, and FFT-count reduction (the property
//! the whole MATCHA pipeline is designed around).

use matcha::tfhe::{profile, BootstrapKit};
use matcha::{ApproxIntFft, ClientKey, F64Fft, ParameterSet, ServerKey, Torus32};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client(seed: u64) -> (ClientKey, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let c = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    (c, rng)
}

#[test]
fn all_unroll_factors_decrypt_identically() {
    let (client, mut rng) = client(21);
    let engine = F64Fft::new(256);
    let kits: Vec<BootstrapKit<_>> = (1..=5)
        .map(|m| BootstrapKit::generate(&client, &engine, m, &mut rng))
        .collect();
    let mu = Torus32::from_dyadic(1, 3);
    for message in [true, false] {
        let c = client.encrypt_with(message, &mut rng);
        for (i, kit) in kits.iter().enumerate() {
            let out = kit.bootstrap(&engine, &c, mu);
            assert_eq!(
                client.decrypt(&out),
                message,
                "m={} message={message}",
                i + 1
            );
        }
    }
}

#[test]
fn key_material_grows_exponentially_with_m() {
    // Table 3: (2^m − 1)·BK keys.
    let (client, mut rng) = client(22);
    let engine = F64Fft::new(256);
    let n = client.params().lwe_dimension;
    for m in 1..=4usize {
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        let full_groups = n / m;
        let remainder = n % m;
        let expected = full_groups * ((1 << m) - 1)
            + if remainder > 0 {
                (1 << remainder) - 1
            } else {
                0
            };
        assert_eq!(kit.bootstrapping_key().key_count(), expected, "m={m}");
    }
}

#[test]
fn unrolling_reduces_transform_count() {
    // The point of BKU (§4.2): FFT/IFFT invocations scale with ⌈n/m⌉.
    let (client, mut rng) = client(23);
    let engine = F64Fft::new(256);
    let mu = Torus32::from_dyadic(1, 3);
    let mut counts = Vec::new();
    for m in [1usize, 2, 4] {
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        let c = client.encrypt_with(true, &mut rng);
        profile::start();
        let _ = kit.bootstrap(&engine, &c, mu);
        let snap = profile::snapshot();
        profile::stop();
        counts.push((m, snap.ifft_calls + snap.fft_calls));
    }
    let (_, t1) = counts[0];
    let (_, t2) = counts[1];
    let (_, t4) = counts[2];
    assert!(
        t2 * 2 <= t1 + 16 && t4 * 4 <= t1 + 64,
        "transform counts do not scale ~1/m: m1={t1} m2={t2} m4={t4}"
    );
}

#[test]
fn unrolled_gates_compose_with_approx_fft() {
    // The full MATCHA configuration: aggressive unrolling (m = 4) on the
    // approximate integer engine, through a chain of gates.
    let (client, mut rng) = client(24);
    let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 45), 4, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);
    let c1 = server.nand(&a, &b); // true
    let c2 = server.xor(&c1, &a); // false
    let c3 = server.or(&c2, &b); // false
    assert!(!client.decrypt(&c3));
}

#[test]
fn remainder_groups_handle_non_divisible_dimensions() {
    // n = 16 with m = 5 leaves a 1-bit remainder group.
    let (client, mut rng) = client(25);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 5, &mut rng);
    let groups = kit.bootstrapping_key().groups();
    assert_eq!(groups.len(), 4);
    assert_eq!(groups.last().unwrap().len(), 1);
    let c = client.encrypt_with(true, &mut rng);
    let out = kit.bootstrap(&engine, &c, Torus32::from_dyadic(1, 3));
    assert!(client.decrypt(&out));
}
