//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the API subset the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `bench_function`,
//! `bench_with_input`, `b.iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are real: each sample times an
//! adaptively chosen iteration count, and the reported statistics are the
//! min / median / max of the per-iteration sample means.
//!
//! Set `MATCHA_BENCH_JSON=/path/to/file.json` to additionally write all
//! results of the process as a JSON array (used by the repository's
//! `BENCH_*.json` artifacts).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or bare function name).
    pub id: String,
    /// Fastest per-iteration sample mean, in nanoseconds.
    pub low_ns: f64,
    /// Median per-iteration sample mean, in nanoseconds.
    pub median_ns: f64,
    /// Slowest per-iteration sample mean, in nanoseconds.
    pub high_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// All results recorded so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Writes results as JSON to `$MATCHA_BENCH_JSON` when the variable is set.
/// Called automatically by [`criterion_main!`].
pub fn flush_json() {
    let Ok(path) = std::env::var("MATCHA_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"low_ns\": {:.1}, \"median_ns\": {:.1}, \"high_ns\": {:.1}, \"iterations\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.low_ns,
            r.median_ns,
            r.high_ns,
            r.iterations,
            comma,
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `f`, recording per-iteration means across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: target ~5 ms per sample,
        // clamped to keep total bench time bounded.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(5);
        let calibrated = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = calibrated;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..calibrated {
                std::hint::black_box(f());
            }
            let dt = start.elapsed();
            self.samples
                .push(dt.as_secs_f64() * 1e9 / calibrated as f64);
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

fn record(id: &str, samples: &[f64], iterations: u64) {
    if samples.is_empty() {
        eprintln!("{id}: no samples recorded");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let low = sorted[0];
    let median = sorted[sorted.len() / 2];
    let high = sorted[sorted.len() - 1];
    println!(
        "{id:<52} time: [{} {} {}]",
        fmt_ns(low),
        fmt_ns(median),
        fmt_ns(high)
    );
    RESULTS.lock().unwrap().push(BenchResult {
        id: id.to_string(),
        low_ns: low,
        median_ns: median,
        high_ns: high,
        iterations,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 0,
            sample_count: self.sample_size,
        };
        f(&mut b);
        let iters = b.iters_per_sample * samples.len() as u64;
        record(id, &samples, iters);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 0,
            sample_count: self.sample_size,
        };
        f(&mut b);
        let iters = b.iters_per_sample * samples.len() as u64;
        record(&format!("{}/{}", self.name, id), &samples, iters);
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(id.id, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id, |b| f(b, input));
        self
    }

    /// Finishes the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group then flushes JSON.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
        });
        let rs = results();
        let r = rs.iter().find(|r| r.id == "spin").expect("result recorded");
        assert!(r.median_ns > 0.0);
        assert!(r.low_ns <= r.median_ns && r.median_ns <= r.high_ns);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion::default().sample_size(2);
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert!(results().iter().any(|r| r.id == "grp/f/3"));
    }
}
