//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Supports the subset used by this workspace's property tests: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! [`Strategy`] with `prop_map`, `any::<T>()`, numeric range strategies,
//! tuple strategies, `collection::vec`, `sample::select`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic seed so
//! CI runs are reproducible; there is no shrinking — a failing case panics
//! with the ordinary assertion message.

use rand::rngs::StdRng;

/// Re-export used by generated code.
pub use rand::SeedableRng as __SeedableRng;

/// Error type of fallible property bodies (`prop_assert` in helper
/// functions returning `Result`). The stub's assertions panic instead of
/// returning this, but the type keeps signatures source-compatible.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration: how many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen::<$t>(rng)
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u32, u64, usize, i32, i64, bool, f64);

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform sampling within numeric ranges, so `lo..hi` and `lo..=hi`
/// literals work as strategies.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn uniform(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// The successor value (for inclusive upper bounds); saturating.
    fn successor(self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn uniform(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let draw = rand::Rng::gen::<u64>(rng) % span;
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
sample_uniform_int!(u8 => u64, u32 => u64, u64 => u64, usize => u64, i32 => i64, i64 => i64);

impl SampleUniform for f64 {
    fn uniform(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range");
        lo + rand::Rng::gen::<f64>(rng) * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform(*self.start(), self.end().successor(), rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct JustStrategy<T: Clone>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Just(v)`: the constant strategy.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(v: T) -> JustStrategy<T> {
    JustStrategy(v)
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// Collection strategies.
pub mod collection {
    use super::{SampleUniform, Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>` of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            usize::uniform(self.start, self.end, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            usize::uniform(*self.start(), *self.end() + 1, rng)
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)`: a vector of `len` draws of `element`, where
    /// `len` is a fixed size or a range of sizes.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{SampleUniform, Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = usize::uniform(0, self.options.len(), rng);
            self.options[i].clone()
        }
    }

    /// `select(options)`: uniform choice from `options`.
    ///
    /// # Panics
    ///
    /// Panics (on first sample) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Runs one property: `cases` draws from a deterministic RNG, each passed
/// to `body`. Used by the [`proptest!`] macro expansion.
pub fn run_property<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    // Derive the stream from the property name so distinct properties do
    // not share sequences, while remaining reproducible across runs.
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(h.finish() ^ 0x5eed_cafe_f00d_d00d);
    for _ in 0..config.cases {
        body(&mut rng);
    }
}

/// The property-test macro: each `#[test] fn name(arg in strategy, ...)`
/// becomes an ordinary test running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&$strategy, __rng);)*
                // The closure gives `?` in bodies a `Result` context.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __outcome.expect("property failed");
            });
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::collection;
    pub use super::sample;
    pub use super::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` namespace (`prop::sample::select`, ...).
    pub mod prop {
        pub use super::super::collection;
        pub use super::super::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -50i32..50, y in 1u32..=9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(v in collection::vec(any::<u32>().prop_map(|x| x % 10), 8)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_select(pair in (0u64..4, 0u64..4), pick in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn floats_in_range(x in -1.0f64..1.0) {
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }
}
