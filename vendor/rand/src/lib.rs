//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! vendored crate provides exactly the API subset the workspace uses:
//! [`Rng::gen`] for `u32`/`u64`/`bool`/`f64`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`thread_rng`]. The generator is xoshiro256++,
//! which passes BigCrush — statistically far stronger than anything the
//! test-suite or noise-sampling paths require. It is **not** a CSPRNG and
//! must not be used to protect real data; the seed repo is a research
//! reproduction, not a production cryptography library.

use std::time::{SystemTime, UNIX_EPOCH};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Values that can be drawn uniformly from an RNG (the `Standard`
/// distribution of the real `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    /// Alias used by `thread_rng`.
    pub type ThreadRng = StdRng;
}

/// A fresh generator seeded from the wall clock, address-space layout, and
/// thread identity — unique per call, adequate for tests and examples.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
        .hash(&mut h);
    std::thread::current().id().hash(&mut h);
    let stack_probe = 0u8;
    (&stack_probe as *const u8 as usize).hash(&mut h);
    rngs::StdRng::seed_from_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = StdRng::seed_from_u64(9);
        let ones = (0..4000).filter(|_| r.gen::<bool>()).count();
        assert!((1600..2400).contains(&ones), "biased bool: {ones}/4000");
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: Rng>(rng: &mut R) -> u32 {
            rng.gen::<u32>()
        }
        let mut r = StdRng::seed_from_u64(3);
        let _ = draw(&mut r);
        let inner: &mut StdRng = &mut r;
        let _ = draw(inner);
    }
}
