//! Property tests: the `*_into` (scratch) variants must be **bit-identical**
//! to the allocating APIs for every engine — same folds, same butterfly
//! order, same rounding. Any divergence is an ordering bug, not a tolerance
//! question, so everything here compares exact representations.

use matcha_fft::{ApproxIntFft, DepthFirstFft, F64Fft, FftEngine, Radix4Fft};
use matcha_math::{GadgetDecomposer, IntPolynomial, Torus32, TorusPolynomial};
use proptest::prelude::*;

const N: usize = 64;

fn torus_poly() -> impl Strategy<Value = TorusPolynomial> {
    proptest::collection::vec(any::<u32>().prop_map(Torus32::from_raw), N)
        .prop_map(TorusPolynomial::from_coeffs)
}

fn digit_poly() -> impl Strategy<Value = IntPolynomial> {
    proptest::collection::vec(-512i32..512, N).prop_map(IntPolynomial::from_coeffs)
}

/// Exercises one engine's full in-place surface against the allocating
/// one, comparing through `backward_torus` (exact torus coefficients) and
/// asserting allocating/backward outputs coincide bit-for-bit.
fn check_engine<E: FftEngine>(engine: &E, p: &TorusPolynomial, q: &IntPolynomial) {
    let mut scratch = engine.make_scratch();

    // forward_int
    let alloc_fq = engine.forward_int(q);
    let mut into_fq = engine.zero_spectrum();
    engine.forward_int_into(q, &mut into_fq, &mut scratch);

    // forward_torus
    let alloc_fp = engine.forward_torus(p);
    let mut into_fp = engine.zero_spectrum();
    engine.forward_torus_into(p, &mut into_fp, &mut scratch);

    // accumulate identically on both sides
    let mut alloc_acc = engine.zero_spectrum();
    engine.mul_accumulate(&mut alloc_acc, &alloc_fp, &alloc_fq);
    let mut into_acc = engine.zero_spectrum();
    engine.clear_spectrum(&mut into_acc);
    engine.mul_accumulate(&mut into_acc, &into_fp, &into_fq);

    // backward: allocating vs into
    let alloc_out = engine.backward_torus(&alloc_acc);
    let mut into_out = TorusPolynomial::zero(N);
    engine.backward_torus_into(&into_acc, &mut into_out, &mut scratch);
    prop_assert_eq!(&alloc_out, &into_out);

    // mul_accumulate_pair must equal two mul_accumulate calls exactly
    let mut pair_a = engine.zero_spectrum();
    let mut pair_b = engine.zero_spectrum();
    engine.mul_accumulate_pair(&mut pair_a, &mut pair_b, &into_fq, &into_fp, &into_fp);
    let mut seq_a = engine.zero_spectrum();
    let mut seq_b = engine.zero_spectrum();
    engine.mul_accumulate(&mut seq_a, &into_fq, &into_fp);
    engine.mul_accumulate(&mut seq_b, &into_fq, &into_fp);
    let mut back_pair = TorusPolynomial::zero(N);
    let mut back_seq = TorusPolynomial::zero(N);
    engine.backward_torus_into(&pair_a, &mut back_pair, &mut scratch);
    engine.backward_torus_into(&seq_a, &mut back_seq, &mut scratch);
    prop_assert_eq!(&back_pair, &back_seq);
    engine.backward_torus_into(&pair_b, &mut back_pair, &mut scratch);
    engine.backward_torus_into(&seq_b, &mut back_seq, &mut scratch);
    prop_assert_eq!(&back_pair, &back_seq);
}

/// The fused decompose→twist transform must be bit-identical, per level, to
/// materializing the digit polynomial and running `forward_int_into` on it
/// (the PR 1 scratch path). Compared through exact backward transforms so
/// engine-specific spectrum types need no `PartialEq`.
fn check_fused_decompose<E: FftEngine>(engine: &E, p: &TorusPolynomial) {
    let decomp = GadgetDecomposer::new(8, 3);
    let mut scratch = engine.make_scratch();
    let mut digits: Vec<IntPolynomial> = (0..decomp.levels())
        .map(|_| IntPolynomial::zero(N))
        .collect();
    decomp.decompose_poly_into(p, &mut digits);
    for (level, digit_poly) in digits.iter().enumerate() {
        let mut fused = engine.zero_spectrum();
        engine.forward_decomposed_into(p, &decomp, level, &mut fused, &mut scratch);
        let mut unfused = engine.zero_spectrum();
        engine.forward_int_into(digit_poly, &mut unfused, &mut scratch);
        let mut back_fused = TorusPolynomial::zero(N);
        let mut back_unfused = TorusPolynomial::zero(N);
        engine.backward_torus_into(&fused, &mut back_fused, &mut scratch);
        engine.backward_torus_into(&unfused, &mut back_unfused, &mut scratch);
        prop_assert_eq!(&back_fused, &back_unfused, "level {}", level);
    }
}

/// Bundle-path surface: `monomial_minus_one_into`, `bundle_accumulator_into`
/// and `scale_accumulate_pair` against their allocating/sequential forms.
fn check_bundle_path<E: FftEngine>(
    engine: &E,
    base: &TorusPolynomial,
    src: &TorusPolynomial,
    e: i64,
) where
    E::MonomialFactors: PartialEq + std::fmt::Debug,
{
    let mut scratch = engine.make_scratch();
    let fb = engine.forward_torus(base);
    let fs = engine.forward_torus(src);

    let alloc_factors = engine.monomial_minus_one(e);
    let mut into_factors = E::MonomialFactors::default();
    engine.monomial_minus_one_into(e, &mut into_factors);
    prop_assert_eq!(&alloc_factors, &into_factors);

    let alloc_bundle = engine.bundle_accumulator(&fb);
    let mut into_bundle = engine.zero_spectrum();
    engine.bundle_accumulator_into(&fb, &mut into_bundle);

    let mut seq_a = alloc_bundle.clone();
    let mut seq_b = alloc_bundle.clone();
    engine.scale_accumulate(&mut seq_a, &fs, &alloc_factors);
    engine.scale_accumulate(&mut seq_b, &fs, &alloc_factors);
    let mut pair_a = into_bundle.clone();
    let mut pair_b = into_bundle;
    engine.scale_accumulate_pair(&mut pair_a, &mut pair_b, &fs, &fs, &into_factors);

    let mut back_pair = TorusPolynomial::zero(N);
    let mut back_seq = TorusPolynomial::zero(N);
    engine.backward_torus_into(&pair_a, &mut back_pair, &mut scratch);
    engine.backward_torus_into(&seq_a, &mut back_seq, &mut scratch);
    prop_assert_eq!(&back_pair, &back_seq);
    engine.backward_torus_into(&pair_b, &mut back_pair, &mut scratch);
    engine.backward_torus_into(&seq_b, &mut back_seq, &mut scratch);
    prop_assert_eq!(&back_pair, &back_seq);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn f64_into_matches_allocating(p in torus_poly(), q in digit_poly()) {
        check_engine(&F64Fft::new(N), &p, &q);
    }

    #[test]
    fn depth_first_into_matches_allocating(p in torus_poly(), q in digit_poly()) {
        check_engine(&DepthFirstFft::new(N), &p, &q);
    }

    #[test]
    fn radix4_into_matches_allocating(p in torus_poly(), q in digit_poly()) {
        check_engine(&Radix4Fft::new(N), &p, &q);
    }

    #[test]
    fn approx_into_matches_allocating(p in torus_poly(), q in digit_poly()) {
        check_engine(&ApproxIntFft::new(N, 50), &p, &q);
    }

    #[test]
    fn f64_fused_decompose_matches(p in torus_poly()) {
        check_fused_decompose(&F64Fft::new(N), &p);
    }

    #[test]
    fn depth_first_fused_decompose_matches(p in torus_poly()) {
        check_fused_decompose(&DepthFirstFft::new(N), &p);
    }

    #[test]
    fn radix4_fused_decompose_matches(p in torus_poly()) {
        check_fused_decompose(&Radix4Fft::new(N), &p);
    }

    #[test]
    fn approx_fused_decompose_matches(p in torus_poly()) {
        check_fused_decompose(&ApproxIntFft::new(N, 50), &p);
    }

    #[test]
    fn f64_bundle_path_matches(base in torus_poly(), src in torus_poly(), e in -128i64..256) {
        check_bundle_path(&F64Fft::new(N), &base, &src, e);
    }

    #[test]
    fn approx_bundle_path_matches(base in torus_poly(), src in torus_poly(), e in -128i64..256) {
        check_bundle_path(&ApproxIntFft::new(N, 50), &base, &src, e);
    }

    #[test]
    fn scratch_reuse_is_stable(p in torus_poly(), q in digit_poly()) {
        // The same scratch carried across many transforms must never
        // contaminate results: run the whole check twice with one scratch.
        let engine = F64Fft::new(N);
        let mut scratch = engine.make_scratch();
        let mut out1 = engine.zero_spectrum();
        let mut out2 = engine.zero_spectrum();
        for _ in 0..2 {
            engine.forward_int_into(&q, &mut out1, &mut scratch);
            engine.forward_torus_into(&p, &mut out2, &mut scratch);
        }
        prop_assert_eq!(&out1, &engine.forward_int(&q));
        prop_assert_eq!(&out2, &engine.forward_torus(&p));
    }

    #[test]
    fn decompose_poly_into_matches(p in torus_poly()) {
        let d = GadgetDecomposer::new(8, 3);
        let alloc = d.decompose_poly(&p);
        let mut into: Vec<IntPolynomial> =
            (0..3).map(|_| IntPolynomial::zero(N)).collect();
        d.decompose_poly_into(&p, &mut into);
        prop_assert_eq!(alloc, into);
    }
}
