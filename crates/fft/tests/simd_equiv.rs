//! SIMD-vs-scalar equivalence for every engine.
//!
//! The kernel legs in `matcha_fft::simd` must agree:
//!
//! * **bit-identical** where the operation order is preserved — the integer
//!   engine (scalar kernels on both legs), and the fused pair kernels
//!   against two single calls *within* one leg;
//! * **bounded-ulp** where the vector leg contracts `a·b ± c·d` into FMAs —
//!   the three double-precision engines, compared here through exact
//!   backward-transformed torus coefficients with a tolerance far below
//!   TFHE's noise floor but far above any legitimate ulp drift.
//!
//! `force_simd` is process-global, so every test takes a mutex; on CPUs
//! without AVX2+FMA both sides force to the scalar leg and the comparisons
//! hold trivially (the CI matrix runs the suite with `MATCHA_SIMD` forced
//! both ways for the same reason).

use matcha_fft::{
    force_simd, simd_active, simd_detected, ApproxIntFft, DepthFirstFft, F64Fft, FftEngine,
    Radix4Fft,
};
use matcha_math::{GadgetDecomposer, Torus32, TorusPolynomial};
use std::sync::{Mutex, MutexGuard};

static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Serializes force_simd users and restores auto mode afterwards.
struct ForceGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ForceGuard {
    fn lock() -> Self {
        Self(SIMD_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        force_simd(None);
    }
}

fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
    TorusPolynomial::from_coeffs(
        (0..n as u32)
            .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9).wrapping_add(seed)))
            .collect(),
    )
}

/// Runs the full external-product-shaped pipeline on one engine with the
/// current kernel leg: fused decomposed forwards, pair accumulation, bundle
/// scale, backward. Returns the two backward-transformed polynomials.
fn pipeline<E: FftEngine>(engine: &E, seed: u32) -> (TorusPolynomial, TorusPolynomial) {
    let n = engine.ring_degree();
    let decomp = GadgetDecomposer::new(8, 3);
    let p = random_torus_poly(n, seed);
    let q = random_torus_poly(n, seed ^ 0xdead);
    let mut scratch = engine.make_scratch();

    let fq = {
        let mut s = engine.zero_spectrum();
        engine.forward_torus_into(&q, &mut s, &mut scratch);
        s
    };
    let mut acc_a = engine.zero_spectrum();
    let mut acc_b = engine.zero_spectrum();
    let mut fd = engine.zero_spectrum();
    for level in 0..decomp.levels() {
        engine.forward_decomposed_into(&p, &decomp, level, &mut fd, &mut scratch);
        engine.mul_accumulate_pair(&mut acc_a, &mut acc_b, &fd, &fq, &fq);
    }
    // Bundle path: scale by (X^e - 1) factors on top of the accumulators.
    let factors = engine.monomial_minus_one(7);
    let mut bundle_a = engine.zero_spectrum();
    let mut bundle_b = engine.zero_spectrum();
    engine.bundle_accumulator_into(&fq, &mut bundle_a);
    engine.bundle_accumulator_into(&fq, &mut bundle_b);
    engine.scale_accumulate_pair(&mut bundle_a, &mut bundle_b, &fq, &fq, &factors);

    let mut out_a = TorusPolynomial::zero(n);
    let mut out_b = TorusPolynomial::zero(n);
    engine.backward_torus_into(&acc_a, &mut out_a, &mut scratch);
    engine.backward_torus_into(&bundle_b, &mut out_b, &mut scratch);
    (out_a, out_b)
}

/// Largest tolerated SIMD↔scalar divergence, in torus units. FMA
/// contraction drifts a few ulps of ~2^40-magnitude intermediates, which
/// lands around 2^-12 … 2^-20 torus *raw ticks*; 1e-6 (≈ 4300 ticks of
/// 2^-32) gives three orders of margin while still catching any real bug
/// (a wrong butterfly perturbs coefficients at the 1e-2 scale).
const TOL: f64 = 1e-6;

fn check_f64_engine<E: FftEngine>(engine: &E, seed: u32) {
    let _g = ForceGuard::lock();
    force_simd(Some(false));
    assert!(!simd_active());
    let (scalar_a, scalar_b) = pipeline(engine, seed);
    force_simd(Some(true));
    let (simd_a, simd_b) = pipeline(engine, seed);
    let da = scalar_a.max_distance(&simd_a);
    let db = scalar_b.max_distance(&simd_b);
    assert!(da < TOL, "external-product pipeline diverged: {da}");
    assert!(db < TOL, "bundle pipeline diverged: {db}");
}

#[test]
fn f64_simd_matches_scalar() {
    check_f64_engine(&F64Fft::new(1024), 11);
    check_f64_engine(&F64Fft::new(64), 12);
}

#[test]
fn depth_first_simd_matches_scalar() {
    check_f64_engine(&DepthFirstFft::new(1024), 21);
    check_f64_engine(&DepthFirstFft::new(64), 22);
}

#[test]
fn radix4_simd_matches_scalar() {
    check_f64_engine(&Radix4Fft::new(1024), 31);
    check_f64_engine(&Radix4Fft::new(64), 32);
}

#[test]
fn approx_simd_leg_is_bit_identical() {
    // The integer engine's kernels are scalar on both legs (no 64-bit lane
    // multiply in AVX2), so the flag must change *nothing*.
    let _g = ForceGuard::lock();
    let engine = ApproxIntFft::new(256, 45);
    force_simd(Some(false));
    let (sa, sb) = pipeline(&engine, 41);
    force_simd(Some(true));
    let (va, vb) = pipeline(&engine, 41);
    assert_eq!(sa, va);
    assert_eq!(sb, vb);
}

#[test]
fn forward_roundtrip_matches_across_legs() {
    // Bare forward/backward roundtrip, each leg internally consistent and
    // both agreeing on the recovered polynomial.
    let _g = ForceGuard::lock();
    for n in [8usize, 64, 1024] {
        let engine = F64Fft::new(n);
        let p = random_torus_poly(n, 5);
        force_simd(Some(false));
        let scalar = engine.backward_torus(&engine.forward_torus(&p));
        force_simd(Some(true));
        let simd = engine.backward_torus(&engine.forward_torus(&p));
        assert!(scalar.max_distance(&p) < 1e-7, "n={n} scalar roundtrip");
        assert!(simd.max_distance(&p) < 1e-7, "n={n} simd roundtrip");
        assert!(scalar.max_distance(&simd) < TOL, "n={n} leg divergence");
    }
}

#[test]
fn pair_calls_match_singles_on_active_leg() {
    // Whatever leg is active (auto): one fused pair call must be
    // bit-identical to two single calls — the external product swaps
    // between them freely.
    let _g = ForceGuard::lock();
    for force in [Some(false), Some(true)] {
        force_simd(force);
        let engine = F64Fft::new(256);
        let x = engine.forward_torus(&random_torus_poly(256, 51));
        let a = engine.forward_torus(&random_torus_poly(256, 52));
        let b = engine.forward_torus(&random_torus_poly(256, 53));
        let mut pair_a = engine.zero_spectrum();
        let mut pair_b = engine.zero_spectrum();
        engine.mul_accumulate_pair(&mut pair_a, &mut pair_b, &x, &a, &b);
        let mut single_a = engine.zero_spectrum();
        let mut single_b = engine.zero_spectrum();
        engine.mul_accumulate(&mut single_a, &x, &a);
        engine.mul_accumulate(&mut single_b, &x, &b);
        assert_eq!(pair_a, single_a, "force={force:?}");
        assert_eq!(pair_b, single_b, "force={force:?}");
    }
}

#[test]
fn detection_reporting_is_consistent() {
    let _g = ForceGuard::lock();
    force_simd(Some(true));
    assert_eq!(
        simd_active(),
        simd_detected(),
        "forcing SIMD on must still respect CPU detection"
    );
    force_simd(Some(false));
    assert!(!simd_active());
}
