//! Property-based tests for the FFT engines: correctness of every engine
//! against the exact negacyclic convolution, equivalence of the shift-add
//! and multiply realizations, and error monotonicity in the twiddle width.

use matcha_fft::{
    ApproxIntFft, DepthFirstFft, DyadicCoeff, F64Fft, FftEngine, LiftingRotation, Radix4Fft,
};
use matcha_math::{IntPolynomial, Torus32, TorusPolynomial};
use proptest::prelude::*;

const N: usize = 32;

fn torus_poly() -> impl Strategy<Value = TorusPolynomial> {
    proptest::collection::vec(any::<u32>().prop_map(Torus32::from_raw), N)
        .prop_map(TorusPolynomial::from_coeffs)
}

fn digit_poly() -> impl Strategy<Value = IntPolynomial> {
    proptest::collection::vec(-512i32..512, N).prop_map(IntPolynomial::from_coeffs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f64_engine_matches_naive(p in torus_poly(), q in digit_poly()) {
        let engine = F64Fft::new(N);
        let fast = engine.poly_mul(&p, &q);
        let exact = p.naive_mul_int(&q);
        prop_assert!(fast.max_distance(&exact) < 1e-6);
    }

    #[test]
    fn depth_first_matches_breadth_first(p in torus_poly(), q in digit_poly()) {
        let df = DepthFirstFft::new(N).poly_mul(&p, &q);
        let bf = F64Fft::new(N).poly_mul(&p, &q);
        prop_assert!(df.max_distance(&bf) < 1e-7);
    }

    #[test]
    fn radix4_matches_breadth_first(p in torus_poly(), q in digit_poly()) {
        let r4 = Radix4Fft::new(N).poly_mul(&p, &q);
        let bf = F64Fft::new(N).poly_mul(&p, &q);
        prop_assert!(r4.max_distance(&bf) < 1e-7);
    }

    #[test]
    fn approx_engine_matches_naive_at_high_precision(p in torus_poly(), q in digit_poly()) {
        let engine = ApproxIntFft::new(N, 50);
        let fast = engine.poly_mul(&p, &q);
        let exact = p.naive_mul_int(&q);
        prop_assert!(fast.max_distance(&exact) < 1e-6);
    }

    #[test]
    fn dyadic_shift_add_equals_multiply(
        coef in -1.0f64..1.0,
        beta in 4u32..60,
        x in -(1i64 << 48)..(1i64 << 48),
    ) {
        let c = DyadicCoeff::quantize(coef, beta);
        prop_assert_eq!(c.apply(x), c.apply_shift_add(x));
    }

    #[test]
    fn lifting_rotation_shift_add_equals_multiply(
        theta in -10.0f64..10.0,
        bits in 4u32..60,
        x in -(1i64 << 40)..(1i64 << 40),
        y in -(1i64 << 40)..(1i64 << 40),
    ) {
        let rot = LiftingRotation::from_angle(theta, bits);
        prop_assert_eq!(rot.apply(x, y), rot.apply_shift_add(x, y));
    }

    #[test]
    fn lifting_rotation_approximates_true_rotation(
        theta in -std::f64::consts::TAU..std::f64::consts::TAU,
        x in -(1i64 << 30)..(1i64 << 30),
        y in -(1i64 << 30)..(1i64 << 30),
    ) {
        let rot = LiftingRotation::from_angle(theta, 48);
        let (rx, ry) = rot.apply(x, y);
        let (ex, ey) = (
            (x as f64 * theta.cos() - y as f64 * theta.sin()),
            (x as f64 * theta.sin() + y as f64 * theta.cos()),
        );
        prop_assert!((rx as f64 - ex).abs() < 16.0, "re: {rx} vs {ex}");
        prop_assert!((ry as f64 - ey).abs() < 16.0, "im: {ry} vs {ey}");
    }

    #[test]
    fn forward_is_linear_modulo_one(p in torus_poly(), q in torus_poly()) {
        // Spectra of wrapped sums differ by multiples of 2^32, which the
        // backward reduction absorbs: backward(F(p) + F(q)) = p + q mod 1.
        let engine = ApproxIntFft::new(N, 50);
        let mut sum_spec = engine.forward_torus(&p);
        let fq = engine.forward_torus(&q);
        engine.add_assign(&mut sum_spec, &fq);
        let roundtrip = engine.backward_torus(&sum_spec);
        let direct = p + &q;
        prop_assert!(roundtrip.max_distance(&direct) < 1e-6);
    }

    #[test]
    fn roundtrip_identity_for_all_engines(p in torus_poly()) {
        let f = F64Fft::new(N);
        prop_assert!(f.backward_torus(&f.forward_torus(&p)).max_distance(&p) < 1e-7);
        let d = DepthFirstFft::new(N);
        prop_assert!(d.backward_torus(&d.forward_torus(&p)).max_distance(&p) < 1e-7);
        let a = ApproxIntFft::new(N, 50);
        prop_assert!(a.backward_torus(&a.forward_torus(&p)).max_distance(&p) < 1e-6);
    }

    #[test]
    fn monomial_scale_matches_coefficient_domain(
        base in torus_poly(),
        src in torus_poly(),
        e in -64i64..64,
    ) {
        for_each_engine_monomial(&base, &src, e)?;
    }

    #[test]
    fn error_never_improves_with_fewer_bits(p in torus_poly(), q in digit_poly()) {
        let exact = p.naive_mul_int(&q);
        let coarse = ApproxIntFft::new(N, 12).poly_mul(&p, &q).max_distance(&exact);
        let fine = ApproxIntFft::new(N, 44).poly_mul(&p, &q).max_distance(&exact);
        // Allow slack for lucky coarse cases; fine must never be much worse.
        prop_assert!(fine <= coarse + 1e-6, "fine {fine} vs coarse {coarse}");
    }
}

fn for_each_engine_monomial(
    base: &TorusPolynomial,
    src: &TorusPolynomial,
    e: i64,
) -> Result<(), TestCaseError> {
    let mut expected = base.clone();
    expected.add_rotate_minus_one(src, e);

    let f = F64Fft::new(N);
    let mut acc = f.bundle_accumulator(&f.forward_torus(base));
    f.scale_monomial_accumulate(&mut acc, &f.forward_torus(src), e);
    prop_assert!(f.backward_torus(&acc).max_distance(&expected) < 1e-6);

    let a = ApproxIntFft::new(N, 50);
    let mut acc = a.bundle_accumulator(&a.forward_torus(base));
    a.scale_monomial_accumulate(&mut acc, &a.forward_torus(src), e);
    prop_assert!(a.backward_torus(&acc).max_distance(&expected) < 1e-5);
    Ok(())
}
