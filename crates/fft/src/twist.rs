//! Folding between real negacyclic polynomials and the Lagrange
//! half-complex representation.
//!
//! A degree-`N` real polynomial `P` modulo `X^N + 1` is determined by its
//! evaluations at any set of `N/2` pairwise non-conjugate roots of
//! `X^N + 1`. We use the roots `ε_k = e^{iπ(4k+1)/N}`, `k ∈ [0, N/2)`, which
//! satisfy `ε_k^{N/2} = i`: writing `c_j = p_j + i·p_{j+N/2}`,
//!
//! ```text
//! P(ε_k) = Σ_{j<N/2} c_j ε_k^j = Σ_{j<N/2} (c_j · e^{iπj/N}) e^{2πijk/(N/2)}
//! ```
//!
//! i.e. a *twist* by `e^{iπj/N}` followed by an ordinary size-`N/2` DFT with
//! positive kernel sign. The inverse applies the conjugate DFT, scales by
//! `2/N`, and untwists. Negacyclic products become pointwise products of
//! these evaluations, which is precisely how TFHE performs the polynomial
//! multiplications inside external products.
//!
//! All folds produce *split-complex* buffers (separate `re[]`/`im[]`
//! slices): each fold fills the components with a load/convert pass, then
//! hands the complex twist multiply to [`crate::simd::twist_apply`], which
//! vectorizes it when AVX2+FMA are available.

use crate::simd;
use crate::tables::TwiddleTables;
use matcha_math::{GadgetDecomposer, IntPolynomial, Torus32, TorusPolynomial};

/// Folds an integer polynomial into the twisted split-complex buffer
/// (the input of the forward transform).
///
/// # Panics
///
/// Panics if `p.len() != 2 * tables.size()`.
pub fn fold_int(p: &IntPolynomial, tables: &TwiddleTables, re: &mut Vec<f64>, im: &mut Vec<f64>) {
    let m = tables.size();
    assert_eq!(p.len(), 2 * m, "polynomial length mismatch");
    let c = p.coeffs();
    re.clear();
    im.clear();
    re.extend(c[..m].iter().map(|&x| x as f64));
    im.extend(c[m..].iter().map(|&x| x as f64));
    let (twre, twim) = tables.twist_split();
    simd::twist_apply(re, im, twre, twim);
}

/// Folds one gadget-digit level of a torus polynomial into the twisted
/// split-complex buffer — the fused decompose→twist input stage.
///
/// Each coefficient's centered digit is extracted on the fly while it is
/// loaded for the twist, so the digit polynomial is never written to
/// memory. Bit-identical to
/// [`GadgetDecomposer::decompose_poly_into`] followed by [`fold_int`] on
/// the requested level.
///
/// # Panics
///
/// Panics if `p.len() != 2 * tables.size()`.
pub fn fold_torus_digit(
    p: &TorusPolynomial,
    decomp: &GadgetDecomposer,
    level: usize,
    tables: &TwiddleTables,
    re: &mut Vec<f64>,
    im: &mut Vec<f64>,
) {
    let m = tables.size();
    assert_eq!(p.len(), 2 * m, "polynomial length mismatch");
    let c = p.coeffs();
    re.clear();
    im.clear();
    re.extend(
        c[..m]
            .iter()
            .map(|&x| decomp.digit(decomp.shift(x), level) as f64),
    );
    im.extend(
        c[m..]
            .iter()
            .map(|&x| decomp.digit(decomp.shift(x), level) as f64),
    );
    let (twre, twim) = tables.twist_split();
    simd::twist_apply(re, im, twre, twim);
}

/// Folds a torus polynomial (centered representatives) into the twisted
/// split-complex buffer.
///
/// # Panics
///
/// Panics if `p.len() != 2 * tables.size()`.
pub fn fold_torus(
    p: &TorusPolynomial,
    tables: &TwiddleTables,
    re: &mut Vec<f64>,
    im: &mut Vec<f64>,
) {
    let m = tables.size();
    assert_eq!(p.len(), 2 * m, "polynomial length mismatch");
    let c = p.coeffs();
    re.clear();
    im.clear();
    re.extend(c[..m].iter().map(|&x| x.raw() as i32 as f64));
    im.extend(c[m..].iter().map(|&x| x.raw() as i32 as f64));
    let (twre, twim) = tables.twist_split();
    simd::twist_apply(re, im, twre, twim);
}

/// Unfolds an inverse-transformed split buffer back into torus coefficients.
///
/// The buffer must already carry the `1/M` normalization; this routine
/// applies the untwist and reduces each real coefficient modulo `2^32`.
///
/// # Panics
///
/// Panics if `re.len() != tables.size()` or `re.len() != im.len()`.
pub fn unfold_torus(re: &[f64], im: &[f64], tables: &TwiddleTables) -> TorusPolynomial {
    let mut out = TorusPolynomial::zero(2 * tables.size());
    let mut re = re.to_vec();
    let mut im = im.to_vec();
    unfold_torus_into(&mut re, &mut im, tables, &mut out);
    out
}

/// [`unfold_torus`] into a caller-owned polynomial — the zero-allocation
/// tail of every backward transform. The split buffer is untwisted in
/// place (it is backward-transform scratch, consumed afterwards anyway).
///
/// # Panics
///
/// Panics if `re.len() != tables.size()`, `re.len() != im.len()`, or
/// `out.len() != 2 * re.len()`.
pub fn unfold_torus_into(
    re: &mut [f64],
    im: &mut [f64],
    tables: &TwiddleTables,
    out: &mut TorusPolynomial,
) {
    let m = tables.size();
    assert_eq!(re.len(), m, "buffer length mismatch");
    assert_eq!(im.len(), m, "buffer length mismatch");
    assert_eq!(out.len(), 2 * m, "output polynomial length mismatch");
    let (twre, twim) = tables.twist_split();
    simd::untwist_apply(re, im, twre, twim);
    let coeffs = out.coeffs_mut();
    for j in 0..m {
        coeffs[j] = f64_to_torus_mod(re[j]);
        coeffs[j + m] = f64_to_torus_mod(im[j]);
    }
}

/// Reduces an arbitrary-magnitude real value modulo `2^32` onto the torus.
///
/// Values after a pointwise-product round trip can reach `≈ 2^58`; double
/// precision then carries ≈ 2⁻²⁶ torus units of rounding error, which is the
/// accuracy floor of the reference engine (the "double" line in Figure 8).
#[inline]
pub fn f64_to_torus_mod(x: f64) -> Torus32 {
    const SCALE: f64 = 4294967296.0; // 2^32
    let turns = x / SCALE;
    let frac = turns - turns.round();
    Torus32::from_raw((frac * SCALE).round() as i64 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::Cplx;

    #[test]
    fn f64_mod_small_values() {
        assert_eq!(f64_to_torus_mod(0.0), Torus32::ZERO);
        assert_eq!(f64_to_torus_mod(1.0), Torus32::from_raw(1));
        assert_eq!(f64_to_torus_mod(-1.0), Torus32::from_raw(u32::MAX));
    }

    #[test]
    fn f64_mod_wraps() {
        let two32 = 4294967296.0;
        assert_eq!(f64_to_torus_mod(two32), Torus32::ZERO);
        assert_eq!(f64_to_torus_mod(two32 + 5.0), Torus32::from_raw(5));
        assert_eq!(
            f64_to_torus_mod(-two32 - 5.0),
            Torus32::from_raw(5u32.wrapping_neg())
        );
    }

    #[test]
    fn fold_unfold_identity() {
        let tables = TwiddleTables::new(8);
        let p = TorusPolynomial::from_coeffs(
            (0..8)
                .map(|i| Torus32::from_raw(i as u32 * 0x0100_0000))
                .collect(),
        );
        let mut re = Vec::new();
        let mut im = Vec::new();
        fold_torus(&p, &tables, &mut re, &mut im);
        // Undo only the twist (no transform): unfold expects untwisted data,
        // so compose manually.
        let q = unfold_torus(&re, &im, &tables);
        assert_eq!(p, q);
    }

    #[test]
    fn fold_torus_digit_matches_materialized_digits() {
        let tables = TwiddleTables::new(8);
        let decomp = GadgetDecomposer::new(8, 3);
        let p = TorusPolynomial::from_coeffs(
            (0..8u32)
                .map(|i| Torus32::from_raw(i.wrapping_mul(0x9e37_79b9).wrapping_add(11)))
                .collect(),
        );
        let digits = decomp.decompose_poly(&p);
        let (mut fre, mut fim) = (Vec::new(), Vec::new());
        let (mut ure, mut uim) = (Vec::new(), Vec::new());
        for (level, digit_poly) in digits.iter().enumerate() {
            fold_torus_digit(&p, &decomp, level, &tables, &mut fre, &mut fim);
            fold_int(digit_poly, &tables, &mut ure, &mut uim);
            assert_eq!(fre, ure, "level {level}");
            assert_eq!(fim, uim, "level {level}");
        }
    }

    #[test]
    fn fold_int_uses_both_halves() {
        let tables = TwiddleTables::new(8);
        let mut p = IntPolynomial::zero(8);
        p.coeffs_mut()[0] = 3;
        p.coeffs_mut()[4] = 7;
        let mut re = Vec::new();
        let mut im = Vec::new();
        fold_int(&p, &tables, &mut re, &mut im);
        assert!((Cplx::new(re[0], im[0]) - Cplx::new(3.0, 7.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn unfold_rejects_short_buffer() {
        // The documented panic is a real assert, not a debug_assert: release
        // builds reject mis-sized buffers too.
        let tables = TwiddleTables::new(8);
        let mut re = vec![0.0; 3];
        let mut im = vec![0.0; 3];
        let mut out = TorusPolynomial::zero(8);
        unfold_torus_into(&mut re, &mut im, &tables, &mut out);
    }

    #[test]
    #[should_panic(expected = "polynomial length mismatch")]
    fn fold_rejects_wrong_length() {
        let tables = TwiddleTables::new(8);
        let p = TorusPolynomial::zero(16);
        let (mut re, mut im) = (Vec::new(), Vec::new());
        fold_torus(&p, &tables, &mut re, &mut im);
    }
}
