//! Split-complex butterfly and pointwise kernels with runtime-detected
//! AVX2+FMA vectorization.
//!
//! # Layout
//!
//! Every kernel works on *split-complex* data: separate `re[]`/`im[]`
//! slices instead of an interleaved array of complex structs. Split storage
//! is what makes the butterflies vectorizable without any lane shuffles —
//! four butterflies load as four contiguous doubles per component, and the
//! per-stage contiguous [`crate::tables::StageTwiddles`] slices from PR 2
//! stream the twiddle factors the same way. (MATCHA's integer engine,
//! [`crate::ApproxIntFft`], has stored its spectra split from the start;
//! this module brings the double-precision engines onto the same layout.)
//!
//! # Dispatch
//!
//! Each public kernel picks one of two legs per call:
//!
//! * an explicitly vectorized AVX2+FMA leg (`core::arch::x86_64`
//!   intrinsics behind `#[target_feature]`), taken when
//!   [`simd_active`] reports `true`;
//! * a chunk-friendly scalar leg that preserves the pre-SIMD operation
//!   order bit-for-bit, taken everywhere else (non-x86_64 targets, CPUs
//!   without AVX2/FMA, `MATCHA_SIMD=0`, or a [`force_simd`] override).
//!
//! The two legs agree to bounded ulp, not bitwise: the vector leg contracts
//! `a·b ± c·d` into fused multiply-adds (one rounding instead of two).
//! Within either leg, the fused pair kernels ([`mul_acc_pair`]) are
//! bit-identical to two single-accumulator calls — the external product
//! relies on that to swap freely between them.
//!
//! # Integer (i64) kernels
//!
//! The integer engine's butterfly stages are routed through this module
//! too ([`i64_radix2_stage`], [`i64_radix2_stage_halving`]) but have no
//! vector leg: each lifting step needs a 64×64→128-bit multiply with a
//! rounding arithmetic shift, and AVX2 offers neither 64-bit lane
//! multiplies nor 64-bit arithmetic shifts (both arrive with AVX-512).
//! The shared scalar kernels keep the four engines structurally uniform
//! and give the autovectorizer the same unit-stride shape.

use crate::lifting::LiftingRotation;
use std::sync::atomic::{AtomicU8, Ordering};

/// Explicit override state: 0 = auto, 1 = forced scalar, 2 = forced SIMD
/// (still requires CPU support).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached auto decision (detection ∧ environment): 0 = unknown, 1 = off,
/// 2 = on.
static AUTO: AtomicU8 = AtomicU8::new(0);

/// Whether this CPU supports the AVX2+FMA kernels.
///
/// Always `false` off x86_64. Detection is cached by the standard library,
/// so this is a handful of atomic loads.
#[inline]
pub fn simd_detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `MATCHA_SIMD=0` (or `off`) disables the vector leg for the whole
/// process; anything else — including unset — leaves it on when detected.
fn env_allows_simd() -> bool {
    !matches!(
        std::env::var("MATCHA_SIMD").as_deref(),
        Ok("0") | Ok("off") | Ok("OFF")
    )
}

fn auto_active() -> bool {
    match AUTO.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = simd_detected() && env_allows_simd();
            AUTO.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Whether the kernels will take the AVX2+FMA leg right now.
///
/// `true` iff the CPU supports it, `MATCHA_SIMD` does not say `0`, and no
/// [`force_simd`] override says otherwise. The first call caches the
/// environment lookup; warmed calls are two relaxed atomic loads and never
/// allocate (the zero-allocation hot-path property of PR 1 is preserved).
#[inline]
pub fn simd_active() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => simd_detected(),
        _ => auto_active(),
    }
}

/// Process-global override used by the equivalence tests and the
/// `simd_vs_scalar` benchmarks to pin one leg: `Some(false)` forces the
/// scalar leg, `Some(true)` forces the vector leg where detected (CPUs
/// without AVX2+FMA stay scalar — the kernels never execute unsupported
/// instructions), `None` restores auto selection.
///
/// Affects every engine in the process; callers that toggle it from tests
/// must serialize themselves around it.
pub fn force_simd(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// f64 radix-2 kernels
// ---------------------------------------------------------------------------

/// One breadth-first radix-2 butterfly stage over the whole buffer:
/// butterflies of length `len` on every aligned block, reading the stage's
/// `len/2` twiddles from `(wre, wim)` with unit stride.
///
/// # Panics
///
/// Panics on mismatched slice lengths (the vector leg runs raw-pointer
/// loops, so every public kernel checks its invariants with real asserts —
/// a handful of integer compares against `O(m)` work).
#[inline]
pub fn radix2_stage(re: &mut [f64], im: &mut [f64], wre: &[f64], wim: &[f64], len: usize) {
    let half = len / 2;
    assert_eq!(re.len(), im.len(), "component length mismatch");
    assert_eq!(
        re.len() % len,
        0,
        "buffer not a multiple of the stage length"
    );
    assert_eq!(wre.len(), half, "twiddle table length mismatch");
    assert_eq!(wim.len(), half, "twiddle table length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY (all three calls): simd_active() implies AVX2+FMA.
        if half >= 4 {
            unsafe { radix2_stage_avx(re, im, wre, wim, len) };
            return;
        }
        // The two narrow stages (len 2 and 4) have in-register butterflies:
        // vectorized with shuffles instead of falling back to scalar, they
        // carry 2/log2(M) of the butterfly work.
        if len == 2 && re.len() >= 4 {
            unsafe { radix2_stage2_avx(re, im) };
            return;
        }
        if len == 4 && re.len() >= 8 {
            unsafe { radix2_stage4_avx(re, im, wre, wim) };
            return;
        }
    }
    radix2_stage_scalar(re, im, wre, wim, len);
}

/// Scalar leg, same operation order as the pre-SIMD butterfly loop:
/// `v = x·w` with separately rounded products, then `u ± v`.
#[allow(clippy::needless_range_loop)]
fn radix2_stage_scalar(re: &mut [f64], im: &mut [f64], wre: &[f64], wim: &[f64], len: usize) {
    let m = re.len();
    let half = len / 2;
    for start in (0..m).step_by(len) {
        for k in 0..half {
            let (wr, wi) = (wre[k], wim[k]);
            let (xr, xi) = (re[start + half + k], im[start + half + k]);
            let vr = xr * wr - xi * wi;
            let vi = xr * wi + xi * wr;
            let (ur, ui) = (re[start + k], im[start + k]);
            re[start + k] = ur + vr;
            im[start + k] = ui + vi;
            re[start + half + k] = ur - vr;
            im[start + half + k] = ui - vi;
        }
    }
}

/// AVX2+FMA leg: four butterflies per iteration, `v = x·w` contracted to
/// `fmsub`/`fmadd` (one rounding fewer than the scalar leg per component).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn radix2_stage_avx(re: &mut [f64], im: &mut [f64], wre: &[f64], wim: &[f64], len: usize) {
    use std::arch::x86_64::*;
    let m = re.len();
    let half = len / 2;
    let mut start = 0;
    while start < m {
        let rp = unsafe { re.as_mut_ptr().add(start) };
        let ip = unsafe { im.as_mut_ptr().add(start) };
        let mut k = 0;
        while k + 4 <= half {
            unsafe {
                let wr = _mm256_loadu_pd(wre.as_ptr().add(k));
                let wi = _mm256_loadu_pd(wim.as_ptr().add(k));
                let xr = _mm256_loadu_pd(rp.add(half + k));
                let xi = _mm256_loadu_pd(ip.add(half + k));
                let vr = _mm256_fmsub_pd(xr, wr, _mm256_mul_pd(xi, wi));
                let vi = _mm256_fmadd_pd(xr, wi, _mm256_mul_pd(xi, wr));
                let ur = _mm256_loadu_pd(rp.add(k));
                let ui = _mm256_loadu_pd(ip.add(k));
                _mm256_storeu_pd(rp.add(k), _mm256_add_pd(ur, vr));
                _mm256_storeu_pd(ip.add(k), _mm256_add_pd(ui, vi));
                _mm256_storeu_pd(rp.add(half + k), _mm256_sub_pd(ur, vr));
                _mm256_storeu_pd(ip.add(half + k), _mm256_sub_pd(ui, vi));
            }
            k += 4;
        }
        // `half` is a power of two, so either the whole stage vectorized
        // (half ≥ 4) or the dispatcher already chose the scalar leg.
        debug_assert_eq!(k, half);
        start += len;
    }
}

/// Length-2 stage (`w = 1` exactly): adjacent-pair butterflies
/// `(u, v) → (u+v, u−v)`, two per vector via a sign-flip and horizontal
/// add. Exact — no multiplies, so it matches the generic butterfly
/// bit-for-bit.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn radix2_stage2_avx(re: &mut [f64], im: &mut [f64]) {
    use std::arch::x86_64::*;
    let m = re.len();
    // Negates lanes 1 and 3 (set_pd takes high→low).
    let flip = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    for comp in [re, im] {
        let p = comp.as_mut_ptr();
        let mut k = 0;
        while k + 4 <= m {
            unsafe {
                let y = _mm256_loadu_pd(p.add(k)); // [u0, v0, u1, v1]
                let d = _mm256_xor_pd(y, flip); // [u0, -v0, u1, -v1]
                                                // hadd(y, d) = [u0+v0, u0-v0, u1+v1, u1-v1]
                _mm256_storeu_pd(p.add(k), _mm256_hadd_pd(y, d));
            }
            k += 4;
        }
        debug_assert_eq!(k, m);
    }
}

/// Length-4 stage (`half = 2`): two blocks per iteration, lane-split with
/// 128-bit permutes so the two butterflies of each block multiply by the
/// broadcast `[w0, w1]` twiddle pair with the same FMA contraction as the
/// wide stages.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn radix2_stage4_avx(re: &mut [f64], im: &mut [f64], wre: &[f64], wim: &[f64]) {
    use std::arch::x86_64::*;
    let m = re.len();
    unsafe {
        // Unaligned 128-bit loads: the twiddle slices are only f64-aligned.
        let w128r = _mm_loadu_pd(wre.as_ptr());
        let w128i = _mm_loadu_pd(wim.as_ptr());
        let wr = _mm256_set_m128d(w128r, w128r); // [w0r, w1r]×2
        let wi = _mm256_set_m128d(w128i, w128i);
        let rp = re.as_mut_ptr();
        let ip = im.as_mut_ptr();
        let mut k = 0;
        while k + 8 <= m {
            let ar = _mm256_loadu_pd(rp.add(k)); // block A [u0, u1, x0, x1]
            let br = _mm256_loadu_pd(rp.add(k + 4)); // block B
            let ai = _mm256_loadu_pd(ip.add(k));
            let bi = _mm256_loadu_pd(ip.add(k + 4));
            let ur = _mm256_permute2f128_pd(ar, br, 0x20); // [uA0, uA1, uB0, uB1]
            let xr = _mm256_permute2f128_pd(ar, br, 0x31); // [xA0, xA1, xB0, xB1]
            let ui = _mm256_permute2f128_pd(ai, bi, 0x20);
            let xi = _mm256_permute2f128_pd(ai, bi, 0x31);
            let vr = _mm256_fmsub_pd(xr, wr, _mm256_mul_pd(xi, wi));
            let vi = _mm256_fmadd_pd(xr, wi, _mm256_mul_pd(xi, wr));
            let sr = _mm256_add_pd(ur, vr);
            let dr = _mm256_sub_pd(ur, vr);
            let si = _mm256_add_pd(ui, vi);
            let di = _mm256_sub_pd(ui, vi);
            _mm256_storeu_pd(rp.add(k), _mm256_permute2f128_pd(sr, dr, 0x20));
            _mm256_storeu_pd(rp.add(k + 4), _mm256_permute2f128_pd(sr, dr, 0x31));
            _mm256_storeu_pd(ip.add(k), _mm256_permute2f128_pd(si, di, 0x20));
            _mm256_storeu_pd(ip.add(k + 4), _mm256_permute2f128_pd(si, di, 0x31));
            k += 8;
        }
        debug_assert_eq!(k, m);
    }
}

/// One depth-first radix-2 combine of a single block: `out[k] = even[k] +
/// odd[k]·w^k`, `out[k+half] = even[k] − odd[k]·w^k` for `k < half`.
///
/// The scalar leg keeps the conjugate-pair order of the depth-first engine
/// (butterflies `k` and `half−k` share one twiddle via `w^{half−k} =
/// −conj(w^k)`); the vector leg reads the contiguous stage slice directly —
/// unit-stride loads beat shared loads on a CPU, while the engine's
/// twiddle-read *accounting* (a hardware model) stays with the caller.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn radix2_combine(
    out_re: &mut [f64],
    out_im: &mut [f64],
    even_re: &[f64],
    even_im: &[f64],
    odd_re: &[f64],
    odd_im: &[f64],
    wre: &[f64],
    wim: &[f64],
) {
    let half = even_re.len();
    assert_eq!(even_im.len(), half, "component length mismatch");
    assert_eq!(odd_re.len(), half, "component length mismatch");
    assert_eq!(odd_im.len(), half, "component length mismatch");
    assert_eq!(out_re.len(), 2 * half, "output length mismatch");
    assert_eq!(out_im.len(), 2 * half, "output length mismatch");
    assert_eq!(wre.len(), half, "twiddle table length mismatch");
    assert_eq!(wim.len(), half, "twiddle table length mismatch");
    #[cfg(target_arch = "x86_64")]
    if half >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe { radix2_combine_avx(out_re, out_im, even_re, even_im, odd_re, odd_im, wre, wim) };
        return;
    }
    radix2_combine_scalar(out_re, out_im, even_re, even_im, odd_re, odd_im, wre, wim);
}

/// Scalar conjugate-pair combine, bit-identical to the pre-SIMD
/// depth-first loop.
#[allow(clippy::too_many_arguments)]
fn radix2_combine_scalar(
    out_re: &mut [f64],
    out_im: &mut [f64],
    even_re: &[f64],
    even_im: &[f64],
    odd_re: &[f64],
    odd_im: &[f64],
    wre: &[f64],
    wim: &[f64],
) {
    let half = even_re.len();
    let quarter = half / 2;
    for k in 0..=quarter {
        let mirror = half - k;
        let (wr, wi) = (wre[k], wim[k]);
        // Butterfly k.
        let vr = odd_re[k] * wr - odd_im[k] * wi;
        let vi = odd_re[k] * wi + odd_im[k] * wr;
        out_re[k] = even_re[k] + vr;
        out_im[k] = even_im[k] + vi;
        out_re[k + half] = even_re[k] - vr;
        out_im[k + half] = even_im[k] - vi;
        // Mirror butterfly reusing the conjugate of the same twiddle:
        // w^{half-k} = -conj(w^k).
        if mirror < half && mirror != k {
            let (wmr, wmi) = (-wr, wi);
            let vr = odd_re[mirror] * wmr - odd_im[mirror] * wmi;
            let vi = odd_re[mirror] * wmi + odd_im[mirror] * wmr;
            out_re[mirror] = even_re[mirror] + vr;
            out_im[mirror] = even_im[mirror] + vi;
            out_re[mirror + half] = even_re[mirror] - vr;
            out_im[mirror + half] = even_im[mirror] - vi;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn radix2_combine_avx(
    out_re: &mut [f64],
    out_im: &mut [f64],
    even_re: &[f64],
    even_im: &[f64],
    odd_re: &[f64],
    odd_im: &[f64],
    wre: &[f64],
    wim: &[f64],
) {
    use std::arch::x86_64::*;
    let half = even_re.len();
    let mut k = 0;
    while k + 4 <= half {
        unsafe {
            let wr = _mm256_loadu_pd(wre.as_ptr().add(k));
            let wi = _mm256_loadu_pd(wim.as_ptr().add(k));
            let or = _mm256_loadu_pd(odd_re.as_ptr().add(k));
            let oi = _mm256_loadu_pd(odd_im.as_ptr().add(k));
            let vr = _mm256_fmsub_pd(or, wr, _mm256_mul_pd(oi, wi));
            let vi = _mm256_fmadd_pd(or, wi, _mm256_mul_pd(oi, wr));
            let er = _mm256_loadu_pd(even_re.as_ptr().add(k));
            let ei = _mm256_loadu_pd(even_im.as_ptr().add(k));
            _mm256_storeu_pd(out_re.as_mut_ptr().add(k), _mm256_add_pd(er, vr));
            _mm256_storeu_pd(out_im.as_mut_ptr().add(k), _mm256_add_pd(ei, vi));
            _mm256_storeu_pd(out_re.as_mut_ptr().add(k + half), _mm256_sub_pd(er, vr));
            _mm256_storeu_pd(out_im.as_mut_ptr().add(k + half), _mm256_sub_pd(ei, vi));
        }
        k += 4;
    }
    debug_assert_eq!(k, half);
}

// ---------------------------------------------------------------------------
// f64 radix-4 kernel
// ---------------------------------------------------------------------------

/// One depth-first radix-4 combine: `work` holds the four completed
/// quarter-transforms back to back; each butterfly loads the single twiddle
/// `W^k` from the stage slice and derives `W^{2k}`, `W^{3k}`
/// multiplicatively (the paper's bandwidth-for-multipliers trade).
/// `forward` selects the rotation sign of the `±i` factor.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn radix4_combine(
    out_re: &mut [f64],
    out_im: &mut [f64],
    work_re: &[f64],
    work_im: &[f64],
    wre: &[f64],
    wim: &[f64],
    forward: bool,
) {
    let len = out_re.len();
    let quarter = len / 4;
    assert_eq!(out_im.len(), len, "component length mismatch");
    assert_eq!(work_re.len(), len, "workspace length mismatch");
    assert_eq!(work_im.len(), len, "workspace length mismatch");
    assert!(
        wre.len() >= quarter && wim.len() >= quarter,
        "twiddle table too short"
    );
    #[cfg(target_arch = "x86_64")]
    if quarter >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe { radix4_combine_avx(out_re, out_im, work_re, work_im, wre, wim, forward) };
        return;
    }
    radix4_combine_scalar(out_re, out_im, work_re, work_im, wre, wim, forward);
}

#[allow(clippy::too_many_arguments)]
fn radix4_combine_scalar(
    out_re: &mut [f64],
    out_im: &mut [f64],
    work_re: &[f64],
    work_im: &[f64],
    wre: &[f64],
    wim: &[f64],
    forward: bool,
) {
    let quarter = out_re.len() / 4;
    let s = if forward { 1.0 } else { -1.0 };
    for k in 0..quarter {
        let (w1r, w1i) = (wre[k], wim[k]);
        let w2r = w1r * w1r - w1i * w1i;
        let w2i = w1r * w1i + w1i * w1r;
        let w3r = w2r * w1r - w2i * w1i;
        let w3i = w2r * w1i + w2i * w1r;

        let (ar, ai) = (work_re[k], work_im[k]);
        let (xr, xi) = (work_re[quarter + k], work_im[quarter + k]);
        let br = xr * w1r - xi * w1i;
        let bi = xr * w1i + xi * w1r;
        let (xr, xi) = (work_re[2 * quarter + k], work_im[2 * quarter + k]);
        let cr = xr * w2r - xi * w2i;
        let ci = xr * w2i + xi * w2r;
        let (xr, xi) = (work_re[3 * quarter + k], work_im[3 * quarter + k]);
        let dr = xr * w3r - xi * w3i;
        let di = xr * w3i + xi * w3r;

        let (t0r, t0i) = (ar + cr, ai + ci);
        let (t1r, t1i) = (ar - cr, ai - ci);
        let (t2r, t2i) = (br + dr, bi + di);
        // t3 = (b − d) · (±i): a swap-and-negate, exact in either leg.
        let t3r = -(s * (bi - di));
        let t3i = s * (br - dr);

        out_re[k] = t0r + t2r;
        out_im[k] = t0i + t2i;
        out_re[k + quarter] = t1r + t3r;
        out_im[k + quarter] = t1i + t3i;
        out_re[k + 2 * quarter] = t0r - t2r;
        out_im[k + 2 * quarter] = t0i - t2i;
        out_re[k + 3 * quarter] = t1r - t3r;
        out_im[k + 3 * quarter] = t1i - t3i;
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn radix4_combine_avx(
    out_re: &mut [f64],
    out_im: &mut [f64],
    work_re: &[f64],
    work_im: &[f64],
    wre: &[f64],
    wim: &[f64],
    forward: bool,
) {
    use std::arch::x86_64::*;
    let quarter = out_re.len() / 4;
    let sign = _mm256_set1_pd(-0.0);
    let mut k = 0;
    while k + 4 <= quarter {
        unsafe {
            let w1r = _mm256_loadu_pd(wre.as_ptr().add(k));
            let w1i = _mm256_loadu_pd(wim.as_ptr().add(k));
            // W^{2k} and W^{3k} derived multiplicatively with FMA.
            let w2r = _mm256_fmsub_pd(w1r, w1r, _mm256_mul_pd(w1i, w1i));
            let t = _mm256_mul_pd(w1r, w1i);
            let w2i = _mm256_add_pd(t, t);
            let w3r = _mm256_fmsub_pd(w2r, w1r, _mm256_mul_pd(w2i, w1i));
            let w3i = _mm256_fmadd_pd(w2r, w1i, _mm256_mul_pd(w2i, w1r));

            let ar = _mm256_loadu_pd(work_re.as_ptr().add(k));
            let ai = _mm256_loadu_pd(work_im.as_ptr().add(k));
            let xr = _mm256_loadu_pd(work_re.as_ptr().add(quarter + k));
            let xi = _mm256_loadu_pd(work_im.as_ptr().add(quarter + k));
            let br = _mm256_fmsub_pd(xr, w1r, _mm256_mul_pd(xi, w1i));
            let bi = _mm256_fmadd_pd(xr, w1i, _mm256_mul_pd(xi, w1r));
            let xr = _mm256_loadu_pd(work_re.as_ptr().add(2 * quarter + k));
            let xi = _mm256_loadu_pd(work_im.as_ptr().add(2 * quarter + k));
            let cr = _mm256_fmsub_pd(xr, w2r, _mm256_mul_pd(xi, w2i));
            let ci = _mm256_fmadd_pd(xr, w2i, _mm256_mul_pd(xi, w2r));
            let xr = _mm256_loadu_pd(work_re.as_ptr().add(3 * quarter + k));
            let xi = _mm256_loadu_pd(work_im.as_ptr().add(3 * quarter + k));
            let dr = _mm256_fmsub_pd(xr, w3r, _mm256_mul_pd(xi, w3i));
            let di = _mm256_fmadd_pd(xr, w3i, _mm256_mul_pd(xi, w3r));

            let t0r = _mm256_add_pd(ar, cr);
            let t0i = _mm256_add_pd(ai, ci);
            let t1r = _mm256_sub_pd(ar, cr);
            let t1i = _mm256_sub_pd(ai, ci);
            let t2r = _mm256_add_pd(br, dr);
            let t2i = _mm256_add_pd(bi, di);
            // (b − d)·(±i): swap components, negate one.
            let (t3r, t3i) = if forward {
                (
                    _mm256_xor_pd(_mm256_sub_pd(bi, di), sign),
                    _mm256_sub_pd(br, dr),
                )
            } else {
                (
                    _mm256_sub_pd(bi, di),
                    _mm256_xor_pd(_mm256_sub_pd(br, dr), sign),
                )
            };

            _mm256_storeu_pd(out_re.as_mut_ptr().add(k), _mm256_add_pd(t0r, t2r));
            _mm256_storeu_pd(out_im.as_mut_ptr().add(k), _mm256_add_pd(t0i, t2i));
            _mm256_storeu_pd(
                out_re.as_mut_ptr().add(k + quarter),
                _mm256_add_pd(t1r, t3r),
            );
            _mm256_storeu_pd(
                out_im.as_mut_ptr().add(k + quarter),
                _mm256_add_pd(t1i, t3i),
            );
            _mm256_storeu_pd(
                out_re.as_mut_ptr().add(k + 2 * quarter),
                _mm256_sub_pd(t0r, t2r),
            );
            _mm256_storeu_pd(
                out_im.as_mut_ptr().add(k + 2 * quarter),
                _mm256_sub_pd(t0i, t2i),
            );
            _mm256_storeu_pd(
                out_re.as_mut_ptr().add(k + 3 * quarter),
                _mm256_sub_pd(t1r, t3r),
            );
            _mm256_storeu_pd(
                out_im.as_mut_ptr().add(k + 3 * quarter),
                _mm256_sub_pd(t1i, t3i),
            );
        }
        k += 4;
    }
    debug_assert_eq!(k, quarter);
}

// ---------------------------------------------------------------------------
// f64 pointwise kernels
// ---------------------------------------------------------------------------

/// `acc += a ⊙ b` over split-complex slices — the pointwise
/// multiply-accumulate of the external product (and, with a factor table as
/// `a`, the TGSW scale). The vector leg uses two FMAs per component; the
/// scalar leg keeps the product-then-add order of the pre-SIMD code.
#[inline]
pub fn mul_acc(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    let m = acc_re.len();
    assert_eq!(acc_im.len(), m, "component length mismatch");
    assert_eq!(a_re.len(), m, "component length mismatch");
    assert_eq!(a_im.len(), m, "component length mismatch");
    assert_eq!(b_re.len(), m, "component length mismatch");
    assert_eq!(b_im.len(), m, "component length mismatch");
    #[cfg(target_arch = "x86_64")]
    if m >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe { mul_acc_avx(acc_re, acc_im, a_re, a_im, b_re, b_im) };
        return;
    }
    for k in 0..m {
        acc_re[k] += a_re[k] * b_re[k] - a_im[k] * b_im[k];
        acc_im[k] += a_re[k] * b_im[k] + a_im[k] * b_re[k];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mul_acc_avx(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    use std::arch::x86_64::*;
    let m = acc_re.len();
    let mut k = 0;
    while k + 4 <= m {
        unsafe {
            let ar = _mm256_loadu_pd(a_re.as_ptr().add(k));
            let ai = _mm256_loadu_pd(a_im.as_ptr().add(k));
            let br = _mm256_loadu_pd(b_re.as_ptr().add(k));
            let bi = _mm256_loadu_pd(b_im.as_ptr().add(k));
            let mut cr = _mm256_loadu_pd(acc_re.as_ptr().add(k));
            let mut ci = _mm256_loadu_pd(acc_im.as_ptr().add(k));
            cr = _mm256_fmadd_pd(ar, br, cr);
            cr = _mm256_fnmadd_pd(ai, bi, cr);
            ci = _mm256_fmadd_pd(ar, bi, ci);
            ci = _mm256_fmadd_pd(ai, br, ci);
            _mm256_storeu_pd(acc_re.as_mut_ptr().add(k), cr);
            _mm256_storeu_pd(acc_im.as_mut_ptr().add(k), ci);
        }
        k += 4;
    }
    while k < m {
        // Scalar tail uses the same FMA contraction as the vector body so
        // the SIMD leg is uniform regardless of lane alignment.
        acc_re[k] = (-a_im[k]).mul_add(b_im[k], a_re[k].mul_add(b_re[k], acc_re[k]));
        acc_im[k] = a_im[k].mul_add(b_re[k], a_re[k].mul_add(b_im[k], acc_im[k]));
        k += 1;
    }
}

/// `acc1 += c ⊙ u` and `acc2 += c ⊙ v` in one pass over `c` — the fused
/// external-product / bundle-update inner loop. Per accumulator the
/// element operations match [`mul_acc`] exactly (in both legs), so one
/// fused call is bit-identical to two single calls on either path.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn mul_acc_pair(
    acc1_re: &mut [f64],
    acc1_im: &mut [f64],
    acc2_re: &mut [f64],
    acc2_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    v_re: &[f64],
    v_im: &[f64],
) {
    let m = acc1_re.len();
    assert_eq!(acc1_im.len(), m, "component length mismatch");
    assert_eq!(acc2_re.len(), m, "component length mismatch");
    assert_eq!(acc2_im.len(), m, "component length mismatch");
    assert_eq!(c_re.len(), m, "component length mismatch");
    assert_eq!(c_im.len(), m, "component length mismatch");
    assert_eq!(u_re.len(), m, "component length mismatch");
    assert_eq!(u_im.len(), m, "component length mismatch");
    assert_eq!(v_re.len(), m, "component length mismatch");
    assert_eq!(v_im.len(), m, "component length mismatch");
    #[cfg(target_arch = "x86_64")]
    if m >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe {
            mul_acc_pair_avx(
                acc1_re, acc1_im, acc2_re, acc2_im, c_re, c_im, u_re, u_im, v_re, v_im,
            )
        };
        return;
    }
    for k in 0..m {
        let (cr, ci) = (c_re[k], c_im[k]);
        acc1_re[k] += cr * u_re[k] - ci * u_im[k];
        acc1_im[k] += cr * u_im[k] + ci * u_re[k];
        acc2_re[k] += cr * v_re[k] - ci * v_im[k];
        acc2_im[k] += cr * v_im[k] + ci * v_re[k];
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn mul_acc_pair_avx(
    acc1_re: &mut [f64],
    acc1_im: &mut [f64],
    acc2_re: &mut [f64],
    acc2_im: &mut [f64],
    c_re: &[f64],
    c_im: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    v_re: &[f64],
    v_im: &[f64],
) {
    use std::arch::x86_64::*;
    let m = acc1_re.len();
    let mut k = 0;
    while k + 4 <= m {
        unsafe {
            let cr = _mm256_loadu_pd(c_re.as_ptr().add(k));
            let ci = _mm256_loadu_pd(c_im.as_ptr().add(k));
            let ur = _mm256_loadu_pd(u_re.as_ptr().add(k));
            let ui = _mm256_loadu_pd(u_im.as_ptr().add(k));
            let mut x = _mm256_loadu_pd(acc1_re.as_ptr().add(k));
            let mut y = _mm256_loadu_pd(acc1_im.as_ptr().add(k));
            x = _mm256_fmadd_pd(cr, ur, x);
            x = _mm256_fnmadd_pd(ci, ui, x);
            y = _mm256_fmadd_pd(cr, ui, y);
            y = _mm256_fmadd_pd(ci, ur, y);
            _mm256_storeu_pd(acc1_re.as_mut_ptr().add(k), x);
            _mm256_storeu_pd(acc1_im.as_mut_ptr().add(k), y);
            let vr = _mm256_loadu_pd(v_re.as_ptr().add(k));
            let vi = _mm256_loadu_pd(v_im.as_ptr().add(k));
            let mut x = _mm256_loadu_pd(acc2_re.as_ptr().add(k));
            let mut y = _mm256_loadu_pd(acc2_im.as_ptr().add(k));
            x = _mm256_fmadd_pd(cr, vr, x);
            x = _mm256_fnmadd_pd(ci, vi, x);
            y = _mm256_fmadd_pd(cr, vi, y);
            y = _mm256_fmadd_pd(ci, vr, y);
            _mm256_storeu_pd(acc2_re.as_mut_ptr().add(k), x);
            _mm256_storeu_pd(acc2_im.as_mut_ptr().add(k), y);
        }
        k += 4;
    }
    while k < m {
        let (cr, ci) = (c_re[k], c_im[k]);
        acc1_re[k] = (-ci).mul_add(u_im[k], cr.mul_add(u_re[k], acc1_re[k]));
        acc1_im[k] = ci.mul_add(u_re[k], cr.mul_add(u_im[k], acc1_im[k]));
        acc2_re[k] = (-ci).mul_add(v_im[k], cr.mul_add(v_re[k], acc2_re[k]));
        acc2_im[k] = ci.mul_add(v_re[k], cr.mul_add(v_im[k], acc2_im[k]));
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// f64 twist kernels
// ---------------------------------------------------------------------------

/// In-place complex multiply by the twist table: `(re, im) ⊙= (twre, twim)`
/// — the tail of every negacyclic fold.
#[inline]
pub fn twist_apply(re: &mut [f64], im: &mut [f64], twre: &[f64], twim: &[f64]) {
    let m = re.len();
    assert_eq!(im.len(), m, "component length mismatch");
    assert_eq!(twre.len(), m, "twist table length mismatch");
    assert_eq!(twim.len(), m, "twist table length mismatch");
    #[cfg(target_arch = "x86_64")]
    if m >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe { twist_apply_avx(re, im, twre, twim, false) };
        return;
    }
    for k in 0..m {
        let (r, i) = (re[k], im[k]);
        re[k] = r * twre[k] - i * twim[k];
        im[k] = r * twim[k] + i * twre[k];
    }
}

/// In-place multiply by the *conjugated* twist table — the untwist of every
/// backward transform.
#[inline]
pub fn untwist_apply(re: &mut [f64], im: &mut [f64], twre: &[f64], twim: &[f64]) {
    let m = re.len();
    assert_eq!(im.len(), m, "component length mismatch");
    assert_eq!(twre.len(), m, "twist table length mismatch");
    assert_eq!(twim.len(), m, "twist table length mismatch");
    #[cfg(target_arch = "x86_64")]
    if m >= 4 && simd_active() {
        // SAFETY: simd_active() implies AVX2+FMA are present.
        unsafe { twist_apply_avx(re, im, twre, twim, true) };
        return;
    }
    for k in 0..m {
        let (r, i) = (re[k], im[k]);
        re[k] = r * twre[k] + i * twim[k];
        im[k] = i * twre[k] - r * twim[k];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn twist_apply_avx(re: &mut [f64], im: &mut [f64], twre: &[f64], twim: &[f64], conj: bool) {
    use std::arch::x86_64::*;
    let m = re.len();
    let mut k = 0;
    while k + 4 <= m {
        unsafe {
            let r = _mm256_loadu_pd(re.as_ptr().add(k));
            let i = _mm256_loadu_pd(im.as_ptr().add(k));
            let tr = _mm256_loadu_pd(twre.as_ptr().add(k));
            let ti = _mm256_loadu_pd(twim.as_ptr().add(k));
            let (nr, ni) = if conj {
                (
                    _mm256_fmadd_pd(r, tr, _mm256_mul_pd(i, ti)),
                    _mm256_fmsub_pd(i, tr, _mm256_mul_pd(r, ti)),
                )
            } else {
                (
                    _mm256_fmsub_pd(r, tr, _mm256_mul_pd(i, ti)),
                    _mm256_fmadd_pd(r, ti, _mm256_mul_pd(i, tr)),
                )
            };
            _mm256_storeu_pd(re.as_mut_ptr().add(k), nr);
            _mm256_storeu_pd(im.as_mut_ptr().add(k), ni);
        }
        k += 4;
    }
    // Transform sizes are powers of two, and the dispatcher only takes this
    // leg for m ≥ 4, so the whole buffer vectorized.
    debug_assert_eq!(k, m);
}

// ---------------------------------------------------------------------------
// i64 kernels (integer engine)
// ---------------------------------------------------------------------------

/// One radix-2 butterfly stage of the integer engine: the stage's lifting
/// rotations applied with unit stride, then `u ± v`. Scalar only — the
/// lifting steps need 64×64→128-bit multiplies with rounding arithmetic
/// shifts, which AVX2 cannot express (see the module docs).
pub fn i64_radix2_stage(re: &mut [i64], im: &mut [i64], rots: &[LiftingRotation], len: usize) {
    let m = re.len();
    let half = len / 2;
    assert_eq!(im.len(), m, "component length mismatch");
    assert_eq!(rots.len(), half, "rotation table length mismatch");
    for start in (0..m).step_by(len) {
        for (k, &rot) in rots.iter().enumerate() {
            let (vr, vi) = rot.apply(re[start + half + k], im[start + half + k]);
            let (ur, ui) = (re[start + k], im[start + k]);
            re[start + k] = ur + vr;
            im[start + k] = ui + vi;
            re[start + half + k] = ur - vr;
            im[start + half + k] = ui - vi;
        }
    }
}

/// [`i64_radix2_stage`] with a round-half-up halving of every output —
/// `log2(M)` of these realize the `1/M` inverse normalization without a
/// multiplier.
pub fn i64_radix2_stage_halving(
    re: &mut [i64],
    im: &mut [i64],
    rots: &[LiftingRotation],
    len: usize,
) {
    let m = re.len();
    let half = len / 2;
    assert_eq!(im.len(), m, "component length mismatch");
    assert_eq!(rots.len(), half, "rotation table length mismatch");
    for start in (0..m).step_by(len) {
        for (k, &rot) in rots.iter().enumerate() {
            let (vr, vi) = rot.apply(re[start + half + k], im[start + half + k]);
            let (ur, ui) = (re[start + k], im[start + k]);
            re[start + k] = half_round(ur + vr);
            im[start + k] = half_round(ui + vi);
            re[start + half + k] = half_round(ur - vr);
            im[start + half + k] = half_round(ui - vi);
        }
    }
}

/// Round-half-up division by two.
#[inline]
pub(crate) fn half_round(v: i64) -> i64 {
    (v + 1) >> 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_override_wins() {
        force_simd(Some(false));
        assert!(!simd_active());
        force_simd(Some(true));
        assert_eq!(simd_active(), simd_detected());
        force_simd(None);
        let _ = simd_active(); // auto path must not panic
        force_simd(None);
    }

    #[test]
    fn scalar_radix2_stage_is_a_butterfly() {
        // One length-2 stage with w = 1: (a, b) -> (a+b, a-b).
        let mut re = vec![1.0, 2.0, 3.0, 5.0];
        let mut im = vec![0.5, -0.5, 1.5, -1.5];
        radix2_stage_scalar(&mut re, &mut im, &[1.0], &[0.0], 2);
        assert_eq!(re, vec![3.0, -1.0, 8.0, -2.0]);
        assert_eq!(im, vec![0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn pair_kernel_matches_two_singles_scalar_leg() {
        force_simd(Some(false));
        let m = 8;
        let c_re: Vec<f64> = (0..m).map(|k| 0.3 + k as f64).collect();
        let c_im: Vec<f64> = (0..m).map(|k| -0.7 * k as f64).collect();
        let u_re: Vec<f64> = (0..m).map(|k| (k as f64).sin()).collect();
        let u_im: Vec<f64> = (0..m).map(|k| (k as f64).cos()).collect();
        let v_re: Vec<f64> = (0..m).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let v_im: Vec<f64> = (0..m).map(|k| (k as f64) * 0.01).collect();
        let mut p1 = vec![0.25; m];
        let mut p2 = vec![-0.5; m];
        let mut p3 = vec![1.0; m];
        let mut p4 = vec![2.0; m];
        mul_acc_pair(
            &mut p1, &mut p2, &mut p3, &mut p4, &c_re, &c_im, &u_re, &u_im, &v_re, &v_im,
        );
        let mut s1 = vec![0.25; m];
        let mut s2 = vec![-0.5; m];
        let mut s3 = vec![1.0; m];
        let mut s4 = vec![2.0; m];
        mul_acc(&mut s1, &mut s2, &c_re, &c_im, &u_re, &u_im);
        mul_acc(&mut s3, &mut s4, &c_re, &c_im, &v_re, &v_im);
        assert_eq!(p1, s1);
        assert_eq!(p2, s2);
        assert_eq!(p3, s3);
        assert_eq!(p4, s4);
        force_simd(None);
    }
}
