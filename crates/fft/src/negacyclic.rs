//! High-level negacyclic polynomial multiplication helpers.

use crate::engine::FftEngine;
use matcha_math::{IntPolynomial, TorusPolynomial};

/// Negacyclic product `p · q mod (X^N + 1)` through the given engine.
///
/// Equivalent to [`FftEngine::poly_mul`] but usable as a free function in
/// generic code.
///
/// # Examples
///
/// ```
/// use matcha_fft::{negacyclic, F64Fft};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = F64Fft::new(8);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 8);
/// let mut q = IntPolynomial::zero(8);
/// q.coeffs_mut()[0] = -1;
/// let r = negacyclic::poly_mul(&engine, &p, &q);
/// assert!(r.coeffs()[0].signed_diff(Torus32::from_f64(-0.25)).abs() < 1e-7);
/// ```
pub fn poly_mul<E: FftEngine>(
    engine: &E,
    p: &TorusPolynomial,
    q: &IntPolynomial,
) -> TorusPolynomial {
    engine.poly_mul(p, q)
}

/// Sum of products `Σ_i p_i · q_i` with a single backward transform, the
/// access pattern of the TGSW external product.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn poly_mul_sum<E: FftEngine>(
    engine: &E,
    ps: &[TorusPolynomial],
    qs: &[IntPolynomial],
) -> TorusPolynomial {
    assert_eq!(ps.len(), qs.len(), "mismatched product term counts");
    let mut acc = engine.zero_spectrum();
    for (p, q) in ps.iter().zip(qs.iter()) {
        let fp = engine.forward_torus(p);
        let fq = engine.forward_int(q);
        engine.mul_accumulate(&mut acc, &fp, &fq);
    }
    engine.backward_torus(&acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ApproxIntFft;
    use crate::F64Fft;
    use matcha_math::Torus32;

    fn tp(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    fn ip(n: usize, seed: u32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 512) as i32 - 256)
                .collect(),
        )
    }

    #[test]
    fn sum_matches_separate_products() {
        let n = 64;
        let engine = F64Fft::new(n);
        let ps = vec![tp(n, 1), tp(n, 2), tp(n, 3)];
        let qs = vec![ip(n, 4), ip(n, 5), ip(n, 6)];
        let fused = poly_mul_sum(&engine, &ps, &qs);
        let mut separate = TorusPolynomial::zero(n);
        for (p, q) in ps.iter().zip(qs.iter()) {
            separate += &p.naive_mul_int(q);
        }
        assert!(fused.max_distance(&separate) < 1e-6);
    }

    #[test]
    fn sum_matches_for_integer_engine() {
        let n = 32;
        let engine = ApproxIntFft::new(n, 48);
        let ps = vec![tp(n, 7), tp(n, 8)];
        let qs = vec![ip(n, 9), ip(n, 10)];
        let fused = poly_mul_sum(&engine, &ps, &qs);
        let mut separate = TorusPolynomial::zero(n);
        for (p, q) in ps.iter().zip(qs.iter()) {
            separate += &p.naive_mul_int(q);
        }
        assert!(fused.max_distance(&separate) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_rejected() {
        let engine = F64Fft::new(8);
        let _ = poly_mul_sum(&engine, &[TorusPolynomial::zero(8)], &[]);
    }
}
