//! Radix-4 depth-first FFT.
//!
//! The conjugate-pair algorithm the paper adopts (§4.1, citing Becoulet &
//! Verguet) is a radix-4 flow whose butterflies need a *single* complex
//! root-of-unity read each: the higher twiddle powers `W^{2k}` and `W^{3k}`
//! are derived from the one loaded `W^k` with two extra complex
//! multiplications, trading multiplier work (cheap in a butterfly array)
//! for twiddle-buffer bandwidth (the scarce resource MATCHA's address
//! generation unit feeds, Figure 7d). This engine realizes that trade and
//! counts twiddle reads so it can be compared against the radix-2 flows.

use crate::cplx::Cplx;
use crate::engine::FftEngine;
use crate::ref_fft::{self, CplxScratch, CplxSpectrum};
use crate::tables::{StageTwiddles, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};
use std::sync::atomic::{AtomicU64, Ordering};

/// Depth-first radix-4 double-precision engine with one twiddle read per
/// radix-4 butterfly.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine, Radix4Fft};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let r4 = Radix4Fft::new(32);
/// let r2 = F64Fft::new(32);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 32);
/// let mut q = IntPolynomial::zero(32);
/// q.coeffs_mut()[3] = 2;
/// assert!(r4.poly_mul(&p, &q).max_distance(&r2.poly_mul(&p, &q)) < 1e-9);
/// ```
#[derive(Debug)]
pub struct Radix4Fft {
    n: usize,
    tables: TwiddleTables,
    twiddle_reads: AtomicU64,
}

impl Radix4Fft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 8 && n.is_power_of_two(),
            "ring degree {n} must be a power of two ≥ 8"
        );
        Self {
            n,
            tables: TwiddleTables::new(n),
            twiddle_reads: AtomicU64::new(0),
        }
    }

    /// Twiddle-buffer reads since construction (or the last reset).
    pub fn twiddle_reads(&self) -> u64 {
        self.twiddle_reads.load(Ordering::Relaxed)
    }

    /// Resets the twiddle-read counter.
    pub fn reset_twiddle_reads(&self) {
        self.twiddle_reads.store(0, Ordering::Relaxed);
    }

    /// Depth-first radix-4 transform using the caller's recursion workspace
    /// (`2·M` entries, sized on first use).
    fn transform_with(&self, buf: &mut [Cplx], stack: &mut Vec<Cplx>, inverse: bool) {
        let m = buf.len();
        stack.clear();
        stack.resize(2 * m, Cplx::ZERO);
        // Direction is decided once: the per-stage conjugated tables and
        // the rotated `i` are selected here, keeping the butterfly loop
        // branch-free.
        let stages = if inverse {
            self.tables.inverse_stages()
        } else {
            self.tables.forward_stages()
        };
        let rot_i = if inverse {
            Cplx::new(0.0, -1.0)
        } else {
            Cplx::new(0.0, 1.0)
        };
        self.recurse(buf, stack, stages, rot_i);
        if inverse {
            let scale = 1.0 / m as f64;
            for v in buf.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    fn recurse(&self, buf: &mut [Cplx], scratch: &mut [Cplx], stages: &StageTwiddles, rot_i: Cplx) {
        let len = buf.len();
        match len {
            1 => {}
            2 => {
                let (a, b) = (buf[0], buf[1]);
                buf[0] = a + b;
                buf[1] = a - b;
            }
            _ => self.radix4_step(buf, scratch, stages, rot_i),
        }
    }

    fn radix4_step(
        &self,
        buf: &mut [Cplx],
        scratch: &mut [Cplx],
        stages: &StageTwiddles,
        rot_i: Cplx,
    ) {
        let len = buf.len();
        let quarter = len / 4;
        // Gather the four decimated subsequences into the scratch window and
        // complete each sub-transform before combining (depth-first).
        let (work, rest) = scratch.split_at_mut(len);
        for i in 0..quarter {
            for r in 0..4 {
                work[r * quarter + i] = buf[4 * i + r];
            }
        }
        for r in 0..4 {
            let (sub, _) = work[r * quarter..].split_at_mut(quarter);
            self.recurse(sub, rest, stages, rot_i);
        }

        // This level's radix-2 stage slice: the radix-4 butterflies consume
        // its first `len/4` entries with unit stride.
        let ws = stages.stage(len);
        for k in 0..quarter {
            // Single twiddle-buffer read per radix-4 butterfly; W^{2k} and
            // W^{3k} are derived multiplicatively.
            let w1 = ws[k];
            self.twiddle_reads.fetch_add(1, Ordering::Relaxed);
            let w2 = w1 * w1;
            let w3 = w2 * w1;

            let a = work[k];
            let b = work[quarter + k] * w1;
            let c = work[2 * quarter + k] * w2;
            let d = work[3 * quarter + k] * w3;

            let t0 = a + c;
            let t1 = a - c;
            let t2 = b + d;
            let t3 = (b - d) * rot_i;

            buf[k] = t0 + t2;
            buf[k + quarter] = t1 + t3;
            buf[k + 2 * quarter] = t0 - t2;
            buf[k + 3 * quarter] = t1 - t3;
        }
    }
}

impl FftEngine for Radix4Fft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = Vec<Cplx>;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum(vec![Cplx::ZERO; self.n / 2])
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        ref_fft::clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf.clone_from(&s.0);
        self.transform_with(&mut scratch.buf, &mut scratch.stack, true);
        twist::unfold_torus_into(&scratch.buf, &self.tables, out);
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        ref_fft::mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        ref_fft::mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
        for (dst, &x) in acc.0.iter_mut().zip(a.0.iter()) {
            *dst += x;
        }
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Vec<Cplx>) {
        ref_fft::monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &Vec<Cplx>) {
        ref_fft::scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &Vec<Cplx>,
    ) {
        ref_fft::scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.0.clone_from(&from.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fft::F64Fft;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    fn random_digit_poly(n: usize, seed: u32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 512) as i32 - 256)
                .collect(),
        )
    }

    #[test]
    fn matches_radix2_engine_all_sizes() {
        // Cover both parities of log2(M): pure radix-4 and mixed tails.
        for n in [8usize, 16, 32, 64, 128, 1024] {
            let r4 = Radix4Fft::new(n);
            let r2 = F64Fft::new(n);
            let p = random_torus_poly(n, 3);
            let q = random_digit_poly(n, 5);
            let a = r4.poly_mul(&p, &q);
            let b = r2.poly_mul(&p, &q);
            assert!(a.max_distance(&b) < 1e-6, "n={n}: {}", a.max_distance(&b));
        }
    }

    #[test]
    fn roundtrip_identity() {
        let r4 = Radix4Fft::new(256);
        let p = random_torus_poly(256, 7);
        let back = r4.backward_torus(&r4.forward_torus(&p));
        assert!(back.max_distance(&p) < 1e-7);
    }

    #[test]
    fn fewer_twiddle_reads_than_radix2() {
        // Radix-2 breadth-first: (M/2)·log2(M) reads. Radix-4 depth-first:
        // one read per radix-4 butterfly ≈ (M/4)·log4(M) — ~4× fewer.
        let n = 1024;
        let m = (n / 2) as u64;
        let r4 = Radix4Fft::new(n);
        r4.reset_twiddle_reads();
        let _ = r4.forward_torus(&random_torus_poly(n, 1));
        let reads = r4.twiddle_reads();
        let radix2_reads = (m / 2) * m.trailing_zeros() as u64;
        assert!(
            reads * 2 < radix2_reads,
            "radix-4 should at least halve reads: {reads} vs {radix2_reads}"
        );
    }

    #[test]
    fn external_product_path_works() {
        // bundle/scale path shared with the other f64 engines.
        let n = 32;
        let engine = Radix4Fft::new(n);
        let base = random_torus_poly(n, 11);
        let src = random_torus_poly(n, 12);
        let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
        engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), 9);
        let got = engine.backward_torus(&acc);
        let mut expected = base.clone();
        expected.add_rotate_minus_one(&src, 9);
        assert!(got.max_distance(&expected) < 1e-6);
    }
}
