//! Radix-4 depth-first FFT.
//!
//! The conjugate-pair algorithm the paper adopts (§4.1, citing Becoulet &
//! Verguet) is a radix-4 flow whose butterflies need a *single* complex
//! root-of-unity read each: the higher twiddle powers `W^{2k}` and `W^{3k}`
//! are derived from the one loaded `W^k` with two extra complex
//! multiplications, trading multiplier work (cheap in a butterfly array)
//! for twiddle-buffer bandwidth (the scarce resource MATCHA's address
//! generation unit feeds, Figure 7d). This engine realizes that trade and
//! counts twiddle reads so it can be compared against the radix-2 flows.

use crate::cplx::Cplx;
use crate::engine::FftEngine;
use crate::ref_fft::CplxSpectrum;
use crate::tables::TwiddleTables;
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};
use std::sync::atomic::{AtomicU64, Ordering};

/// Depth-first radix-4 double-precision engine with one twiddle read per
/// radix-4 butterfly.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine, Radix4Fft};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let r4 = Radix4Fft::new(32);
/// let r2 = F64Fft::new(32);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 32);
/// let mut q = IntPolynomial::zero(32);
/// q.coeffs_mut()[3] = 2;
/// assert!(r4.poly_mul(&p, &q).max_distance(&r2.poly_mul(&p, &q)) < 1e-9);
/// ```
#[derive(Debug)]
pub struct Radix4Fft {
    n: usize,
    tables: TwiddleTables,
    twiddle_reads: AtomicU64,
}

impl Radix4Fft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n >= 8 && n.is_power_of_two(), "ring degree {n} must be a power of two ≥ 8");
        Self { n, tables: TwiddleTables::new(n), twiddle_reads: AtomicU64::new(0) }
    }

    /// Twiddle-buffer reads since construction (or the last reset).
    pub fn twiddle_reads(&self) -> u64 {
        self.twiddle_reads.load(Ordering::Relaxed)
    }

    /// Resets the twiddle-read counter.
    pub fn reset_twiddle_reads(&self) {
        self.twiddle_reads.store(0, Ordering::Relaxed);
    }

    fn transform(&self, buf: &mut [Cplx], inverse: bool) {
        let m = buf.len();
        self.recurse(buf, inverse);
        if inverse {
            let scale = 1.0 / m as f64;
            for v in buf.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    fn recurse(&self, buf: &mut [Cplx], inverse: bool) {
        let len = buf.len();
        match len {
            1 => {}
            2 => {
                let (a, b) = (buf[0], buf[1]);
                buf[0] = a + b;
                buf[1] = a - b;
            }
            _ => self.radix4_step(buf, inverse),
        }
    }

    fn radix4_step(&self, buf: &mut [Cplx], inverse: bool) {
        let len = buf.len();
        let quarter = len / 4;
        // Gather the four decimated subsequences and complete each
        // sub-transform before combining (depth-first).
        let mut subs: Vec<Vec<Cplx>> = (0..4)
            .map(|r| (0..quarter).map(|i| buf[4 * i + r]).collect())
            .collect();
        for sub in &mut subs {
            self.recurse(sub, inverse);
        }

        let m = self.tables.size();
        let step = m / len;
        // Forward kernel e^{+2πi/len}: the s-th output quarter combines
        // with phases i^{rs}; inverse conjugates both twiddles and i.
        let rot_i = if inverse { Cplx::new(0.0, -1.0) } else { Cplx::new(0.0, 1.0) };
        for k in 0..quarter {
            // Single twiddle-buffer read per radix-4 butterfly; W^{2k} and
            // W^{3k} are derived multiplicatively.
            let mut w1 = self.tables.root(k * step);
            self.twiddle_reads.fetch_add(1, Ordering::Relaxed);
            if inverse {
                w1 = w1.conj();
            }
            let w2 = w1 * w1;
            let w3 = w2 * w1;

            let a = subs[0][k];
            let b = subs[1][k] * w1;
            let c = subs[2][k] * w2;
            let d = subs[3][k] * w3;

            let t0 = a + c;
            let t1 = a - c;
            let t2 = b + d;
            let t3 = (b - d) * rot_i;

            buf[k] = t0 + t2;
            buf[k + quarter] = t1 + t3;
            buf[k + 2 * quarter] = t0 - t2;
            buf[k + 3 * quarter] = t1 - t3;
        }
    }
}

impl FftEngine for Radix4Fft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = Vec<Cplx>;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum(vec![Cplx::ZERO; self.n / 2])
    }

    fn forward_int(&self, p: &IntPolynomial) -> CplxSpectrum {
        let mut buf = Vec::new();
        twist::fold_int(p, &self.tables, &mut buf);
        self.transform(&mut buf, false);
        CplxSpectrum(buf)
    }

    fn forward_torus(&self, p: &TorusPolynomial) -> CplxSpectrum {
        let mut buf = Vec::new();
        twist::fold_torus(p, &self.tables, &mut buf);
        self.transform(&mut buf, false);
        CplxSpectrum(buf)
    }

    fn backward_torus(&self, s: &CplxSpectrum) -> TorusPolynomial {
        let mut buf = s.0.clone();
        self.transform(&mut buf, true);
        twist::unfold_torus(&buf, &self.tables)
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
        assert_eq!(a.0.len(), b.0.len(), "spectrum size mismatch");
        for ((dst, &x), &y) in acc.0.iter_mut().zip(a.0.iter()).zip(b.0.iter()) {
            *dst += x * y;
        }
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
        for (dst, &x) in acc.0.iter_mut().zip(a.0.iter()) {
            *dst += x;
        }
    }

    fn monomial_minus_one(&self, exponent: i64) -> Vec<Cplx> {
        crate::ref_fft::monomial_minus_one_cplx(self.n, exponent)
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &Vec<Cplx>) {
        crate::ref_fft::scale_accumulate_cplx(acc, src, factors);
    }

    fn bundle_accumulator(&self, from: &CplxSpectrum) -> CplxSpectrum {
        from.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fft::F64Fft;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    fn random_digit_poly(n: usize, seed: u32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 512) as i32 - 256)
                .collect(),
        )
    }

    #[test]
    fn matches_radix2_engine_all_sizes() {
        // Cover both parities of log2(M): pure radix-4 and mixed tails.
        for n in [8usize, 16, 32, 64, 128, 1024] {
            let r4 = Radix4Fft::new(n);
            let r2 = F64Fft::new(n);
            let p = random_torus_poly(n, 3);
            let q = random_digit_poly(n, 5);
            let a = r4.poly_mul(&p, &q);
            let b = r2.poly_mul(&p, &q);
            assert!(a.max_distance(&b) < 1e-6, "n={n}: {}", a.max_distance(&b));
        }
    }

    #[test]
    fn roundtrip_identity() {
        let r4 = Radix4Fft::new(256);
        let p = random_torus_poly(256, 7);
        let back = r4.backward_torus(&r4.forward_torus(&p));
        assert!(back.max_distance(&p) < 1e-7);
    }

    #[test]
    fn fewer_twiddle_reads_than_radix2() {
        // Radix-2 breadth-first: (M/2)·log2(M) reads. Radix-4 depth-first:
        // one read per radix-4 butterfly ≈ (M/4)·log4(M) — ~4× fewer.
        let n = 1024;
        let m = (n / 2) as u64;
        let r4 = Radix4Fft::new(n);
        r4.reset_twiddle_reads();
        let _ = r4.forward_torus(&random_torus_poly(n, 1));
        let reads = r4.twiddle_reads();
        let radix2_reads = (m / 2) * m.trailing_zeros() as u64;
        assert!(
            reads * 2 < radix2_reads,
            "radix-4 should at least halve reads: {reads} vs {radix2_reads}"
        );
    }

    #[test]
    fn external_product_path_works() {
        // bundle/scale path shared with the other f64 engines.
        let n = 32;
        let engine = Radix4Fft::new(n);
        let base = random_torus_poly(n, 11);
        let src = random_torus_poly(n, 12);
        let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
        engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), 9);
        let got = engine.backward_torus(&acc);
        let mut expected = base.clone();
        expected.add_rotate_minus_one(&src, 9);
        assert!(got.max_distance(&expected) < 1e-6);
    }
}
