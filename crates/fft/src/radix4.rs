//! Radix-4 depth-first FFT.
//!
//! The conjugate-pair algorithm the paper adopts (§4.1, citing Becoulet &
//! Verguet) is a radix-4 flow whose butterflies need a *single* complex
//! root-of-unity read each: the higher twiddle powers `W^{2k}` and `W^{3k}`
//! are derived from the one loaded `W^k` with two extra complex
//! multiplications, trading multiplier work (cheap in a butterfly array)
//! for twiddle-buffer bandwidth (the scarce resource MATCHA's address
//! generation unit feeds, Figure 7d). This engine realizes that trade and
//! counts twiddle reads so it can be compared against the radix-2 flows.
//! The combine itself runs through [`crate::simd::radix4_combine`] — four
//! radix-4 butterflies per AVX2+FMA iteration on split-complex data.

use crate::engine::FftEngine;
use crate::ref_fft::{self, CplxScratch, CplxSpectrum, SplitFactors};
use crate::simd;
use crate::tables::{StageTwiddles, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};
use std::sync::atomic::{AtomicU64, Ordering};

/// Depth-first radix-4 double-precision engine with one twiddle read per
/// radix-4 butterfly.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine, Radix4Fft};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let r4 = Radix4Fft::new(32);
/// let r2 = F64Fft::new(32);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 32);
/// let mut q = IntPolynomial::zero(32);
/// q.coeffs_mut()[3] = 2;
/// assert!(r4.poly_mul(&p, &q).max_distance(&r2.poly_mul(&p, &q)) < 1e-9);
/// ```
#[derive(Debug)]
pub struct Radix4Fft {
    n: usize,
    tables: TwiddleTables,
    twiddle_reads: AtomicU64,
}

impl Radix4Fft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 8 && n.is_power_of_two(),
            "ring degree {n} must be a power of two ≥ 8"
        );
        Self {
            n,
            tables: TwiddleTables::new(n),
            twiddle_reads: AtomicU64::new(0),
        }
    }

    /// Twiddle-buffer reads since construction (or the last reset).
    pub fn twiddle_reads(&self) -> u64 {
        self.twiddle_reads.load(Ordering::Relaxed)
    }

    /// Resets the twiddle-read counter.
    pub fn reset_twiddle_reads(&self) {
        self.twiddle_reads.store(0, Ordering::Relaxed);
    }

    /// Depth-first radix-4 transform using the caller's recursion workspace
    /// (`2·M` entries per component, sized on first use).
    fn transform_with(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        stack_re: &mut Vec<f64>,
        stack_im: &mut Vec<f64>,
        inverse: bool,
    ) {
        let m = re.len();
        stack_re.clear();
        stack_re.resize(2 * m, 0.0);
        stack_im.clear();
        stack_im.resize(2 * m, 0.0);
        // Direction is decided once: the per-stage conjugated tables and
        // the rotation sign of `±i` are selected here, keeping the
        // butterfly loop branch-free.
        let stages = if inverse {
            self.tables.inverse_stages()
        } else {
            self.tables.forward_stages()
        };
        self.recurse(re, im, stack_re, stack_im, stages, !inverse);
        if inverse {
            let scale = 1.0 / m as f64;
            for v in re.iter_mut() {
                *v *= scale;
            }
            for v in im.iter_mut() {
                *v *= scale;
            }
        }
    }

    fn recurse(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        scratch_re: &mut [f64],
        scratch_im: &mut [f64],
        stages: &StageTwiddles,
        forward: bool,
    ) {
        let len = re.len();
        match len {
            1 => {}
            2 => {
                let (ar, br) = (re[0], re[1]);
                re[0] = ar + br;
                re[1] = ar - br;
                let (ai, bi) = (im[0], im[1]);
                im[0] = ai + bi;
                im[1] = ai - bi;
            }
            _ => self.radix4_step(re, im, scratch_re, scratch_im, stages, forward),
        }
    }

    fn radix4_step(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        scratch_re: &mut [f64],
        scratch_im: &mut [f64],
        stages: &StageTwiddles,
        forward: bool,
    ) {
        let len = re.len();
        let quarter = len / 4;
        // Gather the four decimated subsequences into the scratch window and
        // complete each sub-transform before combining (depth-first).
        let (work_re, rest_re) = scratch_re.split_at_mut(len);
        let (work_im, rest_im) = scratch_im.split_at_mut(len);
        for i in 0..quarter {
            for r in 0..4 {
                work_re[r * quarter + i] = re[4 * i + r];
                work_im[r * quarter + i] = im[4 * i + r];
            }
        }
        for r in 0..4 {
            let sub_re = &mut work_re[r * quarter..(r + 1) * quarter];
            let sub_im = &mut work_im[r * quarter..(r + 1) * quarter];
            self.recurse(sub_re, sub_im, rest_re, rest_im, stages, forward);
        }

        // This level's radix-2 stage slice: the radix-4 butterflies consume
        // its first `len/4` entries with unit stride, a single
        // twiddle-buffer read each (W^{2k}, W^{3k} derived in registers).
        let (wre, wim) = stages.stage_split(len);
        self.twiddle_reads
            .fetch_add(quarter as u64, Ordering::Relaxed);
        simd::radix4_combine(re, im, work_re, work_im, wre, wim, forward);
    }
}

impl FftEngine for Radix4Fft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = SplitFactors;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum {
            re: vec![0.0; self.n / 2],
            im: vec![0.0; self.n / 2],
        }
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        ref_fft::clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf_re.clone_from(&s.re);
        scratch.buf_im.clone_from(&s.im);
        let CplxScratch {
            buf_re,
            buf_im,
            stack_re,
            stack_im,
        } = scratch;
        self.transform_with(buf_re, buf_im, stack_re, stack_im, true);
        twist::unfold_torus_into(buf_re, buf_im, &self.tables, out);
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        ref_fft::mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        ref_fft::mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        ref_fft::add_assign_cplx(acc, a);
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut SplitFactors) {
        ref_fft::monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &SplitFactors) {
        ref_fft::scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &SplitFactors,
    ) {
        ref_fft::scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.re.clone_from(&from.re);
        out.im.clone_from(&from.im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fft::F64Fft;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    fn random_digit_poly(n: usize, seed: u32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 512) as i32 - 256)
                .collect(),
        )
    }

    #[test]
    fn matches_radix2_engine_all_sizes() {
        // Cover both parities of log2(M): pure radix-4 and mixed tails.
        for n in [8usize, 16, 32, 64, 128, 1024] {
            let r4 = Radix4Fft::new(n);
            let r2 = F64Fft::new(n);
            let p = random_torus_poly(n, 3);
            let q = random_digit_poly(n, 5);
            let a = r4.poly_mul(&p, &q);
            let b = r2.poly_mul(&p, &q);
            assert!(a.max_distance(&b) < 1e-6, "n={n}: {}", a.max_distance(&b));
        }
    }

    #[test]
    fn roundtrip_identity() {
        let r4 = Radix4Fft::new(256);
        let p = random_torus_poly(256, 7);
        let back = r4.backward_torus(&r4.forward_torus(&p));
        assert!(back.max_distance(&p) < 1e-7);
    }

    #[test]
    fn fewer_twiddle_reads_than_radix2() {
        // Radix-2 breadth-first: (M/2)·log2(M) reads. Radix-4 depth-first:
        // one read per radix-4 butterfly ≈ (M/4)·log4(M) — ~4× fewer.
        let n = 1024;
        let m = (n / 2) as u64;
        let r4 = Radix4Fft::new(n);
        r4.reset_twiddle_reads();
        let _ = r4.forward_torus(&random_torus_poly(n, 1));
        let reads = r4.twiddle_reads();
        let radix2_reads = (m / 2) * m.trailing_zeros() as u64;
        assert!(
            reads * 2 < radix2_reads,
            "radix-4 should at least halve reads: {reads} vs {radix2_reads}"
        );
    }

    #[test]
    fn external_product_path_works() {
        // bundle/scale path shared with the other f64 engines.
        let n = 32;
        let engine = Radix4Fft::new(n);
        let base = random_torus_poly(n, 11);
        let src = random_torus_poly(n, 12);
        let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
        engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), 9);
        let got = engine.backward_torus(&acc);
        let mut expected = base.clone();
        expected.add_rotate_minus_one(&src, 9);
        assert!(got.max_distance(&expected) < 1e-6);
    }
}
