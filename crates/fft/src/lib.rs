//! Negacyclic FFT engines for TFHE, including MATCHA's approximate
//! multiplication-less integer FFT.
//!
//! TFHE stores polynomials of `T_N[X] = T[X]/(X^N + 1)` either as `N` torus
//! coefficients or in the *Lagrange half-complex* representation: the `N/2`
//! complex evaluations of the polynomial at half of the roots of `X^N + 1`
//! (paper §4.1). Converting between the two representations is the FFT/IFFT
//! kernel that dominates bootstrapping latency (paper Figure 1), and the
//! kernel MATCHA approximates.
//!
//! Three interchangeable engines implement the [`FftEngine`] trait:
//!
//! * [`F64Fft`] — breadth-first Cooley–Tukey in double precision; this is the
//!   TFHE reference library's choice and the paper's accuracy baseline
//!   ("double" in Figure 8).
//! * [`DepthFirstFft`] — the depth-first conjugate-pair traversal of §4.1
//!   (Figure 2b): identical numerics to [`F64Fft`] but recursing
//!   sub-transform-first and sharing conjugate twiddle loads; it counts
//!   twiddle-buffer reads so the locality claim can be measured.
//! * [`Radix4Fft`] — the depth-first radix-4 flow: one twiddle-buffer read
//!   per radix-4 butterfly, with `W^{2k}`/`W^{3k}` derived in registers.
//! * [`ApproxIntFft`] — MATCHA's engine: 64-bit *integer* arithmetic where
//!   every twiddle rotation is three lifting steps (Figure 3a) whose
//!   coefficients are dyadic-value-quantized (`α/2^β`, Figure 3b) and applied
//!   with additions and binary shifts only.
//!
//! All four engines store spectra *split-complex* (separate `re[]`/`im[]`
//! arrays) and run their butterfly stages and pointwise accumulates through
//! the [`simd`] kernels, which use AVX2+FMA when the CPU supports it
//! (runtime-detected; `MATCHA_SIMD=0` or [`force_simd`] pin the scalar leg).
//!
//! # Examples
//!
//! ```
//! use matcha_fft::{ApproxIntFft, F64Fft, FftEngine, negacyclic};
//! use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
//!
//! let n = 16;
//! let mut t = TorusPolynomial::zero(n);
//! t.coeffs_mut()[1] = Torus32::from_f64(0.25);
//! let mut d = IntPolynomial::zero(n);
//! d.coeffs_mut()[0] = 3;
//!
//! let exact = F64Fft::new(n);
//! let approx = ApproxIntFft::new(n, 40);
//! let a = negacyclic::poly_mul(&exact, &t, &d);
//! let b = negacyclic::poly_mul(&approx, &t, &d);
//! assert!(a.max_distance(&b) < 1e-6);
//! ```

pub mod approx;
pub mod cpfft;
pub mod cplx;
pub mod engine;
pub mod error;
pub mod lifting;
pub mod negacyclic;
pub mod radix4;
pub mod ref_fft;
pub mod simd;
pub mod tables;
pub mod twist;

pub use approx::ApproxIntFft;
pub use cpfft::DepthFirstFft;
pub use cplx::Cplx;
pub use engine::{FftEngine, Spectrum};
pub use error::{fft_roundtrip_error_db, poly_mul_error_db};
pub use lifting::{DyadicCoeff, LiftingRotation};
pub use radix4::Radix4Fft;
pub use ref_fft::{CplxSpectrum, F64Fft, SplitFactors};
pub use simd::{force_simd, simd_active, simd_detected};
pub use tables::{StageTwiddles, TwiddleTables};
