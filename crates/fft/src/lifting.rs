//! Multiplication-less lifting rotations (paper §4.1, Figure 3).
//!
//! A twiddle multiplication is a plane rotation. The lifting factorization
//! writes a rotation by `θ` as three shear ("lifting") steps
//!
//! ```text
//! [cosθ -sinθ]   [1 t] [1 0] [1 t]          θ
//! [sinθ  cosθ] = [0 1] [s 1] [0 1],  t = -tan(-), s = sinθ,
//!                                           2
//! ```
//!
//! each of which adds a scaled copy of one component to the other. Rounding
//! the scaled copy keeps the transform integer-to-integer, and quantizing
//! the lifting coefficients to *dyadic* values `α/2^β` (Figure 3b) lets each
//! scaling be computed with only additions and binary shifts — no
//! multipliers, which is what makes MATCHA's butterfly cores (two 64-bit
//! adders + two 64-bit shifters each, §4.3) sufficient.
//!
//! Rotations with `|θ| > π/2` are reduced by `π` (an exact negation) first
//! so every lifting coefficient lies in `[-1, 1]` and the shift-add expansion
//! stays short and numerically tame.

/// A dyadic fixed-point coefficient `α / 2^β`.
///
/// # Examples
///
/// ```
/// use matcha_fft::DyadicCoeff;
///
/// // 9/128 from the paper's Figure 3(b): 9 = 2^3 + 2^0, β = 7.
/// let c = DyadicCoeff::quantize(9.0 / 128.0, 7);
/// assert_eq!(c.alpha(), 9);
/// // round(9/128 · 1000) = round(70.3) = 70
/// assert_eq!(c.apply(1000), 70);
/// assert_eq!(c.apply_shift_add(1000), 70);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DyadicCoeff {
    alpha: i64,
    beta: u32,
}

impl DyadicCoeff {
    /// Quantizes a real coefficient in `[-2, 2]` to `round(x·2^β)/2^β`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is 0 or exceeds 62, or if `|x| > 2` (lifting
    /// coefficients after angle reduction never exceed 1 in magnitude).
    pub fn quantize(x: f64, beta: u32) -> Self {
        assert!(
            (1..=62).contains(&beta),
            "beta {beta} out of supported range 1..=62"
        );
        assert!(x.abs() <= 2.0, "lifting coefficient {x} out of range");
        let alpha = (x * (1i64 << beta) as f64).round() as i64;
        Self { alpha, beta }
    }

    /// The integer numerator `α`.
    #[inline]
    pub fn alpha(self) -> i64 {
        self.alpha
    }

    /// The number of fractional bits `β`.
    #[inline]
    pub fn beta(self) -> u32 {
        self.beta
    }

    /// The represented real value `α/2^β`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.alpha as f64 / (1i64 << self.beta) as f64
    }

    /// `round(x · α/2^β)`, computed with one wide multiply.
    ///
    /// Bit-identical to [`DyadicCoeff::apply_shift_add`]; hardware uses the
    /// shift-add form, software uses this faster equivalent.
    #[inline]
    pub fn apply(self, x: i64) -> i64 {
        let prod = x as i128 * self.alpha as i128;
        round_shift(prod, self.beta)
    }

    /// `round(x · α/2^β)` computed with additions and binary shifts only —
    /// the literal hardware datapath of Figure 3(b).
    pub fn apply_shift_add(self, x: i64) -> i64 {
        let mut acc: i128 = 0;
        let mut bits = self.alpha.unsigned_abs();
        while bits != 0 {
            let b = bits.trailing_zeros();
            acc += (x as i128) << b;
            bits &= bits - 1;
        }
        if self.alpha < 0 {
            acc = -acc;
        }
        round_shift(acc, self.beta)
    }
}

/// Arithmetic shift right by `beta` with round-half-away-from-zero-ties-up
/// (`⌈·⌋` of the paper).
#[inline]
fn round_shift(v: i128, beta: u32) -> i64 {
    ((v + (1i128 << (beta - 1))) >> beta) as i64
}

/// How a rotation is realized after angle reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RotationKind {
    /// `θ ≡ 0`: nothing to do.
    Identity,
    /// `θ ≡ π`: exact negation of both components.
    Negation,
    /// General rotation by the reduced angle, optionally negated.
    Lifting {
        t: DyadicCoeff,
        s: DyadicCoeff,
        negate: bool,
    },
}

/// An integer-to-integer approximate rotation by a fixed angle.
///
/// # Examples
///
/// ```
/// use matcha_fft::LiftingRotation;
///
/// let rot = LiftingRotation::from_angle(std::f64::consts::FRAC_PI_2, 40);
/// // Rotating (1000, 0) by 90° gives (0, 1000) exactly.
/// assert_eq!(rot.apply(1000, 0), (0, 1000));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiftingRotation {
    kind: RotationKind,
}

impl LiftingRotation {
    /// Builds the three-lifting-step rotation by `theta` radians with
    /// `twiddle_bits` fractional bits per dyadic coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `twiddle_bits ∉ [1, 62]`.
    pub fn from_angle(theta: f64, twiddle_bits: u32) -> Self {
        use std::f64::consts::{FRAC_PI_2, PI, TAU};
        // Reduce to (-π, π].
        let mut th = theta.rem_euclid(TAU);
        if th > PI {
            th -= TAU;
        }
        // Reduce to [-π/2, π/2] with an exact negation.
        let mut negate = false;
        if th > FRAC_PI_2 {
            th -= PI;
            negate = true;
        } else if th < -FRAC_PI_2 {
            th += PI;
            negate = true;
        }
        const EPS: f64 = 1e-15;
        let kind = if th.abs() < EPS {
            if negate {
                RotationKind::Negation
            } else {
                RotationKind::Identity
            }
        } else {
            let t = DyadicCoeff::quantize(-(th / 2.0).tan(), twiddle_bits);
            let s = DyadicCoeff::quantize(th.sin(), twiddle_bits);
            RotationKind::Lifting { t, s, negate }
        };
        Self { kind }
    }

    /// Applies the rotation to an integer point.
    #[inline]
    pub fn apply(self, mut x: i64, mut y: i64) -> (i64, i64) {
        match self.kind {
            RotationKind::Identity => (x, y),
            RotationKind::Negation => (-x, -y),
            RotationKind::Lifting { t, s, negate } => {
                x += t.apply(y);
                y += s.apply(x);
                x += t.apply(y);
                if negate {
                    (-x, -y)
                } else {
                    (x, y)
                }
            }
        }
    }

    /// Applies the rotation using only shift-add scalings (hardware path).
    pub fn apply_shift_add(self, mut x: i64, mut y: i64) -> (i64, i64) {
        match self.kind {
            RotationKind::Identity => (x, y),
            RotationKind::Negation => (-x, -y),
            RotationKind::Lifting { t, s, negate } => {
                x += t.apply_shift_add(y);
                y += s.apply_shift_add(x);
                x += t.apply_shift_add(y);
                if negate {
                    (-x, -y)
                } else {
                    (x, y)
                }
            }
        }
    }

    /// Number of adder operations the shift-add realization needs
    /// (used by the accelerator cost model).
    pub fn adder_ops(self) -> u32 {
        match self.kind {
            RotationKind::Identity | RotationKind::Negation => 0,
            RotationKind::Lifting { t, s, .. } => {
                2 * t.alpha().unsigned_abs().count_ones() + s.alpha().unsigned_abs().count_ones()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI, TAU};

    #[test]
    fn paper_example_nine_over_128() {
        // 9/128 = 1/2^4 + 1/2^7: the summation of a 4- and a 7-bit shifter.
        let c = DyadicCoeff::quantize(0.0703125, 7);
        assert_eq!(c.alpha(), 9);
        for x in [-100_000i64, -7, 0, 3, 12_345, 1 << 40] {
            assert_eq!(c.apply(x), c.apply_shift_add(x), "x={x}");
        }
    }

    #[test]
    fn shift_add_equals_multiply_randomized() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for beta in [8u32, 20, 38, 53, 62] {
            for _ in 0..200 {
                let coef = ((next() % 2001) as f64 / 1000.0) - 1.0;
                let c = DyadicCoeff::quantize(coef, beta);
                let x = (next() as i64) >> 12; // keep |x| < 2^52
                assert_eq!(
                    c.apply(x),
                    c.apply_shift_add(x),
                    "beta={beta} coef={coef} x={x}"
                );
            }
        }
    }

    #[test]
    fn rotation_accuracy() {
        let bits = 45;
        let r = 1_000_000_000i64; // 2^30-ish radius
        for k in 0..32 {
            let theta = TAU * k as f64 / 32.0;
            let rot = LiftingRotation::from_angle(theta, bits);
            let (x, y) = rot.apply(r, 0);
            let ex = (r as f64 * theta.cos()).round() as i64;
            let ey = (r as f64 * theta.sin()).round() as i64;
            assert!(
                (x - ex).abs() < 64 && (y - ey).abs() < 64,
                "θ={theta}: got ({x},{y}) expected ({ex},{ey})"
            );
        }
    }

    #[test]
    fn exact_special_angles() {
        let rot0 = LiftingRotation::from_angle(0.0, 10);
        assert_eq!(rot0.apply(123, -456), (123, -456));
        let rot_pi = LiftingRotation::from_angle(PI, 10);
        assert_eq!(rot_pi.apply(123, -456), (-123, 456));
        let rot_q = LiftingRotation::from_angle(FRAC_PI_2, 30);
        assert_eq!(rot_q.apply(1000, 0), (0, 1000));
        let rot_nq = LiftingRotation::from_angle(-FRAC_PI_2, 30);
        assert_eq!(rot_nq.apply(1000, 0), (0, -1000));
    }

    #[test]
    fn inverse_rotation_roundtrip() {
        let bits = 50;
        for k in 1..16 {
            let theta = TAU * k as f64 / 16.0 + 0.1;
            let fwd = LiftingRotation::from_angle(theta, bits);
            let inv = LiftingRotation::from_angle(-theta, bits);
            let (x0, y0) = (987_654_321i64, -123_456_789i64);
            let (x1, y1) = fwd.apply(x0, y0);
            let (x2, y2) = inv.apply(x1, y1);
            assert!((x2 - x0).abs() < 16 && (y2 - y0).abs() < 16, "θ={theta}");
        }
    }

    #[test]
    fn rotation_preserves_norm_approximately() {
        let rot = LiftingRotation::from_angle(FRAC_PI_4, 40);
        let (x, y) = rot.apply(3_000_000, 4_000_000);
        let before = (3_000_000f64).hypot(4_000_000.0);
        let after = (x as f64).hypot(y as f64);
        // Each lifting step rounds to an integer, so allow a few ulps.
        assert!((before - after).abs() / before < 1e-5);
    }

    #[test]
    fn coarse_quantization_still_bounded() {
        // Even 4-bit twiddles must produce a vaguely-right rotation.
        let rot = LiftingRotation::from_angle(1.0, 4);
        let (x, y) = rot.apply(1 << 20, 0);
        let ex = ((1 << 20) as f64 * 1f64.cos()) as i64;
        let ey = ((1 << 20) as f64 * 1f64.sin()) as i64;
        assert!((x - ex).abs() < (1 << 17) && (y - ey).abs() < (1 << 17));
    }

    #[test]
    fn adder_ops_counts_set_bits() {
        let rot = LiftingRotation::from_angle(0.0, 10);
        assert_eq!(rot.adder_ops(), 0);
        let rot = LiftingRotation::from_angle(1.0, 20);
        assert!(rot.adder_ops() > 0);
    }

    #[test]
    fn shift_add_rotation_matches_multiply_rotation() {
        let rot = LiftingRotation::from_angle(2.5, 38);
        for &(x, y) in &[
            (1i64 << 30, -(1i64 << 29)),
            (7, 9),
            (0, 0),
            (-(1 << 40), 1 << 35),
        ] {
            assert_eq!(rot.apply(x, y), rot.apply_shift_add(x, y));
        }
    }
}
