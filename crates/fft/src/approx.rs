//! MATCHA's approximate multiplication-less integer FFT engine (§4.1).
//!
//! All data stays in 64-bit integers. Every twiddle rotation — including the
//! negacyclic twist — is performed by a three-step lifting structure whose
//! dyadic-value-quantized coefficients (`α/2^β`, `β =` [`ApproxIntFft::twiddle_bits`])
//! need only adders and shifters. The approximation error this introduces is
//! far below TFHE's noise threshold and is rounded off together with the
//! ordinary ciphertext noise at decryption (paper's key observation), so
//! ciphertexts processed with this engine still decrypt correctly.
//!
//! Scaling scheme (`M = N/2` evaluation points, radix-2, `log2 M` stages):
//!
//! * inputs are pre-scaled with as many fractional bits as the 64-bit lanes
//!   allow (41 for gadget digits and 20 for torus values at `N = 1024`), so
//!   per-lifting-step rounding noise (±½ ulp) lands ≈ 2⁻⁴⁰ torus units below
//!   the signal — twiddle quantization, not rounding, dominates the error;
//! * forward transforms grow values by at most `×M·√2`;
//! * pointwise products run in 128-bit and drop both pre-scales;
//! * the inverse transform halves after every stage, realizing the `1/M`
//!   normalization with one rounding shift per stage;
//! * the final reduction mod `2^32` is an exact two's-complement truncation.

use crate::engine::{FftEngine, Spectrum};
use crate::lifting::LiftingRotation;
use crate::tables::bit_reverse_permute_pair;
use matcha_math::{IntPolynomial, Torus32, TorusPolynomial};

/// Largest digit magnitude [`ApproxIntFft::forward_int`] accepts.
pub const MAX_DIGIT: i64 = 1 << 10;

/// Fractional bits of the quantized `ε_k^e − 1` factors used by the
/// TGSW-scale path. `|ε^e − 1| ≤ 2`, so 30 fractional bits keep every
/// factor within an `i32` — matching the 32-bit integer multipliers of
/// MATCHA's TGSW clusters — while contributing less bundle noise than the
/// external product itself.
pub const MONO_FRAC_BITS: u32 = 30;

/// Fractional bits dropped when opening a bundle accumulator, creating
/// headroom for summing up to `2^m − 1` scaled key terms.
pub const BUNDLE_DROP_BITS: u32 = 4;

/// Integer Lagrange half-complex spectrum with a fixed-point scale.
#[derive(Clone, Debug)]
pub struct FixedSpectrum {
    /// Real parts.
    pub re: Vec<i64>,
    /// Imaginary parts.
    pub im: Vec<i64>,
    /// Fixed-point fractional bits carried by the values.
    pub frac_bits: u32,
}

impl Spectrum for FixedSpectrum {
    fn len(&self) -> usize {
        self.re.len()
    }
}

/// Reusable workspace for the integer engine's backward transform: a
/// mutable copy of the spectrum being inverse-transformed. Sized on first
/// use, reused afterwards.
#[derive(Debug, Default)]
pub struct FixedScratch {
    re: Vec<i64>,
    im: Vec<i64>,
}

/// One direction's lifting rotations in per-stage contiguous layout (the
/// integer-engine mirror of [`crate::tables::StageTwiddles`]): stage `s`
/// serves butterflies of length `len = 2^{s+1}` and stores the `len/2`
/// rotations by `±2πk/len` back to back, so the butterfly loop reads its
/// stage with unit stride instead of the stride-`M/len` walk over one big
/// table.
#[derive(Clone, Debug)]
struct LiftingStages {
    /// All stages back to back (`M − 1` entries).
    flat: Vec<LiftingRotation>,
    /// `offsets[s]` = start of the stage for `len = 2^{s+1}`.
    offsets: Vec<usize>,
    /// Transform size `M`.
    m: usize,
}

impl LiftingStages {
    /// Copies per-stage slices out of the full table
    /// (`full[k]` = rotation by `±2πk/M`, `k < M/2`), so every entry is
    /// bit-identical to the strided access it replaces.
    fn from_full(full: &[LiftingRotation], m: usize) -> Self {
        debug_assert_eq!(full.len(), m / 2);
        let mut flat = Vec::with_capacity(m.saturating_sub(1));
        let mut offsets = Vec::new();
        let mut len = 2;
        while len <= m {
            offsets.push(flat.len());
            let step = m / len;
            flat.extend((0..len / 2).map(|k| full[k * step]));
            len *= 2;
        }
        Self { flat, offsets, m }
    }

    /// The contiguous rotation slice for butterflies of length `len`.
    #[inline]
    fn stage(&self, len: usize) -> &[LiftingRotation] {
        debug_assert!(len.is_power_of_two() && len >= 2 && len <= self.m);
        let s = len.trailing_zeros() as usize - 1;
        let start = self.offsets[s];
        &self.flat[start..start + len / 2]
    }

    /// The full-size table (the last stage).
    #[inline]
    fn full(&self) -> &[LiftingRotation] {
        self.stage(self.m)
    }
}

/// The approximate multiplication-less integer FFT engine.
///
/// `twiddle_bits` is the dyadic quantization width `β` of Figure 8: the
/// paper finds 38 bits already avoid decryption failures for `m = 2` and
/// adopts 64 bits to survive aggressive key unrolling; we support 4..=62.
///
/// # Examples
///
/// ```
/// use matcha_fft::{ApproxIntFft, FftEngine};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = ApproxIntFft::new(16, 40);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.125), 16);
/// let mut q = IntPolynomial::zero(16);
/// q.coeffs_mut()[0] = 4;
/// let r = engine.poly_mul(&p, &q);
/// assert!(r.coeffs()[0].signed_diff(Torus32::from_f64(0.5)).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct ApproxIntFft {
    n: usize,
    twiddle_bits: u32,
    /// Fractional pre-scale for integer (digit) polynomials.
    int_frac_bits: u32,
    /// Fractional pre-scale for torus polynomials.
    torus_frac_bits: u32,
    /// Rotations by `+2πk/len` per stage, contiguous.
    fwd_stages: LiftingStages,
    /// Rotations by `-2πk/len` per stage, contiguous.
    inv_stages: LiftingStages,
    /// Twist rotations `+πj/N`, `j < M`.
    twist: Vec<LiftingRotation>,
    /// Untwist rotations `-πj/N`.
    untwist: Vec<LiftingRotation>,
}

impl ApproxIntFft {
    /// Creates an engine for ring degree `n` with `twiddle_bits`-bit
    /// dyadic-value-quantized twiddle factors.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`, `n` is not a power of two, or
    /// `twiddle_bits ∉ [4, 62]`.
    pub fn new(n: usize, twiddle_bits: u32) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "ring degree {n} must be a power of two ≥ 4"
        );
        assert!(
            (4..=62).contains(&twiddle_bits),
            "twiddle_bits {twiddle_bits} outside supported range 4..=62"
        );
        let m = n / 2;
        let tau = std::f64::consts::TAU;
        let pi = std::f64::consts::PI;
        let fwd_twiddles: Vec<LiftingRotation> = (0..m / 2)
            .map(|k| LiftingRotation::from_angle(tau * k as f64 / m as f64, twiddle_bits))
            .collect();
        let inv_twiddles: Vec<LiftingRotation> = (0..m / 2)
            .map(|k| LiftingRotation::from_angle(-tau * k as f64 / m as f64, twiddle_bits))
            .collect();
        let twist = (0..m)
            .map(|j| LiftingRotation::from_angle(pi * j as f64 / n as f64, twiddle_bits))
            .collect();
        let untwist = (0..m)
            .map(|j| LiftingRotation::from_angle(-pi * j as f64 / n as f64, twiddle_bits))
            .collect();
        // Leave headroom so forward buffers stay below 2^61·√2: a signed
        // value of `b` bits grows to at most `b + frac + log2(M)` bits.
        let log2m = m.trailing_zeros();
        let int_frac_bits = (61 - 11 - log2m).min(42);
        let torus_frac_bits = (61 - 32 - log2m).min(26);
        Self {
            n,
            twiddle_bits,
            int_frac_bits,
            torus_frac_bits,
            fwd_stages: LiftingStages::from_full(&fwd_twiddles, m),
            inv_stages: LiftingStages::from_full(&inv_twiddles, m),
            twist,
            untwist,
        }
    }

    /// The dyadic quantization width `β`.
    pub fn twiddle_bits(&self) -> u32 {
        self.twiddle_bits
    }

    /// Total adder operations one forward transform needs in the shift-add
    /// realization (feeds the accelerator energy model).
    pub fn adder_ops_per_transform(&self) -> u64 {
        let m = self.n as u64 / 2;
        let stages = m.trailing_zeros() as u64;
        // Each stage performs M/2 rotations; approximate with the mean cost
        // over the full twiddle table plus 2 butterfly adds per butterfly.
        let full = self.fwd_stages.full();
        let mean_rot: f64 =
            full.iter().map(|r| r.adder_ops() as f64).sum::<f64>() / full.len().max(1) as f64;
        ((m / 2) as f64 * stages as f64 * (mean_rot + 2.0)) as u64
    }

    /// Stage loops run through the shared [`crate::simd`] kernels: the same
    /// split-component, unit-stride shape as the f64 engines, though the
    /// lifting rotations keep these stages scalar (no 64-bit lane multiply
    /// or arithmetic shift before AVX-512 — see the kernel module docs).
    fn dft_forward(&self, re: &mut [i64], im: &mut [i64]) {
        let m = re.len();
        bit_reverse_pairs(re, im);
        let mut len = 2;
        while len <= m {
            crate::simd::i64_radix2_stage(re, im, self.fwd_stages.stage(len), len);
            len *= 2;
        }
    }

    fn dft_inverse_halving(&self, re: &mut [i64], im: &mut [i64]) {
        let m = re.len();
        bit_reverse_pairs(re, im);
        let mut len = 2;
        while len <= m {
            // Halve every stage output: log2(M) halvings realize the 1/M
            // inverse normalization without any multiplier.
            crate::simd::i64_radix2_stage_halving(re, im, self.inv_stages.stage(len), len);
            len *= 2;
        }
    }
}

/// Bit-reversal permutation applied to both component arrays coherently.
fn bit_reverse_pairs(re: &mut [i64], im: &mut [i64]) {
    debug_assert_eq!(re.len(), im.len());
    bit_reverse_permute_pair(re, im);
}

impl ApproxIntFft {
    /// Shared twist-and-prescale fold for the forward transforms.
    fn fold_into(&self, out: &mut FixedSpectrum, frac_bits: u32, value: impl Fn(usize) -> i64) {
        let m = self.n / 2;
        out.re.clear();
        out.im.clear();
        out.re.reserve(m);
        out.im.reserve(m);
        for j in 0..m {
            let (x, y) = self.twist[j].apply(value(j) << frac_bits, value(j + m) << frac_bits);
            out.re.push(x);
            out.im.push(y);
        }
        out.frac_bits = frac_bits;
    }
}

impl FftEngine for ApproxIntFft {
    type Spectrum = FixedSpectrum;
    type MonomialFactors = Vec<(i32, i32)>;
    type Scratch = FixedScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> FixedSpectrum {
        let m = self.n / 2;
        FixedSpectrum {
            re: vec![0; m],
            im: vec![0; m],
            frac_bits: 0,
        }
    }

    fn clear_spectrum(&self, s: &mut FixedSpectrum) {
        let m = self.n / 2;
        s.re.clear();
        s.re.resize(m, 0);
        s.im.clear();
        s.im.resize(m, 0);
        s.frac_bits = 0;
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut FixedSpectrum,
        _scratch: &mut FixedScratch,
    ) {
        debug_assert_eq!(p.len(), self.n);
        debug_assert!(
            p.norm_inf() <= MAX_DIGIT,
            "digit magnitude {} exceeds supported bound {MAX_DIGIT}",
            p.norm_inf()
        );
        let c = p.coeffs();
        self.fold_into(out, self.int_frac_bits, |j| c[j] as i64);
        self.dft_forward(&mut out.re, &mut out.im);
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut FixedSpectrum,
        _scratch: &mut FixedScratch,
    ) {
        debug_assert_eq!(p.len(), self.n);
        let c = p.coeffs();
        self.fold_into(out, self.torus_frac_bits, |j| c[j].raw() as i32 as i64);
        self.dft_forward(&mut out.re, &mut out.im);
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut FixedSpectrum,
        _scratch: &mut FixedScratch,
    ) {
        debug_assert_eq!(p.len(), self.n);
        debug_assert!(
            i64::from(decomp.base() / 2) <= MAX_DIGIT,
            "digit magnitude bound {} exceeds supported bound {MAX_DIGIT}",
            decomp.base() / 2
        );
        let c = p.coeffs();
        self.fold_into(out, self.int_frac_bits, |j| {
            decomp.digit(decomp.shift(c[j]), level) as i64
        });
        self.dft_forward(&mut out.re, &mut out.im);
    }

    fn backward_torus_into(
        &self,
        s: &FixedSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut FixedScratch,
    ) {
        let m = self.n / 2;
        assert_eq!(s.re.len(), m, "spectrum size mismatch");
        assert_eq!(out.len(), self.n, "output polynomial length mismatch");
        scratch.re.clone_from(&s.re);
        scratch.im.clone_from(&s.im);
        self.dft_inverse_halving(&mut scratch.re, &mut scratch.im);
        let frac = s.frac_bits;
        let descale = |v: i64| -> i64 {
            if frac == 0 {
                v
            } else {
                (v + (1 << (frac - 1))) >> frac
            }
        };
        let coeffs = out.coeffs_mut();
        for j in 0..m {
            let (x, y) = self.untwist[j].apply(scratch.re[j], scratch.im[j]);
            // Two's-complement truncation is the exact reduction mod 2^32.
            coeffs[j] = Torus32::from_raw(descale(x) as u32);
            coeffs[j + m] = Torus32::from_raw(descale(y) as u32);
        }
    }

    fn mul_accumulate(&self, acc: &mut FixedSpectrum, a: &FixedSpectrum, b: &FixedSpectrum) {
        assert_eq!(acc.re.len(), a.re.len(), "spectrum size mismatch");
        assert_eq!(a.re.len(), b.re.len(), "spectrum size mismatch");
        assert_eq!(acc.frac_bits, 0, "accumulator must be unscaled");
        let shift = a.frac_bits + b.frac_bits;
        assert!(
            shift > 0,
            "at least one operand must be an integer-side spectrum"
        );
        let round = 1i128 << (shift - 1);
        for k in 0..acc.re.len() {
            let (ar, ai) = (a.re[k] as i128, a.im[k] as i128);
            let (br, bi) = (b.re[k] as i128, b.im[k] as i128);
            let pr = ar * br - ai * bi;
            let pi = ar * bi + ai * br;
            acc.re[k] += ((pr + round) >> shift) as i64;
            acc.im[k] += ((pi + round) >> shift) as i64;
        }
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut FixedSpectrum,
        acc_b: &mut FixedSpectrum,
        x: &FixedSpectrum,
        a: &FixedSpectrum,
        b: &FixedSpectrum,
    ) {
        let m = x.re.len();
        assert_eq!(acc_a.re.len(), m, "spectrum size mismatch");
        assert_eq!(acc_b.re.len(), m, "spectrum size mismatch");
        assert_eq!(a.re.len(), m, "spectrum size mismatch");
        assert_eq!(b.re.len(), m, "spectrum size mismatch");
        assert_eq!(acc_a.frac_bits, 0, "accumulator must be unscaled");
        assert_eq!(acc_b.frac_bits, 0, "accumulator must be unscaled");
        assert_eq!(a.frac_bits, b.frac_bits, "row spectra must share a scale");
        let shift = x.frac_bits + a.frac_bits;
        assert!(
            shift > 0,
            "at least one operand must be an integer-side spectrum"
        );
        let round = 1i128 << (shift - 1);
        for k in 0..m {
            let (xr, xi) = (x.re[k] as i128, x.im[k] as i128);
            let (ar, ai) = (a.re[k] as i128, a.im[k] as i128);
            acc_a.re[k] += ((xr * ar - xi * ai + round) >> shift) as i64;
            acc_a.im[k] += ((xr * ai + xi * ar + round) >> shift) as i64;
            let (br, bi) = (b.re[k] as i128, b.im[k] as i128);
            acc_b.re[k] += ((xr * br - xi * bi + round) >> shift) as i64;
            acc_b.im[k] += ((xr * bi + xi * br + round) >> shift) as i64;
        }
    }

    fn add_assign(&self, acc: &mut FixedSpectrum, a: &FixedSpectrum) {
        assert_eq!(acc.re.len(), a.re.len(), "spectrum size mismatch");
        assert_eq!(acc.frac_bits, a.frac_bits, "fixed-point scale mismatch");
        for k in 0..acc.re.len() {
            acc.re[k] += a.re[k];
            acc.im[k] += a.im[k];
        }
    }

    /// TGSW-scale factor table: `ε_k^e − 1` quantized to 30 fractional bits
    /// so its components fit the 32-bit integer multipliers of MATCHA's
    /// TGSW clusters (§4.3) — the FFT butterflies stay multiplication-less,
    /// but TGSW scaling legitimately uses the cluster's multipliers.
    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Vec<(i32, i32)>) {
        let m = self.n / 2;
        let base = std::f64::consts::PI / self.n as f64;
        let e = exponent.rem_euclid(2 * self.n as i64) as f64;
        let quant = (1i64 << MONO_FRAC_BITS) as f64;
        let step = crate::cplx::Cplx::from_angle(4.0 * base * e);
        let mut cur = crate::cplx::Cplx::from_angle(base * e);
        out.clear();
        out.reserve(m);
        for _ in 0..m {
            out.push((
                ((cur.re - 1.0) * quant).round() as i32,
                (cur.im * quant).round() as i32,
            ));
            cur *= step;
        }
    }

    fn scale_accumulate(
        &self,
        acc: &mut FixedSpectrum,
        src: &FixedSpectrum,
        factors: &Vec<(i32, i32)>,
    ) {
        assert_eq!(acc.re.len(), src.re.len(), "spectrum size mismatch");
        assert_eq!(acc.re.len(), factors.len(), "factor table size mismatch");
        assert_eq!(
            acc.frac_bits + BUNDLE_DROP_BITS,
            src.frac_bits,
            "accumulator must come from bundle_accumulator"
        );
        let shift = MONO_FRAC_BITS + BUNDLE_DROP_BITS;
        let round = 1i128 << (shift - 1);
        for (k, &(fr32, fi32)) in factors.iter().enumerate() {
            let (ar, ai) = (fr32 as i128, fi32 as i128);
            let (sr, si) = (src.re[k] as i128, src.im[k] as i128);
            acc.re[k] += ((sr * ar - si * ai + round) >> shift) as i64;
            acc.im[k] += ((sr * ai + si * ar + round) >> shift) as i64;
        }
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut FixedSpectrum,
        acc_b: &mut FixedSpectrum,
        src_a: &FixedSpectrum,
        src_b: &FixedSpectrum,
        factors: &Vec<(i32, i32)>,
    ) {
        let m = factors.len();
        assert_eq!(acc_a.re.len(), m, "spectrum size mismatch");
        assert_eq!(acc_b.re.len(), m, "spectrum size mismatch");
        assert_eq!(src_a.re.len(), m, "spectrum size mismatch");
        assert_eq!(src_b.re.len(), m, "spectrum size mismatch");
        assert_eq!(
            acc_a.frac_bits + BUNDLE_DROP_BITS,
            src_a.frac_bits,
            "accumulator must come from bundle_accumulator"
        );
        assert_eq!(
            acc_b.frac_bits + BUNDLE_DROP_BITS,
            src_b.frac_bits,
            "accumulator must come from bundle_accumulator"
        );
        let shift = MONO_FRAC_BITS + BUNDLE_DROP_BITS;
        let round = 1i128 << (shift - 1);
        for (k, &(fr32, fi32)) in factors.iter().enumerate() {
            let (fr, fi) = (fr32 as i128, fi32 as i128);
            let (ar, ai) = (src_a.re[k] as i128, src_a.im[k] as i128);
            acc_a.re[k] += ((ar * fr - ai * fi + round) >> shift) as i64;
            acc_a.im[k] += ((ar * fi + ai * fr + round) >> shift) as i64;
            let (br, bi) = (src_b.re[k] as i128, src_b.im[k] as i128);
            acc_b.re[k] += ((br * fr - bi * fi + round) >> shift) as i64;
            acc_b.im[k] += ((br * fi + bi * fr + round) >> shift) as i64;
        }
    }

    fn bundle_accumulator_into(&self, from: &FixedSpectrum, out: &mut FixedSpectrum) {
        assert!(
            from.frac_bits >= BUNDLE_DROP_BITS,
            "source spectrum lacks fractional headroom"
        );
        let half = 1i64 << (BUNDLE_DROP_BITS - 1);
        out.re.clear();
        out.im.clear();
        out.re
            .extend(from.re.iter().map(|&v| (v + half) >> BUNDLE_DROP_BITS));
        out.im
            .extend(from.im.iter().map(|&v| (v + half) >> BUNDLE_DROP_BITS));
        out.frac_bits = from.frac_bits - BUNDLE_DROP_BITS;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9).wrapping_add(1)))
                .collect(),
        )
    }

    fn random_digit_poly(n: usize, seed: u32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 1024) as i32 - 512)
                .collect(),
        )
    }

    /// Exact negacyclic product reference in i64, reduced mod 2^32.
    fn exact_mul(p: &TorusPolynomial, q: &IntPolynomial) -> TorusPolynomial {
        p.naive_mul_int(q)
    }

    #[test]
    fn poly_mul_close_to_exact() {
        for n in [8usize, 64, 256] {
            let engine = ApproxIntFft::new(n, 50);
            let p = random_torus_poly(n, 3);
            let q = random_digit_poly(n, 7);
            let approx = engine.poly_mul(&p, &q);
            let exact = exact_mul(&p, &q);
            let dist = approx.max_distance(&exact);
            assert!(dist < 1e-6, "n={n}: distance {dist}");
        }
    }

    #[test]
    fn roundtrip_torus_identity() {
        let n = 128;
        let engine = ApproxIntFft::new(n, 50);
        let p = random_torus_poly(n, 9);
        let back = engine.backward_torus(&engine.forward_torus(&p));
        // Forward/backward only pass through rotations: error is tiny.
        assert!(back.max_distance(&p) < 1e-6);
    }

    #[test]
    fn error_decreases_with_twiddle_bits() {
        let n = 256;
        let p = random_torus_poly(n, 21);
        let q = random_digit_poly(n, 22);
        let exact = exact_mul(&p, &q);
        let mut last = f64::INFINITY;
        for bits in [8u32, 16, 28, 44] {
            let engine = ApproxIntFft::new(n, bits);
            let dist = engine.poly_mul(&p, &q).max_distance(&exact);
            assert!(
                dist < last * 1.5,
                "error should not grow with bits: {bits} bits → {dist} (prev {last})"
            );
            last = dist;
        }
        assert!(
            last < 1e-6,
            "44-bit twiddles should be very accurate, got {last}"
        );
    }

    #[test]
    fn monomial_multiplication() {
        let n = 64;
        let engine = ApproxIntFft::new(n, 45);
        let p = random_torus_poly(n, 5);
        for power in [0usize, 1, 17, 63] {
            let mut q = IntPolynomial::zero(n);
            q.coeffs_mut()[power] = 1;
            let approx = engine.poly_mul(&p, &q);
            let exact = p.mul_by_monomial(power as i64);
            assert!(approx.max_distance(&exact) < 1e-6, "power={power}");
        }
    }

    #[test]
    fn accumulation_linearity() {
        let n = 32;
        let engine = ApproxIntFft::new(n, 48);
        let p1 = random_torus_poly(n, 1);
        let p2 = random_torus_poly(n, 2);
        let q = random_digit_poly(n, 3);
        let fq = engine.forward_int(&q);
        let mut acc = engine.zero_spectrum();
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p1), &fq);
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p2), &fq);
        let combined = engine.backward_torus(&acc);
        let expected = exact_mul(&(p1 + &p2), &q);
        assert!(combined.max_distance(&expected) < 1e-6);
    }

    #[test]
    fn backward_descales_int_spectrum() {
        // backward(forward_int(q)) reads q's digits as raw torus values.
        let engine = ApproxIntFft::new(16, 50);
        let mut q = IntPolynomial::zero(16);
        q.coeffs_mut()[0] = 7;
        q.coeffs_mut()[3] = -2;
        let back = engine.backward_torus(&engine.forward_int(&q));
        assert_eq!(back.coeffs()[0], Torus32::from_raw(7));
        assert_eq!(back.coeffs()[3], Torus32::from_raw(2u32.wrapping_neg()));
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn rejects_bad_twiddle_bits() {
        let _ = ApproxIntFft::new(16, 63);
    }

    #[test]
    fn monomial_scale_matches_coefficient_domain() {
        let n = 64;
        let engine = ApproxIntFft::new(n, 50);
        let base = random_torus_poly(n, 31);
        let src = random_torus_poly(n, 32);
        for e in [0i64, 1, 5, 63, 64, 127, -3] {
            let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
            engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), e);
            let got = engine.backward_torus(&acc);
            let mut expected = base.clone();
            expected.add_rotate_minus_one(&src, e);
            assert!(
                got.max_distance(&expected) < 1e-5,
                "e={e}: distance {}",
                got.max_distance(&expected)
            );
        }
    }

    #[test]
    fn zero_times_anything_is_zero() {
        let n = 16;
        let engine = ApproxIntFft::new(n, 40);
        let z = TorusPolynomial::zero(n);
        let q = random_digit_poly(n, 4);
        let r = engine.poly_mul(&z, &q);
        assert!(r.max_distance(&TorusPolynomial::zero(n)) < 1e-7);
    }
}
