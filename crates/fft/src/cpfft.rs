//! Depth-first conjugate-pair FFT (paper §4.1, Figure 2).
//!
//! Breadth-first Cooley–Tukey sweeps the whole array once per stage; the
//! conjugate-pair flow instead completes each sub-transform before moving to
//! the next (depth-first recursion), which captures spatial locality, and it
//! pairs the butterflies for twiddles `w^k` and `w^{len/2-k} = -conj(w^k)`
//! so one twiddle-buffer read serves two butterflies — the property MATCHA's
//! FFT cores exploit to halve twiddle-factor reads.
//!
//! The numerics are identical to [`crate::F64Fft`] up to kernel-leg
//! rounding; what differs is the traversal order and the number of
//! twiddle loads, which this engine counts so the claim is measurable.
//! The counter models the conjugate-pair hardware flow (one read serves
//! two butterflies) regardless of which kernel leg executes: on a CPU the
//! AVX2 leg prefers unit-stride twiddle loads over shared ones, but the
//! *accounting* tracks the paper's buffer-read argument.

use crate::engine::FftEngine;
use crate::ref_fft::{self, CplxScratch, CplxSpectrum, SplitFactors};
use crate::simd;
use crate::tables::{StageTwiddles, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Depth-first conjugate-pair double-precision engine with twiddle-read
/// accounting.
///
/// # Examples
///
/// ```
/// use matcha_fft::{DepthFirstFft, F64Fft, FftEngine};
/// use matcha_math::{TorusPolynomial, IntPolynomial, Torus32};
///
/// let df = DepthFirstFft::new(16);
/// let bf = F64Fft::new(16);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 16);
/// let mut q = IntPolynomial::zero(16);
/// q.coeffs_mut()[2] = 1;
/// assert!(df.poly_mul(&p, &q).max_distance(&bf.poly_mul(&p, &q)) < 1e-9);
/// assert!(df.twiddle_reads() > 0);
/// ```
#[derive(Debug)]
pub struct DepthFirstFft {
    n: usize,
    tables: TwiddleTables,
    twiddle_reads: AtomicU64,
}

impl DepthFirstFft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            tables: TwiddleTables::new(n),
            twiddle_reads: AtomicU64::new(0),
        }
    }

    /// Total twiddle-buffer reads since construction (or the last reset).
    pub fn twiddle_reads(&self) -> u64 {
        self.twiddle_reads.load(Ordering::Relaxed)
    }

    /// Resets the twiddle-read counter.
    pub fn reset_twiddle_reads(&self) {
        self.twiddle_reads.store(0, Ordering::Relaxed);
    }

    /// Twiddle reads a breadth-first radix-2 flow would need for one
    /// transform of the same size (one read per butterfly).
    pub fn breadth_first_reads_per_transform(&self) -> u64 {
        let m = self.n as u64 / 2;
        (m / 2) * m.trailing_zeros() as u64
    }

    /// Depth-first transform with conjugate-pair twiddle sharing, using the
    /// caller's recursion workspace (`2·M` entries per component, sized on
    /// first use).
    fn transform_with(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        stack_re: &mut Vec<f64>,
        stack_im: &mut Vec<f64>,
        inverse: bool,
    ) {
        let m = re.len();
        stack_re.clear();
        stack_re.resize(2 * m, 0.0);
        stack_im.clear();
        stack_im.resize(2 * m, 0.0);
        // Select the per-stage twiddle tables once; the recursion never
        // branches on direction inside its butterfly loop.
        let stages = if inverse {
            self.tables.inverse_stages()
        } else {
            self.tables.forward_stages()
        };
        self.recurse(re, im, stack_re, stack_im, stages);
        if inverse {
            let scale = 1.0 / m as f64;
            for v in re.iter_mut() {
                *v *= scale;
            }
            for v in im.iter_mut() {
                *v *= scale;
            }
        }
    }

    /// Allocating convenience over [`Self::transform_with`] for callers
    /// without a scratch (uses a thread-local workspace).
    fn transform(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        thread_local! {
            static STACK: RefCell<(Vec<f64>, Vec<f64>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let (sre, sim) = &mut *s;
            self.transform_with(re, im, sre, sim, inverse)
        });
    }

    /// Recursive decimation-in-time: `(re, im)` hold the sub-sequence
    /// gathered contiguously; the scratch slices provide `2·len` entries of
    /// workspace per component.
    fn recurse(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        scratch_re: &mut [f64],
        scratch_im: &mut [f64],
        stages: &StageTwiddles,
    ) {
        let len = re.len();
        if len == 1 {
            return;
        }
        let half = len / 2;
        // Gather even/odd sub-sequences into the scratch window, recurse on
        // each *completely* before combining: this is the depth-first
        // traversal of Figure 2(b).
        let (work_re, rest_re) = scratch_re.split_at_mut(len);
        let (work_im, rest_im) = scratch_im.split_at_mut(len);
        for i in 0..half {
            work_re[i] = re[2 * i];
            work_re[half + i] = re[2 * i + 1];
            work_im[i] = im[2 * i];
            work_im[half + i] = im[2 * i + 1];
        }
        let (even_re, odd_re) = work_re.split_at_mut(half);
        let (even_im, odd_im) = work_im.split_at_mut(half);
        self.recurse(even_re, even_im, rest_re, rest_im, stages);
        self.recurse(odd_re, odd_im, rest_re, rest_im, stages);

        // This combine level's twiddles, contiguous (unit-stride reads).
        let (wre, wim) = stages.stage_split(len);
        // Conjugate-pair accounting: butterflies k and half-k share one
        // twiddle load because w^{half-k} = -conj(w^k), so a combine of
        // `half` butterflies costs `half/2 + 1` buffer reads.
        self.twiddle_reads
            .fetch_add(half as u64 / 2 + 1, Ordering::Relaxed);
        simd::radix2_combine(re, im, even_re, even_im, odd_re, odd_im, wre, wim);
    }
}

impl FftEngine for DepthFirstFft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = SplitFactors;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum {
            re: vec![0.0; self.n / 2],
            im: vec![0.0; self.n / 2],
        }
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        ref_fft::clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.re, &mut out.im);
        self.transform_with(
            &mut out.re,
            &mut out.im,
            &mut scratch.stack_re,
            &mut scratch.stack_im,
            false,
        );
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf_re.clone_from(&s.re);
        scratch.buf_im.clone_from(&s.im);
        // Split the scratch borrows: buf_* carry the data, stack_* the
        // recursion workspace.
        let CplxScratch {
            buf_re,
            buf_im,
            stack_re,
            stack_im,
        } = scratch;
        self.transform_with(buf_re, buf_im, stack_re, stack_im, true);
        twist::unfold_torus_into(buf_re, buf_im, &self.tables, out);
    }

    fn forward_int(&self, p: &IntPolynomial) -> CplxSpectrum {
        let mut re = Vec::new();
        let mut im = Vec::new();
        twist::fold_int(p, &self.tables, &mut re, &mut im);
        self.transform(&mut re, &mut im, false);
        CplxSpectrum { re, im }
    }

    fn forward_torus(&self, p: &TorusPolynomial) -> CplxSpectrum {
        let mut re = Vec::new();
        let mut im = Vec::new();
        twist::fold_torus(p, &self.tables, &mut re, &mut im);
        self.transform(&mut re, &mut im, false);
        CplxSpectrum { re, im }
    }

    fn backward_torus(&self, s: &CplxSpectrum) -> TorusPolynomial {
        let mut re = s.re.clone();
        let mut im = s.im.clone();
        self.transform(&mut re, &mut im, true);
        twist::unfold_torus(&re, &im, &self.tables)
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        ref_fft::mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        ref_fft::mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        ref_fft::add_assign_cplx(acc, a);
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut SplitFactors) {
        ref_fft::monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &SplitFactors) {
        ref_fft::scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &SplitFactors,
    ) {
        ref_fft::scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.re.clone_from(&from.re);
        out.im.clone_from(&from.im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fft::F64Fft;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    #[test]
    fn matches_breadth_first_engine() {
        for n in [8usize, 32, 256] {
            let df = DepthFirstFft::new(n);
            let bf = F64Fft::new(n);
            let p = random_torus_poly(n, 9);
            let mut q = IntPolynomial::zero(n);
            q.coeffs_mut()[1] = 5;
            q.coeffs_mut()[n - 1] = -3;
            let a = df.poly_mul(&p, &q);
            let b = bf.poly_mul(&p, &q);
            assert!(a.max_distance(&b) < 1e-7, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let df = DepthFirstFft::new(64);
        let p = random_torus_poly(64, 4);
        let back = df.backward_torus(&df.forward_torus(&p));
        assert!(back.max_distance(&p) < 1e-7);
    }

    #[test]
    fn conjugate_pair_halves_twiddle_reads() {
        let df = DepthFirstFft::new(256);
        df.reset_twiddle_reads();
        let p = random_torus_poly(256, 1);
        let _ = df.forward_torus(&p);
        let reads = df.twiddle_reads();
        let breadth_first = df.breadth_first_reads_per_transform();
        assert!(
            reads < breadth_first * 3 / 4,
            "conjugate-pair sharing should cut reads: {reads} vs {breadth_first}"
        );
        assert!(reads > 0);
    }

    #[test]
    fn counter_resets() {
        let df = DepthFirstFft::new(16);
        let _ = df.forward_torus(&random_torus_poly(16, 2));
        assert!(df.twiddle_reads() > 0);
        df.reset_twiddle_reads();
        assert_eq!(df.twiddle_reads(), 0);
    }
}
