//! Depth-first conjugate-pair FFT (paper §4.1, Figure 2).
//!
//! Breadth-first Cooley–Tukey sweeps the whole array once per stage; the
//! conjugate-pair flow instead completes each sub-transform before moving to
//! the next (depth-first recursion), which captures spatial locality, and it
//! pairs the butterflies for twiddles `w^k` and `w^{len/2-k} = -conj(w^k)`
//! so one twiddle-buffer read serves two butterflies — the property MATCHA's
//! FFT cores exploit to halve twiddle-factor reads.
//!
//! The numerics are identical to [`crate::F64Fft`]; what differs is the
//! traversal order and the number of twiddle loads, which this engine
//! counts so the claim is measurable.

use crate::cplx::Cplx;
use crate::engine::FftEngine;
use crate::ref_fft::{self, CplxScratch, CplxSpectrum};
use crate::tables::{StageTwiddles, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Depth-first conjugate-pair double-precision engine with twiddle-read
/// accounting.
///
/// # Examples
///
/// ```
/// use matcha_fft::{DepthFirstFft, F64Fft, FftEngine};
/// use matcha_math::{TorusPolynomial, IntPolynomial, Torus32};
///
/// let df = DepthFirstFft::new(16);
/// let bf = F64Fft::new(16);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 16);
/// let mut q = IntPolynomial::zero(16);
/// q.coeffs_mut()[2] = 1;
/// assert!(df.poly_mul(&p, &q).max_distance(&bf.poly_mul(&p, &q)) < 1e-9);
/// assert!(df.twiddle_reads() > 0);
/// ```
#[derive(Debug)]
pub struct DepthFirstFft {
    n: usize,
    tables: TwiddleTables,
    twiddle_reads: AtomicU64,
}

impl DepthFirstFft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            tables: TwiddleTables::new(n),
            twiddle_reads: AtomicU64::new(0),
        }
    }

    /// Total twiddle-buffer reads since construction (or the last reset).
    pub fn twiddle_reads(&self) -> u64 {
        self.twiddle_reads.load(Ordering::Relaxed)
    }

    /// Resets the twiddle-read counter.
    pub fn reset_twiddle_reads(&self) {
        self.twiddle_reads.store(0, Ordering::Relaxed);
    }

    /// Twiddle reads a breadth-first radix-2 flow would need for one
    /// transform of the same size (one read per butterfly).
    pub fn breadth_first_reads_per_transform(&self) -> u64 {
        let m = self.n as u64 / 2;
        (m / 2) * m.trailing_zeros() as u64
    }

    /// Depth-first transform with conjugate-pair twiddle sharing, using the
    /// caller's recursion workspace (`2·M` entries, sized on first use).
    fn transform_with(&self, buf: &mut [Cplx], stack: &mut Vec<Cplx>, inverse: bool) {
        let m = buf.len();
        stack.clear();
        stack.resize(2 * m, Cplx::ZERO);
        // Select the per-stage twiddle tables once; the recursion never
        // branches on direction inside its butterfly loop.
        let stages = if inverse {
            self.tables.inverse_stages()
        } else {
            self.tables.forward_stages()
        };
        self.recurse(buf, stack, stages);
        if inverse {
            let scale = 1.0 / m as f64;
            for v in buf.iter_mut() {
                *v = v.scale(scale);
            }
        }
    }

    /// Allocating convenience over [`Self::transform_with`] for callers
    /// without a scratch (uses a thread-local workspace).
    fn transform(&self, buf: &mut [Cplx], inverse: bool) {
        thread_local! {
            static STACK: RefCell<Vec<Cplx>> = const { RefCell::new(Vec::new()) };
        }
        STACK.with(|s| self.transform_with(buf, &mut s.borrow_mut(), inverse));
    }

    /// Recursive decimation-in-time: `buf` holds the sub-sequence gathered
    /// contiguously; `scratch` provides `2·len` entries of workspace.
    fn recurse(&self, buf: &mut [Cplx], scratch: &mut [Cplx], stages: &StageTwiddles) {
        let len = buf.len();
        if len == 1 {
            return;
        }
        let half = len / 2;
        // Gather even/odd sub-sequences into the scratch window, recurse on
        // each *completely* before combining: this is the depth-first
        // traversal of Figure 2(b).
        let (work, rest) = scratch.split_at_mut(len);
        for i in 0..half {
            work[i] = buf[2 * i];
            work[half + i] = buf[2 * i + 1];
        }
        let (even, odd) = work.split_at_mut(half);
        self.recurse(even, rest, stages);
        self.recurse(odd, rest, stages);

        // This combine level's twiddles, contiguous (unit-stride reads).
        let ws = stages.stage(len);
        // Conjugate-pair combination: butterflies k and half-k share the
        // same twiddle load because w^{half-k} = -conj(w^k).
        let quarter = half / 2;
        for k in 0..=quarter {
            let mirror = half - k;
            let w = ws[k];
            self.twiddle_reads.fetch_add(1, Ordering::Relaxed);
            // Butterfly k.
            let v = odd[k] * w;
            let (u0, u1) = (even[k] + v, even[k] - v);
            buf[k] = u0;
            buf[k + half] = u1;
            // Mirror butterfly reusing the conjugate of the same twiddle.
            if mirror < half && mirror != k {
                let wm = -w.conj();
                let vm = odd[mirror] * wm;
                buf[mirror] = even[mirror] + vm;
                buf[mirror + half] = even[mirror] - vm;
            }
        }
    }
}

impl FftEngine for DepthFirstFft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = Vec<Cplx>;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum(vec![Cplx::ZERO; self.n / 2])
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        ref_fft::clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.0);
        self.transform_with(&mut out.0, &mut scratch.stack, false);
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf.clone_from(&s.0);
        self.transform_with(&mut scratch.buf, &mut scratch.stack, true);
        twist::unfold_torus_into(&scratch.buf, &self.tables, out);
    }

    fn forward_int(&self, p: &IntPolynomial) -> CplxSpectrum {
        let mut buf = Vec::new();
        twist::fold_int(p, &self.tables, &mut buf);
        self.transform(&mut buf, false);
        CplxSpectrum(buf)
    }

    fn forward_torus(&self, p: &TorusPolynomial) -> CplxSpectrum {
        let mut buf = Vec::new();
        twist::fold_torus(p, &self.tables, &mut buf);
        self.transform(&mut buf, false);
        CplxSpectrum(buf)
    }

    fn backward_torus(&self, s: &CplxSpectrum) -> TorusPolynomial {
        let mut buf = s.0.clone();
        self.transform(&mut buf, true);
        twist::unfold_torus(&buf, &self.tables)
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        ref_fft::mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        ref_fft::mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
        for (dst, &x) in acc.0.iter_mut().zip(a.0.iter()) {
            *dst += x;
        }
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Vec<Cplx>) {
        ref_fft::monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &Vec<Cplx>) {
        ref_fft::scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &Vec<Cplx>,
    ) {
        ref_fft::scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.0.clone_from(&from.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ref_fft::F64Fft;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
                .collect(),
        )
    }

    #[test]
    fn matches_breadth_first_engine() {
        for n in [8usize, 32, 256] {
            let df = DepthFirstFft::new(n);
            let bf = F64Fft::new(n);
            let p = random_torus_poly(n, 9);
            let mut q = IntPolynomial::zero(n);
            q.coeffs_mut()[1] = 5;
            q.coeffs_mut()[n - 1] = -3;
            let a = df.poly_mul(&p, &q);
            let b = bf.poly_mul(&p, &q);
            assert!(a.max_distance(&b) < 1e-7, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let df = DepthFirstFft::new(64);
        let p = random_torus_poly(64, 4);
        let back = df.backward_torus(&df.forward_torus(&p));
        assert!(back.max_distance(&p) < 1e-7);
    }

    #[test]
    fn conjugate_pair_halves_twiddle_reads() {
        let df = DepthFirstFft::new(256);
        df.reset_twiddle_reads();
        let p = random_torus_poly(256, 1);
        let _ = df.forward_torus(&p);
        let reads = df.twiddle_reads();
        let breadth_first = df.breadth_first_reads_per_transform();
        assert!(
            reads < breadth_first * 3 / 4,
            "conjugate-pair sharing should cut reads: {reads} vs {breadth_first}"
        );
        assert!(reads > 0);
    }

    #[test]
    fn counter_resets() {
        let df = DepthFirstFft::new(16);
        let _ = df.forward_torus(&random_torus_poly(16, 2));
        assert!(df.twiddle_reads() > 0);
        df.reset_twiddle_reads();
        assert_eq!(df.twiddle_reads(), 0);
    }
}
