//! The double-precision reference engine: breadth-first iterative
//! Cooley–Tukey, matching what the TFHE reference library uses and what the
//! paper's Figure 8 labels "double".

use crate::cplx::Cplx;
use crate::engine::{FftEngine, Spectrum};
use crate::tables::{bit_reverse_permute, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};

/// Lagrange half-complex spectrum in double precision.
#[derive(Clone, Debug, Default)]
pub struct CplxSpectrum(pub Vec<Cplx>);

impl Spectrum for CplxSpectrum {
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// Reusable workspace shared by the double-precision engines.
///
/// `buf` holds the inverse-transform copy of a spectrum; `stack` is the
/// depth-first recursion workspace (2·M entries). Both are sized on first
/// use and reused afterwards, so warmed transforms allocate nothing.
#[derive(Debug, Default)]
pub struct CplxScratch {
    /// Backward-transform working copy (`M` entries once warmed).
    pub(crate) buf: Vec<Cplx>,
    /// Depth-first recursion workspace (`2·M` entries once warmed).
    pub(crate) stack: Vec<Cplx>,
}

/// Transform direction / kernel sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Kernel `e^{+2πijk/M}` (coefficients → evaluations).
    Forward,
    /// Kernel `e^{-2πijk/M}` with `1/M` normalization.
    Inverse,
}

/// Iterative radix-2 transform with the requested kernel sign.
///
/// The direction decides the twiddle tables (forward or pre-conjugated)
/// once, before the butterfly loops — the innermost loop carries no branch
/// and walks its stage's contiguous twiddle slice with unit stride.
///
/// Exposed so the depth-first engine's tests can compare flows; library
/// users should go through [`FftEngine`].
pub fn dft_in_place(buf: &mut [Cplx], tables: &TwiddleTables, dir: Direction) {
    let m = buf.len();
    debug_assert_eq!(m, tables.size());
    bit_reverse_permute(buf);
    let stages = match dir {
        Direction::Forward => tables.forward_stages(),
        Direction::Inverse => tables.inverse_stages(),
    };
    let mut len = 2;
    while len <= m {
        let half = len / 2;
        let ws = stages.stage(len);
        for start in (0..m).step_by(len) {
            for (k, &w) in ws.iter().enumerate() {
                let u = buf[start + k];
                let v = buf[start + half + k] * w;
                buf[start + k] = u + v;
                buf[start + half + k] = u - v;
            }
        }
        len *= 2;
    }
    if dir == Direction::Inverse {
        let scale = 1.0 / m as f64;
        for v in buf {
            *v = v.scale(scale);
        }
    }
}

/// Breadth-first double-precision negacyclic FFT engine.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = F64Fft::new(16);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.125), 16);
/// let mut one = IntPolynomial::zero(16);
/// one.coeffs_mut()[0] = 1;
/// let r = engine.poly_mul(&p, &one);
/// assert!(r.max_distance(&p) < 1e-7);
/// ```
#[derive(Clone, Debug)]
pub struct F64Fft {
    n: usize,
    tables: TwiddleTables,
}

impl F64Fft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            tables: TwiddleTables::new(n),
        }
    }

    /// The twiddle tables (shared with the depth-first engine).
    pub fn tables(&self) -> &TwiddleTables {
        &self.tables
    }
}

impl FftEngine for F64Fft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = Vec<Cplx>;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum(vec![Cplx::ZERO; self.n / 2])
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.0);
        dft_in_place(&mut out.0, &self.tables, Direction::Forward);
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.0);
        dft_in_place(&mut out.0, &self.tables, Direction::Forward);
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.0);
        dft_in_place(&mut out.0, &self.tables, Direction::Forward);
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf.clone_from(&s.0);
        dft_in_place(&mut scratch.buf, &self.tables, Direction::Inverse);
        twist::unfold_torus_into(&scratch.buf, &self.tables, out);
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
        for (dst, &x) in acc.0.iter_mut().zip(a.0.iter()) {
            *dst += x;
        }
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Vec<Cplx>) {
        monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &Vec<Cplx>) {
        scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &Vec<Cplx>,
    ) {
        scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.0.clone_from(&from.0);
    }
}

/// Shared `clear` for the double-precision spectra: resize to `m` and zero
/// without reallocating once capacity exists.
pub(crate) fn clear_cplx_spectrum(s: &mut CplxSpectrum, m: usize) {
    s.0.clear();
    s.0.resize(m, Cplx::ZERO);
}

/// Factor table `ε_k^e − 1` for the double-precision engines, computed with
/// one `sin_cos` pair and an iterative rotation: `ε_k = e^{iπ(4k+1)/N}`, so
/// consecutive factors differ by the fixed rotation `e^{i4πe/N}`.
pub(crate) fn monomial_minus_one_cplx_into(n: usize, exponent: i64, out: &mut Vec<Cplx>) {
    let m = n / 2;
    // Reduce e mod 2N first: X has order 2N in the negacyclic ring.
    let e = exponent.rem_euclid(2 * n as i64) as f64;
    let base = std::f64::consts::PI / n as f64;
    let mut cur = Cplx::from_angle(base * e);
    let step = Cplx::from_angle(4.0 * base * e);
    out.clear();
    out.reserve(m);
    for _ in 0..m {
        out.push(cur - Cplx::ONE);
        cur *= step;
    }
}

/// Shared `acc += a ⊙ b` for the double-precision engines.
pub(crate) fn mul_accumulate_cplx(acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
    assert_eq!(acc.0.len(), a.0.len(), "spectrum size mismatch");
    assert_eq!(a.0.len(), b.0.len(), "spectrum size mismatch");
    for ((dst, &x), &y) in acc.0.iter_mut().zip(a.0.iter()).zip(b.0.iter()) {
        *dst += x * y;
    }
}

/// Fused external-product inner loop for the double-precision engines:
/// one pass over `x` updates both accumulators, bit-identical to two
/// [`mul_accumulate_cplx`] calls.
pub(crate) fn mul_accumulate_pair_cplx(
    acc_a: &mut CplxSpectrum,
    acc_b: &mut CplxSpectrum,
    x: &CplxSpectrum,
    a: &CplxSpectrum,
    b: &CplxSpectrum,
) {
    let m = x.0.len();
    assert_eq!(acc_a.0.len(), m, "spectrum size mismatch");
    assert_eq!(acc_b.0.len(), m, "spectrum size mismatch");
    assert_eq!(a.0.len(), m, "spectrum size mismatch");
    assert_eq!(b.0.len(), m, "spectrum size mismatch");
    for k in 0..m {
        let xv = x.0[k];
        acc_a.0[k] += xv * a.0[k];
        acc_b.0[k] += xv * b.0[k];
    }
}

/// Shared `acc += factors ⊙ src` for the double-precision engines.
pub(crate) fn scale_accumulate_cplx(acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &[Cplx]) {
    assert_eq!(acc.0.len(), src.0.len(), "spectrum size mismatch");
    assert_eq!(acc.0.len(), factors.len(), "factor table size mismatch");
    for ((dst, &s), &f) in acc.0.iter_mut().zip(src.0.iter()).zip(factors.iter()) {
        *dst += f * s;
    }
}

/// Fused bundle-row update for the double-precision engines: one pass over
/// the factor table updates both rows, bit-identical to two
/// [`scale_accumulate_cplx`] calls.
pub(crate) fn scale_accumulate_pair_cplx(
    acc_a: &mut CplxSpectrum,
    acc_b: &mut CplxSpectrum,
    src_a: &CplxSpectrum,
    src_b: &CplxSpectrum,
    factors: &[Cplx],
) {
    let m = factors.len();
    assert_eq!(acc_a.0.len(), m, "spectrum size mismatch");
    assert_eq!(acc_b.0.len(), m, "spectrum size mismatch");
    assert_eq!(src_a.0.len(), m, "spectrum size mismatch");
    assert_eq!(src_b.0.len(), m, "spectrum size mismatch");
    for (k, &f) in factors.iter().enumerate() {
        acc_a.0[k] += f * src_a.0[k];
        acc_b.0[k] += f * src_b.0[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9).wrapping_add(seed)))
                .collect(),
        )
    }

    fn random_int_poly(n: usize, seed: u32, bound: i32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| {
                    let r =
                        (i ^ seed).wrapping_mul(0x85eb_ca6b).wrapping_add(7) % (2 * bound as u32);
                    r as i32 - bound
                })
                .collect(),
        )
    }

    #[test]
    fn dft_roundtrip() {
        let tables = TwiddleTables::new(32);
        let mut buf: Vec<Cplx> = (0..16)
            .map(|i| Cplx::new(i as f64, (i * i % 7) as f64))
            .collect();
        let orig = buf.clone();
        dft_in_place(&mut buf, &tables, Direction::Forward);
        dft_in_place(&mut buf, &tables, Direction::Inverse);
        for (a, b) in buf.iter().zip(orig.iter()) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn dft_of_delta_is_flat() {
        let tables = TwiddleTables::new(16);
        let mut buf = vec![Cplx::ZERO; 8];
        buf[0] = Cplx::ONE;
        dft_in_place(&mut buf, &tables, Direction::Forward);
        for v in &buf {
            assert!((*v - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let tables = TwiddleTables::new(64);
        let mut buf: Vec<Cplx> = (0..32)
            .map(|i| Cplx::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let e_time: f64 = buf.iter().map(|v| v.norm_sqr()).sum();
        dft_in_place(&mut buf, &tables, Direction::Forward);
        let e_freq: f64 = buf.iter().map(|v| v.norm_sqr()).sum();
        assert!((e_freq - 32.0 * e_time).abs() / (32.0 * e_time) < 1e-12);
    }

    #[test]
    fn poly_mul_matches_naive() {
        for n in [8usize, 32, 128] {
            let engine = F64Fft::new(n);
            let p = random_torus_poly(n, 3);
            let q = random_int_poly(n, 5, 512);
            let fast = engine.poly_mul(&p, &q);
            let naive = p.naive_mul_int(&q);
            assert!(
                fast.max_distance(&naive) < 1e-6,
                "n={n}: max distance {}",
                fast.max_distance(&naive)
            );
        }
    }

    #[test]
    fn mul_by_monomial_matches_rotation() {
        let n = 64;
        let engine = F64Fft::new(n);
        let p = random_torus_poly(n, 11);
        let mut x3 = IntPolynomial::zero(n);
        x3.coeffs_mut()[3] = 1;
        let fast = engine.poly_mul(&p, &x3);
        assert!(fast.max_distance(&p.mul_by_monomial(3)) < 1e-7);
    }

    #[test]
    fn accumulate_is_linear() {
        let n = 32;
        let engine = F64Fft::new(n);
        let p1 = random_torus_poly(n, 1);
        let p2 = random_torus_poly(n, 2);
        let q = random_int_poly(n, 3, 100);
        let fq = engine.forward_int(&q);
        let mut acc = engine.zero_spectrum();
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p1), &fq);
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p2), &fq);
        let sum_first = engine.poly_mul(&(p1.clone() + &p2), &q);
        let acc_result = engine.backward_torus(&acc);
        assert!(acc_result.max_distance(&sum_first) < 1e-6);
    }

    #[test]
    fn monomial_scale_matches_coefficient_domain() {
        let n = 32;
        let engine = F64Fft::new(n);
        let base = random_torus_poly(n, 31);
        let src = random_torus_poly(n, 32);
        for e in [0i64, 1, 7, 31, 32, 63, -5] {
            let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
            engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), e);
            let got = engine.backward_torus(&acc);
            let mut expected = base.clone();
            expected.add_rotate_minus_one(&src, e);
            assert!(
                got.max_distance(&expected) < 1e-6,
                "e={e}: distance {}",
                got.max_distance(&expected)
            );
        }
    }

    #[test]
    fn backward_of_zero_is_zero() {
        let engine = F64Fft::new(16);
        let z = engine.backward_torus(&engine.zero_spectrum());
        assert_eq!(z, TorusPolynomial::zero(16));
    }
}
