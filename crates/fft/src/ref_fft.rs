//! The double-precision reference engine: breadth-first iterative
//! Cooley–Tukey, matching what the TFHE reference library uses and what the
//! paper's Figure 8 labels "double".
//!
//! Since PR 3 the spectra are stored *split-complex* (separate `re[]`/`im[]`
//! vectors) and every stage loop and pointwise accumulate runs through the
//! [`crate::simd`] kernels, which take an AVX2+FMA leg when the CPU has one
//! and an order-preserving scalar leg otherwise.

use crate::engine::{FftEngine, Spectrum};
use crate::simd;
use crate::tables::{bit_reverse_permute_pair, TwiddleTables};
use crate::twist;
use matcha_math::{IntPolynomial, TorusPolynomial};

/// Lagrange half-complex spectrum in double precision, split-complex:
/// evaluation point `k` is `re[k] + i·im[k]`.
///
/// The split layout (rather than an array of complex structs) is what the
/// SIMD butterfly and multiply-accumulate kernels consume directly — four
/// lanes per component load with unit stride and no shuffles. It mirrors
/// [`crate::approx::FixedSpectrum`], which has stored its integer spectra
/// split from the start.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CplxSpectrum {
    /// Real parts of the `M = N/2` evaluation points.
    pub re: Vec<f64>,
    /// Imaginary parts.
    pub im: Vec<f64>,
}

impl Spectrum for CplxSpectrum {
    fn len(&self) -> usize {
        self.re.len()
    }
}

/// Pointwise factors `ε_k^e − 1` for the double-precision engines, stored
/// split like the spectra they multiply.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SplitFactors {
    /// Real parts.
    pub re: Vec<f64>,
    /// Imaginary parts.
    pub im: Vec<f64>,
}

/// Reusable workspace shared by the double-precision engines.
///
/// `buf_*` hold the inverse-transform copy of a spectrum; `stack_*` are the
/// depth-first recursion workspace (2·M entries per component). All are
/// sized on first use and reused afterwards, so warmed transforms allocate
/// nothing.
#[derive(Debug, Default)]
pub struct CplxScratch {
    /// Backward-transform working copy, real parts (`M` entries warmed).
    pub(crate) buf_re: Vec<f64>,
    /// Backward-transform working copy, imaginary parts.
    pub(crate) buf_im: Vec<f64>,
    /// Depth-first recursion workspace, real parts (`2·M` entries warmed).
    pub(crate) stack_re: Vec<f64>,
    /// Depth-first recursion workspace, imaginary parts.
    pub(crate) stack_im: Vec<f64>,
}

/// Transform direction / kernel sign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Kernel `e^{+2πijk/M}` (coefficients → evaluations).
    Forward,
    /// Kernel `e^{-2πijk/M}` with `1/M` normalization.
    Inverse,
}

/// Iterative radix-2 transform with the requested kernel sign, on
/// split-complex data.
///
/// The direction decides the twiddle tables (forward or pre-conjugated)
/// once, before the butterfly loops; every stage then runs through
/// [`simd::radix2_stage`], which walks the stage's contiguous twiddle slice
/// with unit stride — four butterflies per AVX2 iteration when available.
///
/// Exposed so the depth-first engine's tests can compare flows; library
/// users should go through [`FftEngine`].
pub fn dft_in_place(re: &mut [f64], im: &mut [f64], tables: &TwiddleTables, dir: Direction) {
    let m = re.len();
    debug_assert_eq!(m, im.len());
    debug_assert_eq!(m, tables.size());
    bit_reverse_permute_pair(re, im);
    let stages = match dir {
        Direction::Forward => tables.forward_stages(),
        Direction::Inverse => tables.inverse_stages(),
    };
    let mut len = 2;
    while len <= m {
        let (wre, wim) = stages.stage_split(len);
        simd::radix2_stage(re, im, wre, wim, len);
        len *= 2;
    }
    if dir == Direction::Inverse {
        let scale = 1.0 / m as f64;
        for v in re.iter_mut() {
            *v *= scale;
        }
        for v in im.iter_mut() {
            *v *= scale;
        }
    }
}

/// Breadth-first double-precision negacyclic FFT engine.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = F64Fft::new(16);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.125), 16);
/// let mut one = IntPolynomial::zero(16);
/// one.coeffs_mut()[0] = 1;
/// let r = engine.poly_mul(&p, &one);
/// assert!(r.max_distance(&p) < 1e-7);
/// ```
#[derive(Clone, Debug)]
pub struct F64Fft {
    n: usize,
    tables: TwiddleTables,
}

impl F64Fft {
    /// Creates an engine for ring degree `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            tables: TwiddleTables::new(n),
        }
    }

    /// The twiddle tables (shared with the depth-first engine).
    pub fn tables(&self) -> &TwiddleTables {
        &self.tables
    }
}

impl FftEngine for F64Fft {
    type Spectrum = CplxSpectrum;
    type MonomialFactors = SplitFactors;
    type Scratch = CplxScratch;

    fn ring_degree(&self) -> usize {
        self.n
    }

    fn zero_spectrum(&self) -> CplxSpectrum {
        CplxSpectrum {
            re: vec![0.0; self.n / 2],
            im: vec![0.0; self.n / 2],
        }
    }

    fn clear_spectrum(&self, s: &mut CplxSpectrum) {
        clear_cplx_spectrum(s, self.n / 2);
    }

    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_int(p, &self.tables, &mut out.re, &mut out.im);
        dft_in_place(&mut out.re, &mut out.im, &self.tables, Direction::Forward);
    }

    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_torus(p, &self.tables, &mut out.re, &mut out.im);
        dft_in_place(&mut out.re, &mut out.im, &self.tables, Direction::Forward);
    }

    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &matcha_math::GadgetDecomposer,
        level: usize,
        out: &mut CplxSpectrum,
        _scratch: &mut CplxScratch,
    ) {
        twist::fold_torus_digit(p, decomp, level, &self.tables, &mut out.re, &mut out.im);
        dft_in_place(&mut out.re, &mut out.im, &self.tables, Direction::Forward);
    }

    fn backward_torus_into(
        &self,
        s: &CplxSpectrum,
        out: &mut TorusPolynomial,
        scratch: &mut CplxScratch,
    ) {
        scratch.buf_re.clone_from(&s.re);
        scratch.buf_im.clone_from(&s.im);
        dft_in_place(
            &mut scratch.buf_re,
            &mut scratch.buf_im,
            &self.tables,
            Direction::Inverse,
        );
        twist::unfold_torus_into(&mut scratch.buf_re, &mut scratch.buf_im, &self.tables, out);
    }

    fn mul_accumulate(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
        mul_accumulate_cplx(acc, a, b);
    }

    fn mul_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        x: &CplxSpectrum,
        a: &CplxSpectrum,
        b: &CplxSpectrum,
    ) {
        mul_accumulate_pair_cplx(acc_a, acc_b, x, a, b);
    }

    fn add_assign(&self, acc: &mut CplxSpectrum, a: &CplxSpectrum) {
        add_assign_cplx(acc, a);
    }

    fn monomial_minus_one_into(&self, exponent: i64, out: &mut SplitFactors) {
        monomial_minus_one_cplx_into(self.n, exponent, out);
    }

    fn scale_accumulate(&self, acc: &mut CplxSpectrum, src: &CplxSpectrum, factors: &SplitFactors) {
        scale_accumulate_cplx(acc, src, factors);
    }

    fn scale_accumulate_pair(
        &self,
        acc_a: &mut CplxSpectrum,
        acc_b: &mut CplxSpectrum,
        src_a: &CplxSpectrum,
        src_b: &CplxSpectrum,
        factors: &SplitFactors,
    ) {
        scale_accumulate_pair_cplx(acc_a, acc_b, src_a, src_b, factors);
    }

    fn bundle_accumulator_into(&self, from: &CplxSpectrum, out: &mut CplxSpectrum) {
        out.re.clone_from(&from.re);
        out.im.clone_from(&from.im);
    }
}

/// Shared `clear` for the double-precision spectra: resize to `m` and zero
/// without reallocating once capacity exists.
pub(crate) fn clear_cplx_spectrum(s: &mut CplxSpectrum, m: usize) {
    s.re.clear();
    s.re.resize(m, 0.0);
    s.im.clear();
    s.im.resize(m, 0.0);
}

/// Shared `acc += a` for the double-precision engines.
pub(crate) fn add_assign_cplx(acc: &mut CplxSpectrum, a: &CplxSpectrum) {
    assert_eq!(acc.len(), a.len(), "spectrum size mismatch");
    for (dst, &x) in acc.re.iter_mut().zip(a.re.iter()) {
        *dst += x;
    }
    for (dst, &x) in acc.im.iter_mut().zip(a.im.iter()) {
        *dst += x;
    }
}

/// Factor table `ε_k^e − 1` for the double-precision engines, computed with
/// one `sin_cos` pair and an iterative rotation: `ε_k = e^{iπ(4k+1)/N}`, so
/// consecutive factors differ by the fixed rotation `e^{i4πe/N}`.
pub(crate) fn monomial_minus_one_cplx_into(n: usize, exponent: i64, out: &mut SplitFactors) {
    use crate::cplx::Cplx;
    let m = n / 2;
    // Reduce e mod 2N first: X has order 2N in the negacyclic ring.
    let e = exponent.rem_euclid(2 * n as i64) as f64;
    let base = std::f64::consts::PI / n as f64;
    let mut cur = Cplx::from_angle(base * e);
    let step = Cplx::from_angle(4.0 * base * e);
    out.re.clear();
    out.im.clear();
    out.re.reserve(m);
    out.im.reserve(m);
    for _ in 0..m {
        out.re.push(cur.re - 1.0);
        out.im.push(cur.im);
        cur *= step;
    }
}

/// Shared `acc += a ⊙ b` for the double-precision engines.
pub(crate) fn mul_accumulate_cplx(acc: &mut CplxSpectrum, a: &CplxSpectrum, b: &CplxSpectrum) {
    assert_eq!(acc.len(), a.len(), "spectrum size mismatch");
    assert_eq!(a.len(), b.len(), "spectrum size mismatch");
    simd::mul_acc(&mut acc.re, &mut acc.im, &a.re, &a.im, &b.re, &b.im);
}

/// Fused external-product inner loop for the double-precision engines:
/// one pass over `x` updates both accumulators, bit-identical to two
/// [`mul_accumulate_cplx`] calls on either kernel leg.
pub(crate) fn mul_accumulate_pair_cplx(
    acc_a: &mut CplxSpectrum,
    acc_b: &mut CplxSpectrum,
    x: &CplxSpectrum,
    a: &CplxSpectrum,
    b: &CplxSpectrum,
) {
    let m = x.len();
    assert_eq!(acc_a.len(), m, "spectrum size mismatch");
    assert_eq!(acc_b.len(), m, "spectrum size mismatch");
    assert_eq!(a.len(), m, "spectrum size mismatch");
    assert_eq!(b.len(), m, "spectrum size mismatch");
    simd::mul_acc_pair(
        &mut acc_a.re,
        &mut acc_a.im,
        &mut acc_b.re,
        &mut acc_b.im,
        &x.re,
        &x.im,
        &a.re,
        &a.im,
        &b.re,
        &b.im,
    );
}

/// Shared `acc += factors ⊙ src` for the double-precision engines.
pub(crate) fn scale_accumulate_cplx(
    acc: &mut CplxSpectrum,
    src: &CplxSpectrum,
    factors: &SplitFactors,
) {
    assert_eq!(acc.len(), src.len(), "spectrum size mismatch");
    assert_eq!(acc.len(), factors.re.len(), "factor table size mismatch");
    simd::mul_acc(
        &mut acc.re,
        &mut acc.im,
        &factors.re,
        &factors.im,
        &src.re,
        &src.im,
    );
}

/// Fused bundle-row update for the double-precision engines: one pass over
/// the factor table updates both rows, bit-identical to two
/// [`scale_accumulate_cplx`] calls on either kernel leg.
pub(crate) fn scale_accumulate_pair_cplx(
    acc_a: &mut CplxSpectrum,
    acc_b: &mut CplxSpectrum,
    src_a: &CplxSpectrum,
    src_b: &CplxSpectrum,
    factors: &SplitFactors,
) {
    let m = factors.re.len();
    assert_eq!(acc_a.len(), m, "spectrum size mismatch");
    assert_eq!(acc_b.len(), m, "spectrum size mismatch");
    assert_eq!(src_a.len(), m, "spectrum size mismatch");
    assert_eq!(src_b.len(), m, "spectrum size mismatch");
    simd::mul_acc_pair(
        &mut acc_a.re,
        &mut acc_a.im,
        &mut acc_b.re,
        &mut acc_b.im,
        &factors.re,
        &factors.im,
        &src_a.re,
        &src_a.im,
        &src_b.re,
        &src_b.im,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplx::Cplx;
    use matcha_math::Torus32;

    fn random_torus_poly(n: usize, seed: u32) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9).wrapping_add(seed)))
                .collect(),
        )
    }

    fn random_int_poly(n: usize, seed: u32, bound: i32) -> IntPolynomial {
        IntPolynomial::from_coeffs(
            (0..n as u32)
                .map(|i| {
                    let r =
                        (i ^ seed).wrapping_mul(0x85eb_ca6b).wrapping_add(7) % (2 * bound as u32);
                    r as i32 - bound
                })
                .collect(),
        )
    }

    #[test]
    fn dft_roundtrip() {
        let tables = TwiddleTables::new(32);
        let mut re: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut im: Vec<f64> = (0..16).map(|i| (i * i % 7) as f64).collect();
        let (orig_re, orig_im) = (re.clone(), im.clone());
        dft_in_place(&mut re, &mut im, &tables, Direction::Forward);
        dft_in_place(&mut re, &mut im, &tables, Direction::Inverse);
        for k in 0..16 {
            let d = Cplx::new(re[k] - orig_re[k], im[k] - orig_im[k]);
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn dft_of_delta_is_flat() {
        let tables = TwiddleTables::new(16);
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        dft_in_place(&mut re, &mut im, &tables, Direction::Forward);
        for k in 0..8 {
            assert!((Cplx::new(re[k], im[k]) - Cplx::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let tables = TwiddleTables::new(64);
        let mut re: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let mut im: Vec<f64> = (0..32).map(|i| (i as f64).cos()).collect();
        let e_time: f64 = re.iter().zip(im.iter()).map(|(&r, &i)| r * r + i * i).sum();
        dft_in_place(&mut re, &mut im, &tables, Direction::Forward);
        let e_freq: f64 = re.iter().zip(im.iter()).map(|(&r, &i)| r * r + i * i).sum();
        assert!((e_freq - 32.0 * e_time).abs() / (32.0 * e_time) < 1e-12);
    }

    #[test]
    fn poly_mul_matches_naive() {
        for n in [8usize, 32, 128] {
            let engine = F64Fft::new(n);
            let p = random_torus_poly(n, 3);
            let q = random_int_poly(n, 5, 512);
            let fast = engine.poly_mul(&p, &q);
            let naive = p.naive_mul_int(&q);
            assert!(
                fast.max_distance(&naive) < 1e-6,
                "n={n}: max distance {}",
                fast.max_distance(&naive)
            );
        }
    }

    #[test]
    fn mul_by_monomial_matches_rotation() {
        let n = 64;
        let engine = F64Fft::new(n);
        let p = random_torus_poly(n, 11);
        let mut x3 = IntPolynomial::zero(n);
        x3.coeffs_mut()[3] = 1;
        let fast = engine.poly_mul(&p, &x3);
        assert!(fast.max_distance(&p.mul_by_monomial(3)) < 1e-7);
    }

    #[test]
    fn accumulate_is_linear() {
        let n = 32;
        let engine = F64Fft::new(n);
        let p1 = random_torus_poly(n, 1);
        let p2 = random_torus_poly(n, 2);
        let q = random_int_poly(n, 3, 100);
        let fq = engine.forward_int(&q);
        let mut acc = engine.zero_spectrum();
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p1), &fq);
        engine.mul_accumulate(&mut acc, &engine.forward_torus(&p2), &fq);
        let sum_first = engine.poly_mul(&(p1.clone() + &p2), &q);
        let acc_result = engine.backward_torus(&acc);
        assert!(acc_result.max_distance(&sum_first) < 1e-6);
    }

    #[test]
    fn monomial_scale_matches_coefficient_domain() {
        let n = 32;
        let engine = F64Fft::new(n);
        let base = random_torus_poly(n, 31);
        let src = random_torus_poly(n, 32);
        for e in [0i64, 1, 7, 31, 32, 63, -5] {
            let mut acc = engine.bundle_accumulator(&engine.forward_torus(&base));
            engine.scale_monomial_accumulate(&mut acc, &engine.forward_torus(&src), e);
            let got = engine.backward_torus(&acc);
            let mut expected = base.clone();
            expected.add_rotate_minus_one(&src, e);
            assert!(
                got.max_distance(&expected) < 1e-6,
                "e={e}: distance {}",
                got.max_distance(&expected)
            );
        }
    }

    #[test]
    fn backward_of_zero_is_zero() {
        let engine = F64Fft::new(16);
        let z = engine.backward_torus(&engine.zero_spectrum());
        assert_eq!(z, TorusPolynomial::zero(16));
    }
}
