//! A minimal double-precision complex number.
//!
//! The crate deliberately avoids external numeric dependencies; the handful
//! of complex operations the FFTs need fit in this module.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use matcha_fft::Cplx;
///
/// let i = Cplx::new(0.0, 1.0);
/// assert_eq!(i * i, Cplx::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// The additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The unit complex number `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Fused multiply-add `self + a·b`, computed with `f64::mul_add` on
    /// both components — each component carries a single rounding instead
    /// of the three the expanded `self + a * b` performs, matching the FMA
    /// contraction of the AVX2 kernels in [`crate::simd`].
    ///
    /// On rounding-sensitive inputs this *differs* from the expanded form
    /// (see the `mul_add_is_fused` test); callers needing bit-compatibility
    /// with separately rounded products must write `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self {
            re: a.re.mul_add(b.re, (-a.im).mul_add(b.im, self.re)),
            im: a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
        }
    }
}

impl Add for Cplx {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Cplx {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Cplx {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Cplx {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Cplx {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Cplx {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for Cplx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}{:+.6}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = Cplx::new(1.5, -2.0);
        let b = Cplx::new(-0.5, 3.0);
        let c = Cplx::new(2.0, 0.25);
        // Distributivity.
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        assert!((lhs - rhs).abs() < 1e-12);
        // Conjugate multiplicativity.
        assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-12);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..16 {
            let w = Cplx::from_angle(k as f64 * std::f64::consts::FRAC_PI_8);
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn angle_addition() {
        let a = Cplx::from_angle(0.7);
        let b = Cplx::from_angle(1.1);
        assert!((a * b - Cplx::from_angle(1.8)).abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_expanded_on_exact_inputs() {
        // Dyadic inputs whose products and sums are exactly representable:
        // fusion cannot change anything here.
        let acc = Cplx::new(1.0, 1.0);
        let a = Cplx::new(2.0, -1.0);
        let b = Cplx::new(0.5, 0.5);
        assert_eq!(acc.mul_add(a, b), acc + a * b);
    }

    #[test]
    fn mul_add_is_fused() {
        // (1 + 2⁻³⁰)(1 − 2⁻³⁰) = 1 − 2⁻⁶⁰ needs more than 52 mantissa bits:
        // the expanded form rounds the product to exactly 1.0 and the
        // subsequent −1.0 cancels to zero, while the fused form feeds the
        // unrounded product into the addition and recovers −2⁻⁶⁰.
        let eps = (2.0f64).powi(-30);
        let acc = Cplx::new(-1.0, 0.0);
        let a = Cplx::new(1.0 + eps, 0.0);
        let b = Cplx::new(1.0 - eps, 0.0);
        let fused = acc.mul_add(a, b);
        let expanded = acc + a * b;
        assert_eq!(expanded.re, 0.0, "expanded form loses the 2⁻⁶⁰ tail");
        assert_eq!(fused.re, -(2.0f64).powi(-60), "fused form keeps it");
        assert_ne!(fused, expanded);
    }
}
