//! Precomputed twiddle-factor tables and the bit-reversal permutation.
//!
//! The transform size used throughout is `M = N/2` complex points for a ring
//! of degree `N` (Lagrange half-complex folding, see [`crate::twist`]).

use crate::cplx::Cplx;

/// Twiddle factors `e^{+2πik/M}` for `k ∈ [0, M/2)` plus the twist factors
/// `e^{+iπj/N}` for `j ∈ [0, M)`.
#[derive(Clone, Debug)]
pub struct TwiddleTables {
    m: usize,
    /// `roots[k] = e^{2πik/M}`, `k < M/2` — enough for radix-2 butterflies.
    roots: Vec<Cplx>,
    /// `roots_conj[k] = e^{-2πik/M}`: the inverse-transform twiddles,
    /// precomputed so the butterfly inner loops never branch on direction.
    roots_conj: Vec<Cplx>,
    /// `twist[j] = e^{iπj/N}`, `j < M`.
    twist: Vec<Cplx>,
}

impl TwiddleTables {
    /// Builds tables for ring degree `n` (transform size `M = n/2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "ring degree {n} must be a power of two ≥ 4"
        );
        let m = n / 2;
        let roots: Vec<Cplx> = (0..m / 2)
            .map(|k| Cplx::from_angle(std::f64::consts::TAU * k as f64 / m as f64))
            .collect();
        let roots_conj = roots.iter().map(|r| r.conj()).collect();
        let twist = (0..m)
            .map(|j| Cplx::from_angle(std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        Self {
            m,
            roots,
            roots_conj,
            twist,
        }
    }

    /// Transform size `M = N/2`.
    #[inline]
    pub fn size(&self) -> usize {
        self.m
    }

    /// `e^{2πik/M}` for `k < M/2`.
    #[inline]
    pub fn root(&self, k: usize) -> Cplx {
        self.roots[k]
    }

    /// The forward twiddle table as a slice.
    #[inline]
    pub fn roots(&self) -> &[Cplx] {
        &self.roots
    }

    /// The conjugated (inverse-kernel) twiddle table as a slice.
    #[inline]
    pub fn roots_conj(&self) -> &[Cplx] {
        &self.roots_conj
    }

    /// `e^{iπj/N}` for `j < M`.
    #[inline]
    pub fn twist(&self, j: usize) -> Cplx {
        self.twist[j]
    }
}

/// Applies the bit-reversal permutation in place (the "irregular memory
/// access" stage the paper attributes to breadth-first Cooley–Tukey flows).
pub fn bit_reverse_permute<T>(buf: &mut [T]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    let shift = (n.leading_zeros() + 1) % usize::BITS;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            buf.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_on_unit_circle() {
        let t = TwiddleTables::new(32);
        for k in 0..t.size() / 2 {
            assert!((t.root(k).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn root_zero_is_one() {
        let t = TwiddleTables::new(16);
        assert!((t.root(0) - Cplx::ONE).abs() < 1e-15);
    }

    #[test]
    fn quarter_root_is_i() {
        let t = TwiddleTables::new(32); // M = 16
        assert!((t.root(4) - Cplx::new(0.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn bit_reverse_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bit_reverse_known_order() {
        let mut v: Vec<usize> = (0..8).collect();
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn twist_angles() {
        let t = TwiddleTables::new(8); // N = 8, M = 4
        assert!((t.twist(0) - Cplx::ONE).abs() < 1e-15);
        // twist(2) = e^{iπ/4}
        assert!((t.twist(2) - Cplx::from_angle(std::f64::consts::FRAC_PI_4)).abs() < 1e-12);
    }
}
