//! Precomputed twiddle-factor tables and the bit-reversal permutation.
//!
//! The transform size used throughout is `M = N/2` complex points for a ring
//! of degree `N` (Lagrange half-complex folding, see [`crate::twist`]).
//!
//! # Per-stage contiguous layout
//!
//! A breadth-first butterfly stage of length `len` reads the roots
//! `w^{k·(M/len)}` for `k < len/2` — a *strided* walk over one big table,
//! whose stride changes every stage. [`StageTwiddles`] instead stores each
//! stage's factors contiguously (the software mirror of the paper's
//! twiddle-access argument: MATCHA's address generation unit streams each
//! stage's factors as a unit-stride burst). Every engine's inner loop then
//! reads its stage slice sequentially, and the direction (forward or
//! conjugated inverse) is resolved once per transform, never per butterfly.

use crate::cplx::Cplx;

/// One direction's twiddle factors, stored contiguously per stage.
///
/// Stage `s` serves butterflies of length `len = 2^{s+1}` and holds the
/// `len/2` factors `w^{k·(M/len)}` (`w = e^{±2πi/M}`) in index order. The
/// final stage (`len = M`) is exactly the classic strided table, so it
/// doubles as the flat `roots` view.
#[derive(Clone, Debug)]
pub struct StageTwiddles {
    /// All stages back to back: `1 + 2 + … + M/2 = M − 1` entries.
    ///
    /// Kept alongside the split arrays below — the factors are stored
    /// twice, deliberately: both views are built once from the same source
    /// in the constructor and immutable after, the duplication is a few
    /// tens of KB per plan at the paper's `N = 1024`, and the [`Cplx`] view
    /// stays available to tests and external callers without a per-access
    /// re-interleave.
    flat: Vec<Cplx>,
    /// The same entries with components split into separate arrays — the
    /// layout the SIMD butterfly kernels consume (see [`crate::simd`]).
    flat_re: Vec<f64>,
    /// Imaginary components of `flat`, split.
    flat_im: Vec<f64>,
    /// `offsets[s]` = start of the stage for `len = 2^{s+1}`.
    offsets: Vec<usize>,
    /// Transform size `M`.
    m: usize,
}

impl StageTwiddles {
    /// Copies per-stage slices out of the full-size table `full`
    /// (`full[k] = w^k`, `k < m/2`), so every entry is bit-identical to the
    /// strided access `full[k * (m/len)]` it replaces.
    fn from_full(full: &[Cplx], m: usize) -> Self {
        debug_assert_eq!(full.len(), m / 2);
        let mut flat = Vec::with_capacity(m.saturating_sub(1));
        let mut offsets = Vec::new();
        let mut len = 2;
        while len <= m {
            offsets.push(flat.len());
            let step = m / len;
            flat.extend((0..len / 2).map(|k| full[k * step]));
            len *= 2;
        }
        let flat_re = flat.iter().map(|w| w.re).collect();
        let flat_im = flat.iter().map(|w| w.im).collect();
        Self {
            flat,
            flat_re,
            flat_im,
            offsets,
            m,
        }
    }

    /// The contiguous factor slice for butterflies of length `len`
    /// (`len/2` entries).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `len` is not a power of two in `[2, M]`.
    #[inline]
    pub fn stage(&self, len: usize) -> &[Cplx] {
        debug_assert!(len.is_power_of_two() && len >= 2 && len <= self.m);
        let s = len.trailing_zeros() as usize - 1;
        let start = self.offsets[s];
        &self.flat[start..start + len / 2]
    }

    /// [`StageTwiddles::stage`] in split-component form: `(re, im)` slices
    /// of `len/2` entries each, bit-identical to the [`Cplx`] view.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `len` is not a power of two in `[2, M]`.
    #[inline]
    pub fn stage_split(&self, len: usize) -> (&[f64], &[f64]) {
        debug_assert!(len.is_power_of_two() && len >= 2 && len <= self.m);
        let s = len.trailing_zeros() as usize - 1;
        let start = self.offsets[s];
        let end = start + len / 2;
        (&self.flat_re[start..end], &self.flat_im[start..end])
    }

    /// The full-size table `w^k`, `k < M/2` (the last stage).
    #[inline]
    pub fn full(&self) -> &[Cplx] {
        self.stage(self.m)
    }
}

/// Twiddle factors `e^{+2πik/M}` for `k ∈ [0, M/2)` — forward and
/// pre-conjugated inverse, both in per-stage contiguous layout — plus the
/// twist factors `e^{+iπj/N}` for `j ∈ [0, M)`.
#[derive(Clone, Debug)]
pub struct TwiddleTables {
    m: usize,
    /// Forward kernel `e^{+2πik/M}`, per-stage contiguous.
    fwd: StageTwiddles,
    /// Inverse kernel `e^{-2πik/M}` (pre-conjugated so butterfly loops
    /// never branch on direction), per-stage contiguous.
    inv: StageTwiddles,
    /// `twist[j] = e^{iπj/N}`, `j < M`.
    twist: Vec<Cplx>,
    /// Real components of `twist`, split for the SIMD fold kernels.
    twist_re: Vec<f64>,
    /// Imaginary components of `twist`, split.
    twist_im: Vec<f64>,
}

impl TwiddleTables {
    /// Builds tables for ring degree `n` (transform size `M = n/2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "ring degree {n} must be a power of two ≥ 4"
        );
        let m = n / 2;
        let roots: Vec<Cplx> = (0..m / 2)
            .map(|k| Cplx::from_angle(std::f64::consts::TAU * k as f64 / m as f64))
            .collect();
        let roots_conj: Vec<Cplx> = roots.iter().map(|r| r.conj()).collect();
        let twist: Vec<Cplx> = (0..m)
            .map(|j| Cplx::from_angle(std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let twist_re = twist.iter().map(|w| w.re).collect();
        let twist_im = twist.iter().map(|w| w.im).collect();
        Self {
            m,
            fwd: StageTwiddles::from_full(&roots, m),
            inv: StageTwiddles::from_full(&roots_conj, m),
            twist,
            twist_re,
            twist_im,
        }
    }

    /// Transform size `M = N/2`.
    #[inline]
    pub fn size(&self) -> usize {
        self.m
    }

    /// `e^{2πik/M}` for `k < M/2`.
    #[inline]
    pub fn root(&self, k: usize) -> Cplx {
        self.fwd.full()[k]
    }

    /// The forward twiddle table as a flat slice.
    #[inline]
    pub fn roots(&self) -> &[Cplx] {
        self.fwd.full()
    }

    /// The conjugated (inverse-kernel) twiddle table as a flat slice.
    #[inline]
    pub fn roots_conj(&self) -> &[Cplx] {
        self.inv.full()
    }

    /// Forward twiddles in per-stage contiguous layout.
    #[inline]
    pub fn forward_stages(&self) -> &StageTwiddles {
        &self.fwd
    }

    /// Pre-conjugated inverse twiddles in per-stage contiguous layout.
    #[inline]
    pub fn inverse_stages(&self) -> &StageTwiddles {
        &self.inv
    }

    /// `e^{iπj/N}` for `j < M`.
    #[inline]
    pub fn twist(&self, j: usize) -> Cplx {
        self.twist[j]
    }

    /// The twist table in split-component form: `(re, im)` slices of `M`
    /// entries, bit-identical to the [`Cplx`] view.
    #[inline]
    pub fn twist_split(&self) -> (&[f64], &[f64]) {
        (&self.twist_re, &self.twist_im)
    }
}

/// Applies the bit-reversal permutation in place (the "irregular memory
/// access" stage the paper attributes to breadth-first Cooley–Tukey flows).
pub fn bit_reverse_permute<T>(buf: &mut [T]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    let shift = (n.leading_zeros() + 1) % usize::BITS;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            buf.swap(i, j);
        }
    }
}

/// [`bit_reverse_permute`] applied coherently to both components of a
/// split-complex buffer in one index walk — the reversed index is computed
/// once per position instead of once per component.
///
/// # Panics
///
/// Panics (in debug builds) if the slices differ in length.
pub fn bit_reverse_permute_pair<T, U>(a: &mut [T], b: &mut [U]) {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    debug_assert!(n.is_power_of_two());
    let shift = (n.leading_zeros() + 1) % usize::BITS;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            a.swap(i, j);
            b.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_on_unit_circle() {
        let t = TwiddleTables::new(32);
        for k in 0..t.size() / 2 {
            assert!((t.root(k).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn root_zero_is_one() {
        let t = TwiddleTables::new(16);
        assert!((t.root(0) - Cplx::ONE).abs() < 1e-15);
    }

    #[test]
    fn quarter_root_is_i() {
        let t = TwiddleTables::new(32); // M = 16
        assert!((t.root(4) - Cplx::new(0.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn stage_slices_match_strided_access() {
        let t = TwiddleTables::new(64); // M = 32
        let m = t.size();
        let mut len = 2;
        while len <= m {
            let step = m / len;
            let fwd = t.forward_stages().stage(len);
            let inv = t.inverse_stages().stage(len);
            assert_eq!(fwd.len(), len / 2, "len={len}");
            for k in 0..len / 2 {
                assert_eq!(fwd[k], t.roots()[k * step], "fwd len={len} k={k}");
                assert_eq!(inv[k], t.roots_conj()[k * step], "inv len={len} k={k}");
            }
            len *= 2;
        }
    }

    #[test]
    fn stage_layout_is_contiguous_and_complete() {
        let t = TwiddleTables::new(128); // M = 64
        let m = t.size();
        // 1 + 2 + ... + M/2 = M - 1 entries overall.
        let total: usize = {
            let mut sum = 0;
            let mut len = 2;
            while len <= m {
                sum += t.forward_stages().stage(len).len();
                len *= 2;
            }
            sum
        };
        assert_eq!(total, m - 1);
        // Adjacent stages are back to back in memory.
        let s2 = t.forward_stages().stage(2).as_ptr();
        let s4 = t.forward_stages().stage(4).as_ptr();
        assert_eq!(unsafe { s2.add(1) }, s4);
    }

    #[test]
    fn smallest_ring_has_single_stage() {
        let t = TwiddleTables::new(4); // M = 2
        assert_eq!(t.forward_stages().stage(2).len(), 1);
        assert_eq!(t.roots().len(), 1);
        assert!((t.root(0) - Cplx::ONE).abs() < 1e-15);
    }

    #[test]
    fn split_views_match_cplx_views() {
        let t = TwiddleTables::new(64); // M = 32
        let m = t.size();
        let mut len = 2;
        while len <= m {
            for (dir, stages) in [(0, t.forward_stages()), (1, t.inverse_stages())] {
                let ws = stages.stage(len);
                let (re, im) = stages.stage_split(len);
                assert_eq!(re.len(), ws.len(), "dir={dir} len={len}");
                for k in 0..ws.len() {
                    assert_eq!(
                        re[k].to_bits(),
                        ws[k].re.to_bits(),
                        "dir={dir} len={len} k={k}"
                    );
                    assert_eq!(
                        im[k].to_bits(),
                        ws[k].im.to_bits(),
                        "dir={dir} len={len} k={k}"
                    );
                }
            }
            len *= 2;
        }
        let (twre, twim) = t.twist_split();
        for j in 0..m {
            assert_eq!(twre[j].to_bits(), t.twist(j).re.to_bits(), "twist j={j}");
            assert_eq!(twim[j].to_bits(), t.twist(j).im.to_bits(), "twist j={j}");
        }
    }

    #[test]
    fn bit_reverse_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        bit_reverse_permute(&mut v);
        bit_reverse_permute(&mut v);
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bit_reverse_known_order() {
        let mut v: Vec<usize> = (0..8).collect();
        bit_reverse_permute(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn twist_angles() {
        let t = TwiddleTables::new(8); // N = 8, M = 4
        assert!((t.twist(0) - Cplx::ONE).abs() < 1e-15);
        // twist(2) = e^{iπ/4}
        assert!((t.twist(2) - Cplx::from_angle(std::f64::consts::FRAC_PI_4)).abs() < 1e-12);
    }
}
