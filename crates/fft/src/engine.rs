//! The [`FftEngine`] abstraction shared by the reference and approximate
//! transforms.
//!
//! TFHE's external product needs exactly three spectral operations:
//! transform small integer polynomials (gadget digits, binary secrets) into
//! the Lagrange domain, transform torus polynomials likewise, and bring an
//! accumulated pointwise product back to coefficients. Keeping the engine
//! behind a trait lets the whole scheme run on either the double-precision
//! reference kernel or MATCHA's approximate integer kernel, which is how the
//! paper's accuracy experiments (Figure 8, Table 3) compare the two.

use matcha_math::{IntPolynomial, TorusPolynomial};
use std::fmt::Debug;

/// A Lagrange half-complex spectrum owned by a specific engine family.
pub trait Spectrum: Clone + Debug + Send + Sync {
    /// Number of complex evaluation points (`N/2`).
    fn len(&self) -> usize;
    /// Returns `true` for the degenerate empty spectrum.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A negacyclic FFT engine over `T_N[X]`.
///
/// Implementations must satisfy, up to their documented accuracy:
/// `backward_torus(fwd_torus(p) ⊙ fwd_int(q)) = p·q mod (X^N+1, 1)`.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = F64Fft::new(8);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 8);
/// let mut q = IntPolynomial::zero(8);
/// q.coeffs_mut()[0] = 2;
/// let mut acc = engine.zero_spectrum();
/// engine.mul_accumulate(&mut acc, &engine.forward_torus(&p), &engine.forward_int(&q));
/// let r = engine.backward_torus(&acc);
/// assert!(r.coeffs()[0].signed_diff(Torus32::from_f64(0.5)).abs() < 1e-6);
/// ```
pub trait FftEngine {
    /// The engine's spectral representation.
    type Spectrum: Spectrum;

    /// Pointwise factors `(X^e − 1)` evaluated at the engine's Lagrange
    /// points, reusable across the `2ℓ·(k+1)` polynomials of a TGSW sample.
    type MonomialFactors: Clone + Debug + Send + Sync;

    /// Ring degree `N`.
    fn ring_degree(&self) -> usize;

    /// The zero spectrum, ready for [`FftEngine::mul_accumulate`].
    fn zero_spectrum(&self) -> Self::Spectrum;

    /// Coefficients → Lagrange domain for an integer polynomial.
    ///
    /// Integer inputs are gadget digits or binary secrets; implementations
    /// may assume `‖p‖∞ ≤ 2^10` (the largest digit magnitude produced by the
    /// decompositions in this workspace).
    fn forward_int(&self, p: &IntPolynomial) -> Self::Spectrum;

    /// Coefficients → Lagrange domain for a torus polynomial.
    fn forward_torus(&self, p: &TorusPolynomial) -> Self::Spectrum;

    /// Lagrange domain → torus coefficients (with reduction mod 1).
    fn backward_torus(&self, s: &Self::Spectrum) -> TorusPolynomial;

    /// `acc += a ⊙ b` (pointwise complex multiply-accumulate).
    ///
    /// # Panics
    ///
    /// Implementations may panic if the spectra come from incompatible
    /// transforms (mismatched sizes or scales).
    fn mul_accumulate(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum, b: &Self::Spectrum);

    /// `acc += a` (pointwise addition, used to fuse accumulator updates).
    fn add_assign(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum);

    /// `acc += (X^exponent − 1) ⊙ src`, evaluated directly in the Lagrange
    /// domain: at evaluation point `ε_k = e^{iπ(4k+1)/N}` the monomial
    /// `X^e` is the scalar `ε_k^e`.
    ///
    /// This is the *TGSW scale* operation of MATCHA's TGSW clusters
    /// (paper Fig. 5/7b): bootstrapping-key bundles are linear combinations
    /// of pre-transformed keys, so building them needs pointwise complex
    /// multiplications (32-bit integer multipliers in hardware) but **no
    /// additional FFTs** — the property that makes aggressive key unrolling
    /// reduce FFT counts.
    ///
    /// `acc` must come from [`FftEngine::bundle_accumulator`] (or another
    /// call with the same provenance); `src` must be a `forward_torus`
    /// spectrum.
    fn scale_monomial_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        exponent: i64,
    ) {
        let factors = self.monomial_minus_one(exponent);
        self.scale_accumulate(acc, src, &factors);
    }

    /// Precomputes the pointwise factors `ε_k^e − 1` for
    /// [`FftEngine::scale_accumulate`]. One factor table serves every row
    /// of a TGSW sample, so bundle construction computes it once per
    /// pattern per blind-rotation step.
    fn monomial_minus_one(&self, exponent: i64) -> Self::MonomialFactors;

    /// `acc += factors ⊙ src` — the TGSW scale inner loop.
    fn scale_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    );

    /// Copies a `forward_torus` spectrum into an accumulator suitable for
    /// [`FftEngine::scale_monomial_accumulate`].
    ///
    /// Fixed-point engines drop a few fractional bits here so that summing
    /// up to `2^m − 1` scaled terms (`|X^e − 1| ≤ 2` each) cannot overflow.
    fn bundle_accumulator(&self, from: &Self::Spectrum) -> Self::Spectrum;

    /// Convenience: the full negacyclic product `p · q`.
    fn poly_mul(&self, p: &TorusPolynomial, q: &IntPolynomial) -> TorusPolynomial {
        let mut acc = self.zero_spectrum();
        self.mul_accumulate(&mut acc, &self.forward_torus(p), &self.forward_int(q));
        self.backward_torus(&acc)
    }
}

impl<E: FftEngine + ?Sized> FftEngine for &E {
    type Spectrum = E::Spectrum;
    type MonomialFactors = E::MonomialFactors;
    fn ring_degree(&self) -> usize {
        (**self).ring_degree()
    }
    fn zero_spectrum(&self) -> Self::Spectrum {
        (**self).zero_spectrum()
    }
    fn forward_int(&self, p: &IntPolynomial) -> Self::Spectrum {
        (**self).forward_int(p)
    }
    fn forward_torus(&self, p: &TorusPolynomial) -> Self::Spectrum {
        (**self).forward_torus(p)
    }
    fn backward_torus(&self, s: &Self::Spectrum) -> TorusPolynomial {
        (**self).backward_torus(s)
    }
    fn mul_accumulate(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum, b: &Self::Spectrum) {
        (**self).mul_accumulate(acc, a, b)
    }
    fn add_assign(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum) {
        (**self).add_assign(acc, a)
    }
    fn scale_monomial_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        exponent: i64,
    ) {
        (**self).scale_monomial_accumulate(acc, src, exponent)
    }
    fn monomial_minus_one(&self, exponent: i64) -> Self::MonomialFactors {
        (**self).monomial_minus_one(exponent)
    }
    fn scale_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    ) {
        (**self).scale_accumulate(acc, src, factors)
    }
    fn bundle_accumulator(&self, from: &Self::Spectrum) -> Self::Spectrum {
        (**self).bundle_accumulator(from)
    }
}
