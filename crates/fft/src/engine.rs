//! The [`FftEngine`] abstraction shared by the reference and approximate
//! transforms.
//!
//! TFHE's external product needs exactly three spectral operations:
//! transform small integer polynomials (gadget digits, binary secrets) into
//! the Lagrange domain, transform torus polynomials likewise, and bring an
//! accumulated pointwise product back to coefficients. Keeping the engine
//! behind a trait lets the whole scheme run on either the double-precision
//! reference kernel or MATCHA's approximate integer kernel, which is how the
//! paper's accuracy experiments (Figure 8, Table 3) compare the two.
//!
//! # In-place execution
//!
//! Bootstrapping performs `~2ℓ·⌈n/m⌉` transforms per gate; allocating fresh
//! buffers for each would dominate the cost the paper's accelerator removes.
//! Every transform therefore has an `*_into` variant writing into
//! caller-owned spectra/polynomials, threaded through an engine-specific
//! [`FftEngine::Scratch`] workspace. After a warm-up call the scratch owns
//! all required capacity and steady-state transforms allocate nothing. The
//! allocating methods remain as thin wrappers over the `*_into` core.
//!
//! # SIMD
//!
//! Every in-tree engine stores spectra split-complex and executes its
//! butterfly stages and pointwise accumulates through the [`crate::simd`]
//! kernels, which runtime-detect AVX2+FMA and fall back to an
//! order-preserving scalar leg elsewhere. Generic callers (the external
//! product, bootstrapping) pick the vectorized kernels up for free through
//! this trait — nothing SIMD-specific leaks into the API.

use matcha_math::{GadgetDecomposer, IntPolynomial, TorusPolynomial};
use std::fmt::Debug;

/// A Lagrange half-complex spectrum owned by a specific engine family.
pub trait Spectrum: Clone + Debug + Send + Sync {
    /// Number of complex evaluation points (`N/2`).
    fn len(&self) -> usize;
    /// Returns `true` for the degenerate empty spectrum.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A negacyclic FFT engine over `T_N[X]`.
///
/// Implementations must satisfy, up to their documented accuracy:
/// `backward_torus(fwd_torus(p) ⊙ fwd_int(q)) = p·q mod (X^N+1, 1)`.
///
/// The `*_into` methods are the engine core and must be bit-identical to
/// their allocating counterparts; after one warm-up call per buffer they
/// must not allocate.
///
/// # Examples
///
/// ```
/// use matcha_fft::{F64Fft, FftEngine};
/// use matcha_math::{IntPolynomial, TorusPolynomial, Torus32};
///
/// let engine = F64Fft::new(8);
/// let p = TorusPolynomial::constant(Torus32::from_f64(0.25), 8);
/// let mut q = IntPolynomial::zero(8);
/// q.coeffs_mut()[0] = 2;
/// let mut acc = engine.zero_spectrum();
/// engine.mul_accumulate(&mut acc, &engine.forward_torus(&p), &engine.forward_int(&q));
/// let r = engine.backward_torus(&acc);
/// assert!(r.coeffs()[0].signed_diff(Torus32::from_f64(0.5)).abs() < 1e-6);
/// ```
pub trait FftEngine {
    /// The engine's spectral representation.
    type Spectrum: Spectrum;

    /// Pointwise factors `(X^e − 1)` evaluated at the engine's Lagrange
    /// points, reusable across the `2ℓ·(k+1)` polynomials of a TGSW sample.
    type MonomialFactors: Clone + Debug + Default + Send + Sync;

    /// Reusable per-caller workspace for the `*_into` transforms. A
    /// default-constructed scratch is empty; the first transform through it
    /// sizes its buffers, after which no further allocation occurs.
    type Scratch: Default + Debug + Send;

    /// Ring degree `N`.
    fn ring_degree(&self) -> usize;

    /// The zero spectrum, ready for [`FftEngine::mul_accumulate`].
    fn zero_spectrum(&self) -> Self::Spectrum;

    /// Resets `s` to the zero spectrum (resizing it if needed), making it a
    /// valid accumulator for [`FftEngine::mul_accumulate`] without
    /// allocating once `s` has the right capacity.
    fn clear_spectrum(&self, s: &mut Self::Spectrum);

    /// A fresh scratch workspace (buffers are sized lazily on first use).
    fn make_scratch(&self) -> Self::Scratch {
        Self::Scratch::default()
    }

    /// Coefficients → Lagrange domain for an integer polynomial, writing
    /// into `out`.
    ///
    /// Integer inputs are gadget digits or binary secrets; implementations
    /// may assume `‖p‖∞ ≤ 2^10` (the largest digit magnitude produced by the
    /// decompositions in this workspace).
    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    );

    /// Coefficients → Lagrange domain for a torus polynomial, writing into
    /// `out`.
    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    );

    /// Fused gadget-decompose → forward transform: extracts digit `level`
    /// of every coefficient of `p` during the negacyclic twist fold and
    /// transforms it, writing into `out`.
    ///
    /// Must be bit-identical to materializing the digit polynomial with
    /// [`GadgetDecomposer::decompose_poly_into`] and calling
    /// [`FftEngine::forward_int_into`] on it — the external product relies
    /// on that equivalence to swap freely between the two paths. The
    /// default implementation does exactly that (and allocates the
    /// intermediate digit polynomial); the in-tree engines override it with
    /// a truly fused, allocation-free fold so digit polynomials are never
    /// written to memory.
    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &GadgetDecomposer,
        level: usize,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    ) {
        let mut digit = IntPolynomial::zero(p.len());
        for (d, &c) in digit.coeffs_mut().iter_mut().zip(p.coeffs().iter()) {
            *d = decomp.digit(decomp.shift(c), level);
        }
        self.forward_int_into(&digit, out, scratch);
    }

    /// Lagrange domain → torus coefficients (with reduction mod 1), writing
    /// into `out`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `out.len()` differs from the ring degree.
    fn backward_torus_into(
        &self,
        s: &Self::Spectrum,
        out: &mut TorusPolynomial,
        scratch: &mut Self::Scratch,
    );

    /// Coefficients → Lagrange domain for an integer polynomial
    /// (allocating wrapper over [`FftEngine::forward_int_into`]).
    fn forward_int(&self, p: &IntPolynomial) -> Self::Spectrum {
        let mut out = self.zero_spectrum();
        let mut scratch = self.make_scratch();
        self.forward_int_into(p, &mut out, &mut scratch);
        out
    }

    /// Coefficients → Lagrange domain for a torus polynomial (allocating
    /// wrapper over [`FftEngine::forward_torus_into`]).
    fn forward_torus(&self, p: &TorusPolynomial) -> Self::Spectrum {
        let mut out = self.zero_spectrum();
        let mut scratch = self.make_scratch();
        self.forward_torus_into(p, &mut out, &mut scratch);
        out
    }

    /// Lagrange domain → torus coefficients (allocating wrapper over
    /// [`FftEngine::backward_torus_into`]).
    fn backward_torus(&self, s: &Self::Spectrum) -> TorusPolynomial {
        let mut out = TorusPolynomial::zero(self.ring_degree());
        let mut scratch = self.make_scratch();
        self.backward_torus_into(s, &mut out, &mut scratch);
        out
    }

    /// `acc += a ⊙ b` (pointwise complex multiply-accumulate).
    ///
    /// # Panics
    ///
    /// Implementations may panic if the spectra come from incompatible
    /// transforms (mismatched sizes or scales).
    fn mul_accumulate(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum, b: &Self::Spectrum);

    /// `acc_a += x ⊙ a` and `acc_b += x ⊙ b` in one logical step.
    ///
    /// This is the external product's inner loop: each transformed digit
    /// multiplies both the mask and body rows of a TGSW sample. Engines
    /// override it with a fused single pass that reads `x` once; results
    /// must be bit-identical to two [`FftEngine::mul_accumulate`] calls.
    fn mul_accumulate_pair(
        &self,
        acc_a: &mut Self::Spectrum,
        acc_b: &mut Self::Spectrum,
        x: &Self::Spectrum,
        a: &Self::Spectrum,
        b: &Self::Spectrum,
    ) {
        self.mul_accumulate(acc_a, x, a);
        self.mul_accumulate(acc_b, x, b);
    }

    /// `acc += a` (pointwise addition, used to fuse accumulator updates).
    fn add_assign(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum);

    /// `acc += (X^exponent − 1) ⊙ src`, evaluated directly in the Lagrange
    /// domain: at evaluation point `ε_k = e^{iπ(4k+1)/N}` the monomial
    /// `X^e` is the scalar `ε_k^e`.
    ///
    /// This is the *TGSW scale* operation of MATCHA's TGSW clusters
    /// (paper Fig. 5/7b): bootstrapping-key bundles are linear combinations
    /// of pre-transformed keys, so building them needs pointwise complex
    /// multiplications (32-bit integer multipliers in hardware) but **no
    /// additional FFTs** — the property that makes aggressive key unrolling
    /// reduce FFT counts.
    ///
    /// `acc` must come from [`FftEngine::bundle_accumulator`] (or another
    /// call with the same provenance); `src` must be a `forward_torus`
    /// spectrum.
    fn scale_monomial_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        exponent: i64,
    ) {
        let factors = self.monomial_minus_one(exponent);
        self.scale_accumulate(acc, src, &factors);
    }

    /// Writes the pointwise factors `ε_k^e − 1` for
    /// [`FftEngine::scale_accumulate`] into `out`. One factor table serves
    /// every row of a TGSW sample, so bundle construction computes it once
    /// per pattern per blind-rotation step.
    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Self::MonomialFactors);

    /// Precomputes the pointwise factors `ε_k^e − 1` (allocating wrapper
    /// over [`FftEngine::monomial_minus_one_into`]).
    fn monomial_minus_one(&self, exponent: i64) -> Self::MonomialFactors {
        let mut out = Self::MonomialFactors::default();
        self.monomial_minus_one_into(exponent, &mut out);
        out
    }

    /// `acc += factors ⊙ src` — the TGSW scale inner loop.
    fn scale_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    );

    /// `acc_a += factors ⊙ src_a` and `acc_b += factors ⊙ src_b` in one
    /// logical step — the per-row bundle update, sharing one factor-table
    /// read. Must be bit-identical to two [`FftEngine::scale_accumulate`]
    /// calls.
    fn scale_accumulate_pair(
        &self,
        acc_a: &mut Self::Spectrum,
        acc_b: &mut Self::Spectrum,
        src_a: &Self::Spectrum,
        src_b: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    ) {
        self.scale_accumulate(acc_a, src_a, factors);
        self.scale_accumulate(acc_b, src_b, factors);
    }

    /// Copies a `forward_torus` spectrum into `out` as an accumulator
    /// suitable for [`FftEngine::scale_monomial_accumulate`].
    ///
    /// Fixed-point engines drop a few fractional bits here so that summing
    /// up to `2^m − 1` scaled terms (`|X^e − 1| ≤ 2` each) cannot overflow.
    fn bundle_accumulator_into(&self, from: &Self::Spectrum, out: &mut Self::Spectrum);

    /// Copies a `forward_torus` spectrum into a fresh bundle accumulator
    /// (allocating wrapper over [`FftEngine::bundle_accumulator_into`]).
    fn bundle_accumulator(&self, from: &Self::Spectrum) -> Self::Spectrum {
        let mut out = self.zero_spectrum();
        self.bundle_accumulator_into(from, &mut out);
        out
    }

    /// Convenience: the full negacyclic product `p · q`.
    fn poly_mul(&self, p: &TorusPolynomial, q: &IntPolynomial) -> TorusPolynomial {
        let mut acc = self.zero_spectrum();
        self.mul_accumulate(&mut acc, &self.forward_torus(p), &self.forward_int(q));
        self.backward_torus(&acc)
    }
}

impl<E: FftEngine + ?Sized> FftEngine for &E {
    type Spectrum = E::Spectrum;
    type MonomialFactors = E::MonomialFactors;
    type Scratch = E::Scratch;
    fn ring_degree(&self) -> usize {
        (**self).ring_degree()
    }
    fn zero_spectrum(&self) -> Self::Spectrum {
        (**self).zero_spectrum()
    }
    fn clear_spectrum(&self, s: &mut Self::Spectrum) {
        (**self).clear_spectrum(s)
    }
    fn make_scratch(&self) -> Self::Scratch {
        (**self).make_scratch()
    }
    fn forward_int_into(
        &self,
        p: &IntPolynomial,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    ) {
        (**self).forward_int_into(p, out, scratch)
    }
    fn forward_torus_into(
        &self,
        p: &TorusPolynomial,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    ) {
        (**self).forward_torus_into(p, out, scratch)
    }
    fn forward_decomposed_into(
        &self,
        p: &TorusPolynomial,
        decomp: &GadgetDecomposer,
        level: usize,
        out: &mut Self::Spectrum,
        scratch: &mut Self::Scratch,
    ) {
        (**self).forward_decomposed_into(p, decomp, level, out, scratch)
    }
    fn backward_torus_into(
        &self,
        s: &Self::Spectrum,
        out: &mut TorusPolynomial,
        scratch: &mut Self::Scratch,
    ) {
        (**self).backward_torus_into(s, out, scratch)
    }
    fn forward_int(&self, p: &IntPolynomial) -> Self::Spectrum {
        (**self).forward_int(p)
    }
    fn forward_torus(&self, p: &TorusPolynomial) -> Self::Spectrum {
        (**self).forward_torus(p)
    }
    fn backward_torus(&self, s: &Self::Spectrum) -> TorusPolynomial {
        (**self).backward_torus(s)
    }
    fn mul_accumulate(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum, b: &Self::Spectrum) {
        (**self).mul_accumulate(acc, a, b)
    }
    fn mul_accumulate_pair(
        &self,
        acc_a: &mut Self::Spectrum,
        acc_b: &mut Self::Spectrum,
        x: &Self::Spectrum,
        a: &Self::Spectrum,
        b: &Self::Spectrum,
    ) {
        (**self).mul_accumulate_pair(acc_a, acc_b, x, a, b)
    }
    fn add_assign(&self, acc: &mut Self::Spectrum, a: &Self::Spectrum) {
        (**self).add_assign(acc, a)
    }
    fn scale_monomial_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        exponent: i64,
    ) {
        (**self).scale_monomial_accumulate(acc, src, exponent)
    }
    fn monomial_minus_one_into(&self, exponent: i64, out: &mut Self::MonomialFactors) {
        (**self).monomial_minus_one_into(exponent, out)
    }
    fn monomial_minus_one(&self, exponent: i64) -> Self::MonomialFactors {
        (**self).monomial_minus_one(exponent)
    }
    fn scale_accumulate(
        &self,
        acc: &mut Self::Spectrum,
        src: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    ) {
        (**self).scale_accumulate(acc, src, factors)
    }
    fn scale_accumulate_pair(
        &self,
        acc_a: &mut Self::Spectrum,
        acc_b: &mut Self::Spectrum,
        src_a: &Self::Spectrum,
        src_b: &Self::Spectrum,
        factors: &Self::MonomialFactors,
    ) {
        (**self).scale_accumulate_pair(acc_a, acc_b, src_a, src_b, factors)
    }
    fn bundle_accumulator_into(&self, from: &Self::Spectrum, out: &mut Self::Spectrum) {
        (**self).bundle_accumulator_into(from, out)
    }
    fn bundle_accumulator(&self, from: &Self::Spectrum) -> Self::Spectrum {
        (**self).bundle_accumulator(from)
    }
}
