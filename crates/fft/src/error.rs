//! Error measurement harness for the paper's Figure 8.
//!
//! Figure 8 plots the error of the approximate FFT+IFFT pipeline (in dB,
//! relative to signal amplitude) against the twiddle-factor quantization
//! width, with the 64-bit double-precision pipeline as the reference line.
//! We measure end-to-end polynomial-multiplication error against the *exact*
//! integer negacyclic convolution, which both pipelines approximate.

use crate::engine::FftEngine;
use matcha_math::{stats, IntPolynomial, Torus32, TorusPolynomial};

/// Deterministic xorshift for reproducible error sweeps without pulling a
/// full RNG dependency into the library path.
#[derive(Clone, Debug)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Generates the Figure 8 workload: a random torus polynomial (all 32 bits
/// used) times a random gadget-digit polynomial (`|digit| ≤ Bg/2 = 512`).
fn workload(n: usize, rng: &mut XorShift64) -> (TorusPolynomial, IntPolynomial) {
    let p = TorusPolynomial::from_coeffs(
        (0..n)
            .map(|_| Torus32::from_raw(rng.next() as u32))
            .collect(),
    );
    let q = IntPolynomial::from_coeffs((0..n).map(|_| (rng.next() % 1024) as i32 - 512).collect());
    (p, q)
}

/// End-to-end polynomial multiplication error of `engine` in dB, over
/// `trials` random products of ring degree `n`.
///
/// The error is `20·log10(rms(err)/rms(signal))` where both are measured on
/// the centered torus representatives of the result, exactly the relative
/// error metric of Figure 8 (smaller/more negative is better).
pub fn poly_mul_error_db<E: FftEngine>(engine: &E, n: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = XorShift64::new(seed);
    let mut errs = Vec::with_capacity(trials * n);
    let mut signal = Vec::with_capacity(trials * n);
    for _ in 0..trials {
        let (p, q) = workload(n, &mut rng);
        let exact = p.naive_mul_int(&q);
        let approx = engine.poly_mul(&p, &q);
        for (&e, &a) in exact.coeffs().iter().zip(approx.coeffs().iter()) {
            errs.push(a.signed_diff(e));
            signal.push(e.to_f64());
        }
    }
    let s = stats::rms(&signal);
    if s == 0.0 {
        return f64::NEG_INFINITY;
    }
    stats::amplitude_db(stats::rms(&errs) / s)
}

/// Forward/backward round-trip error of `engine` in dB (pure FFT+IFFT, no
/// pointwise product), over `trials` random torus polynomials.
pub fn fft_roundtrip_error_db<E: FftEngine>(engine: &E, n: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = XorShift64::new(seed);
    let mut errs = Vec::with_capacity(trials * n);
    let mut signal = Vec::with_capacity(trials * n);
    for _ in 0..trials {
        let p = TorusPolynomial::from_coeffs(
            (0..n)
                .map(|_| Torus32::from_raw(rng.next() as u32))
                .collect(),
        );
        let back = engine.backward_torus(&engine.forward_torus(&p));
        for (&e, &a) in p.coeffs().iter().zip(back.coeffs().iter()) {
            errs.push(a.signed_diff(e));
            signal.push(e.to_f64());
        }
    }
    let s = stats::rms(&signal);
    if s == 0.0 {
        return f64::NEG_INFINITY;
    }
    stats::amplitude_db(stats::rms(&errs) / s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApproxIntFft, F64Fft};

    #[test]
    fn double_precision_error_is_small() {
        let engine = F64Fft::new(256);
        let db = poly_mul_error_db(&engine, 256, 4, 42);
        assert!(
            db < -120.0,
            "double-precision error {db} dB unexpectedly large"
        );
    }

    #[test]
    fn approx_error_improves_with_bits() {
        let coarse = poly_mul_error_db(&ApproxIntFft::new(256, 10), 256, 3, 7);
        let fine = poly_mul_error_db(&ApproxIntFft::new(256, 40), 256, 3, 7);
        assert!(
            fine < coarse - 20.0,
            "40-bit ({fine} dB) should be far better than 10-bit ({coarse} dB)"
        );
    }

    #[test]
    fn high_precision_approx_close_to_double() {
        let double = poly_mul_error_db(&F64Fft::new(128), 128, 3, 11);
        let approx = poly_mul_error_db(&ApproxIntFft::new(128, 55), 128, 3, 11);
        // Figure 8: at high twiddle widths the approximate engine approaches
        // (without fully matching) the double-precision line.
        assert!(approx < -100.0, "55-bit approx error {approx} dB too large");
        assert!(double < -100.0);
    }

    #[test]
    fn roundtrip_error_reported() {
        let db = fft_roundtrip_error_db(&ApproxIntFft::new(128, 40), 128, 3, 5);
        assert!(db < -80.0, "roundtrip error {db} dB too large");
    }
}
