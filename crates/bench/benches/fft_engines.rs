//! FFT engine micro-benchmarks: the kernels Figure 1 shows dominating TFHE
//! gate latency, across the reference, depth-first, and approximate
//! integer engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matcha_fft::{ApproxIntFft, DepthFirstFft, F64Fft, FftEngine};
use matcha_math::{IntPolynomial, Torus32, TorusPolynomial};

const N: usize = 1024; // the paper's ring degree

fn torus_poly(seed: u32) -> TorusPolynomial {
    TorusPolynomial::from_coeffs(
        (0..N as u32)
            .map(|i| Torus32::from_raw((i ^ seed).wrapping_mul(0x9e37_79b9)))
            .collect(),
    )
}

fn digit_poly(seed: u32) -> IntPolynomial {
    IntPolynomial::from_coeffs(
        (0..N as u32)
            .map(|i| ((i ^ seed).wrapping_mul(0x85eb_ca6b) % 1024) as i32 - 512)
            .collect(),
    )
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_transform");
    let p = torus_poly(1);
    let f64_engine = F64Fft::new(N);
    group.bench_function("f64_breadth_first", |b| {
        b.iter(|| std::hint::black_box(f64_engine.forward_torus(&p)))
    });
    let df = DepthFirstFft::new(N);
    group.bench_function("f64_depth_first_cp", |b| {
        b.iter(|| std::hint::black_box(df.forward_torus(&p)))
    });
    for bits in [16u32, 38, 62] {
        let engine = ApproxIntFft::new(N, bits);
        group.bench_with_input(
            BenchmarkId::new("approx_int", bits),
            &engine,
            |b, engine| b.iter(|| std::hint::black_box(engine.forward_torus(&p))),
        );
    }
    group.finish();
}

fn bench_poly_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("negacyclic_poly_mul");
    let p = torus_poly(2);
    let q = digit_poly(3);
    let f64_engine = F64Fft::new(N);
    group.bench_function("f64", |b| {
        b.iter(|| std::hint::black_box(f64_engine.poly_mul(&p, &q)))
    });
    let approx = ApproxIntFft::new(N, 38);
    group.bench_function("approx_int_38", |b| {
        b.iter(|| std::hint::black_box(approx.poly_mul(&p, &q)))
    });
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_transform");
    let p = torus_poly(4);
    let f64_engine = F64Fft::new(N);
    let spec = f64_engine.forward_torus(&p);
    group.bench_function("f64", |b| {
        b.iter(|| std::hint::black_box(f64_engine.backward_torus(&spec)))
    });
    let approx = ApproxIntFft::new(N, 38);
    let spec_i = approx.forward_torus(&p);
    group.bench_function("approx_int_38", |b| {
        b.iter(|| std::hint::black_box(approx.backward_torus(&spec_i)))
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_poly_mul, bench_backward);
criterion_main!(benches);
