//! Accelerator-model benchmarks: the pipeline simulator itself is cheap
//! enough for design-space sweeps (thousands of configurations per second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matcha_accel::{pipeline, MatchaConfig, WorkloadParams};

fn benches(c: &mut Criterion) {
    let cfg = MatchaConfig::paper();
    let w = WorkloadParams::MATCHA;
    let mut group = c.benchmark_group("pipeline_sim");
    for m in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("gate", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(pipeline::simulate_gate(&cfg, &w, m)))
        });
    }
    group.bench_function("design_space_64_points", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for ep in [4usize, 8, 16, 32] {
                for hbm in [320.0f64, 640.0, 1280.0, 2560.0] {
                    for m in 1..=4 {
                        let mut cfg = MatchaConfig::paper();
                        cfg.ep_cores = ep;
                        cfg.tgsw_clusters = ep;
                        cfg.hbm_gb_s = hbm;
                        let r = pipeline::simulate_gate(&cfg, &w, m);
                        best = best.min(r.latency_s);
                    }
                }
            }
            std::hint::black_box(best)
        })
    });
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
