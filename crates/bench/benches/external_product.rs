//! External product (TGSW ⊡ TRLWE) benchmarks at the paper's parameters —
//! the operation each blind-rotation step performs once. Each engine is
//! measured on the allocating seed path and on the zero-allocation scratch
//! path, so the in-place layer's speedup is a first-class result.

use criterion::{criterion_group, criterion_main, Criterion};
use matcha_fft::{ApproxIntFft, F64Fft, FftEngine};
use matcha_math::{GadgetDecomposer, Torus32, TorusPolynomial, TorusSampler};
use matcha_tfhe::{EpScratch, ParameterSet, RingSecretKey, TgswCiphertext, TrlweCiphertext};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_external_product<E: FftEngine>(c: &mut Criterion, name: &str, engine: &E) {
    let params = ParameterSet::MATCHA;
    let mut sampler = TorusSampler::new(StdRng::seed_from_u64(5));
    let key = RingSecretKey::generate(params.ring_degree, &mut sampler);
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let tgsw = TgswCiphertext::encrypt_constant(1, &key, &params, engine, &mut sampler)
        .to_spectrum(engine);
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(&mu, &key, params.ring_noise_stdev, engine, &mut sampler);

    c.bench_function(&format!("{name}/alloc"), |b| {
        b.iter(|| std::hint::black_box(tgsw.external_product(engine, &acc, &decomp)))
    });

    let mut scratch = EpScratch::new(engine, &params);
    let mut inplace = acc.clone();
    tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
    c.bench_function(&format!("{name}/scratch"), |b| {
        b.iter(|| {
            tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
            std::hint::black_box(&inplace);
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_external_product(c, "external_product/f64", &F64Fft::new(1024));
    bench_external_product(
        c,
        "external_product/approx_int_38",
        &ApproxIntFft::new(1024, 38),
    );
    bench_external_product(
        c,
        "external_product/approx_int_62",
        &ApproxIntFft::new(1024, 62),
    );
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(group);
