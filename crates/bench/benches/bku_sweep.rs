//! Bootstrapping latency versus unroll factor on this machine — the live
//! software counterpart of the paper's CPU curve in Figure 9 (m = 2 helps,
//! aggressive unrolling regresses without a pipelined datapath).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matcha_fft::F64Fft;
use matcha_math::Torus32;
use matcha_tfhe::{BootstrapKit, ClientKey, ParameterSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let engine = F64Fft::new(1024);
    let mu = Torus32::from_dyadic(1, 3);
    let input = client.encrypt_with(true, &mut rng);
    let mut group = c.benchmark_group("bootstrap_vs_unroll");
    group.sample_size(10);
    for m in 1..=4usize {
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(m), &kit, |b, kit| {
            b.iter(|| std::hint::black_box(kit.bootstrap(&engine, &input, mu)))
        });
    }
    group.finish();
}

criterion_group!(group, benches);
criterion_main!(group);
