//! Full TFHE gate benchmarks at the paper's parameters (Table 1's "13 ms
//! on a CPU" row and Figure 1's workload), on both FFT engines. Each
//! configuration is measured on the allocating seed path (`/alloc`) and on
//! the warmed zero-allocation scratch path (`/scratch`).

use criterion::{criterion_group, criterion_main, Criterion};
use matcha_fft::{ApproxIntFft, F64Fft, FftEngine};
use matcha_math::Torus32;
use matcha_tfhe::{ClientKey, Gate, ParameterSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gate<E: FftEngine>(c: &mut Criterion, name: &str, engine: E, unroll: usize) {
    let mut rng = StdRng::seed_from_u64(9);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);

    c.bench_function(&format!("{name}/alloc"), |bench| {
        bench.iter(|| std::hint::black_box(server.nand(&a, &b)))
    });

    let mut scratch = server.make_scratch();
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
    c.bench_function(&format!("{name}/scratch"), |bench| {
        bench.iter(|| {
            server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
            std::hint::black_box(&out);
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_gate(c, "nand/f64_m1", F64Fft::new(1024), 1);
    bench_gate(c, "nand/f64_m2", F64Fft::new(1024), 2);
    bench_gate(c, "nand/f64_m3", F64Fft::new(1024), 3);
    bench_gate(c, "nand/approx38_m2", ApproxIntFft::new(1024, 38), 2);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
