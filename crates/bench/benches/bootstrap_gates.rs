//! Full TFHE gate benchmarks at the paper's parameters (Table 1's "13 ms
//! on a CPU" row and Figure 1's workload), on both FFT engines.

use criterion::{criterion_group, criterion_main, Criterion};
use matcha_fft::{ApproxIntFft, F64Fft, FftEngine};
use matcha_tfhe::{ClientKey, ParameterSet, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gate<E: FftEngine>(c: &mut Criterion, name: &str, engine: E, unroll: usize) {
    let mut rng = StdRng::seed_from_u64(9);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);
    c.bench_function(name, |bench| {
        bench.iter(|| std::hint::black_box(server.nand(&a, &b)))
    });
}

fn benches(c: &mut Criterion) {
    bench_gate(c, "nand/f64_m1", F64Fft::new(1024), 1);
    bench_gate(c, "nand/f64_m2", F64Fft::new(1024), 2);
    bench_gate(c, "nand/approx38_m2", ApproxIntFft::new(1024, 38), 2);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
