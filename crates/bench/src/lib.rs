//! Benchmark harness crate: see src/bin for table/figure regenerators.
