//! Ablation / design-space exploration: sweeps pipelines, butterfly cores
//! and HBM bandwidth, and prints the power–latency Pareto front with the
//! paper's design point highlighted.
//!
//! Run with: `cargo run --release -p matcha-bench --bin ablation_dse`

use matcha::accel::dse::{self, SweepSpace};
use matcha::{MatchaConfig, WorkloadParams};

fn main() {
    let w = WorkloadParams::MATCHA;
    let points = dse::sweep(&SweepSpace::default(), &w);
    let front = dse::pareto_front(&points);
    let paper = dse::evaluate(&MatchaConfig::paper(), &w, &[1, 2, 3, 4]);

    println!(
        "# Ablation: power-latency Pareto front over {} designs",
        points.len()
    );
    println!(
        "{:>6} {:>10} {:>10} {:>3} {:>12} {:>12} {:>12} {:>12}",
        "pipes", "butt", "HBM", "m", "latency(ms)", "power(W)", "area(mm2)", "gates/s/W"
    );
    for p in &front {
        println!(
            "{:>6} {:>10} {:>10.0} {:>3} {:>12.4} {:>12.2} {:>12.2} {:>12.1}",
            p.config.ep_cores,
            p.config.butterfly_cores,
            p.config.hbm_gb_s,
            p.unroll,
            p.latency_s * 1e3,
            p.power_w,
            p.area_mm2,
            p.throughput_per_watt(),
        );
    }
    println!(
        "\npaper design: 8 pipes, 128 butt, 640 GB/s -> m={} {:.4} ms, {:.2} W, {:.1} gates/s/W",
        paper.unroll,
        paper.latency_s * 1e3,
        paper.power_w,
        paper.throughput_per_watt(),
    );
    if let Some(pick) = dse::cheapest_meeting_latency(&points, 0.2e-3) {
        println!(
            "cheapest design under 0.2 ms: {} pipes, {} butterfly cores, {:.0} GB/s ({:.2} W)",
            pick.config.ep_cores, pick.config.butterfly_cores, pick.config.hbm_gb_s, pick.power_w
        );
    }
}
