//! Figure 11: NAND throughput per Watt across platforms, m = 1..4.
//!
//! Run with: `cargo run --release -p matcha-bench --bin fig11_throughput_per_watt`

use matcha::accel::{evaluation_platforms, report, Platform};

fn main() {
    let plats = evaluation_platforms();
    print!("{}", report::figure11(&plats));
    let matcha = Platform::matcha_paper();
    let asic = Platform::asic();
    let gpu = Platform::gpu();
    let eff = matcha.throughput_per_watt(3).unwrap() / asic.throughput_per_watt(1).unwrap();
    let gpu_vs_asic = gpu.throughput_per_watt(4).unwrap() / asic.throughput_per_watt(1).unwrap();
    println!("\nMATCHA/ASIC throughput-per-Watt at m=3: {eff:.1}x (paper: 6.3x)");
    println!(
        "GPU best vs ASIC: {:.0}% (paper: ~58%)",
        gpu_vs_asic * 100.0
    );
}
