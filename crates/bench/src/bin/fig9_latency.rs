//! Figure 9: NAND gate latency across CPU/GPU/FPGA/ASIC/MATCHA, m = 1..4.
//!
//! Run with: `cargo run --release -p matcha-bench --bin fig9_latency`

use matcha::accel::{evaluation_platforms, report};

fn main() {
    print!("{}", report::figure9(&evaluation_platforms()));
    println!("\npaper anchors: CPU 13.1 ms (m=1) / 6.67 ms (m=2); GPU 0.37→0.18 ms;");
    println!("FPGA/ASIC > 6.8 ms (m=1 only); MATCHA beats GPU by ~13% at m=3.");
}
