//! Figure 10: NAND gate throughput across platforms, m = 1..4.
//!
//! Run with: `cargo run --release -p matcha-bench --bin fig10_throughput`

use matcha::accel::{evaluation_platforms, report, Platform};

fn main() {
    let plats = evaluation_platforms();
    print!("{}", report::figure10(&plats));
    let matcha = Platform::matcha_paper();
    let gpu = Platform::gpu();
    let ratio = matcha.throughput(3).unwrap() / gpu.throughput(3).unwrap();
    println!("\nMATCHA/GPU throughput at m=3: {ratio:.2}x (paper: 2.3x)");
}
