//! Live software gate throughput with the batched evaluator — our
//! measured point on the Figure 10 axis (CPU-class hardware).
//!
//! Run with: `cargo run --release -p matcha-bench --bin software_throughput`

use matcha::tfhe::batch;
use matcha::{ClientKey, F64Fft, Gate, ParameterSet, ServerKey};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::with_unrolling(&client, F64Fft::new(1024), 2, &mut rng);
    let pairs: Vec<_> = (0..32)
        .map(|i| {
            (
                client.encrypt_with(i % 2 == 0, &mut rng),
                client.encrypt_with(i % 3 == 0, &mut rng),
            )
        })
        .collect();

    println!("# Software NAND throughput (m = 2, batched over threads)");
    println!("{:<8} {:>14} {:>12}", "threads", "gates/s", "batch (s)");
    for threads in [1usize, 2, 4, 8] {
        let r = batch::run_gate_batch(&server, Gate::Nand, &pairs, threads);
        println!(
            "{:<8} {:>14.1} {:>12.2}",
            r.threads, r.gates_per_second, r.elapsed_s
        );
    }
    println!("\npaper CPU throughput: ~1.2k gates/s at m=2 (8 cores).");
}
