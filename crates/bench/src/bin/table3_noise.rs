//! Table 3: noise comparison between classic BKU (m = 2) and MATCHA's
//! aggressive unrolling, measured empirically: post-bootstrap phase noise
//! for m ∈ {2..5} under the exact and the approximate FFT engine, plus the
//! bootstrapping-key blow-up and the FFT error floor.
//!
//! Uses the medium test parameters so hundreds of bootstraps finish in
//! seconds; pass `--paper` for the full parameter set (slower).
//!
//! Run with: `cargo run --release -p matcha-bench --bin table3_noise`

use matcha::fft::error::poly_mul_error_db;
use matcha::tfhe::{noise, BootstrapKit};
use matcha::{ApproxIntFft, ClientKey, F64Fft, ParameterSet};
use rand::SeedableRng;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let params = if paper {
        ParameterSet::MATCHA
    } else {
        ParameterSet::TEST_MEDIUM
    };
    let trials = if paper { 20 } else { 60 };
    let twiddle_bits = 38; // the paper's minimum failure-free width
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let client = ClientKey::generate(params, &mut rng);
    let n = params.ring_degree;

    let exact = F64Fft::new(n);
    let approx = ApproxIntFft::new(n, twiddle_bits);

    println!("# Table 3: noise comparison, BKU (m=2) vs aggressive unrolling");
    println!(
        "{:<4} {:>10} {:>16} {:>16} {:>14}",
        "m", "BK keys", "noise (exact)", "noise (approx)", "failures"
    );
    for m in 2..=5usize {
        let kit_e = BootstrapKit::generate(&client, &exact, m, &mut rng);
        let kit_a = BootstrapKit::generate(&client, &approx, m, &mut rng);
        let s_e = noise::bootstrap_noise(&client, &kit_e, &exact, trials, &mut rng);
        let s_a = noise::bootstrap_noise(&client, &kit_a, &approx, trials, &mut rng);
        let failures = noise::failure_count(&client, &kit_a, &approx, trials, &mut rng);
        println!(
            "{:<4} {:>10} {:>13.2e} {:>13.2e} {:>14}",
            m,
            kit_e.bootstrapping_key().key_count(),
            s_e.stdev,
            s_a.stdev,
            failures,
        );
    }

    let fft_db = poly_mul_error_db(&approx, n, 4, 9);
    let dbl_db = poly_mul_error_db(&exact, n, 4, 9);
    println!(
        "\nI/FFT error: approx ({twiddle_bits}-bit DVQTF) {fft_db:.0} dB, double {dbl_db:.0} dB"
    );
    println!("paper: EP and rounding noise fall ~1/m; BK noise grows ~(2^m - 1);");
    println!("approx-FFT noise stays below the decryption margin (0 failures).");
}
