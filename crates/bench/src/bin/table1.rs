//! Table 1: comparison of HE schemes, with the TFHE bootstrapping row
//! measured live on this machine using our implementation.
//!
//! Run with: `cargo run --release -p matcha-bench --bin table1`

use matcha::{ClientKey, F64Fft, ParameterSet, ServerKey, Torus32};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let engine = F64Fft::new(1024);
    let server = ServerKey::new(&client, engine, &mut rng);

    // Measure one gate bootstrap (the dominant cost of every TFHE gate).
    let c = client.encrypt_with(true, &mut rng);
    let warm = server
        .kit()
        .bootstrap(server.engine(), &c, Torus32::from_dyadic(1, 3));
    assert!(client.decrypt(&warm));
    let trials = 5;
    let t0 = Instant::now();
    for _ in 0..trials {
        std::hint::black_box(server.kit().bootstrap(
            server.engine(),
            &c,
            Torus32::from_dyadic(1, 3),
        ));
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / trials as f64;

    println!("# Table 1: comparison between HE schemes");
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "scheme", "FHE op", "data type", "bootstrapping"
    );
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "BGV", "mult, add", "integer", "~800 s (literature)"
    );
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "BFV", "mult, add", "integer", ">1000 s (literature)"
    );
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "CKKS", "mult, add", "fixed point", "~500 s (literature)"
    );
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "FHEW", "Boolean", "binary", "<1 s (literature)"
    );
    println!(
        "{:<8} {:<12} {:<12} {:<24}",
        "TFHE",
        "Boolean",
        "binary",
        format!("{ms:.1} ms (measured here; paper: 13 ms)")
    );
}
