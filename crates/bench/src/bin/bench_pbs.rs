//! Regenerates `BENCH_pbs.json`: external-product and single-gate PBS
//! latencies on the allocating seed path vs. the zero-allocation scratch
//! path, at the paper's parameters — plus, since PR 2, the fused
//! decompose→twist external product against a reconstruction of PR 1's
//! materializing scratch loop (`external_product_fused_vs_scratch/*` rows,
//! where `alloc_ns` holds the PR 1 scratch baseline and `scratch_ns` the
//! fused path, keeping the JSON schema comparable across PRs), and, since
//! PR 3, the AVX2+FMA split-complex kernels against the scalar fallback
//! (`simd_vs_scalar/*` rows: `alloc_ns` = scalar leg, `scratch_ns` = SIMD
//! leg, toggled per sample with `force_simd` so the comparison stays
//! interleaved; on CPUs without AVX2+FMA both sides run scalar and the
//! rows record ~1×), and, since PR 4, whole lowered circuits
//! (`circuit_sched_vs_sequential/*` rows: `alloc_ns` = eager sequential
//! evaluation through the allocating `ServerKey::apply` path,
//! `scratch_ns` = the same netlist wave-scheduled onto the persistent
//! `GateBatchPool` with warmed per-worker scratches; on a single-CPU
//! container the win is scratch reuse — on multicore the waves
//! additionally parallelize), and, since PR 5, cross-circuit
//! interleaving (`circuit_interleaved_vs_solo/*` rows: `alloc_ns` = the
//! PR 4 one-circuit-at-a-time server loop, `scratch_ns` = all circuits
//! submitted up front and interleaved into shared super-waves; the
//! printed structural utilizations — busy task-slots over offered
//! wave-slots — carry the clock-independent comparison), and, since PR 6,
//! admission-control fairness (`adversarial_mix/*` rows: `alloc_ns` = mean
//! light-client completion latency with quotas off while a heavy client
//! floods the pool, `scratch_ns` = the same under `per_client_quota = 1`,
//! with the heavy client's over-quota circuits rejected as
//! `QuotaExceeded`), and, since PR 7, static analysis
//! (`netlist_simplified_vs_raw/*` rows: **bootstrap counts, not
//! nanoseconds** — `alloc_ns` = bootstraps in the raw lowering,
//! `scratch_ns` = bootstraps after `matcha::tfhe::simplify`, so `speedup`
//! is the gate-count ratio the rewriter buys before a single ciphertext
//! is touched; and the `netlist_analyze_vs_one_bootstrap/adder8` row:
//! `alloc_ns` = one warmed NAND bootstrap reused from this run's
//! `nand/f64_m2` row, `scratch_ns` = a full `analyze()` pass over the
//! adder8 netlist, putting the analyzer's overhead in units of the work
//! it certifies). Since PR 8 the word-level library is lowered too, so
//! `circuit_sched_vs_sequential/*` gains the 8×8 schoolbook multiplier
//! (`mul8`, the widest DAG the scheduler serves) and one full
//! encrypted-CPU cycle (`processor_cycle8`), and the
//! `netlist_simplified_vs_raw/*` family picks up every new library entry
//! (`mul8`, `mul_low8`, `alu8`, `popcount16`, `shifter8`,
//! `processor_cycle8`) — the fold-built lowerings record 1.0× there by
//! design (the builder already skipped what the simplifier would fold),
//! while the ALU-shaped rows record the CSE + constant-carry savings.
//! Since PR 9 the wire-session layer adds `packed_vs_lwe_upload/MATCHA`
//! (**bytes per bit on the wire**, per-LWE vs packed-TRLWE upload, from
//! real codec encodings) and `packed_unpack_cost/MATCHA_f64` (server-side
//! sample-extract + key-switch per packed bit, allocating vs warmed). And
//! since PR 10, formal verification: the `netlist_equiv_cost/*` rows
//! (`adder8`, `mul8`, `processor_cycle8`) price a full BDD equivalence
//! proof of raw-vs-simplified — `alloc_ns` = wall-clock nanoseconds for
//! the whole proof, `scratch_ns` = **peak BDD node count** (the space
//! axis of the same check, against the default 2^20-node budget), so
//! `speedup` is meaningless there and the two columns are read
//! side by side.
//!
//! Run with:
//! `cargo run --release -p matcha-bench --bin bench_pbs`

use matcha::fft::{force_simd, simd_detected, ApproxIntFft, F64Fft, Radix4Fft};
use matcha::tfhe::{EpScratch, Gate, RingSecretKey, TgswCiphertext, TgswSpectrum, TrlweCiphertext};
use matcha::{ClientKey, FftEngine, ParameterSet, ServerKey, Torus32};
use matcha_math::{GadgetDecomposer, IntPolynomial, TorusPolynomial, TorusSampler};
use rand::SeedableRng;
use std::time::Instant;

/// Median of `samples` timed runs of `f`, in nanoseconds per call.
fn measure<F: FnMut()>(samples: usize, iters: u32, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Paired comparison of two variants of the same kernel: samples are taken
/// *interleaved* (A, B, A, B, …) so slow drift on a shared/1-CPU container
/// hits both variants equally instead of biasing whichever ran second, and
/// each side reports its per-sample minimum — the standard noise-robust
/// estimator of a deterministic kernel's true cost, since external
/// contention only ever adds time. Returns `(a_ns, b_ns)`.
fn measure_paired<A: FnMut(), B: FnMut()>(
    samples: usize,
    iters: u32,
    mut a: A,
    mut b: B,
) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            a();
        }
        best_a = best_a.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        let t0 = Instant::now();
        for _ in 0..iters {
            b();
        }
        best_b = best_b.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    (best_a, best_b)
}

struct Row {
    id: String,
    alloc_ns: f64,
    scratch_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.alloc_ns / self.scratch_ns
    }
}

fn bench_external_product<E: FftEngine>(name: &str, engine: &E, params: ParameterSet) -> Row {
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(5));
    let key = RingSecretKey::generate(params.ring_degree, &mut sampler);
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let tgsw = TgswCiphertext::encrypt_constant(1, &key, &params, engine, &mut sampler)
        .to_spectrum(engine);
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(&mu, &key, params.ring_noise_stdev, engine, &mut sampler);

    let alloc_ns = measure(15, 20, || {
        std::hint::black_box(tgsw.external_product(engine, &acc, &decomp));
    });

    let mut scratch = EpScratch::new(engine, &params);
    let mut inplace = acc.clone();
    tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
    let scratch_ns = measure(15, 20, || {
        tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
        std::hint::black_box(&inplace);
    });

    Row {
        id: format!("external_product/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

/// PR 1's scratch external product, reconstructed from the public engine
/// API: materialize all `2ℓ` digit polynomials, then transform each with
/// `forward_int_into`. This is the baseline the fused decompose→twist path
/// replaces, kept here so `BENCH_pbs.json` can track fused-vs-PR1 numbers.
#[allow(clippy::too_many_arguments)]
fn pr1_scratch_external_product<E: FftEngine>(
    engine: &E,
    tgsw: &TgswSpectrum<E>,
    c: &mut TrlweCiphertext,
    decomp: &GadgetDecomposer,
    digits: &mut [IntPolynomial],
    fd: &mut E::Spectrum,
    acc_a: &mut E::Spectrum,
    acc_b: &mut E::Spectrum,
    es: &mut E::Scratch,
) {
    let levels = decomp.levels();
    {
        let (mask_digits, body_digits) = digits.split_at_mut(levels);
        decomp.decompose_poly_into(c.mask(), mask_digits);
        decomp.decompose_poly_into(c.body(), body_digits);
    }
    engine.clear_spectrum(acc_a);
    engine.clear_spectrum(acc_b);
    for (j, digit) in digits.iter().enumerate() {
        engine.forward_int_into(digit, fd, es);
        let row = &tgsw.rows()[j];
        engine.mul_accumulate_pair(acc_a, acc_b, fd, &row.a, &row.b);
    }
    let (mask, body) = c.parts_mut();
    engine.backward_torus_into(acc_a, mask, es);
    engine.backward_torus_into(acc_b, body, es);
}

/// Fused decompose→twist external product vs. PR 1's materializing scratch
/// loop, on a bundled TGSW built at unroll factor `m` (the operand blind
/// rotation actually feeds the external product at the paper's parameters).
/// `alloc_ns` carries the PR 1 baseline, `scratch_ns` the fused path.
fn bench_fused_external_product<E: FftEngine>(name: &str, engine: &E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let kit = matcha::tfhe::BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let params = *kit.params();
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let bk = kit.bootstrapping_key();
    let group = &bk.groups()[0];
    let exponents: Vec<u32> = (0..group.len()).map(|i| (13 + 29 * i) as u32).collect();
    let bundle = bk.build_bundle(engine, group, &exponents, params.two_n());
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(22));
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(
        &mu,
        client.ring_key(),
        params.ring_noise_stdev,
        engine,
        &mut sampler,
    );

    // PR 1 baseline with its own pre-sized buffers, warmed like EpScratch.
    let mut digits: Vec<IntPolynomial> = (0..2 * params.decomp_levels)
        .map(|_| IntPolynomial::zero(params.ring_degree))
        .collect();
    let mut fd = engine.zero_spectrum();
    let mut acc_a = engine.zero_spectrum();
    let mut acc_b = engine.zero_spectrum();
    let mut es = engine.make_scratch();
    let mut c1 = acc.clone();
    pr1_scratch_external_product(
        engine,
        &bundle,
        &mut c1,
        &decomp,
        &mut digits,
        &mut fd,
        &mut acc_a,
        &mut acc_b,
        &mut es,
    );
    let mut scratch = EpScratch::new(engine, &params);
    let mut c2 = acc.clone();
    bundle.external_product_assign(engine, &mut c2, &decomp, &mut scratch);

    // The fused win is a single-digit percentage, so the two paths are
    // sampled interleaved: container-level drift cancels instead of
    // landing on whichever variant happened to run second.
    let (pr1_ns, fused_ns) = measure_paired(
        21,
        20,
        || {
            pr1_scratch_external_product(
                engine,
                &bundle,
                &mut c1,
                &decomp,
                &mut digits,
                &mut fd,
                &mut acc_a,
                &mut acc_b,
                &mut es,
            );
            std::hint::black_box(&c1);
        },
        || {
            bundle.external_product_assign(engine, &mut c2, &decomp, &mut scratch);
            std::hint::black_box(&c2);
        },
    );

    Row {
        id: format!("external_product_fused_vs_scratch/{name}"),
        alloc_ns: pr1_ns,
        scratch_ns: fused_ns,
    }
}

/// One blind-rotation step (bundle build + external product) — the unit of
/// work MATCHA's pipelines execute per key group (Figure 6a), and where the
/// scratch path's factor-table hoisting pays off.
fn bench_blind_rotate_step<E: FftEngine>(name: &str, engine: &E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let kit = matcha::tfhe::BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let params = *kit.params();
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let two_n = params.two_n();
    let bk = kit.bootstrapping_key();
    let group = &bk.groups()[0];
    let exponents: Vec<u32> = (0..group.len()).map(|i| (17 + 31 * i) as u32).collect();
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(14));
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(
        &mu,
        client.ring_key(),
        params.ring_noise_stdev,
        engine,
        &mut sampler,
    );

    let alloc_ns = measure(15, 10, || {
        let bundle = bk.build_bundle(engine, group, &exponents, two_n);
        std::hint::black_box(bundle.external_product(engine, &acc, &decomp));
    });

    let mut scratch = kit.make_scratch(engine);
    let mut inplace = acc.clone();
    scratch.test_vector_mut().copy_from(&mu);
    let scratch_ns = {
        // Drive the same step through the scratch plumbing.
        let c = client.encrypt_with(true, &mut rng);
        kit.blind_rotate_assign(engine, &c, &mut scratch); // warm every buffer
        let groups_per_rotation = bk.groups().len() as f64;
        let total = measure(15, 2, || {
            kit.blind_rotate_assign(engine, &c, &mut scratch);
            std::hint::black_box(scratch.accumulator());
        });
        let _ = &mut inplace;
        total / groups_per_rotation
    };

    Row {
        id: format!("blind_rotate_step/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

/// Bare forward transform, SIMD leg vs scalar leg of the same engine.
/// Interleaved paired sampling with the per-sample `force_simd` toggle;
/// each side keeps its own warmed output/scratch so toggling cannot
/// perturb buffer sizing.
fn bench_simd_forward<E: FftEngine>(name: &str, engine: &E) -> Row {
    let n = engine.ring_degree();
    let p = TorusPolynomial::from_coeffs(
        (0..n as u32)
            .map(|i| Torus32::from_raw(i.wrapping_mul(0x9e37_79b9).wrapping_add(3)))
            .collect(),
    );
    let mut out_s = engine.zero_spectrum();
    let mut scratch_s = engine.make_scratch();
    let mut out_v = engine.zero_spectrum();
    let mut scratch_v = engine.make_scratch();
    force_simd(Some(false));
    engine.forward_torus_into(&p, &mut out_s, &mut scratch_s);
    force_simd(Some(true));
    engine.forward_torus_into(&p, &mut out_v, &mut scratch_v);
    let (scalar_ns, simd_ns) = measure_paired(
        21,
        100,
        || {
            force_simd(Some(false));
            engine.forward_torus_into(&p, &mut out_s, &mut scratch_s);
            std::hint::black_box(&out_s);
        },
        || {
            force_simd(Some(true));
            engine.forward_torus_into(&p, &mut out_v, &mut scratch_v);
            std::hint::black_box(&out_v);
        },
    );
    force_simd(None);
    Row {
        id: format!("simd_vs_scalar/forward_{name}"),
        alloc_ns: scalar_ns,
        scratch_ns: simd_ns,
    }
}

/// Fused external product on an unrolled bundle, SIMD leg vs scalar leg —
/// the end-to-end kernel the ROADMAP's "SIMD butterflies" item targets.
fn bench_simd_external_product<E: FftEngine>(name: &str, engine: &E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let kit = matcha::tfhe::BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let params = *kit.params();
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let bk = kit.bootstrapping_key();
    let group = &bk.groups()[0];
    let exponents: Vec<u32> = (0..group.len()).map(|i| (11 + 23 * i) as u32).collect();
    let bundle = bk.build_bundle(engine, group, &exponents, params.two_n());
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(34));
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(
        &mu,
        client.ring_key(),
        params.ring_noise_stdev,
        engine,
        &mut sampler,
    );

    let mut scratch_s = EpScratch::new(engine, &params);
    let mut c_s = acc.clone();
    let mut scratch_v = EpScratch::new(engine, &params);
    let mut c_v = acc.clone();
    force_simd(Some(false));
    bundle.external_product_assign(engine, &mut c_s, &decomp, &mut scratch_s);
    force_simd(Some(true));
    bundle.external_product_assign(engine, &mut c_v, &decomp, &mut scratch_v);
    let (scalar_ns, simd_ns) = measure_paired(
        21,
        20,
        || {
            force_simd(Some(false));
            bundle.external_product_assign(engine, &mut c_s, &decomp, &mut scratch_s);
            std::hint::black_box(&c_s);
        },
        || {
            force_simd(Some(true));
            bundle.external_product_assign(engine, &mut c_v, &decomp, &mut scratch_v);
            std::hint::black_box(&c_v);
        },
    );
    force_simd(None);
    Row {
        id: format!("simd_vs_scalar/external_product_{name}"),
        alloc_ns: scalar_ns,
        scratch_ns: simd_ns,
    }
}

/// Whole lowered circuits, wave-scheduled onto the persistent pool vs.
/// eagerly evaluated gate-by-gate on one thread. `alloc_ns` carries the
/// sequential eager time (allocating `ServerKey::apply` per op, the seed
/// way of running a circuit), `scratch_ns` the scheduled pool time. One
/// shared key/pool across all circuits keeps the dominant cost — MATCHA
/// keygen — paid once. Alongside the measured row, the predicted makespan
/// from `accel::schedule` over the circuit's exported dependency skeleton
/// is printed for the model-vs-measured cross-check.
fn bench_circuit_sched(rows: &mut Vec<Row>) {
    use matcha::circuits::netlist;
    use matcha::tfhe::GateBatchPool;
    use std::sync::Arc;

    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = Arc::new(ServerKey::with_unrolling(
        &client,
        F64Fft::new(1024),
        2,
        &mut rng,
    ));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = GateBatchPool::new(Arc::clone(&server), threads);
    let circuits = [
        ("adder8", netlist::ripple_adder(8)),
        ("comparator8", netlist::eq_comparator(8)),
        ("mux4x4", netlist::mux_tree(2, 4)),
        // The PR 8 word-level lowerings: the widest DAG the scheduler
        // serves (8×8 schoolbook multiply) and one full encrypted-CPU
        // cycle (register file + encrypted opcode in, register file out).
        ("mul8", netlist::mul(8)),
        (
            "processor_cycle8",
            netlist::processor_cycle(
                2,
                8,
                netlist::CycleInstruction::Alu {
                    dst: 0,
                    src1: 0,
                    src2: 1,
                },
            ),
        ),
    ];
    for (name, net) in circuits {
        let inputs: Vec<_> = (0..net.num_inputs())
            .map(|i| client.encrypt_with(i % 3 == 0, &mut rng))
            .collect();
        // Warm both paths (pool worker scratches size themselves here).
        let warm = net.execute(&pool, &inputs);
        let _ = net.execute_sequential(server.as_ref(), &inputs);
        let (seq_ns, sched_ns) = measure_paired(
            3,
            1,
            || {
                std::hint::black_box(net.execute_sequential(server.as_ref(), &inputs));
            },
            || {
                std::hint::black_box(net.execute(&pool, &inputs));
            },
        );
        // Model cross-check. The per-gate latency is *derived from* the
        // measurement, so at 1 pipeline predicted == measured by
        // construction; the informative comparisons are (a) the measured
        // wave count against the model's critical path and (b) the
        // predicted headroom at the paper's 8 pipelines.
        let skeleton = matcha::accel::schedule::Netlist::from_deps(&net.schedule_skeleton());
        let gate_latency_s = sched_ns / 1e9 / net.bootstraps() as f64;
        let at8 = matcha::accel::schedule::schedule(&skeleton, 8, gate_latency_s);
        println!(
            "circuit {name}: {} bootstraps in {} waves on {threads} thread(s), \
             measured {:.0} ms; model critical path {} units; at 8 pipelines \
             the model predicts {:.0} ms ({:.0}% utilization)",
            net.bootstraps(),
            warm.waves,
            sched_ns / 1e6,
            at8.critical_path,
            at8.makespan_s * 1e3,
            at8.utilization * 100.0,
        );
        rows.push(Row {
            id: format!("circuit_sched_vs_sequential/{name}"),
            alloc_ns: seq_ns,
            scratch_ns: sched_ns,
        });
    }
}

/// Cross-circuit interleaving vs. the PR 4 one-circuit-at-a-time server
/// loop, on a 2-adder8 + 2-comparator8 mix over 2 pool workers.
/// `alloc_ns` carries the solo baseline (submit → wait, one circuit
/// occupying the pool at a time, exactly what PR 4's scheduler did),
/// `scratch_ns` the interleaved run (all circuits submitted up front, the
/// scheduler filling every dispatch from all in-flight frontiers). The
/// structural utilizations — busy task-slots over offered wave-slots, the
/// clock-noise-free measure — are printed alongside; on a single-CPU
/// container the wall-clock win is bounded by the shared core, while the
/// utilization gap shows what a real multi-worker host reclaims.
fn bench_circuit_interleaved(rows: &mut Vec<Row>) {
    use matcha::circuits::{netlist, word};
    use matcha::tfhe::{CircuitNetlist, CircuitServer, PendingCircuit};
    use matcha::LweCiphertext;
    use std::sync::Arc;

    let mut rng = rand::rngs::StdRng::seed_from_u64(51);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server_key = Arc::new(ServerKey::with_unrolling(
        &client,
        F64Fft::new(1024),
        2,
        &mut rng,
    ));
    let threads = 2;
    let server = CircuitServer::start(Arc::clone(&server_key), threads);
    let handle = server.client();
    let make_jobs = |rng: &mut rand::rngs::StdRng| {
        let mut jobs: Vec<(CircuitNetlist, Vec<LweCiphertext>)> = Vec::new();
        for (x, y) in [(173u64, 91u64), (4, 250)] {
            let a = word::encrypt(&client, x, 8, rng);
            let b = word::encrypt(&client, y, 8, rng);
            jobs.push((netlist::ripple_adder(8), a.into_iter().chain(b).collect()));
        }
        for (x, y) in [(200u64, 200u64), (17, 18)] {
            let a = word::encrypt(&client, x, 8, rng);
            let b = word::encrypt(&client, y, 8, rng);
            jobs.push((netlist::eq_comparator(8), a.into_iter().chain(b).collect()));
        }
        jobs
    };
    // A short chain barrier occupies the scheduler for a couple of
    // dispatches (two bootstraps ≈ tens of ms at paper parameters) while
    // the real circuits queue up, so they are all admitted into the same
    // super-wave and stay aligned even on a loaded host.
    let barrier = |rng: &mut rand::rngs::StdRng| {
        let mut net = CircuitNetlist::new();
        let (a, b, c) = (net.input(), net.input(), net.input());
        let g = net.gate(Gate::Or, a, b);
        let h = net.gate(Gate::Xor, g, c);
        net.mark_output(h);
        handle.submit(
            net,
            vec![
                client.encrypt_with(false, rng),
                client.encrypt_with(true, rng),
                client.encrypt_with(false, rng),
            ],
        )
    };

    // Warm the pool scratches once so neither phase pays first-touch
    // allocation costs.
    for (net, inputs) in make_jobs(&mut rng) {
        assert!(handle.submit(net, inputs).wait().is_completed());
    }

    let mut solo_ns = f64::INFINITY;
    let mut inter_ns = f64::INFINITY;
    // Utilization is computed from the counter deltas *summed over both
    // iterations* of each leg, so the reported number describes the same
    // runs the assert judges — not just whichever iteration came last.
    let (mut solo_tasks, mut solo_slots) = (0u64, 0u64);
    let (mut inter_tasks, mut inter_slots) = (0u64, 0u64);
    for _ in 0..2 {
        // Interleaved paired sampling, solo leg first.
        let before = server.stats();
        let t0 = Instant::now();
        for (net, inputs) in make_jobs(&mut rng) {
            assert!(handle.submit(net, inputs).wait().is_completed());
        }
        solo_ns = solo_ns.min(t0.elapsed().as_secs_f64() * 1e9);
        let mid = server.stats();
        let solo_delta = mid.since(&before);
        solo_tasks += solo_delta.tasks;
        solo_slots += solo_delta.slots;

        let t0 = Instant::now();
        let gate = barrier(&mut rng);
        let tickets: Vec<PendingCircuit> = make_jobs(&mut rng)
            .into_iter()
            .map(|(net, inputs)| handle.submit(net, inputs))
            .collect();
        assert!(gate.wait().is_completed());
        for ticket in tickets {
            assert!(ticket.wait().is_completed());
        }
        inter_ns = inter_ns.min(t0.elapsed().as_secs_f64() * 1e9);
        let inter_delta = server.stats().since(&mid);
        inter_tasks += inter_delta.tasks;
        inter_slots += inter_delta.slots;
    }
    let solo_util = solo_tasks as f64 / solo_slots as f64;
    let inter_util = inter_tasks as f64 / inter_slots as f64;
    let stats = server.stats();
    println!(
        "circuit interleaving (2×adder8 + 2×comparator8, {threads} workers): \
         solo {:.0} ms at {:.1}% utilization vs interleaved {:.0} ms at {:.1}% \
         (max {} circuits in flight; on one CPU the wall-clock win is bounded \
         by the shared core — the utilization gap is the structural gain)",
        solo_ns / 1e6,
        solo_util * 100.0,
        inter_ns / 1e6,
        inter_util * 100.0,
        stats.max_in_flight,
    );
    assert!(
        inter_util > solo_util,
        "interleaving must beat the solo baseline structurally"
    );
    rows.push(Row {
        id: "circuit_interleaved_vs_solo/adder8x2_comparator8x2".into(),
        alloc_ns: solo_ns,
        scratch_ns: inter_ns,
    });
    server.shutdown();
}

/// Admission-control fairness under an adversarial mix: one heavy client
/// floods the 2-worker pool with 8-bit adders while four light clients
/// each want a single gate. `alloc_ns` carries the mean light-client
/// completion latency with quotas off (the heavy circuits monopolize the
/// super-waves, so every light gate queues behind dozens of adder tasks),
/// `scratch_ns` the same with `per_client_quota = 1` (the heavy client
/// keeps one circuit in flight and the surplus is rejected with a
/// structured `QuotaExceeded`, so the light gates land in small waves).
/// The heavy completed/rejected counts are printed so the trade is
/// explicit: the latency win is bought by refusing over-quota work.
fn bench_adversarial_mix(rows: &mut Vec<Row>) {
    use matcha::circuits::{netlist, word};
    use matcha::tfhe::{CircuitNetlist, CircuitServer, RejectReason, ServerConfig};
    use matcha::LweCiphertext;
    use std::sync::Arc;

    let mut rng = rand::rngs::StdRng::seed_from_u64(71);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server_key = Arc::new(ServerKey::with_unrolling(
        &client,
        F64Fft::new(1024),
        2,
        &mut rng,
    ));
    let threads = 2;
    const HEAVY: usize = 4;
    const LIGHT: usize = 4;

    let light_net = || {
        let mut net = CircuitNetlist::new();
        let (a, b) = (net.input(), net.input());
        let g = net.gate(Gate::Xor, a, b);
        net.mark_output(g);
        net
    };

    // One leg: start a fresh server under `config`, flood it from the
    // heavy client, then submit the light gates and measure their mean
    // completion latency (clock started at the first light submit; each
    // ticket's latency is read when its `wait` returns, in submit order).
    let run_leg = |config: ServerConfig, rng: &mut rand::rngs::StdRng| -> (f64, u64, u64) {
        let server = CircuitServer::start_with(Arc::clone(&server_key), threads, config);
        let heavy = server.client();
        // Warm the worker scratches so neither leg pays first-touch costs.
        {
            let a = word::encrypt(&client, 1, 8, rng);
            let b = word::encrypt(&client, 2, 8, rng);
            let inputs: Vec<LweCiphertext> = a.into_iter().chain(b).collect();
            let warm = heavy.submit(netlist::ripple_adder(8), inputs).wait();
            assert!(warm.is_completed());
        }
        let heavy_tickets: Vec<_> = (0..HEAVY)
            .map(|i| {
                let a = word::encrypt(&client, 100 + i as u64, 8, rng);
                let b = word::encrypt(&client, 31 * i as u64, 8, rng);
                heavy.submit(netlist::ripple_adder(8), a.into_iter().chain(b).collect())
            })
            .collect();
        let light_started = Instant::now();
        let light_tickets: Vec<_> = (0..LIGHT)
            .map(|_| {
                let inputs = vec![
                    client.encrypt_with(true, rng),
                    client.encrypt_with(false, rng),
                ];
                server.client().submit(light_net(), inputs)
            })
            .collect();
        let mut light_total_ns = 0.0;
        for ticket in light_tickets {
            let outcome = ticket.wait();
            assert!(
                outcome.is_completed(),
                "light gates are within quota and must complete: {outcome:?}"
            );
            light_total_ns += light_started.elapsed().as_secs_f64() * 1e9;
        }
        let (mut done, mut rejected) = (0u64, 0u64);
        for ticket in heavy_tickets {
            let outcome = ticket.wait();
            if outcome.is_completed() {
                done += 1;
            } else {
                assert_eq!(outcome.reject_reason(), Some(RejectReason::QuotaExceeded));
                rejected += 1;
            }
        }
        server.shutdown();
        (light_total_ns / LIGHT as f64, done, rejected)
    };

    let (off_ns, off_done, off_rej) = run_leg(ServerConfig::default(), &mut rng);
    let (on_ns, on_done, on_rej) = run_leg(
        ServerConfig {
            per_client_quota: 1,
            ..ServerConfig::default()
        },
        &mut rng,
    );
    println!(
        "adversarial mix (1 heavy × {HEAVY} adder8 + {LIGHT} light 1-gate clients, \
         {threads} workers): light latency {:.0} ms quota-off ({off_done} heavy done, \
         {off_rej} rejected) vs {:.0} ms quota-on ({on_done} heavy done, {on_rej} \
         rejected with QuotaExceeded) — the fairness win is paid for by refusing \
         the heavy client's over-quota circuits",
        off_ns / 1e6,
        on_ns / 1e6,
    );
    rows.push(Row {
        id: "adversarial_mix/heavy1x4_light4_quota_off_vs_on".into(),
        alloc_ns: off_ns,
        scratch_ns: on_ns,
    });
}

/// Static-analysis rows. The `netlist_simplified_vs_raw/*` rows carry
/// **bootstrap counts, not nanoseconds** (`alloc_ns` = raw lowering,
/// `scratch_ns` = after `simplify`): the interesting quantity is how many
/// gate bootstraps the rewriter removes before any ciphertext work, and a
/// count survives container noise perfectly. The
/// `netlist_analyze_vs_one_bootstrap/adder8` row compares a full
/// `analyze()` pass (lints + noise certificates + cost ranks, in
/// `scratch_ns`) against one warmed NAND bootstrap reused from this run's
/// `nand/f64_m2` row (`alloc_ns`) — the analyzer must stay microseconds
/// against the milliseconds of work it certifies, or admission-time
/// verification would not be free.
fn bench_netlist_analysis(rows: &mut Vec<Row>) {
    use matcha::circuits::analysis;
    use matcha::tfhe::analyze::{analyze, simplify};

    for (name, net) in analysis::library() {
        let (_, report) = simplify(&net);
        rows.push(Row {
            id: format!("netlist_simplified_vs_raw/{name}"),
            alloc_ns: report.bootstraps_before as f64,
            scratch_ns: report.bootstraps_after as f64,
        });
    }

    let net = matcha::circuits::netlist::ripple_adder(8);
    let params = ParameterSet::MATCHA;
    let analyze_ns = measure(15, 20, || {
        std::hint::black_box(analyze(&net, &params, 2));
    });
    let nand_ns = rows
        .iter()
        .find(|r| r.id == "nand/f64_m2")
        .expect("nand/f64_m2 row is measured before the analysis rows")
        .scratch_ns;
    println!(
        "netlist analysis: full adder8 certificate in {:.1} µs vs {:.2} ms \
         for one NAND bootstrap ({:.0}× cheaper than a single gate of the \
         {} it certifies)",
        analyze_ns / 1e3,
        nand_ns / 1e6,
        nand_ns / analyze_ns,
        net.bootstraps(),
    );
    rows.push(Row {
        id: "netlist_analyze_vs_one_bootstrap/adder8".into(),
        alloc_ns: nand_ns,
        scratch_ns: analyze_ns,
    });
}

/// Formal-equivalence rows. Each `netlist_equiv_cost/*` row prices one
/// full BDD proof that a library lowering equals its simplified form on
/// every output: `alloc_ns` = wall-clock nanoseconds for the whole check
/// (both compilations plus the verdict), `scratch_ns` = **peak BDD node
/// count**, the space the proof needed under the default 2^20-node
/// budget. Mixed units by design — time tells whether admission-time
/// proving is affordable, nodes tell how much budget headroom the
/// hardest entries leave.
fn bench_netlist_equiv(rows: &mut Vec<Row>) {
    use matcha::circuits::analysis;
    use matcha::tfhe::analyze::equiv::{self, EquivBudget};
    use matcha::tfhe::analyze::simplify;

    let budget = EquivBudget::default();
    for (name, net) in analysis::library() {
        if !matches!(name, "adder8" | "mul8" | "processor_cycle8") {
            continue;
        }
        let (simplified, _) = simplify(&net);
        let report = equiv::check(&net, &simplified, budget);
        assert!(
            report.is_equivalent(),
            "{name}: the shipped simplifier must prove out — {report}"
        );
        let nodes = report.nodes;
        let check_ns = measure(5, 1, || {
            std::hint::black_box(equiv::check(&net, &simplified, budget));
        });
        println!(
            "netlist equiv: {name} proven raw ≡ simplified in {:.2} ms with \
             {nodes} BDD nodes ({:.1}% of the {}-node budget)",
            check_ns / 1e6,
            nodes as f64 / budget.max_nodes as f64 * 100.0,
            budget.max_nodes,
        );
        rows.push(Row {
            id: format!("netlist_equiv_cost/{name}"),
            alloc_ns: check_ns,
            scratch_ns: nodes as f64,
        });
    }
}

/// Packed-transport rows for the wire-session layer.
///
/// `packed_vs_lwe_upload/MATCHA` carries **bytes per bit on the wire,
/// not nanoseconds** (`alloc_ns` = per-LWE upload, `scratch_ns` = packed
/// TRLWE upload at a full `N`-bit payload, both measured from real codec
/// encodings): `(n + 1)` torus words per bit against 2, so the honest
/// ratio at the paper's parameters is `(n + 1) / 2 ≈ 251×` — counts, so
/// the row survives container noise perfectly.
/// `packed_unpack_cost/MATCHA_f64` is the server-side cost of turning one
/// packed bit into a gate-level LWE sample (sample extraction + key
/// switch): `alloc_ns` = the allocating `packing::extract_bit` the
/// admission path calls, `scratch_ns` = the warmed
/// `sample_extract_at_into` + `switch_into` pair — the floor a future
/// scratch-reusing ingest loop would hit.
fn bench_packed_transport(rows: &mut Vec<Row>) {
    use matcha::tfhe::{packing, BootstrapKit, Codec, LweCiphertext};

    let params = ParameterSet::MATCHA;

    // Upload bytes per bit, from actual encodings. A trivial LWE sample
    // and an all-zero TRLWE sample encode exactly like encrypted ones —
    // the codec is dimension-driven.
    let lwe_bytes = LweCiphertext::trivial(Torus32::ZERO, params.lwe_dimension)
        .to_bytes()
        .len();
    let packed_bytes = TrlweCiphertext::zero(params.ring_degree).to_bytes().len();
    let lwe_per_bit = lwe_bytes as f64;
    let packed_per_bit = packed_bytes as f64 / params.ring_degree as f64;
    println!(
        "packed transport: per-LWE {lwe_bytes} B/bit vs packed {:.2} B/bit at a \
         full {}-bit payload — {:.0}× less upload",
        packed_per_bit,
        params.ring_degree,
        lwe_per_bit / packed_per_bit,
    );
    rows.push(Row {
        id: "packed_vs_lwe_upload/MATCHA".into(),
        alloc_ns: lwe_per_bit,
        scratch_ns: packed_per_bit,
    });

    // Server-side unpack cost per bit.
    let mut rng = rand::rngs::StdRng::seed_from_u64(91);
    let client = ClientKey::generate(params, &mut rng);
    let engine = F64Fft::new(params.ring_degree);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let ksk = kit.key_switch_key();
    let bits: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
    let packed = packing::pack_bits(&client, &bits, &engine, &mut rng);

    let mut extracted = packed.sample_extract_at(0);
    let mut switched = ksk.switch(&extracted);
    let mut i_alloc = 0usize;
    let mut i_warm = 0usize;
    let (alloc_ns, scratch_ns) = measure_paired(
        15,
        20,
        || {
            i_alloc = (i_alloc + 1) % bits.len();
            std::hint::black_box(packing::extract_bit(&packed, i_alloc, ksk, &params));
        },
        || {
            i_warm = (i_warm + 1) % bits.len();
            packed.sample_extract_at_into(i_warm, &mut extracted);
            ksk.switch_into(&extracted, &mut switched);
            std::hint::black_box(&switched);
        },
    );
    println!(
        "packed unpack: {:.1} µs per bit allocating, {:.1} µs warmed \
         (sample extraction + key switch at n = {}, N = {})",
        alloc_ns / 1e3,
        scratch_ns / 1e3,
        params.lwe_dimension,
        params.ring_degree,
    );
    rows.push(Row {
        id: "packed_unpack_cost/MATCHA_f64".into(),
        alloc_ns,
        scratch_ns,
    });
}

fn bench_gate<E: FftEngine>(name: &str, engine: E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);

    let alloc_ns = measure(7, 3, || {
        std::hint::black_box(server.nand(&a, &b));
    });

    let mut scratch = server.make_scratch();
    let mut out = matcha::LweCiphertext::trivial(Torus32::ZERO, 1);
    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
    let scratch_ns = measure(7, 3, || {
        server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
        std::hint::black_box(&out);
    });

    Row {
        id: format!("nand/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

fn main() {
    let params = ParameterSet::MATCHA;
    println!(
        "simd: {} (AVX2+FMA {})",
        if matcha::fft::simd_active() {
            "on"
        } else {
            "off"
        },
        if simd_detected() {
            "detected"
        } else {
            "not detected"
        },
    );
    let mut rows = vec![
        bench_external_product("f64", &F64Fft::new(1024), params),
        bench_external_product("approx_int_38", &ApproxIntFft::new(1024, 38), params),
        bench_simd_forward("f64", &F64Fft::new(1024)),
        bench_simd_forward("radix4", &Radix4Fft::new(1024)),
        bench_simd_forward("depth_first", &matcha::DepthFirstFft::new(1024)),
        bench_simd_forward("approx38", &ApproxIntFft::new(1024, 38)),
        bench_simd_external_product("f64_m2", &F64Fft::new(1024), 2),
        bench_fused_external_product("f64_m1", &F64Fft::new(1024), 1),
        bench_fused_external_product("f64_m2", &F64Fft::new(1024), 2),
        bench_fused_external_product("f64_m3", &F64Fft::new(1024), 3),
        bench_fused_external_product("approx38_m2", &ApproxIntFft::new(1024, 38), 2),
        bench_blind_rotate_step("f64_m2", &F64Fft::new(1024), 2),
        bench_blind_rotate_step("f64_m3", &F64Fft::new(1024), 3),
        bench_gate("f64_m1", F64Fft::new(1024), 1),
        bench_gate("f64_m2", F64Fft::new(1024), 2),
        bench_gate("f64_m3", F64Fft::new(1024), 3),
        bench_gate("approx38_m2", ApproxIntFft::new(1024, 38), 2),
    ];
    bench_netlist_analysis(&mut rows);
    bench_netlist_equiv(&mut rows);
    bench_packed_transport(&mut rows);
    bench_circuit_sched(&mut rows);
    bench_circuit_interleaved(&mut rows);
    bench_adversarial_mix(&mut rows);

    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "benchmark", "alloc", "scratch", "speedup"
    );
    for r in &rows {
        println!(
            "{:<32} {:>9.2} µs {:>9.2} µs {:>8.2}x",
            r.id,
            r.alloc_ns / 1e3,
            r.scratch_ns / 1e3,
            r.speedup()
        );
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"id\": \"{}\", \"alloc_ns\": {:.1}, \"scratch_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.id,
            r.alloc_ns,
            r.scratch_ns,
            r.speedup(),
            comma
        ));
    }
    json.push_str("]\n");
    // Fail loudly: a missing results file must never look like a green run.
    let path = "BENCH_pbs.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!(
            "error: could not write {path} in {}: {e}",
            std::env::current_dir()
                .map(|d| d.display().to_string())
                .unwrap_or_else(|_| "<unknown cwd>".into())
        );
        std::process::exit(1);
    }
    println!("\nwrote {path}");
}
