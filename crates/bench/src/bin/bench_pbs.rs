//! Regenerates `BENCH_pbs.json`: external-product and single-gate PBS
//! latencies on the allocating seed path vs. the zero-allocation scratch
//! path, at the paper's parameters.
//!
//! Run with:
//! `cargo run --release -p matcha-bench --bin bench_pbs`

use matcha::fft::{ApproxIntFft, F64Fft};
use matcha::tfhe::{EpScratch, Gate, RingSecretKey, TgswCiphertext, TrlweCiphertext};
use matcha::{ClientKey, FftEngine, ParameterSet, ServerKey, Torus32};
use matcha_math::{GadgetDecomposer, TorusPolynomial, TorusSampler};
use rand::SeedableRng;
use std::time::Instant;

/// Median of `samples` timed runs of `f`, in nanoseconds per call.
fn measure<F: FnMut()>(samples: usize, iters: u32, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Row {
    id: String,
    alloc_ns: f64,
    scratch_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.alloc_ns / self.scratch_ns
    }
}

fn bench_external_product<E: FftEngine>(name: &str, engine: &E, params: ParameterSet) -> Row {
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(5));
    let key = RingSecretKey::generate(params.ring_degree, &mut sampler);
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let tgsw = TgswCiphertext::encrypt_constant(1, &key, &params, engine, &mut sampler)
        .to_spectrum(engine);
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(&mu, &key, params.ring_noise_stdev, engine, &mut sampler);

    let alloc_ns = measure(15, 20, || {
        std::hint::black_box(tgsw.external_product(engine, &acc, &decomp));
    });

    let mut scratch = EpScratch::new(engine, &params);
    let mut inplace = acc.clone();
    tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
    let scratch_ns = measure(15, 20, || {
        tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
        std::hint::black_box(&inplace);
    });

    Row {
        id: format!("external_product/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

/// One blind-rotation step (bundle build + external product) — the unit of
/// work MATCHA's pipelines execute per key group (Figure 6a), and where the
/// scratch path's factor-table hoisting pays off.
fn bench_blind_rotate_step<E: FftEngine>(name: &str, engine: &E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let kit = matcha::tfhe::BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let params = *kit.params();
    let decomp = GadgetDecomposer::new(params.decomp_base_log, params.decomp_levels);
    let two_n = params.two_n();
    let bk = kit.bootstrapping_key();
    let group = &bk.groups()[0];
    let exponents: Vec<u32> = (0..group.len()).map(|i| (17 + 31 * i) as u32).collect();
    let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(14));
    let mu = TorusPolynomial::constant(Torus32::from_dyadic(1, 3), params.ring_degree);
    let acc = TrlweCiphertext::encrypt(
        &mu,
        client.ring_key(),
        params.ring_noise_stdev,
        engine,
        &mut sampler,
    );

    let alloc_ns = measure(15, 10, || {
        let bundle = bk.build_bundle(engine, group, &exponents, two_n);
        std::hint::black_box(bundle.external_product(engine, &acc, &decomp));
    });

    let mut scratch = kit.make_scratch(engine);
    let mut inplace = acc.clone();
    scratch.test_vector_mut().copy_from(&mu);
    let scratch_ns = {
        // Drive the same step through the scratch plumbing.
        let c = client.encrypt_with(true, &mut rng);
        kit.blind_rotate_assign(engine, &c, &mut scratch); // warm every buffer
        let groups_per_rotation = bk.groups().len() as f64;
        let total = measure(15, 2, || {
            kit.blind_rotate_assign(engine, &c, &mut scratch);
            std::hint::black_box(scratch.accumulator());
        });
        let _ = &mut inplace;
        total / groups_per_rotation
    };

    Row {
        id: format!("blind_rotate_step/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

fn bench_gate<E: FftEngine>(name: &str, engine: E, unroll: usize) -> Row {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);

    let alloc_ns = measure(7, 3, || {
        std::hint::black_box(server.nand(&a, &b));
    });

    let mut scratch = server.make_scratch();
    let mut out = matcha::LweCiphertext::trivial(Torus32::ZERO, 1);
    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
    let scratch_ns = measure(7, 3, || {
        server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
        std::hint::black_box(&out);
    });

    Row {
        id: format!("nand/{name}"),
        alloc_ns,
        scratch_ns,
    }
}

fn main() {
    let params = ParameterSet::MATCHA;
    let rows = vec![
        bench_external_product("f64", &F64Fft::new(1024), params),
        bench_external_product("approx_int_38", &ApproxIntFft::new(1024, 38), params),
        bench_blind_rotate_step("f64_m2", &F64Fft::new(1024), 2),
        bench_blind_rotate_step("f64_m3", &F64Fft::new(1024), 3),
        bench_gate("f64_m1", F64Fft::new(1024), 1),
        bench_gate("f64_m2", F64Fft::new(1024), 2),
        bench_gate("f64_m3", F64Fft::new(1024), 3),
        bench_gate("approx38_m2", ApproxIntFft::new(1024, 38), 2),
    ];

    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "benchmark", "alloc", "scratch", "speedup"
    );
    for r in &rows {
        println!(
            "{:<32} {:>9.2} µs {:>9.2} µs {:>8.2}x",
            r.id,
            r.alloc_ns / 1e3,
            r.scratch_ns / 1e3,
            r.speedup()
        );
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"id\": \"{}\", \"alloc_ns\": {:.1}, \"scratch_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.id,
            r.alloc_ns,
            r.scratch_ns,
            r.speedup(),
            comma
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_pbs.json", &json).expect("write BENCH_pbs.json");
    println!("\nwrote BENCH_pbs.json");
}
