//! Table 2: MATCHA power and area budget at 2 GHz / 16 nm.
//!
//! Run with: `cargo run -p matcha-bench --bin table2_power_area`

use matcha::accel::area_power;
use matcha::accel::report;
use matcha::MatchaConfig;

fn main() {
    let budget = area_power::design_budget(&MatchaConfig::paper());
    print!("{}", report::table2(&budget));
    println!("\npaper totals: 39.98 W, 36.96 mm^2.");
}
