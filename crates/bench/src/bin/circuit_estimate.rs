//! Circuit-level latency estimates: schedules the gate netlists of the
//! standard circuits onto each platform's pipelines at its best unroll
//! factor — turning per-gate numbers (Fig. 9/10) into application-level
//! estimates, including the paper's §1 "TFHE CPU at 1.25 Hz" story.
//!
//! Run with: `cargo run --release -p matcha-bench --bin circuit_estimate`

use matcha::accel::schedule::{schedule, Netlist};
use matcha::accel::Platform;

fn main() {
    let circuits: Vec<(&str, Netlist)> = vec![
        ("8-bit adder", Netlist::ripple_adder(8)),
        ("32-bit adder", Netlist::ripple_adder(32)),
        ("8-bit equality", Netlist::comparator(8)),
        ("4x4 multiplier", Netlist::multiplier(4)),
        ("8x8 multiplier", Netlist::multiplier(8)),
    ];
    let platforms = [
        Platform::cpu(),
        Platform::gpu(),
        Platform::matcha_paper(),
        Platform::asic(),
    ];

    println!("# Circuit latency estimates (best unroll factor per platform)");
    print!("{:<16} {:>7} {:>6}", "circuit", "gates", "depth");
    for p in &platforms {
        print!(" {:>12}", p.name);
    }
    println!("   [ms]");
    for (name, net) in &circuits {
        print!("{:<16} {:>7} {:>6}", name, net.len(), net.critical_path());
        for p in &platforms {
            let m = p.best_unroll();
            let lat = p.latency_s(m).expect("best unroll is supported");
            let pipes = p.concurrency.round() as usize;
            let r = schedule(net, pipes.max(1), lat);
            print!(" {:>12.2}", r.makespan_s * 1e3);
        }
        println!();
    }
    println!("\n(the paper's §1 TFHE RISC-V CPU executes thousands of gates per cycle;");
    println!(" at MATCHA's per-gate latency a 32-bit add completes in milliseconds");
    println!(" instead of the ~1 s a software TFHE stack needs.)");
}
