//! Figure 8: error (dB) of the approximate multiplication-less integer
//! FFT+IFFT versus the twiddle-factor quantization width, with the
//! double-precision engine as reference.
//!
//! Run with: `cargo run --release -p matcha-bench --bin fig8_fft_error`

use matcha::fft::error::poly_mul_error_db;
use matcha::{ApproxIntFft, F64Fft};

fn main() {
    let n = 1024;
    let trials = 6;
    let seed = 2022;
    println!("# Figure 8: error of approximate FFT & IFFT vs twiddle factor bits");
    println!("{:<14} {:>12}", "twiddle bits", "error (dB)");
    for bits in (10..=62).step_by(4) {
        let db = poly_mul_error_db(&ApproxIntFft::new(n, bits), n, trials, seed);
        println!("{bits:<14} {db:>12.1}");
    }
    let double = poly_mul_error_db(&F64Fft::new(n), n, trials, seed);
    // Our double-precision pipeline rounds to the bit-exact product at these
    // sizes, so its measured error can fall below the half-ulp floor of the
    // 32-bit torus (≈ -193 dB).
    let double = if double.is_finite() { double } else { -193.0 };
    println!("{:<14} {double:>12.1}", "double");
    println!("\npaper anchors: 64-bit DVQTFs ≈ -141 dB; double ≈ -150 dB.");
}
