//! Figure 1: latency breakdown of TFHE gates into IFFT / FFT / other,
//! measured with the built-in phase profiler at the paper's parameters.
//!
//! Run with: `cargo run --release -p matcha-bench --bin fig1_breakdown`

use matcha::tfhe::profile::{self, Phase};
use matcha::{ClientKey, F64Fft, Gate, ParameterSet, ServerKey};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let server = ServerKey::new(&client, F64Fft::new(1024), &mut rng);

    println!("# Figure 1: TFHE gate latency breakdown (%)");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "gate", "IFFT", "FFT", "KS", "other", "IFFT calls", "FFT calls"
    );
    for gate in [Gate::And, Gate::Or, Gate::Nand, Gate::Xor, Gate::Xnor] {
        let a = client.encrypt_with(true, &mut rng);
        let b = client.encrypt_with(false, &mut rng);
        profile::start();
        let out = server.apply(gate, &a, &b);
        let snap = profile::snapshot();
        profile::stop();
        assert_eq!(client.decrypt(&out), gate.eval(true, false));
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10} {:>10}",
            gate.to_string(),
            snap.fraction(Phase::Ifft) * 100.0,
            snap.fraction(Phase::Fft) * 100.0,
            snap.fraction(Phase::KeySwitch) * 100.0,
            (snap.fraction(Phase::Other) + snap.fraction(Phase::TgswScale)) * 100.0,
            snap.ifft_calls,
            snap.fft_calls,
        );
    }
    println!("\npaper: bootstrapping ≈ 99% of gate latency; FFT+IFFT ≈ 80% of the bootstrap;");
    println!(
        "IFFT (coefficient→Lagrange) is invoked ~{}x more often than FFT.",
        6 / 2
    );
}
