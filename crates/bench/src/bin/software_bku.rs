//! Live software BKU sweep at the paper's parameters — our measured
//! counterpart of the CPU curve in Figure 9 (m = 2 helps; aggressive
//! unrolling stops helping without a pipelined datapath).
//!
//! Run with: `cargo run --release -p matcha-bench --bin software_bku`

use matcha::tfhe::BootstrapKit;
use matcha::{ClientKey, F64Fft, ParameterSet, Torus32};
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
    let engine = F64Fft::new(1024);
    let c = client.encrypt_with(true, &mut rng);
    let mu = Torus32::from_dyadic(1, 3);
    let trials = 5;

    println!("# Software bootstrap latency vs BKU factor (this machine, 1 thread)");
    println!(
        "{:<4} {:>10} {:>14} {:>14}",
        "m", "BK keys", "keygen (s)", "bootstrap (ms)"
    );
    for m in 1..=4usize {
        let t0 = Instant::now();
        let kit = BootstrapKit::generate(&client, &engine, m, &mut rng);
        let keygen = t0.elapsed().as_secs_f64();
        let out = kit.bootstrap(&engine, &c, mu); // warm up
        assert!(client.decrypt(&out));
        let t0 = Instant::now();
        for _ in 0..trials {
            std::hint::black_box(kit.bootstrap(&engine, &c, mu));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / trials as f64;
        println!(
            "{:<4} {:>10} {:>14.2} {:>14.2}",
            m,
            kit.bootstrapping_key().key_count(),
            keygen,
            ms
        );
    }
    println!("\npaper CPU row: 13.1 ms (m=1), 6.67 ms (m=2), m>=3 regresses.");
}
