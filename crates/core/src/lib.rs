//! # MATCHA — a fast and energy-efficient TFHE accelerator, reproduced
//!
//! This crate is the facade of a full Rust reproduction of *MATCHA: A Fast
//! and Energy-Efficient Accelerator for Fully Homomorphic Encryption over
//! the Torus* (Jiang, Lou, Joshi — DAC 2022). It re-exports the four layers
//! of the workspace:
//!
//! * [`fft`] — negacyclic FFT engines, including the paper's approximate
//!   multiplication-less integer FFT with dyadic-value-quantized twiddle
//!   factors ([`ApproxIntFft`]).
//! * [`tfhe`] — the TFHE scheme itself (LWE/TRLWE/TRGSW, gate
//!   bootstrapping, key switching, Boolean gates) with generalized
//!   bootstrapping key unrolling ([`ServerKey::with_unrolling`]), plus the
//!   serving stack: the persistent heterogeneous gate-batch pool
//!   ([`GateBatchPool`]), executable wave-scheduled netlists
//!   ([`CircuitNetlist`]) and the multi-client [`CircuitServer`].
//! * [`circuits`] — homomorphic adders, comparators, multiplexers and a
//!   small ALU built on the gate API.
//! * [`accel`] — the cycle-level model of the MATCHA hardware and the
//!   paper's CPU/GPU/FPGA/ASIC baselines (Figures 9–11, Table 2).
//!
//! # Quickstart
//!
//! ```
//! use matcha::{ApproxIntFft, ClientKey, ParameterSet, ServerKey};
//! use rand::SeedableRng;
//!
//! // TEST_FAST keeps this doctest quick; ParameterSet::MATCHA is the
//! // paper's 110-bit-security setting.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
//!
//! // The evaluator uses the approximate multiplication-less integer FFT
//! // with 40-bit twiddles and 2× bootstrapping key unrolling.
//! let engine = ApproxIntFft::new(client.params().ring_degree, 40);
//! let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
//!
//! let a = client.encrypt_with(true, &mut rng);
//! let b = client.encrypt_with(false, &mut rng);
//! let c = server.nand(&a, &b);
//! assert!(client.decrypt(&c));
//! ```

pub use matcha_accel as accel;
pub use matcha_circuits as circuits;
pub use matcha_fft as fft;
pub use matcha_math as math;
pub use matcha_tfhe as tfhe;

pub use matcha_accel::{MatchaConfig, WorkloadParams};
pub use matcha_fft::{ApproxIntFft, DepthFirstFft, F64Fft, FftEngine};
pub use matcha_math::Torus32;
pub use matcha_tfhe::{
    CircuitNetlist, CircuitOutcome, CircuitServer, ClientKey, Gate, GateBatchPool, GateTask,
    LweCiphertext, ParameterSet, ServerKey, ValueSlab,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        // The paper's parameters are reachable through the facade.
        let p = crate::ParameterSet::MATCHA;
        assert_eq!(p.ring_degree, 1024);
        let cfg = crate::MatchaConfig::paper();
        assert_eq!(cfg.pipelines(), 8);
    }
}
