//! Lints every shipped circuit lowering and prints its pre-execution
//! certificate: structural findings, per-output failure-probability
//! bounds, critical-path ranks, and what `simplify` would save.
//!
//! Exits non-zero if any lowering carries an `Error`-severity lint — the
//! CI `netlist-lint` job runs this binary to keep the library admissible
//! under the default analysis policy.

use matcha_circuits::analysis;
use matcha_tfhe::params::ParameterSet;
use matcha_tfhe::Severity;

fn main() {
    // Paper-grade parameters, classic BKU unrolling, one batch pool of
    // four pipelines at a nominal 1 ms per bootstrap.
    let reports = analysis::analyze_library(&ParameterSet::MATCHA, 2, 4, 1e-3);
    let mut errors = 0usize;

    for a in &reports {
        let cost = &a.report.cost;
        println!(
            "{:<12} bootstraps {:>3}  depth {:>2}  critical path {:>2} units  \
             predicted {:>8.3} ms  simplify {} -> {} bootstraps",
            a.name,
            cost.bootstraps,
            cost.depth,
            cost.critical_path_units,
            a.predicted.makespan_s * 1e3,
            a.simplified.bootstraps_before,
            a.simplified.bootstraps_after,
        );
        for o in &a.report.noise.outputs {
            println!(
                "  output node {:>3}: variance {:.3e}, failure bound {:.3e}",
                o.node, o.variance, o.failure_prob
            );
        }
        if a.report.lints.is_empty() {
            println!("  lint-clean");
        }
        for l in &a.report.lints {
            println!("  {l}");
            if l.kind.severity() >= Severity::Error {
                errors += 1;
            }
        }
    }

    if errors > 0 {
        eprintln!("netlist-lint: {errors} error-severity finding(s)");
        std::process::exit(1);
    }
    println!("netlist-lint: {} lowerings clean", reports.len());
}
