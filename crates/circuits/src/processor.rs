//! A tiny fully-encrypted register machine — a working miniature of the
//! TFHE processors that motivate MATCHA (§1 cites a five-stage TFHE
//! RISC-V pipeline running at 1.25 Hz; every cycle is thousands of
//! bootstrapped gates, hence the accelerator).
//!
//! The machine's state (registers) and each instruction's *operation* are
//! encrypted; the evaluator sees only which registers an instruction
//! touches, never what it computes or what the data is. Conditional moves
//! give data-dependent control flow without branching on plaintext.

use crate::word::EncryptedWord;
use crate::{alu, mux};
use matcha_fft::FftEngine;
use matcha_tfhe::{ClientKey, LweCiphertext, ServerKey};
use rand::Rng;

/// An encrypted 2-bit opcode for the ALU.
#[derive(Clone, Debug)]
pub struct EncryptedOpcode {
    bits: [LweCiphertext; 2],
}

impl EncryptedOpcode {
    /// Encrypts an ALU opcode under the client key.
    pub fn encrypt<R: Rng>(client: &ClientKey, op: alu::AluOp, rng: &mut R) -> Self {
        let b = op.opcode_bits();
        Self {
            bits: [
                client.encrypt_with(b[0], rng),
                client.encrypt_with(b[1], rng),
            ],
        }
    }

    /// The opcode bits (LSB first).
    pub fn bits(&self) -> &[LweCiphertext; 2] {
        &self.bits
    }
}

/// One instruction of the register machine.
#[derive(Clone, Debug)]
pub enum Instruction {
    /// `r[dst] ← ALU(op, r[src1], r[src2])` with an *encrypted* operation.
    Alu {
        /// Encrypted ALU opcode.
        op: EncryptedOpcode,
        /// Destination register index.
        dst: usize,
        /// First source register index.
        src1: usize,
        /// Second source register index.
        src2: usize,
    },
    /// `r[dst] ← flag ? r[src_true] : r[src_false]` with an encrypted flag.
    CMov {
        /// Encrypted selection flag.
        flag: LweCiphertext,
        /// Destination register index.
        dst: usize,
        /// Selected when the flag is true.
        src_true: usize,
        /// Selected when the flag is false.
        src_false: usize,
    },
}

/// The encrypted register machine.
#[derive(Clone, Debug)]
pub struct Processor {
    registers: Vec<EncryptedWord>,
    width: usize,
}

impl Processor {
    /// Creates a machine from initial (encrypted) register contents.
    ///
    /// # Panics
    ///
    /// Panics if the registers are empty or have mismatched widths.
    pub fn new(registers: Vec<EncryptedWord>) -> Self {
        assert!(!registers.is_empty(), "need at least one register");
        let width = registers[0].len();
        assert!(width > 0, "zero-width registers");
        assert!(
            registers.iter().all(|r| r.len() == width),
            "register widths differ"
        );
        Self { registers, width }
    }

    /// Number of registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Register word width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Read-only view of a register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn register(&self, index: usize) -> &EncryptedWord {
        &self.registers[index]
    }

    /// Executes one instruction.
    ///
    /// # Panics
    ///
    /// Panics if any register index is out of range.
    pub fn step<E: FftEngine>(&mut self, server: &ServerKey<E>, instr: &Instruction) {
        match instr {
            Instruction::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let out = alu::execute(
                    server,
                    op.bits(),
                    &self.registers[*src1],
                    &self.registers[*src2],
                );
                self.registers[*dst] = out;
            }
            Instruction::CMov {
                flag,
                dst,
                src_true,
                src_false,
            } => {
                let out = mux::select_word(
                    server,
                    flag,
                    &self.registers[*src_true],
                    &self.registers[*src_false],
                );
                self.registers[*dst] = out;
            }
        }
    }

    /// Executes a straight-line program.
    pub fn run<E: FftEngine>(&mut self, server: &ServerKey<E>, program: &[Instruction]) {
        for instr in program {
            self.step(server, instr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alu::AluOp;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn single_alu_instruction() {
        let (client, server, mut rng) = setup(901);
        let regs = vec![
            word::encrypt(&client, 5, 3, &mut rng),
            word::encrypt(&client, 3, 3, &mut rng),
            word::encrypt(&client, 0, 3, &mut rng),
        ];
        let mut cpu = Processor::new(regs);
        let instr = Instruction::Alu {
            op: EncryptedOpcode::encrypt(&client, AluOp::Add, &mut rng),
            dst: 2,
            src1: 0,
            src2: 1,
        };
        cpu.step(&server, &instr);
        assert_eq!(word::decrypt(&client, cpu.register(2)), 0); // 5+3 mod 8
        assert_eq!(word::decrypt(&client, cpu.register(0)), 5); // sources intact
    }

    #[test]
    fn program_with_conditional_move() {
        // r2 = r0 XOR r1; r0 = flag ? r2 : r0.
        let (client, server, mut rng) = setup(902);
        let regs = vec![
            word::encrypt(&client, 0b101, 3, &mut rng),
            word::encrypt(&client, 0b011, 3, &mut rng),
            word::encrypt(&client, 0, 3, &mut rng),
        ];
        for flag in [true, false] {
            let mut cpu = Processor::new(regs.clone());
            let program = vec![
                Instruction::Alu {
                    op: EncryptedOpcode::encrypt(&client, AluOp::Xor, &mut rng),
                    dst: 2,
                    src1: 0,
                    src2: 1,
                },
                Instruction::CMov {
                    flag: client.encrypt_with(flag, &mut rng),
                    dst: 0,
                    src_true: 2,
                    src_false: 0,
                },
            ];
            cpu.run(&server, &program);
            let expected = if flag { 0b110 } else { 0b101 };
            assert_eq!(
                word::decrypt(&client, cpu.register(0)),
                expected,
                "flag={flag}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_register_widths_rejected() {
        let (client, _, mut rng) = setup(903);
        let regs = vec![
            word::encrypt(&client, 1, 2, &mut rng),
            word::encrypt(&client, 1, 3, &mut rng),
        ];
        let _ = Processor::new(regs);
    }
}
