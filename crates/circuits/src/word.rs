//! Multi-bit encrypted words (little-endian bit vectors of LWE samples).

use matcha_tfhe::{ClientKey, LweCiphertext};
use rand::Rng;

/// An encrypted fixed-width word, least-significant bit first.
pub type EncryptedWord = Vec<LweCiphertext>;

/// Encrypts the low `width` bits of `value`, LSB first.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds 64.
///
/// # Examples
///
/// ```
/// use matcha_circuits::word;
/// use matcha_tfhe::{ClientKey, params::ParameterSet};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
/// let w = word::encrypt(&client, 0b1010, 4, &mut rng);
/// assert_eq!(word::decrypt(&client, &w), 0b1010);
/// ```
pub fn encrypt<R: Rng>(client: &ClientKey, value: u64, width: usize, rng: &mut R) -> EncryptedWord {
    assert!((1..=64).contains(&width), "width {width} outside 1..=64");
    (0..width)
        .map(|i| client.encrypt_with((value >> i) & 1 == 1, rng))
        .collect()
}

/// Decrypts a word back to its integer value (LSB first).
///
/// # Panics
///
/// Panics if the word is wider than 64 bits.
pub fn decrypt(client: &ClientKey, word: &[LweCiphertext]) -> u64 {
    assert!(word.len() <= 64, "word wider than 64 bits");
    word.iter()
        .enumerate()
        .map(|(i, bit)| u64::from(client.decrypt(bit)) << i)
        .sum()
}

/// The largest value a `width`-bit word can hold.
pub fn max_value(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;

    #[test]
    fn roundtrip_various_values() {
        let (client, _, mut rng) = setup(101);
        for (value, width) in [(0u64, 4), (15, 4), (0b1011, 4), (200, 8), (1, 1)] {
            let w = encrypt(&client, value, width, &mut rng);
            assert_eq!(decrypt(&client, &w), value, "value={value} width={width}");
            assert_eq!(w.len(), width);
        }
    }

    #[test]
    fn truncates_to_width() {
        let (client, _, mut rng) = setup(102);
        let w = encrypt(&client, 0xFF, 4, &mut rng);
        assert_eq!(decrypt(&client, &w), 0xF);
    }

    #[test]
    fn max_value_formula() {
        assert_eq!(max_value(4), 15);
        assert_eq!(max_value(1), 1);
        assert_eq!(max_value(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "outside 1..=64")]
    fn zero_width_rejected() {
        let (client, _, mut rng) = setup(103);
        let _ = encrypt(&client, 0, 0, &mut rng);
    }
}
