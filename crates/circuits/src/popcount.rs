//! Population count (Hamming weight) with a carry-save adder tree.

use crate::adder;
use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// Counts the set bits of `bits`, returning a word wide enough to hold the
/// count (`⌈log2(n+1)⌉` bits).
///
/// Uses full adders as 3:2 compressors: triples of same-weight bits reduce
/// to one sum and one carry bit until every weight class has a single bit.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn popcount<E: FftEngine>(server: &ServerKey<E>, bits: &[LweCiphertext]) -> EncryptedWord {
    assert!(!bits.is_empty(), "empty input");
    let out_width = (usize::BITS - bits.len().leading_zeros()) as usize;
    // columns[w] holds the bits of weight 2^w still to be compressed.
    let mut columns: Vec<Vec<LweCiphertext>> = vec![Vec::new(); out_width + 1];
    columns[0] = bits.to_vec();

    for w in 0..out_width {
        while columns[w].len() >= 3 {
            let a = columns[w].pop().expect("len checked");
            let b = columns[w].pop().expect("len checked");
            let c = columns[w].pop().expect("len checked");
            let (sum, carry) = adder::full_adder(server, &a, &b, &c);
            columns[w].push(sum);
            columns[w + 1].push(carry);
        }
        if columns[w].len() == 2 {
            let a = columns[w].pop().expect("len checked");
            let b = columns[w].pop().expect("len checked");
            let (sum, carry) = adder::half_adder(server, &a, &b);
            columns[w].push(sum);
            columns[w + 1].push(carry);
        }
    }

    (0..out_width)
        .map(|w| {
            columns[w]
                .first()
                .cloned()
                .unwrap_or_else(|| server.trivial(false))
        })
        .collect()
}

/// Parity (XOR reduction) of a bit slice — cheaper than a full popcount
/// when only the low bit of the count matters.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn parity<E: FftEngine>(server: &ServerKey<E>, bits: &[LweCiphertext]) -> LweCiphertext {
    assert!(!bits.is_empty(), "empty input");
    let mut acc = bits[0].clone();
    for b in &bits[1..] {
        acc = server.xor(&acc, b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn popcount_of_nibbles() {
        let (client, server, mut rng) = setup(801);
        for value in [0u64, 0b1111, 0b1010, 0b0001, 0b0111] {
            let bits = word::encrypt(&client, value, 4, &mut rng);
            let count = popcount(&server, &bits);
            assert_eq!(
                word::decrypt(&client, &count),
                value.count_ones() as u64,
                "popcount({value:04b})"
            );
        }
    }

    #[test]
    fn popcount_single_bit() {
        let (client, server, mut rng) = setup(802);
        let bits = vec![client.encrypt_with(true, &mut rng)];
        let count = popcount(&server, &bits);
        assert_eq!(word::decrypt(&client, &count), 1);
    }

    #[test]
    fn parity_matches_popcount_lsb() {
        let (client, server, mut rng) = setup(803);
        for value in [0b110u64, 0b111, 0b000] {
            let bits = word::encrypt(&client, value, 3, &mut rng);
            let p = parity(&server, &bits);
            assert_eq!(
                client.decrypt(&p),
                value.count_ones() % 2 == 1,
                "parity({value:03b})"
            );
        }
    }
}
