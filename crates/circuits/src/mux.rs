//! Word-level multiplexers and selection trees.

use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// Selects `a` when `sel` is true, else `b`, bit by bit.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn select_word<E: FftEngine>(
    server: &ServerKey<E>,
    sel: &LweCiphertext,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| server.mux(sel, x, y))
        .collect()
}

/// Selects one of `2^k` words by an encrypted `k`-bit index (LSB first):
/// a balanced mux tree of `k` levels.
///
/// # Panics
///
/// Panics if `words.len() != 2^index.len()`, or if the words have unequal
/// widths.
pub fn select_one_of<E: FftEngine>(
    server: &ServerKey<E>,
    index: &[LweCiphertext],
    words: &[EncryptedWord],
) -> EncryptedWord {
    assert_eq!(
        words.len(),
        1usize << index.len(),
        "need exactly 2^k words for a k-bit index"
    );
    let width = words[0].len();
    assert!(words.iter().all(|w| w.len() == width), "word widths differ");
    let mut layer: Vec<EncryptedWord> = words.to_vec();
    for bit in index {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            // bit == 1 selects the odd (higher-index) word.
            next.push(select_word(server, bit, &pair[1], &pair[0]));
        }
        layer = next;
    }
    layer.pop().expect("nonempty tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn word_mux_selects() {
        let (client, server, mut rng) = setup(401);
        let a = word::encrypt(&client, 0b101, 3, &mut rng);
        let b = word::encrypt(&client, 0b010, 3, &mut rng);
        for sel in [true, false] {
            let cs = client.encrypt_with(sel, &mut rng);
            let out = select_word(&server, &cs, &a, &b);
            assert_eq!(
                word::decrypt(&client, &out),
                if sel { 0b101 } else { 0b010 },
                "sel={sel}"
            );
        }
    }

    #[test]
    fn four_way_selection() {
        let (client, server, mut rng) = setup(402);
        let words: Vec<_> = (0..4u64)
            .map(|v| word::encrypt(&client, v + 4, 3, &mut rng))
            .collect();
        for idx in 0..4u64 {
            let index = word::encrypt(&client, idx, 2, &mut rng);
            let out = select_one_of(&server, &index, &words);
            assert_eq!(word::decrypt(&client, &out), idx + 4, "idx={idx}");
        }
    }

    #[test]
    #[should_panic(expected = "2^k words")]
    fn wrong_word_count_rejected() {
        let (client, server, mut rng) = setup(403);
        let words = vec![word::encrypt(&client, 0, 2, &mut rng)];
        let index = word::encrypt(&client, 0, 1, &mut rng);
        let _ = select_one_of(&server, &index, &words);
    }
}
