//! A small encrypted ALU — the essence of the TFHE processors that motivate
//! MATCHA (§1's 1.25 Hz TFHE RISC-V CPU).
//!
//! The ALU computes all four operations and selects the requested result
//! with a mux tree driven by an *encrypted* opcode, so the evaluator learns
//! neither the operands nor which operation ran.

use crate::word::EncryptedWord;
use crate::{adder, mux};
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// ALU operations, encoded in two opcode bits (LSB first).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AluOp {
    /// `a + b` (wrapping).
    Add = 0b00,
    /// `a − b` (wrapping).
    Sub = 0b01,
    /// Bitwise AND.
    And = 0b10,
    /// Bitwise XOR.
    Xor = 0b11,
}

impl AluOp {
    /// The plaintext semantics, for test oracles.
    pub fn eval(self, a: u64, b: u64, width: usize) -> u64 {
        let mask = crate::word::max_value(width);
        match self {
            AluOp::Add => (a.wrapping_add(b)) & mask,
            AluOp::Sub => (a.wrapping_sub(b)) & mask,
            AluOp::And => a & b,
            AluOp::Xor => (a ^ b) & mask,
        }
    }

    /// The two opcode bits, LSB first.
    pub fn opcode_bits(self) -> [bool; 2] {
        let code = self as u8;
        [code & 1 == 1, code & 2 == 2]
    }
}

/// Evaluates the ALU under encryption: `opcode` is a 2-bit encrypted
/// operation selector.
///
/// # Panics
///
/// Panics if the operand widths differ or `opcode.len() != 2`.
pub fn execute<E: FftEngine>(
    server: &ServerKey<E>,
    opcode: &[LweCiphertext],
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert_eq!(opcode.len(), 2, "the ALU has a 2-bit opcode");
    let add = adder::add(server, a, b).sum;
    let sub = adder::sub(server, a, b).sum;
    let and: EncryptedWord = a.iter().zip(b).map(|(x, y)| server.and(x, y)).collect();
    let xor: EncryptedWord = a.iter().zip(b).map(|(x, y)| server.xor(x, y)).collect();
    // Opcode order matches the enum discriminants (Add, Sub, And, Xor).
    mux::select_one_of(server, opcode, &[add, sub, and, xor])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn opcode_bits_roundtrip() {
        assert_eq!(AluOp::Add.opcode_bits(), [false, false]);
        assert_eq!(AluOp::Sub.opcode_bits(), [true, false]);
        assert_eq!(AluOp::And.opcode_bits(), [false, true]);
        assert_eq!(AluOp::Xor.opcode_bits(), [true, true]);
    }

    #[test]
    fn plaintext_oracle() {
        assert_eq!(AluOp::Add.eval(7, 9, 4), 0);
        assert_eq!(AluOp::Sub.eval(3, 5, 4), 14);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010, 4), 0b1000);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010, 4), 0b0110);
    }

    #[test]
    fn encrypted_alu_all_ops() {
        let (client, server, mut rng) = setup(601);
        let width = 3;
        let (x, y) = (0b101u64, 0b011u64);
        let a = word::encrypt(&client, x, width, &mut rng);
        let b = word::encrypt(&client, y, width, &mut rng);
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor] {
            let bits = op.opcode_bits();
            let opcode = vec![
                client.encrypt_with(bits[0], &mut rng),
                client.encrypt_with(bits[1], &mut rng),
            ];
            let out = execute(&server, &opcode, &a, &b);
            assert_eq!(
                word::decrypt(&client, &out),
                op.eval(x, y, width),
                "{op:?}({x:b}, {y:b})"
            );
        }
    }
}
