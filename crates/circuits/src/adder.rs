//! Ripple-carry arithmetic on encrypted words.
//!
//! A full adder costs 5 bootstrapped gates in the naive XOR/AND/OR
//! formulation; an n-bit add is therefore ~5n TFHE gates, each dominated by
//! a bootstrap — exactly the workload MATCHA's throughput numbers
//! (Figure 10) are about.

use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// The outputs of an addition: the sum word and the final carry.
#[derive(Clone, Debug)]
pub struct AddResult {
    /// Sum bits, LSB first, same width as the inputs.
    pub sum: EncryptedWord,
    /// Carry out of the most significant bit.
    pub carry: LweCiphertext,
}

/// One-bit half adder: returns `(sum, carry)`.
pub fn half_adder<E: FftEngine>(
    server: &ServerKey<E>,
    a: &LweCiphertext,
    b: &LweCiphertext,
) -> (LweCiphertext, LweCiphertext) {
    (server.xor(a, b), server.and(a, b))
}

/// One-bit full adder: returns `(sum, carry_out)`.
pub fn full_adder<E: FftEngine>(
    server: &ServerKey<E>,
    a: &LweCiphertext,
    b: &LweCiphertext,
    carry_in: &LweCiphertext,
) -> (LweCiphertext, LweCiphertext) {
    let axb = server.xor(a, b);
    let sum = server.xor(&axb, carry_in);
    let and_ab = server.and(a, b);
    let and_cx = server.and(&axb, carry_in);
    let carry = server.or(&and_ab, &and_cx);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width words.
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn add<E: FftEngine>(server: &ServerKey<E>, a: &EncryptedWord, b: &EncryptedWord) -> AddResult {
    add_with_carry(server, a, b, &server.trivial(false))
}

/// Ripple-carry addition with an explicit carry-in.
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn add_with_carry<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
    carry_in: &LweCiphertext,
) -> AddResult {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let mut carry = carry_in.clone();
    let mut sum = Vec::with_capacity(a.len());
    for (abit, bbit) in a.iter().zip(b.iter()) {
        let (s, c) = full_adder(server, abit, bbit, &carry);
        sum.push(s);
        carry = c;
    }
    AddResult { sum, carry }
}

/// Two's-complement subtraction `a − b`: returns the difference and a
/// carry that equals `1` when `a ≥ b` (no borrow).
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn sub<E: FftEngine>(server: &ServerKey<E>, a: &EncryptedWord, b: &EncryptedWord) -> AddResult {
    let not_b: EncryptedWord = b.iter().map(|bit| server.not(bit)).collect();
    add_with_carry(server, a, &not_b, &server.trivial(true))
}

/// Adds a plaintext constant 1 (increment).
pub fn increment<E: FftEngine>(server: &ServerKey<E>, a: &EncryptedWord) -> AddResult {
    let zero: EncryptedWord = (0..a.len()).map(|_| server.trivial(false)).collect();
    add_with_carry(server, a, &zero, &server.trivial(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn full_adder_truth_table() {
        let (client, server, mut rng) = setup(201);
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let ca = client.encrypt_with(a, &mut rng);
                    let cb = client.encrypt_with(b, &mut rng);
                    let cc = client.encrypt_with(cin, &mut rng);
                    let (s, cout) = full_adder(&server, &ca, &cb, &cc);
                    let total = u8::from(a) + u8::from(b) + u8::from(cin);
                    assert_eq!(client.decrypt(&s), total & 1 == 1, "{a} {b} {cin}");
                    assert_eq!(client.decrypt(&cout), total >= 2, "{a} {b} {cin}");
                }
            }
        }
    }

    #[test]
    fn four_bit_addition() {
        let (client, server, mut rng) = setup(202);
        for (x, y) in [(3u64, 5u64), (15, 1), (9, 9), (0, 0)] {
            let a = word::encrypt(&client, x, 4, &mut rng);
            let b = word::encrypt(&client, y, 4, &mut rng);
            let r = add(&server, &a, &b);
            assert_eq!(word::decrypt(&client, &r.sum), (x + y) & 0xF, "{x}+{y}");
            assert_eq!(client.decrypt(&r.carry), x + y > 15, "carry {x}+{y}");
        }
    }

    #[test]
    fn subtraction_and_borrow() {
        let (client, server, mut rng) = setup(203);
        for (x, y) in [(9u64, 4u64), (4, 9), (7, 7), (0, 1)] {
            let a = word::encrypt(&client, x, 4, &mut rng);
            let b = word::encrypt(&client, y, 4, &mut rng);
            let r = sub(&server, &a, &b);
            assert_eq!(
                word::decrypt(&client, &r.sum),
                x.wrapping_sub(y) & 0xF,
                "{x}-{y}"
            );
            assert_eq!(client.decrypt(&r.carry), x >= y, "no-borrow {x}-{y}");
        }
    }

    #[test]
    fn increment_wraps() {
        let (client, server, mut rng) = setup(204);
        let a = word::encrypt(&client, 7, 3, &mut rng);
        let r = increment(&server, &a);
        assert_eq!(word::decrypt(&client, &r.sum), 0);
        assert!(client.decrypt(&r.carry));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_widths_rejected() {
        let (client, server, mut rng) = setup(205);
        let a = word::encrypt(&client, 1, 2, &mut rng);
        let b = word::encrypt(&client, 1, 3, &mut rng);
        let _ = add(&server, &a, &b);
    }
}
