//! Encrypted comparisons on words.

use crate::adder;
use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// Bitwise equality: one XNOR per bit plus an AND reduction tree.
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn eq<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> LweCiphertext {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let mut layer: Vec<LweCiphertext> = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| server.xnor(x, y))
        .collect();
    // Balanced AND tree keeps the multiplicative depth logarithmic (depth
    // is free in TFHE thanks to per-gate bootstrapping, but the tree halves
    // latency on parallel hardware like MATCHA's 8 pipelines).
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.chunks(2);
        for pair in &mut it {
            match pair {
                [x, y] => next.push(server.and(x, y)),
                [x] => next.push(x.clone()),
                _ => unreachable!(),
            }
        }
        layer = next;
    }
    layer.pop().expect("nonempty reduction")
}

/// Unsigned `a < b`, computed as the borrow of `a − b`.
pub fn lt<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> LweCiphertext {
    let diff = adder::sub(server, a, b);
    // carry == 1 ⇔ a ≥ b, so a < b is its negation (free NOT).
    server.not(&diff.carry)
}

/// Unsigned `a ≥ b`.
pub fn ge<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> LweCiphertext {
    adder::sub(server, a, b).carry
}

/// Unsigned `a > b` = `b < a`.
pub fn gt<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> LweCiphertext {
    lt(server, b, a)
}

/// Unsigned `a ≤ b` = `b ≥ a`.
pub fn le<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> LweCiphertext {
    ge(server, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn equality() {
        let (client, server, mut rng) = setup(301);
        for (x, y) in [(5u64, 5u64), (5, 6), (0, 0), (7, 0)] {
            let a = word::encrypt(&client, x, 3, &mut rng);
            let b = word::encrypt(&client, y, 3, &mut rng);
            assert_eq!(client.decrypt(&eq(&server, &a, &b)), x == y, "{x}=={y}");
        }
    }

    #[test]
    fn orderings() {
        let (client, server, mut rng) = setup(302);
        for (x, y) in [(2u64, 5u64), (5, 2), (4, 4), (0, 7)] {
            let a = word::encrypt(&client, x, 3, &mut rng);
            let b = word::encrypt(&client, y, 3, &mut rng);
            assert_eq!(client.decrypt(&lt(&server, &a, &b)), x < y, "{x}<{y}");
            assert_eq!(client.decrypt(&ge(&server, &a, &b)), x >= y, "{x}>={y}");
            assert_eq!(client.decrypt(&gt(&server, &a, &b)), x > y, "{x}>{y}");
            assert_eq!(client.decrypt(&le(&server, &a, &b)), x <= y, "{x}<={y}");
        }
    }

    #[test]
    fn eq_on_single_bit() {
        let (client, server, mut rng) = setup(303);
        let a = word::encrypt(&client, 1, 1, &mut rng);
        let b = word::encrypt(&client, 1, 1, &mut rng);
        assert!(client.decrypt(&eq(&server, &a, &b)));
    }
}
