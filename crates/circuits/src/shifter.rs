//! Barrel shifter on encrypted words.
//!
//! Shifting by a *plaintext* amount is free (bit re-wiring); shifting by an
//! *encrypted* amount uses one mux layer per index bit, the classic barrel
//! construction. Positions whose shifted source falls off the word would
//! mux in a known zero, so the two-bootstrap MUX collapses to a single
//! `¬bit ∧ cur` there — in particular a whole level collapses once
//! `2^j ≥ width`. [`netlist::shl`](crate::netlist::shl)/[`shr`](crate::netlist::shr)
//! build the same shape, so the scheduled path stays bit-identical.

use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{Gate, LweCiphertext, ServerKey};

/// Logical left shift by a plaintext amount (zero fill, free).
pub fn shl_const<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: usize,
) -> EncryptedWord {
    let width = a.len();
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        if i < amount {
            out.push(server.trivial(false));
        } else {
            out.push(a[i - amount].clone());
        }
    }
    out
}

/// Logical right shift by a plaintext amount (zero fill, free).
pub fn shr_const<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: usize,
) -> EncryptedWord {
    let width = a.len();
    (0..width)
        .map(|i| {
            if i + amount < width {
                a[i + amount].clone()
            } else {
                server.trivial(false)
            }
        })
        .collect()
}

/// Barrel left shift by an encrypted amount (LSB-first index bits).
///
/// Level `j` conditionally shifts by `2^j`, so `k` index bits cover shifts
/// `0..2^k − 1`; shifts ≥ width produce zero.
pub fn shl<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: &[LweCiphertext],
) -> EncryptedWord {
    let width = a.len();
    let mut cur = a.to_vec();
    for (j, bit) in amount.iter().enumerate() {
        let shift = 1usize.checked_shl(j as u32).unwrap_or(usize::MAX);
        cur = (0..width)
            .map(|i| {
                if i >= shift {
                    server.mux(bit, &cur[i - shift], &cur[i])
                } else {
                    // The shifted-in source is a known zero:
                    // bit ? 0 : cur[i]  =  ¬bit ∧ cur[i], one bootstrap.
                    server.apply(Gate::AndNY, bit, &cur[i])
                }
            })
            .collect();
    }
    cur
}

/// Barrel right shift by an encrypted amount (LSB-first index bits).
pub fn shr<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: &[LweCiphertext],
) -> EncryptedWord {
    let width = a.len();
    let mut cur = a.to_vec();
    for (j, bit) in amount.iter().enumerate() {
        let shift = 1usize.checked_shl(j as u32).unwrap_or(usize::MAX);
        cur = (0..width)
            .map(|i| match i.checked_add(shift).filter(|&src| src < width) {
                Some(src) => server.mux(bit, &cur[src], &cur[i]),
                None => server.apply(Gate::AndNY, bit, &cur[i]),
            })
            .collect();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mux;
    use crate::testutil::setup;
    use crate::word;

    /// The pre-collapse barrel: a full two-bootstrap `select_word` layer
    /// per amount bit, muxing against an explicitly built shifted word.
    fn all_mux_shl<E: matcha_fft::FftEngine>(
        server: &ServerKey<E>,
        a: &EncryptedWord,
        amount: &[LweCiphertext],
    ) -> EncryptedWord {
        let mut cur = a.to_vec();
        for (j, bit) in amount.iter().enumerate() {
            let shifted = shl_const(
                server,
                &cur,
                1usize.checked_shl(j as u32).unwrap_or(usize::MAX),
            );
            cur = mux::select_word(server, bit, &shifted, &cur);
        }
        cur
    }

    fn all_mux_shr<E: matcha_fft::FftEngine>(
        server: &ServerKey<E>,
        a: &EncryptedWord,
        amount: &[LweCiphertext],
    ) -> EncryptedWord {
        let mut cur = a.to_vec();
        for (j, bit) in amount.iter().enumerate() {
            let shifted = shr_const(
                server,
                &cur,
                1usize.checked_shl(j as u32).unwrap_or(usize::MAX),
            );
            cur = mux::select_word(server, bit, &shifted, &cur);
        }
        cur
    }

    #[test]
    fn collapsed_levels_match_the_all_mux_barrel() {
        // 3 amount bits over a 4-bit word: the 2^2 = 4 ≥ width level is
        // entirely zero-fill, and lower levels collapse per position.
        let (client, server, mut rng) = setup(504);
        let a = word::encrypt(&client, 0b1011, 4, &mut rng);
        for amt in 0..8u64 {
            let enc_amt = word::encrypt(&client, amt, 3, &mut rng);
            let new_l = shl(&server, &a, &enc_amt);
            let old_l = all_mux_shl(&server, &a, &enc_amt);
            assert_eq!(
                word::decrypt(&client, &new_l),
                word::decrypt(&client, &old_l),
                "shl amt={amt}"
            );
            let new_r = shr(&server, &a, &enc_amt);
            let old_r = all_mux_shr(&server, &a, &enc_amt);
            assert_eq!(
                word::decrypt(&client, &new_r),
                word::decrypt(&client, &old_r),
                "shr amt={amt}"
            );
            let expected_l = if amt >= 4 { 0 } else { (0b1011 << amt) & 0xF };
            assert_eq!(word::decrypt(&client, &new_l), expected_l);
            assert_eq!(
                word::decrypt(&client, &new_r),
                0b1011u64.checked_shr(amt as u32).unwrap_or(0)
            );
        }
    }

    #[test]
    fn constant_shifts() {
        let (client, server, mut rng) = setup(501);
        let a = word::encrypt(&client, 0b0110, 4, &mut rng);
        assert_eq!(word::decrypt(&client, &shl_const(&server, &a, 1)), 0b1100);
        assert_eq!(word::decrypt(&client, &shr_const(&server, &a, 1)), 0b0011);
        assert_eq!(word::decrypt(&client, &shl_const(&server, &a, 4)), 0);
        assert_eq!(word::decrypt(&client, &shr_const(&server, &a, 0)), 0b0110);
    }

    #[test]
    fn encrypted_left_shift() {
        let (client, server, mut rng) = setup(502);
        let a = word::encrypt(&client, 0b0011, 4, &mut rng);
        for amt in 0..4u64 {
            let enc_amt = word::encrypt(&client, amt, 2, &mut rng);
            let out = shl(&server, &a, &enc_amt);
            assert_eq!(
                word::decrypt(&client, &out),
                (0b0011 << amt) & 0xF,
                "amt={amt}"
            );
        }
    }

    #[test]
    fn encrypted_right_shift() {
        let (client, server, mut rng) = setup(503);
        let a = word::encrypt(&client, 0b1100, 4, &mut rng);
        for amt in 0..4u64 {
            let enc_amt = word::encrypt(&client, amt, 2, &mut rng);
            let out = shr(&server, &a, &enc_amt);
            assert_eq!(word::decrypt(&client, &out), 0b1100 >> amt, "amt={amt}");
        }
    }
}
