//! Barrel shifter on encrypted words.
//!
//! Shifting by a *plaintext* amount is free (bit re-wiring); shifting by an
//! *encrypted* amount uses one mux layer per index bit, the classic barrel
//! construction.

use crate::mux;
use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::{LweCiphertext, ServerKey};

/// Logical left shift by a plaintext amount (zero fill, free).
pub fn shl_const<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: usize,
) -> EncryptedWord {
    let width = a.len();
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        if i < amount {
            out.push(server.trivial(false));
        } else {
            out.push(a[i - amount].clone());
        }
    }
    out
}

/// Logical right shift by a plaintext amount (zero fill, free).
pub fn shr_const<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: usize,
) -> EncryptedWord {
    let width = a.len();
    (0..width)
        .map(|i| {
            if i + amount < width {
                a[i + amount].clone()
            } else {
                server.trivial(false)
            }
        })
        .collect()
}

/// Barrel left shift by an encrypted amount (LSB-first index bits).
///
/// Level `j` conditionally shifts by `2^j`, so `k` index bits cover shifts
/// `0..2^k − 1`; shifts ≥ width produce zero.
pub fn shl<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: &[LweCiphertext],
) -> EncryptedWord {
    let mut cur = a.to_vec();
    for (j, bit) in amount.iter().enumerate() {
        let shifted = shl_const(server, &cur, 1 << j);
        cur = mux::select_word(server, bit, &shifted, &cur);
    }
    cur
}

/// Barrel right shift by an encrypted amount (LSB-first index bits).
pub fn shr<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    amount: &[LweCiphertext],
) -> EncryptedWord {
    let mut cur = a.to_vec();
    for (j, bit) in amount.iter().enumerate() {
        let shifted = shr_const(server, &cur, 1 << j);
        cur = mux::select_word(server, bit, &shifted, &cur);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn constant_shifts() {
        let (client, server, mut rng) = setup(501);
        let a = word::encrypt(&client, 0b0110, 4, &mut rng);
        assert_eq!(word::decrypt(&client, &shl_const(&server, &a, 1)), 0b1100);
        assert_eq!(word::decrypt(&client, &shr_const(&server, &a, 1)), 0b0011);
        assert_eq!(word::decrypt(&client, &shl_const(&server, &a, 4)), 0);
        assert_eq!(word::decrypt(&client, &shr_const(&server, &a, 0)), 0b0110);
    }

    #[test]
    fn encrypted_left_shift() {
        let (client, server, mut rng) = setup(502);
        let a = word::encrypt(&client, 0b0011, 4, &mut rng);
        for amt in 0..4u64 {
            let enc_amt = word::encrypt(&client, amt, 2, &mut rng);
            let out = shl(&server, &a, &enc_amt);
            assert_eq!(
                word::decrypt(&client, &out),
                (0b0011 << amt) & 0xF,
                "amt={amt}"
            );
        }
    }

    #[test]
    fn encrypted_right_shift() {
        let (client, server, mut rng) = setup(503);
        let a = word::encrypt(&client, 0b1100, 4, &mut rng);
        for amt in 0..4u64 {
            let enc_amt = word::encrypt(&client, amt, 2, &mut rng);
            let out = shr(&server, &a, &enc_amt);
            assert_eq!(word::decrypt(&client, &out), 0b1100 >> amt, "amt={amt}");
        }
    }
}
