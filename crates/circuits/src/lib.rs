//! Homomorphic Boolean circuits built on the `matcha-tfhe` gate API.
//!
//! The MATCHA paper motivates gate acceleration with TFHE-based
//! general-purpose computing (a TFHE RISC-V CPU running at 1.25 Hz, §1).
//! This crate provides the circuit layer such applications are built from:
//! multi-bit words, ripple-carry arithmetic, comparators, multiplexers, a
//! barrel shifter, and a small ALU. Every circuit is generic over the FFT
//! engine, so the whole stack runs identically on the double-precision
//! reference kernel and on MATCHA's approximate integer kernel. The
//! [`netlist`] module lowers the *entire* word-level library — adders,
//! comparators, mux trees, the schoolbook multiplier, the ALU, popcount,
//! the barrel shifter, and whole [`processor`] cycles — into executable
//! [`CircuitNetlist`](matcha_tfhe::CircuitNetlist)s for wave-scheduled
//! execution on the batch pool and the circuit server, each pinned
//! bit-identical to its eager counterpart; its word-level
//! [`WordNetlist`](netlist::WordNetlist) builder is how new workloads
//! compose without hand-threading node indices.
//!
//! # Examples
//!
//! ```no_run
//! use matcha_circuits::{adder, word};
//! use matcha_fft::F64Fft;
//! use matcha_tfhe::{ClientKey, ServerKey, params::ParameterSet};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
//! let engine = F64Fft::new(client.params().ring_degree);
//! let server = ServerKey::new(&client, engine, &mut rng);
//!
//! let a = word::encrypt(&client, 25, 8, &mut rng);
//! let b = word::encrypt(&client, 17, 8, &mut rng);
//! let sum = adder::add(&server, &a, &b);
//! assert_eq!(word::decrypt(&client, &sum.sum), 42);
//! ```

pub mod adder;
pub mod alu;
pub mod analysis;
pub mod comparator;
pub mod multiplier;
pub mod mux;
pub mod netlist;
pub mod popcount;
pub mod processor;
pub mod shifter;
pub mod word;

pub use word::EncryptedWord;

#[cfg(test)]
pub(crate) mod testutil {
    use matcha_fft::F64Fft;
    use matcha_tfhe::{ClientKey, ParameterSet, ServerKey};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Shared fast fixture for circuit tests.
    pub fn setup(seed: u64) -> (ClientKey, ServerKey<F64Fft>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
        (client, server, rng)
    }
}
