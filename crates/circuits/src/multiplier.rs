//! Schoolbook multiplication on encrypted words.
//!
//! An `n×n`-bit multiply costs `n²` AND gates for the partial products plus
//! `n − 1` ripple additions — hundreds of bootstrapped gates even at small
//! widths, which is exactly why the paper cares about gate *throughput*
//! (Figure 10), not just latency.

use crate::adder;
use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::ServerKey;

/// Full-width product of two equal-width words: `a · b` with `2·width`
/// output bits.
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn mul<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let width = a.len();
    let out_width = 2 * width;

    // acc starts as the first partial product (a · b_0), zero-extended.
    let mut acc: EncryptedWord = (0..out_width)
        .map(|i| {
            if i < width {
                server.and(&a[i], &b[0])
            } else {
                server.trivial(false)
            }
        })
        .collect();

    for (j, bj) in b.iter().enumerate().skip(1) {
        // Partial product a · b_j, shifted left by j within out_width bits.
        let partial: EncryptedWord = (0..out_width)
            .map(|i| {
                if i >= j && i - j < width {
                    server.and(&a[i - j], bj)
                } else {
                    server.trivial(false)
                }
            })
            .collect();
        acc = adder::add(server, &acc, &partial).sum;
    }
    acc
}

/// Truncated (wrapping) product: only the low `width` bits.
pub fn mul_low<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    let mut full = mul(server, a, b);
    full.truncate(a.len());
    full
}

/// Square of a word (same cost shape as [`mul`]; kept separate so
/// call sites read naturally).
pub fn square<E: FftEngine>(server: &ServerKey<E>, a: &EncryptedWord) -> EncryptedWord {
    mul(server, a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn two_bit_products_exhaustive() {
        let (client, server, mut rng) = setup(701);
        for x in 0u64..4 {
            for y in 0u64..4 {
                let a = word::encrypt(&client, x, 2, &mut rng);
                let b = word::encrypt(&client, y, 2, &mut rng);
                let p = mul(&server, &a, &b);
                assert_eq!(p.len(), 4);
                assert_eq!(word::decrypt(&client, &p), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn three_bit_product() {
        let (client, server, mut rng) = setup(702);
        let a = word::encrypt(&client, 5, 3, &mut rng);
        let b = word::encrypt(&client, 6, 3, &mut rng);
        assert_eq!(word::decrypt(&client, &mul(&server, &a, &b)), 30);
    }

    #[test]
    fn low_product_wraps() {
        let (client, server, mut rng) = setup(703);
        let a = word::encrypt(&client, 3, 2, &mut rng);
        let b = word::encrypt(&client, 3, 2, &mut rng);
        // 9 mod 4 = 1.
        assert_eq!(word::decrypt(&client, &mul_low(&server, &a, &b)), 1);
    }

    #[test]
    fn square_matches_mul() {
        let (client, server, mut rng) = setup(704);
        let a = word::encrypt(&client, 3, 2, &mut rng);
        assert_eq!(word::decrypt(&client, &square(&server, &a)), 9);
    }
}
