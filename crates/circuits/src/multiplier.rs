//! Schoolbook multiplication on encrypted words.
//!
//! An `n×n`-bit multiply costs `n²` AND gates for the partial products plus
//! `n − 1` ripple additions — hundreds of bootstrapped gates even at small
//! widths, which is exactly why the paper cares about gate *throughput*
//! (Figure 10), not just latency.
//!
//! The additions only touch positions the shifted partial product can
//! actually reach: each `width`-bit partial covers a window of the
//! `2·width`-bit accumulator, so positions below the window pass through,
//! the window start takes a half adder, positions past the known
//! accumulator take a half adder on (partial, carry), and the carry lands
//! one past the window for free. An 8×8 multiply is 320 bootstraps this
//! way instead of the 624 a naive zero-extended ripple chain would spend —
//! the same structure [`netlist::mul`](crate::netlist::mul) builds, so the
//! scheduled path stays bit-identical.

use crate::adder;
use crate::word::EncryptedWord;
use matcha_fft::FftEngine;
use matcha_tfhe::ServerKey;

/// Full-width product of two equal-width words: `a · b` with `2·width`
/// output bits.
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn mul<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let width = a.len();

    // acc starts as the first partial product (a · b_0); positions above
    // it are known zero and stay implicit until a carry reaches them.
    let mut acc: EncryptedWord = a.iter().map(|ai| server.and(ai, &b[0])).collect();

    for (j, bj) in b.iter().enumerate().skip(1) {
        // Partial product a · b_j, occupying positions j..j+width.
        let partial: EncryptedWord = a.iter().map(|ai| server.and(ai, bj)).collect();
        // Window start: carry-in is known zero, a half adder suffices.
        let (sum, mut carry) = adder::half_adder(server, &acc[j], &partial[0]);
        acc[j] = sum;
        for (i, pbit) in partial.iter().enumerate().skip(1) {
            let pos = j + i;
            if pos < acc.len() {
                let (s, c) = adder::full_adder(server, &acc[pos], pbit, &carry);
                acc[pos] = s;
                carry = c;
            } else {
                // The accumulator is known zero here: partial + carry.
                let (s, c) = adder::half_adder(server, pbit, &carry);
                acc.push(s);
                carry = c;
            }
        }
        // One past the window the partial is zero too: the carry drops in.
        acc.push(carry);
    }
    while acc.len() < 2 * width {
        acc.push(server.trivial(false));
    }
    acc
}

/// Truncated (wrapping) product: only the low `width` bits. Partial
/// products are truncated to the bits that land below `width` and the
/// ripple chains never compute their carry out, so this is much cheaper
/// than truncating [`mul`] (136 vs 320 bootstraps at 8 bits).
///
/// # Panics
///
/// Panics if the words have different widths or are empty.
pub fn mul_low<E: FftEngine>(
    server: &ServerKey<E>,
    a: &EncryptedWord,
    b: &EncryptedWord,
) -> EncryptedWord {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    assert!(!a.is_empty(), "empty operands");
    let width = a.len();
    let mut acc: EncryptedWord = a.iter().map(|ai| server.and(ai, &b[0])).collect();
    for (j, bj) in b.iter().enumerate().skip(1) {
        // Only the n = width − j low partial bits land below `width`.
        let n = width - j;
        let partial: EncryptedWord = a[..n].iter().map(|ai| server.and(ai, bj)).collect();
        if n == 1 {
            // Top column: the sum XOR alone (no carry to propagate).
            acc[j] = server.xor(&acc[j], &partial[0]);
            continue;
        }
        let (sum, mut carry) = adder::half_adder(server, &acc[j], &partial[0]);
        acc[j] = sum;
        for i in 1..n - 1 {
            let (s, c) = adder::full_adder(server, &acc[j + i], &partial[i], &carry);
            acc[j + i] = s;
            carry = c;
        }
        // Top position: only the two sum XORs, the carry out is unwanted.
        let axb = server.xor(&acc[width - 1], &partial[n - 1]);
        acc[width - 1] = server.xor(&axb, &carry);
    }
    acc
}

/// Square of a word (same cost shape as [`mul`]; kept separate so
/// call sites read naturally).
pub fn square<E: FftEngine>(server: &ServerKey<E>, a: &EncryptedWord) -> EncryptedWord {
    mul(server, a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::setup;
    use crate::word;

    #[test]
    fn two_bit_products_exhaustive() {
        let (client, server, mut rng) = setup(701);
        for x in 0u64..4 {
            for y in 0u64..4 {
                let a = word::encrypt(&client, x, 2, &mut rng);
                let b = word::encrypt(&client, y, 2, &mut rng);
                let p = mul(&server, &a, &b);
                assert_eq!(p.len(), 4);
                assert_eq!(word::decrypt(&client, &p), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn three_bit_product() {
        let (client, server, mut rng) = setup(702);
        let a = word::encrypt(&client, 5, 3, &mut rng);
        let b = word::encrypt(&client, 6, 3, &mut rng);
        assert_eq!(word::decrypt(&client, &mul(&server, &a, &b)), 30);
    }

    #[test]
    fn low_product_wraps() {
        let (client, server, mut rng) = setup(703);
        let a = word::encrypt(&client, 3, 2, &mut rng);
        let b = word::encrypt(&client, 3, 2, &mut rng);
        // 9 mod 4 = 1.
        assert_eq!(word::decrypt(&client, &mul_low(&server, &a, &b)), 1);
    }

    #[test]
    fn four_bit_product_hits_every_window_case() {
        // Wide enough that windows start with half adders, ripple through
        // full adders, and spill carries past the known accumulator.
        let (client, server, mut rng) = setup(705);
        let a = word::encrypt(&client, 13, 4, &mut rng);
        let b = word::encrypt(&client, 11, 4, &mut rng);
        assert_eq!(word::decrypt(&client, &mul(&server, &a, &b)), 143);
        assert_eq!(word::decrypt(&client, &mul_low(&server, &a, &b)), 143 % 16);
    }

    #[test]
    fn square_matches_mul() {
        let (client, server, mut rng) = setup(704);
        let a = word::encrypt(&client, 3, 2, &mut rng);
        assert_eq!(word::decrypt(&client, &square(&server, &a)), 9);
    }
}
