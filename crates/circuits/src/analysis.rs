//! The static-analysis driver for the circuit library: runs
//! `matcha_tfhe::analyze` over every shipped lowering and bridges the
//! cost section to `matcha_accel::schedule`'s list scheduler for a
//! predicted makespan — the pre-execution certificate (lints, noise
//! bounds, priority ranks, latency estimate) for a whole netlist, with
//! zero bootstraps spent.
//!
//! The CI `netlist-lint` job runs [`analyze_library`] (via the
//! `netlist_lint` example) and fails on any `Error`-severity finding, so
//! every lowering the crate ships stays admissible under the default
//! [`AnalysisPolicy`](matcha_tfhe::AnalysisPolicy).

use crate::netlist;
use matcha_accel::schedule::{self, ScheduleResult};
use matcha_tfhe::analyze::equiv::{push_word, word_at, Spec};
use matcha_tfhe::circuit::CircuitNetlist;
use matcha_tfhe::params::ParameterSet;
use matcha_tfhe::{analyze, simplify, NetlistReport, SimplifyReport};

/// The full pre-execution certificate for one lowering.
#[derive(Clone, Debug)]
pub struct CircuitAnalysis {
    /// Which lowering this is (e.g. `"adder8"`).
    pub name: &'static str,
    /// Lints, per-output noise certificates, and cost ranks.
    pub report: NetlistReport,
    /// What [`matcha_tfhe::simplify`] would save on this netlist.
    pub simplified: SimplifyReport,
    /// List-scheduled latency prediction over the bootstrap-unit skeleton.
    pub predicted: ScheduleResult,
}

/// Analyzes one netlist end to end: [`matcha_tfhe::analyze`] for
/// lints/noise/cost, [`matcha_tfhe::simplify`] for the rewrite savings,
/// and `matcha_accel::schedule` over
/// [`CircuitNetlist::schedule_skeleton`] for the makespan a
/// `pipelines`-wide pool at `gate_latency_s` per bootstrap should hit.
///
/// # Panics
///
/// Panics if `unroll` is outside `1..=8`, `pipelines == 0`, or
/// `gate_latency_s <= 0` (the underlying analyzers' bounds).
pub fn analyze_netlist(
    name: &'static str,
    net: &CircuitNetlist,
    params: &ParameterSet,
    unroll: usize,
    pipelines: usize,
    gate_latency_s: f64,
) -> CircuitAnalysis {
    let report = analyze(net, params, unroll);
    let (_, simplified) = simplify(net);
    let dag = schedule::Netlist::from_deps(&net.schedule_skeleton());
    let predicted = schedule::schedule(&dag, pipelines, gate_latency_s);
    debug_assert_eq!(
        report.cost.critical_path_units,
        dag.critical_path(),
        "analyze and accel::schedule must agree on the critical path"
    );
    CircuitAnalysis {
        name,
        report,
        simplified,
        predicted,
    }
}

/// The shipped library lowerings, by name — the set the CI lint job and
/// the bench rows cover.
pub fn library() -> Vec<(&'static str, CircuitNetlist)> {
    vec![
        ("adder8", netlist::ripple_adder(8)),
        ("subtractor8", netlist::ripple_subtractor(8)),
        ("comparator8", netlist::eq_comparator(8)),
        ("mux4x4", netlist::mux_tree(2, 4)),
        ("mul8", netlist::mul(8)),
        ("mul_low8", netlist::mul_low(8)),
        ("alu8", netlist::alu(8)),
        ("popcount16", netlist::popcount(16)),
        ("shifter8", netlist::shl(8, 4)),
        (
            "processor_cycle8",
            netlist::processor_cycle(
                2,
                8,
                netlist::CycleInstruction::Alu {
                    dst: 0,
                    src1: 0,
                    src2: 1,
                },
            ),
        ),
    ]
}

/// The plaintext arithmetic specification of every [`library`] entry, by
/// the same names and in the same order: what each lowering is *supposed*
/// to compute, as a closure over the flat input assignment (input-slot
/// order, LSB-first within each word). `matcha_tfhe::analyze::equiv`
/// proves each lowering equal to its spec on **all** inputs — the
/// word-level layer is verified against textbook arithmetic, not merely
/// against its own eager evaluation.
pub fn library_specs() -> Vec<(&'static str, Spec)> {
    vec![
        // ripple_adder(8): a(8), b(8) → the 9-bit sum a + b
        // (8 sum bits then the final carry).
        (
            "adder8",
            Spec::new(vec![8, 8], 9, |bits| {
                let (a, b) = (word_at(bits, 0, 8), word_at(bits, 8, 8));
                let mut out = Vec::new();
                push_word(&mut out, a + b, 9);
                out
            }),
        ),
        // ripple_subtractor(8): a + ¬b + 1 — 8 difference bits
        // (a − b mod 2⁸) then the carry (1 iff a ≥ b).
        (
            "subtractor8",
            Spec::new(vec![8, 8], 9, |bits| {
                let (a, b) = (word_at(bits, 0, 8), word_at(bits, 8, 8));
                let mut out = Vec::new();
                push_word(&mut out, a + (b ^ 0xff) + 1, 9);
                out
            }),
        ),
        // eq_comparator(8): one bit, [a == b].
        (
            "comparator8",
            Spec::new(vec![8, 8], 1, |bits| {
                vec![word_at(bits, 0, 8) == word_at(bits, 8, 8)]
            }),
        ),
        // mux_tree(2, 4): a 2-bit index (LSB-first) then four 4-bit
        // words; the output is words[index].
        (
            "mux4x4",
            Spec::new(vec![2, 4, 4, 4, 4], 4, |bits| {
                let index = word_at(bits, 0, 2) as usize;
                bits[2 + 4 * index..2 + 4 * index + 4].to_vec()
            }),
        ),
        // mul(8): the full 16-bit product.
        (
            "mul8",
            Spec::new(vec![8, 8], 16, |bits| {
                let (a, b) = (word_at(bits, 0, 8), word_at(bits, 8, 8));
                let mut out = Vec::new();
                push_word(&mut out, a * b, 16);
                out
            }),
        ),
        // mul_low(8): the low 8 bits of the product.
        (
            "mul_low8",
            Spec::new(vec![8, 8], 8, |bits| {
                let (a, b) = (word_at(bits, 0, 8), word_at(bits, 8, 8));
                let mut out = Vec::new();
                push_word(&mut out, a * b, 8);
                out
            }),
        ),
        // alu(8): 2 opcode bits (LSB-first: 0 add, 1 sub, 2 and, 3 xor)
        // then a(8) then b(8); 8 result bits, add/sub mod 2⁸.
        (
            "alu8",
            Spec::new(vec![2, 8, 8], 8, |bits| {
                let op = word_at(bits, 0, 2);
                let (a, b) = (word_at(bits, 2, 8), word_at(bits, 10, 8));
                let r = match op {
                    0 => a + b,
                    1 => a + (b ^ 0xff) + 1,
                    2 => a & b,
                    _ => a ^ b,
                };
                let mut out = Vec::new();
                push_word(&mut out, r, 8);
                out
            }),
        ),
        // popcount(16): the 5-bit count of set inputs, LSB-first.
        (
            "popcount16",
            Spec::new(vec![16], 5, |bits| {
                let count = bits.iter().filter(|&&b| b).count() as u128;
                let mut out = Vec::new();
                push_word(&mut out, count, 5);
                out
            }),
        ),
        // shl(8, 4): 4 amount bits (LSB-first) then the 8-bit word;
        // (a << amount) mod 2⁸, so over-shifts flush to zero.
        (
            "shifter8",
            Spec::new(vec![4, 8], 8, |bits| {
                let amount = word_at(bits, 0, 4) as u32;
                let a = word_at(bits, 4, 8);
                let mut out = Vec::new();
                push_word(&mut out, a << amount, 8);
                out
            }),
        ),
        // processor_cycle(2, 8, Alu{dst:0, src1:0, src2:1}): r0(8),
        // r1(8), then 2 opcode bits; the new register file in order —
        // r0' = alu(op, r0, r1), r1' passes through.
        (
            "processor_cycle8",
            Spec::new(vec![8, 8, 2], 16, |bits| {
                let (r0, r1) = (word_at(bits, 0, 8), word_at(bits, 8, 8));
                let op = word_at(bits, 16, 2);
                let alu = match op {
                    0 => r0 + r1,
                    1 => r0 + (r1 ^ 0xff) + 1,
                    2 => r0 & r1,
                    _ => r0 ^ r1,
                };
                let mut out = Vec::new();
                push_word(&mut out, alu, 8);
                push_word(&mut out, r1, 8);
                out
            }),
        ),
    ]
}

/// Runs [`analyze_netlist`] over the whole [`library`].
pub fn analyze_library(
    params: &ParameterSet,
    unroll: usize,
    pipelines: usize,
    gate_latency_s: f64,
) -> Vec<CircuitAnalysis> {
    library()
        .iter()
        .map(|(name, net)| analyze_netlist(name, net, params, unroll, pipelines, gate_latency_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_tfhe::Severity;

    #[test]
    fn every_lowering_is_lint_clean_at_error_severity() {
        for a in analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0) {
            assert!(
                a.report.is_clean(Severity::Error),
                "{}: {:?}",
                a.name,
                a.report.lints
            );
        }
    }

    #[test]
    fn ranks_are_consistent_with_the_accel_list_scheduler() {
        for (name, net) in library() {
            let skeleton = net.schedule_skeleton();
            let dag = schedule::Netlist::from_deps(&skeleton);
            let report = analyze(&net, &ParameterSet::MATCHA, 2);
            assert_eq!(
                report.cost.critical_path_units,
                dag.critical_path(),
                "{name}"
            );
            assert_eq!(
                report.cost.node_ranks.iter().copied().max().unwrap_or(0),
                dag.ranks().iter().copied().max().unwrap_or(0),
                "{name}"
            );
            assert_eq!(report.cost.bootstraps, dag.len(), "{name}");
        }
    }

    #[test]
    fn predicted_makespan_respects_the_classic_bounds() {
        for a in analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0) {
            let cp = a.report.cost.critical_path_units as f64;
            let work = a.report.cost.bootstraps as f64 / 4.0;
            assert!(a.predicted.makespan_s >= cp.max(work) - 1e-9, "{}", a.name);
            assert!(
                a.predicted.makespan_s <= a.report.cost.bootstraps as f64 + 1e-9,
                "{}",
                a.name
            );
        }
    }

    #[test]
    fn simplify_savings_match_the_const_carry_folds() {
        let by_name: Vec<(&str, usize, usize)> = analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0)
            .iter()
            .map(|a| {
                (
                    a.name,
                    a.simplified.bootstraps_before,
                    a.simplified.bootstraps_after,
                )
            })
            .collect();
        // The constant carry-in of the first full adder folds: the adder
        // loses its cin XOR and both cin ANDs' dependents (40 → 37); the
        // subtractor's true carry-in folds its sum XOR into a free NOT
        // and one AND into an alias (40 → 38); the comparator and the mux
        // tree are already minimal. The fold-built lowerings (multiplier,
        // popcount, shifter) never emit a constant-operand gate, so they
        // are fixpoints. The ALU (and the processor cycle wrapping the
        // same body) keeps its raw chains bit-identical to the eager
        // path, so the simplifier finds the two chains' constant
        // carry-ins (3 + 2) and the word-wise AND/XOR gates that
        // duplicate the add chain's internal And(a_i,b_i)/Xor(a_i,b_i)
        // (7 + 8 CSE hits): 138 → 118.
        assert_eq!(
            by_name,
            vec![
                ("adder8", 40, 37),
                ("subtractor8", 40, 38),
                ("comparator8", 15, 15),
                ("mux4x4", 24, 24),
                ("mul8", 320, 320),
                ("mul_low8", 136, 136),
                ("alu8", 138, 118),
                ("popcount16", 63, 63),
                ("shifter8", 49, 49),
                ("processor_cycle8", 138, 118),
            ]
        );
    }

    #[test]
    fn multiplier_lowering_skips_what_the_simplifier_would_fold() {
        use crate::netlist::{NetBit, NetWord, WordNetlist};
        use matcha_tfhe::Gate;

        // The naive schoolbook lowering: zero-extend every partial
        // product to 2·width and push it through a full-width raw ripple
        // chain, trivial zeros and all (the pre-refactor eager shape,
        // with its dropped final carries).
        let width = 8;
        let out_width = 2 * width;
        let mut w = WordNetlist::new();
        let a = w.input_word(width);
        let b = w.input_word(width);
        let mut acc = NetWord::from_bits(
            (0..out_width)
                .map(|i| {
                    if i < width {
                        w.gate(Gate::And, a[i], b[0])
                    } else {
                        NetBit::Const(false)
                    }
                })
                .collect(),
        );
        for j in 1..width {
            let partial = NetWord::from_bits(
                (0..out_width)
                    .map(|i| {
                        if i >= j && i - j < width {
                            w.gate(Gate::And, a[i - j], b[j])
                        } else {
                            NetBit::Const(false)
                        }
                    })
                    .collect(),
            );
            let (sums, _dropped_carry) = w.ripple_add(&acc, &partial, NetBit::Const(false));
            acc = sums;
        }
        w.mark_output_word(&acc);
        let naive = w.finish();

        // 64 partial-product ANDs + 7 full-width ripple adds.
        assert_eq!(naive.bootstraps(), 64 + 7 * 5 * 16);
        let (_, naive_report) = simplify(&naive);
        assert!(
            naive_report.bootstraps_after < naive_report.bootstraps_before,
            "the simplifier must fold the trivial-zero columns"
        );
        assert!(
            !naive_report.exact,
            "folding bootstrapped gates on constants is not bit-exact"
        );

        // The shipped lowering skips those columns at build time instead:
        // raw → simplified is a no-op, so the rewrite is trivially exact,
        // and the raw count already undercuts everything the simplifier
        // can salvage from the naive netlist.
        let shipped = netlist::mul(8);
        let (_, report) = simplify(&shipped);
        assert_eq!(report.bootstraps_before, 320);
        assert_eq!(report.bootstraps_after, 320);
        assert!(report.exact);
        assert!(shipped.bootstraps() <= naive_report.bootstraps_after);
    }

    #[test]
    fn noise_certificates_pass_the_default_budget_at_paper_params() {
        for unroll in [1, 2] {
            for a in analyze_library(&ParameterSet::MATCHA, unroll, 4, 1.0) {
                let p = a.report.max_failure_prob();
                assert!(
                    p < matcha_tfhe::analyze::DEFAULT_FAILURE_BUDGET,
                    "{} at unroll {unroll}: bound {p}",
                    a.name
                );
                assert!(p > 0.0, "{}: MATCHA noise is not literally zero", a.name);
            }
        }
    }
}
