//! The static-analysis driver for the circuit library: runs
//! `matcha_tfhe::analyze` over every shipped lowering and bridges the
//! cost section to `matcha_accel::schedule`'s list scheduler for a
//! predicted makespan — the pre-execution certificate (lints, noise
//! bounds, priority ranks, latency estimate) for a whole netlist, with
//! zero bootstraps spent.
//!
//! The CI `netlist-lint` job runs [`analyze_library`] (via the
//! `netlist_lint` example) and fails on any `Error`-severity finding, so
//! every lowering the crate ships stays admissible under the default
//! [`AnalysisPolicy`](matcha_tfhe::AnalysisPolicy).

use crate::netlist;
use matcha_accel::schedule::{self, ScheduleResult};
use matcha_tfhe::circuit::CircuitNetlist;
use matcha_tfhe::params::ParameterSet;
use matcha_tfhe::{analyze, simplify, NetlistReport, SimplifyReport};

/// The full pre-execution certificate for one lowering.
#[derive(Clone, Debug)]
pub struct CircuitAnalysis {
    /// Which lowering this is (e.g. `"adder8"`).
    pub name: &'static str,
    /// Lints, per-output noise certificates, and cost ranks.
    pub report: NetlistReport,
    /// What [`matcha_tfhe::simplify`] would save on this netlist.
    pub simplified: SimplifyReport,
    /// List-scheduled latency prediction over the bootstrap-unit skeleton.
    pub predicted: ScheduleResult,
}

/// Analyzes one netlist end to end: [`matcha_tfhe::analyze`] for
/// lints/noise/cost, [`matcha_tfhe::simplify`] for the rewrite savings,
/// and `matcha_accel::schedule` over
/// [`CircuitNetlist::schedule_skeleton`] for the makespan a
/// `pipelines`-wide pool at `gate_latency_s` per bootstrap should hit.
///
/// # Panics
///
/// Panics if `unroll` is outside `1..=8`, `pipelines == 0`, or
/// `gate_latency_s <= 0` (the underlying analyzers' bounds).
pub fn analyze_netlist(
    name: &'static str,
    net: &CircuitNetlist,
    params: &ParameterSet,
    unroll: usize,
    pipelines: usize,
    gate_latency_s: f64,
) -> CircuitAnalysis {
    let report = analyze(net, params, unroll);
    let (_, simplified) = simplify(net);
    let dag = schedule::Netlist::from_deps(&net.schedule_skeleton());
    let predicted = schedule::schedule(&dag, pipelines, gate_latency_s);
    debug_assert_eq!(
        report.cost.critical_path_units,
        dag.critical_path(),
        "analyze and accel::schedule must agree on the critical path"
    );
    CircuitAnalysis {
        name,
        report,
        simplified,
        predicted,
    }
}

/// The shipped library lowerings, by name — the set the CI lint job and
/// the bench rows cover.
pub fn library() -> Vec<(&'static str, CircuitNetlist)> {
    vec![
        ("adder8", netlist::ripple_adder(8)),
        ("subtractor8", netlist::ripple_subtractor(8)),
        ("comparator8", netlist::eq_comparator(8)),
        ("mux4x4", netlist::mux_tree(2, 4)),
    ]
}

/// Runs [`analyze_netlist`] over the whole [`library`].
pub fn analyze_library(
    params: &ParameterSet,
    unroll: usize,
    pipelines: usize,
    gate_latency_s: f64,
) -> Vec<CircuitAnalysis> {
    library()
        .iter()
        .map(|(name, net)| analyze_netlist(name, net, params, unroll, pipelines, gate_latency_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_tfhe::Severity;

    #[test]
    fn every_lowering_is_lint_clean_at_error_severity() {
        for a in analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0) {
            assert!(
                a.report.is_clean(Severity::Error),
                "{}: {:?}",
                a.name,
                a.report.lints
            );
        }
    }

    #[test]
    fn ranks_are_consistent_with_the_accel_list_scheduler() {
        for (name, net) in library() {
            let skeleton = net.schedule_skeleton();
            let dag = schedule::Netlist::from_deps(&skeleton);
            let report = analyze(&net, &ParameterSet::MATCHA, 2);
            assert_eq!(
                report.cost.critical_path_units,
                dag.critical_path(),
                "{name}"
            );
            assert_eq!(
                report.cost.node_ranks.iter().copied().max().unwrap_or(0),
                dag.ranks().iter().copied().max().unwrap_or(0),
                "{name}"
            );
            assert_eq!(report.cost.bootstraps, dag.len(), "{name}");
        }
    }

    #[test]
    fn predicted_makespan_respects_the_classic_bounds() {
        for a in analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0) {
            let cp = a.report.cost.critical_path_units as f64;
            let work = a.report.cost.bootstraps as f64 / 4.0;
            assert!(a.predicted.makespan_s >= cp.max(work) - 1e-9, "{}", a.name);
            assert!(
                a.predicted.makespan_s <= a.report.cost.bootstraps as f64 + 1e-9,
                "{}",
                a.name
            );
        }
    }

    #[test]
    fn simplify_savings_match_the_const_carry_folds() {
        let by_name: Vec<(&str, usize, usize)> = analyze_library(&ParameterSet::MATCHA, 2, 4, 1.0)
            .iter()
            .map(|a| {
                (
                    a.name,
                    a.simplified.bootstraps_before,
                    a.simplified.bootstraps_after,
                )
            })
            .collect();
        // The constant carry-in of the first full adder folds: the adder
        // loses its cin XOR and both cin ANDs' dependents (40 → 37); the
        // subtractor's true carry-in folds its sum XOR into a free NOT
        // and one AND into an alias (40 → 38); the comparator and the mux
        // tree are already minimal.
        assert_eq!(
            by_name,
            vec![
                ("adder8", 40, 37),
                ("subtractor8", 40, 38),
                ("comparator8", 15, 15),
                ("mux4x4", 24, 24),
            ]
        );
    }

    #[test]
    fn noise_certificates_pass_the_default_budget_at_paper_params() {
        for unroll in [1, 2] {
            for a in analyze_library(&ParameterSet::MATCHA, unroll, 4, 1.0) {
                let p = a.report.max_failure_prob();
                assert!(
                    p < matcha_tfhe::analyze::DEFAULT_FAILURE_BUDGET,
                    "{} at unroll {unroll}: bound {p}",
                    a.name
                );
                assert!(p > 0.0, "{}: MATCHA noise is not literally zero", a.name);
            }
        }
    }
}
