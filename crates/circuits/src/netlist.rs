//! Lowering the eager circuit builders into executable netlists.
//!
//! The functions in the word-level modules ([`adder`](crate::adder),
//! [`comparator`](crate::comparator), [`mux`](crate::mux),
//! [`multiplier`](crate::multiplier), [`alu`](crate::alu),
//! [`popcount`](crate::popcount), [`shifter`](crate::shifter) and
//! [`processor`](crate::processor)) evaluate gate-by-gate on the calling
//! thread. These builders lower the *same* gate structures into
//! [`CircuitNetlist`]s, so whole circuits can be wave-scheduled onto a
//! persistent [`GateBatchPool`](matcha_tfhe::GateBatchPool) or submitted to
//! a [`CircuitServer`](matcha_tfhe::CircuitServer). Because each lowering
//! emits exactly the gate sequence of its eager counterpart and
//! bootstrapping is deterministic given the keys, scheduled execution is
//! decrypt-identical (in fact bit-identical) to the eager path — the
//! equivalence the `netlist_equiv` suite pins.
//!
//! Rather than hand-threading node indices, lowerings are written against
//! the word-level [`WordNetlist`] builder: words of [`NetBit`] wires
//! ([`NetWord`], LSB first), per-bit gate application, ripple chains, mux
//! layers and reduction trees. Builder-known constants stay symbolic
//! ([`NetBit::Const`]) until a gate actually consumes them, and the
//! `fold_*` helpers fold gates on constant operands away entirely — that is
//! how [`mul`] skips the constant-zero partial-product columns of the
//! schoolbook multiply instead of pushing trivial zeros through full
//! adders.
//!
//! Input-slot conventions (all words LSB first):
//!
//! * [`ripple_adder`]/[`ripple_subtractor`]: `a` bits then `b` bits;
//!   outputs are the sum/difference bits then the carry.
//! * [`eq_comparator`]: `a` bits then `b` bits; one output.
//! * [`mux_tree`]: the `k` index bits, then the `2^k` words in order;
//!   outputs are the selected word's bits.
//! * [`mul`]/[`mul_low`]: `a` bits then `b` bits; outputs are the
//!   `2·width` (resp. low `width`) product bits.
//! * [`alu`]: the 2 opcode bits (LSB first: `Add=00`, `Sub=01`, `And=10`,
//!   `Xor=11`, matching [`AluOp::opcode_bits`](crate::alu::AluOp)), then
//!   `a` bits, then `b` bits; outputs are the result word.
//! * [`popcount`]: the `n` input bits; outputs are the
//!   `⌈log2(n+1)⌉`-bit count.
//! * [`shl`]/[`shr`]: the `amount_bits` shift-amount bits, then the word;
//!   outputs are the shifted word.
//! * [`processor_cycle`]: the full register file `r0, r1, …` (each
//!   `width` bits, LSB first), then the instruction's encrypted control
//!   bits — 2 opcode bits for [`CycleInstruction::Alu`], 1 flag bit for
//!   [`CycleInstruction::CMov`]; outputs are the *entire* new register
//!   file in order (non-destination registers pass through).

use matcha_tfhe::circuit::CircuitNetlist;
use matcha_tfhe::Gate;

/// One wire of a [`WordNetlist`] under construction.
///
/// Constants stay symbolic until something actually consumes them: a
/// `Const` wire owns no netlist node, and the `fold_*` builder methods
/// eliminate gates whose operands are `Const` outright. Only when a
/// constant reaches a raw gate or an output is a (pooled) trivial node
/// materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetBit {
    /// A builder-known constant; no netlist node exists for it (yet).
    Const(bool),
    /// A node in the underlying [`CircuitNetlist`].
    Node(usize),
}

/// A word of netlist wires, least-significant bit first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetWord {
    bits: Vec<NetBit>,
}

impl NetWord {
    /// Wraps raw wires (LSB first) as a word.
    pub fn from_bits(bits: Vec<NetBit>) -> Self {
        Self { bits }
    }

    /// An all-constant-zero word of `width` bits (no netlist nodes).
    pub fn zeros(width: usize) -> Self {
        Self {
            bits: vec![NetBit::Const(false); width],
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The wires, LSB first.
    pub fn bits(&self) -> &[NetBit] {
        &self.bits
    }
}

impl std::ops::Index<usize> for NetWord {
    type Output = NetBit;

    fn index(&self, i: usize) -> &NetBit {
        &self.bits[i]
    }
}

/// Word-level [`CircuitNetlist`] builder.
///
/// Wraps a netlist under construction and exposes the vocabulary the
/// eager word-level modules are written in — input words, per-bit gates,
/// half/full adders, ripple chains, word muxes, selection trees and
/// reduction trees — so lowerings read like their eager counterparts
/// instead of hand-threaded node indices.
///
/// Two tiers of gate emission:
///
/// * **raw** ([`gate`](Self::gate), [`mux`](Self::mux),
///   [`ripple_add`](Self::ripple_add), …) always emits the bootstrapped
///   gate, materializing constant operands as pooled trivial nodes. Use
///   these to mirror an eager circuit gate-for-gate (bit-identical
///   ciphertexts), even where the eager path spends bootstraps on known
///   bits (e.g. the adder's trivial carry-in).
/// * **fold** ([`fold_gate`](Self::fold_gate), [`fold_mux`](Self::fold_mux),
///   [`fold_ripple_add`](Self::fold_ripple_add), …) constant-folds at
///   build time: gates with two known operands become constants, gates
///   with one known operand collapse to an alias, a free NOT, or a
///   constant, and muxes with a constant arm drop to a single AND/OR-form
///   bootstrap. Use these where the eager path never touched the known
///   bits at all (e.g. zero-extension columns in the multiplier).
pub struct WordNetlist {
    net: CircuitNetlist,
    /// Pooled trivial-false / trivial-true nodes, created on first use so
    /// lean netlists never carry unused constant nodes.
    const_nodes: [Option<usize>; 2],
}

impl Default for WordNetlist {
    fn default() -> Self {
        Self::new()
    }
}

impl WordNetlist {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            net: CircuitNetlist::new(),
            const_nodes: [None, None],
        }
    }

    /// Ensures `bit` names a real netlist node, materializing (and
    /// pooling) a constant node if needed.
    fn materialize(&mut self, bit: NetBit) -> usize {
        match bit {
            NetBit::Node(id) => id,
            NetBit::Const(v) => {
                if let Some(id) = self.const_nodes[usize::from(v)] {
                    id
                } else {
                    let id = self.net.constant(v);
                    self.const_nodes[usize::from(v)] = Some(id);
                    id
                }
            }
        }
    }

    /// Adds one input slot and returns its wire.
    pub fn input_bit(&mut self) -> NetBit {
        NetBit::Node(self.net.input())
    }

    /// Adds `width` consecutive input slots as a word (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    pub fn input_word(&mut self, width: usize) -> NetWord {
        assert!(width > 0, "empty operands");
        NetWord::from_bits((0..width).map(|_| self.input_bit()).collect())
    }

    /// Emits a bootstrapped binary gate (constants are materialized).
    pub fn gate(&mut self, gate: Gate, a: NetBit, b: NetBit) -> NetBit {
        let a = self.materialize(a);
        let b = self.materialize(b);
        NetBit::Node(self.net.gate(gate, a, b))
    }

    /// A free NOT: folds constants, emits a transparent NOT node otherwise.
    pub fn not(&mut self, a: NetBit) -> NetBit {
        match a {
            NetBit::Const(v) => NetBit::Const(!v),
            NetBit::Node(id) => NetBit::Node(self.net.not(id)),
        }
    }

    /// Emits a two-bootstrap MUX, `sel ? a : b` (constants materialized).
    pub fn mux(&mut self, sel: NetBit, a: NetBit, b: NetBit) -> NetBit {
        let sel = self.materialize(sel);
        let a = self.materialize(a);
        let b = self.materialize(b);
        NetBit::Node(self.net.mux(sel, a, b))
    }

    /// A binary gate with build-time constant folding: two known operands
    /// evaluate to a constant, one known operand collapses the gate to an
    /// alias, a free NOT, or a constant (via the gate's truth table). Only
    /// gates on two live wires bootstrap.
    pub fn fold_gate(&mut self, gate: Gate, a: NetBit, b: NetBit) -> NetBit {
        match (a, b) {
            (NetBit::Const(x), NetBit::Const(y)) => NetBit::Const(gate.eval(x, y)),
            (NetBit::Const(x), NetBit::Node(_)) => {
                match (gate.eval(x, false), gate.eval(x, true)) {
                    (false, true) => b,
                    (true, false) => self.not(b),
                    (v, _) => NetBit::Const(v),
                }
            }
            (NetBit::Node(_), NetBit::Const(y)) => {
                match (gate.eval(false, y), gate.eval(true, y)) {
                    (false, true) => a,
                    (true, false) => self.not(a),
                    (v, _) => NetBit::Const(v),
                }
            }
            (NetBit::Node(_), NetBit::Node(_)) => self.gate(gate, a, b),
        }
    }

    /// `sel ? a : b` with build-time folding: a known selector picks an
    /// arm for free, a known arm drops the MUX to a single AND/OR-form
    /// bootstrap, equal constant arms are free.
    pub fn fold_mux(&mut self, sel: NetBit, a: NetBit, b: NetBit) -> NetBit {
        match sel {
            NetBit::Const(true) => a,
            NetBit::Const(false) => b,
            NetBit::Node(_) => match (a, b) {
                (NetBit::Const(x), NetBit::Const(y)) if x == y => NetBit::Const(x),
                (NetBit::Const(true), NetBit::Const(false)) => sel,
                (NetBit::Const(false), NetBit::Const(true)) => self.not(sel),
                // sel ? 0 : b  =  ¬sel ∧ b
                (NetBit::Const(false), _) => self.gate(Gate::AndNY, sel, b),
                // sel ? 1 : b  =  sel ∨ b
                (NetBit::Const(true), _) => self.gate(Gate::Or, sel, b),
                // sel ? a : 0  =  sel ∧ a
                (_, NetBit::Const(false)) => self.gate(Gate::And, sel, a),
                // sel ? a : 1  =  ¬sel ∨ a
                (_, NetBit::Const(true)) => self.gate(Gate::OrNY, sel, a),
                _ => self.mux(sel, a, b),
            },
        }
    }

    /// Applies `gate` bit-wise across two equal-width words (raw).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn bitwise(&mut self, gate: Gate, a: &NetWord, b: &NetWord) -> NetWord {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        NetWord::from_bits(
            (0..a.width())
                .map(|i| self.gate(gate, a[i], b[i]))
                .collect(),
        )
    }

    /// Free bit-wise NOT of a word.
    pub fn not_word(&mut self, a: &NetWord) -> NetWord {
        NetWord::from_bits((0..a.width()).map(|i| self.not(a[i])).collect())
    }

    /// One half adder (raw): `(sum, carry) = (a XOR b, a AND b)`,
    /// gate-for-gate [`adder::half_adder`](crate::adder::half_adder).
    pub fn half_add(&mut self, a: NetBit, b: NetBit) -> (NetBit, NetBit) {
        let sum = self.gate(Gate::Xor, a, b);
        let carry = self.gate(Gate::And, a, b);
        (sum, carry)
    }

    /// One full adder (raw): the 5-gate XOR/AND/OR form of
    /// [`adder::full_adder`](crate::adder::full_adder), emitted in the
    /// same gate order; returns `(sum, carry)`.
    pub fn full_add(&mut self, a: NetBit, b: NetBit, cin: NetBit) -> (NetBit, NetBit) {
        let axb = self.gate(Gate::Xor, a, b);
        let sum = self.gate(Gate::Xor, axb, cin);
        let and_ab = self.gate(Gate::And, a, b);
        let and_cx = self.gate(Gate::And, axb, cin);
        let carry = self.gate(Gate::Or, and_ab, and_cx);
        (sum, carry)
    }

    /// One full adder with constant folding: same gate order as
    /// [`full_add`](Self::full_add), but every gate goes through
    /// [`fold_gate`](Self::fold_gate), so positions where an operand or
    /// the carry is known cost 2, 1 or 0 bootstraps instead of 5.
    pub fn fold_full_add(&mut self, a: NetBit, b: NetBit, cin: NetBit) -> (NetBit, NetBit) {
        let axb = self.fold_gate(Gate::Xor, a, b);
        let sum = self.fold_gate(Gate::Xor, axb, cin);
        let and_ab = self.fold_gate(Gate::And, a, b);
        let and_cx = self.fold_gate(Gate::And, axb, cin);
        let carry = self.fold_gate(Gate::Or, and_ab, and_cx);
        (sum, carry)
    }

    /// A ripple-carry chain of raw [`full_add`](Self::full_add)s over two
    /// equal-width words; returns `(sums, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn ripple_add(&mut self, a: &NetWord, b: &NetWord, carry_in: NetBit) -> (NetWord, NetBit) {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        assert!(a.width() > 0, "empty operands");
        let mut carry = carry_in;
        let mut sums = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let (sum, cout) = self.full_add(a[i], b[i], carry);
            sums.push(sum);
            carry = cout;
        }
        (NetWord::from_bits(sums), carry)
    }

    /// Like [`ripple_add`](Self::ripple_add) but the carry out is not
    /// computed: the top position emits only its two sum XORs, so no
    /// bootstrapped gate is left dangling when the carry is unwanted.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn ripple_add_no_carry(&mut self, a: &NetWord, b: &NetWord, carry_in: NetBit) -> NetWord {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        assert!(a.width() > 0, "empty operands");
        let top = a.width() - 1;
        let mut carry = carry_in;
        let mut sums = Vec::with_capacity(a.width());
        for i in 0..top {
            let (sum, cout) = self.full_add(a[i], b[i], carry);
            sums.push(sum);
            carry = cout;
        }
        let axb = self.gate(Gate::Xor, a[top], b[top]);
        sums.push(self.gate(Gate::Xor, axb, carry));
        NetWord::from_bits(sums)
    }

    /// Constant-folding ripple-carry chain ([`fold_full_add`](Self::fold_full_add)
    /// per position); returns `(sums, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn fold_ripple_add(
        &mut self,
        a: &NetWord,
        b: &NetWord,
        carry_in: NetBit,
    ) -> (NetWord, NetBit) {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        assert!(a.width() > 0, "empty operands");
        let mut carry = carry_in;
        let mut sums = Vec::with_capacity(a.width());
        for i in 0..a.width() {
            let (sum, cout) = self.fold_full_add(a[i], b[i], carry);
            sums.push(sum);
            carry = cout;
        }
        (NetWord::from_bits(sums), carry)
    }

    /// Constant-folding ripple chain without a carry out (the top position
    /// emits at most its two sum XORs).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ or the words are empty.
    pub fn fold_ripple_add_no_carry(
        &mut self,
        a: &NetWord,
        b: &NetWord,
        carry_in: NetBit,
    ) -> NetWord {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        assert!(a.width() > 0, "empty operands");
        let top = a.width() - 1;
        let mut carry = carry_in;
        let mut sums = Vec::with_capacity(a.width());
        for i in 0..top {
            let (sum, cout) = self.fold_full_add(a[i], b[i], carry);
            sums.push(sum);
            carry = cout;
        }
        let axb = self.fold_gate(Gate::Xor, a[top], b[top]);
        sums.push(self.fold_gate(Gate::Xor, axb, carry));
        NetWord::from_bits(sums)
    }

    /// Word-wise `sel ? a : b` (raw muxes), gate-for-gate
    /// [`mux::select_word`](crate::mux::select_word).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_word(&mut self, sel: NetBit, a: &NetWord, b: &NetWord) -> NetWord {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        NetWord::from_bits((0..a.width()).map(|i| self.mux(sel, a[i], b[i])).collect())
    }

    /// A `2^k`-way selection tree over `words`, gate-for-gate
    /// [`mux::select_one_of`](crate::mux::select_one_of): one
    /// [`mux_word`](Self::mux_word) level per index bit (LSB first), each
    /// bit selecting the odd (higher-index) word of its pair.
    ///
    /// # Panics
    ///
    /// Panics unless `words.len() == 2^index.len()` and `words` is
    /// non-empty.
    pub fn select_one_of(&mut self, index: &[NetBit], words: &[NetWord]) -> NetWord {
        assert!(!words.is_empty(), "empty selection");
        assert_eq!(
            words.len(),
            1usize << index.len(),
            "need exactly 2^index_bits words"
        );
        let mut layer: Vec<NetWord> = words.to_vec();
        for &bit in index {
            layer = layer
                .chunks(2)
                .map(|pair| self.mux_word(bit, &pair[1], &pair[0]))
                .collect();
        }
        layer.pop().expect("non-empty selection layer")
    }

    /// Balanced AND-reduction tree (odd layer elements pass through),
    /// gate-for-gate the reduction in [`comparator::eq`](crate::comparator::eq).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn and_reduce(&mut self, bits: &[NetBit]) -> NetBit {
        assert!(!bits.is_empty(), "empty reduction");
        let mut layer = bits.to_vec();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| match pair {
                    [x, y] => self.gate(Gate::And, *x, *y),
                    [x] => *x,
                    _ => unreachable!(),
                })
                .collect();
        }
        layer[0]
    }

    /// Marks a wire as a circuit output (constants are materialized).
    pub fn mark_output(&mut self, bit: NetBit) {
        let id = self.materialize(bit);
        self.net.mark_output(id);
    }

    /// Marks every bit of a word as an output, LSB first.
    pub fn mark_output_word(&mut self, word: &NetWord) {
        for i in 0..word.width() {
            self.mark_output(word[i]);
        }
    }

    /// Finishes building and returns the netlist.
    pub fn finish(self) -> CircuitNetlist {
        self.net
    }
}

/// A `width`-bit ripple-carry adder, gate-for-gate the circuit of
/// [`adder::add`](crate::adder::add): `5·width` bootstrapped gates with a
/// trivial-false carry-in.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn ripple_adder(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let a = w.input_word(width);
    let b = w.input_word(width);
    let (sums, carry) = w.ripple_add(&a, &b, NetBit::Const(false));
    w.mark_output_word(&sums);
    w.mark_output(carry);
    w.finish()
}

/// A `width`-bit two's-complement subtractor, gate-for-gate
/// [`adder::sub`](crate::adder::sub): free `NOT` on every `b` bit, then a
/// ripple add with a trivial-true carry-in. The final carry is `1` when
/// `a ≥ b`.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn ripple_subtractor(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let a = w.input_word(width);
    let b = w.input_word(width);
    let not_b = w.not_word(&b);
    let (sums, carry) = w.ripple_add(&a, &not_b, NetBit::Const(true));
    w.mark_output_word(&sums);
    w.mark_output(carry);
    w.finish()
}

/// A `width`-bit equality comparator, gate-for-gate
/// [`comparator::eq`](crate::comparator::eq): one XNOR per bit and a
/// balanced AND reduction tree (odd layer elements pass through).
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn eq_comparator(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let a = w.input_word(width);
    let b = w.input_word(width);
    let diffs: Vec<NetBit> = (0..width).map(|i| w.gate(Gate::Xnor, a[i], b[i])).collect();
    let eq = w.and_reduce(&diffs);
    w.mark_output(eq);
    w.finish()
}

/// A `2^index_bits`-way, `width`-bit-word selection tree, gate-for-gate
/// [`mux::select_one_of`](crate::mux::select_one_of): `index_bits` levels
/// of word-wise muxes, each index bit selecting the odd (higher-index)
/// half.
///
/// # Panics
///
/// Panics if `index_bits` or `width` is 0.
pub fn mux_tree(index_bits: usize, width: usize) -> CircuitNetlist {
    assert!(index_bits > 0, "need at least one index bit");
    assert!(width > 0, "empty words");
    let mut w = WordNetlist::new();
    let index: Vec<NetBit> = (0..index_bits).map(|_| w.input_bit()).collect();
    let words: Vec<NetWord> = (0..1usize << index_bits)
        .map(|_| w.input_word(width))
        .collect();
    let selected = w.select_one_of(&index, &words);
    w.mark_output_word(&selected);
    w.finish()
}

/// A full `width × width → 2·width` schoolbook multiplier, gate-for-gate
/// [`multiplier::mul`](crate::multiplier::mul): `width²` partial-product
/// ANDs and `width−1` folded ripple adds. Constant-zero partial-product
/// columns (the zero-extension outside each shifted window) never touch a
/// full adder — the fold builder skips them at build time, so the netlist
/// contains no trivial-zero arithmetic for [`simplify`](matcha_tfhe::analyze::simplify)
/// to clean up.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn mul(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let a = w.input_word(width);
    let b = w.input_word(width);
    let out_width = 2 * width;
    let mut acc = NetWord::from_bits(
        (0..out_width)
            .map(|i| {
                if i < width {
                    w.gate(Gate::And, a[i], b[0])
                } else {
                    NetBit::Const(false)
                }
            })
            .collect(),
    );
    for j in 1..width {
        let partial = NetWord::from_bits(
            (0..out_width)
                .map(|i| {
                    if i >= j && i - j < width {
                        w.gate(Gate::And, a[i - j], b[j])
                    } else {
                        NetBit::Const(false)
                    }
                })
                .collect(),
        );
        let (sums, _carry) = w.fold_ripple_add(&acc, &partial, NetBit::Const(false));
        acc = sums;
    }
    w.mark_output_word(&acc);
    w.finish()
}

/// The low `width` bits of the schoolbook product, gate-for-gate
/// [`multiplier::mul_low`](crate::multiplier::mul_low): each partial
/// product is truncated to the bits that land below `width`, and the
/// ripple chains drop their carry out.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn mul_low(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let a = w.input_word(width);
    let b = w.input_word(width);
    let mut acc = NetWord::from_bits((0..width).map(|i| w.gate(Gate::And, a[i], b[0])).collect());
    for j in 1..width {
        let partial = NetWord::from_bits(
            (0..width)
                .map(|i| {
                    if i >= j {
                        w.gate(Gate::And, a[i - j], b[j])
                    } else {
                        NetBit::Const(false)
                    }
                })
                .collect(),
        );
        acc = w.fold_ripple_add_no_carry(&acc, &partial, NetBit::Const(false));
    }
    w.mark_output_word(&acc);
    w.finish()
}

/// The shared ALU body: all four ops computed, then an opcode-decoded
/// selection tree, gate-for-gate [`alu::execute`](crate::alu::execute).
/// `opcode` is LSB first (`Add=00`, `Sub=01`, `And=10`, `Xor=11`).
fn alu_word(w: &mut WordNetlist, opcode: &[NetBit], a: &NetWord, b: &NetWord) -> NetWord {
    let add = w.ripple_add_no_carry(a, b, NetBit::Const(false));
    let not_b = w.not_word(b);
    let sub = w.ripple_add_no_carry(a, &not_b, NetBit::Const(true));
    let and = w.bitwise(Gate::And, a, b);
    let xor = w.bitwise(Gate::Xor, a, b);
    w.select_one_of(opcode, &[add, sub, and, xor])
}

/// A `width`-bit ALU with an encrypted 2-bit opcode, gate-for-gate
/// [`alu::execute`](crate::alu::execute): adder and subtractor chains
/// (carry out dropped), word-wise AND and XOR, and a 4-way opcode
/// selection tree. Inputs: the 2 opcode bits (LSB first, matching
/// [`AluOp::opcode_bits`](crate::alu::AluOp::opcode_bits)), then `a`, then
/// `b`.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn alu(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let opcode = [w.input_bit(), w.input_bit()];
    let a = w.input_word(width);
    let b = w.input_word(width);
    let out = alu_word(&mut w, &opcode, &a, &b);
    w.mark_output_word(&out);
    w.finish()
}

/// A carry-save population count over `n_bits` inputs, gate-for-gate
/// [`popcount::popcount`](crate::popcount::popcount): per weight column,
/// triples compress through full adders and leftover pairs through half
/// adders; carries feed the next column. Outputs are the
/// `⌈log2(n+1)⌉`-bit count (missing columns are constant zero).
///
/// # Panics
///
/// Panics if `n_bits` is 0.
pub fn popcount(n_bits: usize) -> CircuitNetlist {
    assert!(n_bits > 0, "empty input");
    let mut w = WordNetlist::new();
    let out_width = (usize::BITS - n_bits.leading_zeros()) as usize;
    let mut columns: Vec<Vec<NetBit>> = vec![Vec::new(); out_width + 1];
    columns[0] = (0..n_bits).map(|_| w.input_bit()).collect();
    for weight in 0..out_width {
        while columns[weight].len() >= 3 {
            let a = columns[weight].pop().expect("len >= 3");
            let b = columns[weight].pop().expect("len >= 3");
            let c = columns[weight].pop().expect("len >= 3");
            let (sum, carry) = w.full_add(a, b, c);
            columns[weight].push(sum);
            columns[weight + 1].push(carry);
        }
        if columns[weight].len() == 2 {
            let a = columns[weight].pop().expect("len == 2");
            let b = columns[weight].pop().expect("len == 2");
            let (sum, carry) = w.half_add(a, b);
            columns[weight].push(sum);
            columns[weight + 1].push(carry);
        }
    }
    for column in columns.iter().take(out_width) {
        let bit = column.first().copied().unwrap_or(NetBit::Const(false));
        w.mark_output(bit);
    }
    w.finish()
}

/// One barrel-shifter level: where the shifted source bit exists, a MUX
/// between shifted and unshifted; where the source is past the word (a
/// known zero), the MUX collapses to `¬bit ∧ cur` — one bootstrap instead
/// of two. `shifted_src(i)` returns the source position for output `i`,
/// or `None` when the shift pulls in a zero.
fn barrel_level(
    w: &mut WordNetlist,
    bit: NetBit,
    cur: &NetWord,
    shifted_src: impl Fn(usize) -> Option<usize>,
) -> NetWord {
    NetWord::from_bits(
        (0..cur.width())
            .map(|i| match shifted_src(i) {
                Some(src) => w.mux(bit, cur[src], cur[i]),
                // bit ? 0 : cur[i]  =  ¬bit ∧ cur[i]
                None => w.gate(Gate::AndNY, bit, cur[i]),
            })
            .collect(),
    )
}

/// A `width`-bit left barrel shifter with an encrypted `amount_bits`-bit
/// shift amount, gate-for-gate [`shifter::shl`](crate::shifter::shl): one
/// level per amount bit (LSB first); positions whose shifted source falls
/// off the word use the collapsed one-bootstrap AND-with-NOT form.
/// Inputs: the amount bits, then the word.
///
/// # Panics
///
/// Panics if `width` or `amount_bits` is 0.
pub fn shl(width: usize, amount_bits: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    assert!(amount_bits > 0, "need at least one amount bit");
    let mut w = WordNetlist::new();
    let amount: Vec<NetBit> = (0..amount_bits).map(|_| w.input_bit()).collect();
    let mut cur = w.input_word(width);
    for (j, &bit) in amount.iter().enumerate() {
        let shift = 1usize.checked_shl(j as u32).unwrap_or(usize::MAX);
        cur = barrel_level(&mut w, bit, &cur, |i| i.checked_sub(shift));
    }
    w.mark_output_word(&cur);
    w.finish()
}

/// A `width`-bit logical right barrel shifter with an encrypted
/// `amount_bits`-bit shift amount, gate-for-gate
/// [`shifter::shr`](crate::shifter::shr); same level structure and
/// collapsed zero-fill form as [`shl`]. Inputs: the amount bits, then the
/// word.
///
/// # Panics
///
/// Panics if `width` or `amount_bits` is 0.
pub fn shr(width: usize, amount_bits: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    assert!(amount_bits > 0, "need at least one amount bit");
    let mut w = WordNetlist::new();
    let amount: Vec<NetBit> = (0..amount_bits).map(|_| w.input_bit()).collect();
    let mut cur = w.input_word(width);
    for (j, &bit) in amount.iter().enumerate() {
        let shift = 1usize.checked_shl(j as u32).unwrap_or(usize::MAX);
        cur = barrel_level(&mut w, bit, &cur, |i| {
            let src = i.checked_add(shift)?;
            (src < width).then_some(src)
        });
    }
    w.mark_output_word(&cur);
    w.finish()
}

/// The plaintext *shape* of one processor instruction for
/// [`processor_cycle`]: which registers are read and written. The
/// operation itself stays encrypted — the ALU opcode (or CMov flag)
/// arrives as ciphertext input bits at execution time, exactly as in
/// [`Processor::step`](crate::processor::Processor::step).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleInstruction {
    /// `r[dst] ← ALU(opcode, r[src1], r[src2])`; the 2 encrypted opcode
    /// bits (LSB first) are the netlist's trailing inputs.
    Alu {
        /// Destination register index.
        dst: usize,
        /// First (left) operand register.
        src1: usize,
        /// Second (right) operand register.
        src2: usize,
    },
    /// `r[dst] ← flag ? r[src_true] : r[src_false]`; the encrypted flag
    /// bit is the netlist's trailing input.
    CMov {
        /// Destination register index.
        dst: usize,
        /// Register selected when the flag is set.
        src_true: usize,
        /// Register selected when the flag is clear.
        src_false: usize,
    },
}

/// One full [`Processor::step`](crate::processor::Processor::step) as a
/// single netlist, gate-for-gate the eager step. Inputs: the entire
/// register file `r0, r1, …` (each `width` bits, LSB first), then the
/// instruction's encrypted control bits (2 opcode bits for
/// [`CycleInstruction::Alu`], 1 flag bit for
/// [`CycleInstruction::CMov`]). Outputs: the *entire* new register file
/// in order — the destination register carries the computed word, every
/// other register passes its input bits straight through, so consecutive
/// cycles chain by feeding one circuit's outputs to the next one's
/// register inputs.
///
/// # Panics
///
/// Panics if `reg_count` or `width` is 0, or an instruction register
/// index is out of range.
pub fn processor_cycle(reg_count: usize, width: usize, instr: CycleInstruction) -> CircuitNetlist {
    assert!(reg_count > 0, "need at least one register");
    assert!(width > 0, "empty operands");
    let mut w = WordNetlist::new();
    let regs: Vec<NetWord> = (0..reg_count).map(|_| w.input_word(width)).collect();
    let (dst, out) = match instr {
        CycleInstruction::Alu { dst, src1, src2 } => {
            assert!(
                dst < reg_count && src1 < reg_count && src2 < reg_count,
                "register index out of range"
            );
            let opcode = [w.input_bit(), w.input_bit()];
            let out = alu_word(&mut w, &opcode, &regs[src1], &regs[src2]);
            (dst, out)
        }
        CycleInstruction::CMov {
            dst,
            src_true,
            src_false,
        } => {
            assert!(
                dst < reg_count && src_true < reg_count && src_false < reg_count,
                "register index out of range"
            );
            let flag = w.input_bit();
            let out = w.mux_word(flag, &regs[src_true], &regs[src_false]);
            (dst, out)
        }
    };
    for (r, reg) in regs.iter().enumerate() {
        if r == dst {
            w.mark_output_word(&out);
        } else {
            w.mark_output_word(reg);
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_tfhe::circuit::GateOp;

    #[test]
    fn adder_shape_matches_eager_cost() {
        let net = ripple_adder(8);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.bootstraps(), 5 * 8); // 5 gates per full adder
        assert_eq!(net.outputs().len(), 9); // sum bits + carry
        assert_eq!(net.schedule_skeleton().len(), 40);
    }

    #[test]
    fn subtractor_shape() {
        let net = ripple_subtractor(4);
        assert_eq!(net.num_inputs(), 8);
        // NOTs are free: bootstraps identical to the adder's.
        assert_eq!(net.bootstraps(), 5 * 4);
        assert_eq!(net.outputs().len(), 5);
        // …and transparent in the schedule skeleton…
        assert_eq!(net.schedule_skeleton().len(), 20);
        // …and in the wave structure: subtracting is exactly as deep as
        // adding, because the executor resolves NOT inline between waves.
        assert_eq!(net.depth(), ripple_adder(4).depth());
    }

    #[test]
    fn comparator_shape_and_depth() {
        let net = eq_comparator(16);
        assert_eq!(net.num_inputs(), 32);
        assert_eq!(net.bootstraps(), 16 + 15); // XNOR leaves + AND tree
        assert_eq!(net.depth(), 5); // 1 XNOR level + 4 AND-tree levels
    }

    #[test]
    fn mux_tree_shape() {
        let net = mux_tree(2, 3);
        assert_eq!(net.num_inputs(), 2 + 4 * 3);
        // 2 tree levels: (2 pairs + 1 pair) × 3 bits = 9 muxes, 2 bootstraps each.
        assert_eq!(net.bootstraps(), 18);
        assert_eq!(net.outputs().len(), 3);
        // Each mux is two chained units in the analytic skeleton.
        assert_eq!(net.schedule_skeleton().len(), 18);
    }

    #[test]
    #[should_panic(expected = "empty operands")]
    fn zero_width_adder_rejected() {
        let _ = ripple_adder(0);
    }

    #[test]
    #[should_panic(expected = "empty operands")]
    fn zero_width_multiplier_rejected() {
        let _ = mul(0);
    }

    #[test]
    fn fold_gate_eliminates_constant_operands() {
        let mut w = WordNetlist::new();
        let a = w.input_bit();
        // Both constant → constant, no node.
        assert_eq!(
            w.fold_gate(Gate::And, NetBit::Const(true), NetBit::Const(false)),
            NetBit::Const(false)
        );
        // Identity operand → alias.
        assert_eq!(w.fold_gate(Gate::Xor, a, NetBit::Const(false)), a);
        assert_eq!(w.fold_gate(Gate::And, NetBit::Const(true), a), a);
        // Inverting operand → free NOT.
        assert!(matches!(
            w.fold_gate(Gate::Xor, NetBit::Const(true), a),
            NetBit::Node(_)
        ));
        // Absorbing operand → constant.
        assert_eq!(
            w.fold_gate(Gate::And, a, NetBit::Const(false)),
            NetBit::Const(false)
        );
        assert_eq!(
            w.fold_gate(Gate::Or, NetBit::Const(true), a),
            NetBit::Const(true)
        );
        let net = w.finish();
        assert_eq!(net.bootstraps(), 0, "no fold may bootstrap");
    }

    #[test]
    fn fold_mux_collapses_constant_arms_to_one_bootstrap() {
        let mut w = WordNetlist::new();
        let sel = w.input_bit();
        let a = w.input_bit();
        assert_eq!(w.fold_mux(NetBit::Const(true), a, sel), a);
        assert_eq!(
            w.fold_mux(sel, NetBit::Const(true), NetBit::Const(false)),
            sel
        );
        let before = {
            let mut probe = WordNetlist::new();
            probe.input_bit();
            probe.input_bit();
            probe.finish().bootstraps()
        };
        assert_eq!(before, 0);
        // Each constant-arm form costs exactly one bootstrap.
        w.fold_mux(sel, NetBit::Const(false), a);
        w.fold_mux(sel, NetBit::Const(true), a);
        w.fold_mux(sel, a, NetBit::Const(false));
        w.fold_mux(sel, a, NetBit::Const(true));
        let net = w.finish();
        assert_eq!(net.bootstraps(), 4);
    }

    #[test]
    fn fold_ripple_add_of_zero_word_is_free() {
        let mut w = WordNetlist::new();
        let a = w.input_word(4);
        let (sums, carry) = w.fold_ripple_add(&a, &NetWord::zeros(4), NetBit::Const(false));
        assert_eq!(sums.bits(), a.bits(), "x + 0 aliases x");
        assert_eq!(carry, NetBit::Const(false));
        assert_eq!(w.finish().bootstraps(), 0);
    }

    #[test]
    fn multiplier_shape_skips_zero_columns() {
        // 8×8: 64 partial-product ANDs; j=1 window rows cost 34, later
        // windows 37 (the leading half-adder pair only appears once).
        let net = mul(8);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.outputs().len(), 16);
        assert_eq!(net.bootstraps(), 320);
        // The fold builder never materialized a constant: every zero
        // column was skipped at build time, not cleaned up afterwards.
        assert!(net
            .ops()
            .iter()
            .all(|op| !matches!(op, GateOp::Constant(_))));

        assert_eq!(mul(2).bootstraps(), 8);
        assert_eq!(mul(4).bootstraps(), 64);
    }

    #[test]
    fn mul_low_shape() {
        let net = mul_low(8);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.outputs().len(), 8);
        assert_eq!(net.bootstraps(), 136);
        // Degenerate width: a single AND.
        assert_eq!(mul_low(1).bootstraps(), 1);
    }

    #[test]
    fn alu_shape() {
        let net = alu(8);
        assert_eq!(net.num_inputs(), 2 + 16);
        assert_eq!(net.outputs().len(), 8);
        // Carry-free adder and subtractor chains (7 full adders + 2 sum
        // XORs = 37 each), word-wise AND/XOR (8 each), and the 4-way
        // selection tree ((2+1) word-muxes × 8 bits × 2 bootstraps = 48).
        assert_eq!(net.bootstraps(), 37 + 37 + 8 + 8 + 48);
    }

    #[test]
    fn popcount_shape() {
        let net = popcount(16);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.outputs().len(), 5);
        // 11 full adders (5 gates) + 4 half adders (2 gates).
        assert_eq!(net.bootstraps(), 63);
        // The count of 16 bits needs 5 output columns; the top one only
        // ever receives the final carry, so no gate lands there.
        assert_eq!(popcount(4).outputs().len(), 3);
    }

    #[test]
    fn shifter_shape_collapses_zero_fill_levels() {
        // Width 8, 4 amount bits: levels shift by 1/2/4/8. The shift-by-8
        // level sources nothing from the word — all 8 positions collapse
        // to single-bootstrap ANDs; partial levels collapse per position.
        let net = shl(8, 4);
        assert_eq!(net.num_inputs(), 4 + 8);
        assert_eq!(net.outputs().len(), 8);
        assert_eq!(net.bootstraps(), 2 * (7 + 6 + 4) + (1 + 2 + 4 + 8));
        // The all-mux construction would cost 2 bootstraps everywhere.
        assert!(net.bootstraps() < 2 * 8 * 4);
        // Right shifts mirror left shifts exactly.
        assert_eq!(shr(8, 4).bootstraps(), net.bootstraps());
        assert_eq!(shr(4, 3).bootstraps(), shl(4, 3).bootstraps());
    }

    #[test]
    fn processor_cycle_shape() {
        let instr = CycleInstruction::Alu {
            dst: 0,
            src1: 0,
            src2: 1,
        };
        let net = processor_cycle(2, 8, instr);
        assert_eq!(net.num_inputs(), 2 * 8 + 2);
        // The whole register file comes back out.
        assert_eq!(net.outputs().len(), 2 * 8);
        // Cost is exactly the ALU body: passthrough registers are free.
        assert_eq!(net.bootstraps(), alu(8).bootstraps());

        let cmov = processor_cycle(
            3,
            4,
            CycleInstruction::CMov {
                dst: 2,
                src_true: 0,
                src_false: 1,
            },
        );
        assert_eq!(cmov.num_inputs(), 3 * 4 + 1);
        assert_eq!(cmov.outputs().len(), 3 * 4);
        assert_eq!(cmov.bootstraps(), 2 * 4); // one word-wise mux
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn processor_cycle_rejects_bad_register() {
        let _ = processor_cycle(
            2,
            4,
            CycleInstruction::Alu {
                dst: 2,
                src1: 0,
                src2: 1,
            },
        );
    }
}
