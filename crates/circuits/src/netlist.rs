//! Lowering the eager circuit builders into executable netlists.
//!
//! The functions in [`adder`](crate::adder), [`comparator`](crate::comparator)
//! and [`mux`](crate::mux) evaluate gate-by-gate on the calling thread.
//! These builders lower the *same* gate structures into
//! [`CircuitNetlist`]s, so whole circuits can be wave-scheduled onto a
//! persistent [`GateBatchPool`](matcha_tfhe::GateBatchPool) or submitted to
//! a [`CircuitServer`](matcha_tfhe::CircuitServer). Because each lowering
//! emits exactly the gate sequence of its eager counterpart and
//! bootstrapping is deterministic given the keys, scheduled execution is
//! decrypt-identical (in fact bit-identical) to the eager path — the
//! equivalence the `netlist_equiv` suite pins.
//!
//! Input-slot conventions (all words LSB first):
//!
//! * [`ripple_adder`]/[`ripple_subtractor`]: `a` bits then `b` bits;
//!   outputs are the sum/difference bits then the carry.
//! * [`eq_comparator`]: `a` bits then `b` bits; one output.
//! * [`mux_tree`]: the `k` index bits, then the `2^k` words in order;
//!   outputs are the selected word's bits.

use matcha_tfhe::circuit::CircuitNetlist;
use matcha_tfhe::Gate;

/// Lowers one full adder (the 5-gate XOR/AND/OR form of
/// [`adder::full_adder`](crate::adder::full_adder)); returns `(sum, carry)`.
fn lower_full_adder(net: &mut CircuitNetlist, a: usize, b: usize, cin: usize) -> (usize, usize) {
    let axb = net.gate(Gate::Xor, a, b);
    let sum = net.gate(Gate::Xor, axb, cin);
    let and_ab = net.gate(Gate::And, a, b);
    let and_cx = net.gate(Gate::And, axb, cin);
    let carry = net.gate(Gate::Or, and_ab, and_cx);
    (sum, carry)
}

fn ripple_chain(net: &mut CircuitNetlist, a: &[usize], b: &[usize], mut carry: usize) {
    let mut sums = Vec::with_capacity(a.len());
    for (&abit, &bbit) in a.iter().zip(b.iter()) {
        let (sum, cout) = lower_full_adder(net, abit, bbit, carry);
        sums.push(sum);
        carry = cout;
    }
    for sum in sums {
        net.mark_output(sum);
    }
    net.mark_output(carry);
}

/// A `width`-bit ripple-carry adder, gate-for-gate the circuit of
/// [`adder::add`](crate::adder::add): `5·width` bootstrapped gates with a
/// trivial-false carry-in.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn ripple_adder(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut net = CircuitNetlist::new();
    let a: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let b: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let carry_in = net.constant(false);
    ripple_chain(&mut net, &a, &b, carry_in);
    net
}

/// A `width`-bit two's-complement subtractor, gate-for-gate
/// [`adder::sub`](crate::adder::sub): free `NOT` on every `b` bit, then a
/// ripple add with a trivial-true carry-in. The final carry is `1` when
/// `a ≥ b`.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn ripple_subtractor(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut net = CircuitNetlist::new();
    let a: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let b: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let not_b: Vec<usize> = b.iter().map(|&bit| net.not(bit)).collect();
    let carry_in = net.constant(true);
    ripple_chain(&mut net, &a, &not_b, carry_in);
    net
}

/// A `width`-bit equality comparator, gate-for-gate
/// [`comparator::eq`](crate::comparator::eq): one XNOR per bit and a
/// balanced AND reduction tree (odd layer elements pass through).
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn eq_comparator(width: usize) -> CircuitNetlist {
    assert!(width > 0, "empty operands");
    let mut net = CircuitNetlist::new();
    let a: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let b: Vec<usize> = (0..width).map(|_| net.input()).collect();
    let mut layer: Vec<usize> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| net.gate(Gate::Xnor, x, y))
        .collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| match pair {
                [x, y] => net.gate(Gate::And, *x, *y),
                [x] => *x,
                _ => unreachable!(),
            })
            .collect();
    }
    net.mark_output(layer[0]);
    net
}

/// A `2^index_bits`-way, `width`-bit-word selection tree, gate-for-gate
/// [`mux::select_one_of`](crate::mux::select_one_of): `index_bits` levels
/// of word-wise muxes, each index bit selecting the odd (higher-index)
/// half.
///
/// # Panics
///
/// Panics if `index_bits` or `width` is 0.
pub fn mux_tree(index_bits: usize, width: usize) -> CircuitNetlist {
    assert!(index_bits > 0, "need at least one index bit");
    assert!(width > 0, "empty words");
    let mut net = CircuitNetlist::new();
    let index: Vec<usize> = (0..index_bits).map(|_| net.input()).collect();
    let mut layer: Vec<Vec<usize>> = (0..1usize << index_bits)
        .map(|_| (0..width).map(|_| net.input()).collect())
        .collect();
    for &bit in &index {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            // bit == 1 selects the odd (higher-index) word.
            next.push(
                pair[0]
                    .iter()
                    .zip(pair[1].iter())
                    .map(|(&lo, &hi)| net.mux(bit, hi, lo))
                    .collect(),
            );
        }
        layer = next;
    }
    for &out in &layer[0] {
        net.mark_output(out);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_shape_matches_eager_cost() {
        let net = ripple_adder(8);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.bootstraps(), 5 * 8); // 5 gates per full adder
        assert_eq!(net.outputs().len(), 9); // sum bits + carry
        assert_eq!(net.schedule_skeleton().len(), 40);
    }

    #[test]
    fn subtractor_shape() {
        let net = ripple_subtractor(4);
        assert_eq!(net.num_inputs(), 8);
        // NOTs are free: bootstraps identical to the adder's.
        assert_eq!(net.bootstraps(), 5 * 4);
        assert_eq!(net.outputs().len(), 5);
        // …and transparent in the schedule skeleton…
        assert_eq!(net.schedule_skeleton().len(), 20);
        // …and in the wave structure: subtracting is exactly as deep as
        // adding, because the executor resolves NOT inline between waves.
        assert_eq!(net.depth(), ripple_adder(4).depth());
    }

    #[test]
    fn comparator_shape_and_depth() {
        let net = eq_comparator(16);
        assert_eq!(net.num_inputs(), 32);
        assert_eq!(net.bootstraps(), 16 + 15); // XNOR leaves + AND tree
        assert_eq!(net.depth(), 5); // 1 XNOR level + 4 AND-tree levels
    }

    #[test]
    fn mux_tree_shape() {
        let net = mux_tree(2, 3);
        assert_eq!(net.num_inputs(), 2 + 4 * 3);
        // 2 tree levels: (2 pairs + 1 pair) × 3 bits = 9 muxes, 2 bootstraps each.
        assert_eq!(net.bootstraps(), 18);
        assert_eq!(net.outputs().len(), 3);
        // Each mux is two chained units in the analytic skeleton.
        assert_eq!(net.schedule_skeleton().len(), 18);
    }

    #[test]
    #[should_panic(expected = "empty operands")]
    fn zero_width_adder_rejected() {
        let _ = ripple_adder(0);
    }
}
