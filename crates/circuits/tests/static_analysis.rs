//! Property-based validation of `matcha_tfhe::analyze::simplify`: random
//! netlists must stay output-equivalent after rewriting, and the rewriter
//! must actually discharge the lints it claims to fix.
//!
//! Case counts are small — every gate in both the original and the
//! simplified netlist is a full (TEST_FAST) bootstrap.

use matcha_circuits::analysis;
use matcha_fft::F64Fft;
use matcha_tfhe::circuit::CircuitNetlist;
use matcha_tfhe::{lint, simplify, ClientKey, Gate, LintKind, ParameterSet, ServerKey, Severity};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    client: ClientKey,
    server: ServerKey<F64Fft>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA11A);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
        Fixture { client, server }
    })
}

/// One random op to append, decoded from a raw byte 4-tuple: the first
/// byte picks the kind (weighted toward binary gates), the rest are
/// operand indices folded into range with a modulo, so every tuple is a
/// structurally valid op.
type RandOp = (u8, u8, u8, u8);

fn rand_op() -> impl Strategy<Value = RandOp> {
    (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
}

/// Builds a structurally valid netlist from the random spec: a few inputs,
/// then the ops with operands folded into range, then a random non-empty
/// subset of nodes marked as outputs.
fn build(n_inputs: usize, ops: &[RandOp], out_picks: &[u8]) -> CircuitNetlist {
    let mut net = CircuitNetlist::new();
    for _ in 0..n_inputs {
        net.input();
    }
    for &(kind, a, b, c) in ops {
        let len = net.len();
        let at = |raw: u8| raw as usize % len;
        match kind % 10 {
            0 => net.constant(a % 2 == 0),
            1 | 2 => net.not(at(a)),
            3 | 4 => net.mux(at(a), at(b), at(c)),
            _ => net.gate(Gate::ALL[a as usize % Gate::ALL.len()], at(b), at(c)),
        };
    }
    for &pick in out_picks {
        net.mark_output(pick as usize % net.len());
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline soundness property: a simplified netlist decrypts to
    /// the same output bits as the original on encrypted inputs, and when
    /// the rewriter only used bit-exact rules the output ciphertexts are
    /// identical word for word.
    #[test]
    fn simplified_netlists_are_output_equivalent(
        n_inputs in 1usize..4,
        ops in prop::collection::vec(rand_op(), 3..9),
        out_picks in prop::collection::vec(any::<u8>(), 1..4),
        bits in prop::collection::vec(any::<bool>(), 3),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let net = build(n_inputs, &ops, &out_picks);
        let (small, report) = simplify(&net);
        prop_assert_eq!(small.num_inputs(), net.num_inputs());
        prop_assert!(report.bootstraps_after <= report.bootstraps_before);

        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<_> = (0..n_inputs)
            .map(|i| f.client.encrypt_with(bits[i % bits.len()], &mut rng))
            .collect();
        let raw = net.execute_sequential(&f.server, &inputs);
        let simplified = small.execute_sequential(&f.server, &inputs);

        prop_assert_eq!(raw.outputs.len(), simplified.outputs.len());
        for (a, b) in raw.outputs.iter().zip(&simplified.outputs) {
            prop_assert_eq!(f.client.decrypt(a), f.client.decrypt(b));
            if report.exact {
                prop_assert_eq!(a.mask(), b.mask());
                prop_assert_eq!(a.body(), b.body());
            }
        }
    }

    /// The rewriter discharges every lint it claims to handle: no dead
    /// nodes, foldable constants, double-NOTs, or duplicate gates survive
    /// a round of simplification.
    #[test]
    fn simplified_netlists_are_free_of_rewritable_lints(
        n_inputs in 1usize..4,
        ops in prop::collection::vec(rand_op(), 3..12),
        out_picks in prop::collection::vec(any::<u8>(), 1..4),
    ) {
        let net = build(n_inputs, &ops, &out_picks);
        let (small, _) = simplify(&net);
        for l in lint(&small) {
            prop_assert!(
                !matches!(
                    l.kind,
                    LintKind::DeadNode
                        | LintKind::ConstantFoldable
                        | LintKind::DoubleNot
                        | LintKind::DuplicateGate
                ),
                "surviving lint {} on simplified netlist",
                l
            );
        }
    }
}

#[test]
fn library_lowerings_are_lint_clean_at_error_severity() {
    for (name, net) in analysis::library() {
        let errors: Vec<_> = lint(&net)
            .into_iter()
            .filter(|l| l.kind.severity() >= Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: {errors:?}");
    }
}
