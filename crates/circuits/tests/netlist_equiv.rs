//! Scheduled-vs-eager equivalence: every lowered netlist, executed
//! wave-by-wave on the persistent batch pool, must decrypt identically to
//! the eager sequential `ServerKey::apply` evaluation of the same circuit
//! — across random operands, RNG seeds, and pool thread counts 1/2/4.
//! Because bootstrapping is deterministic given the keys, the scheduled
//! outputs are additionally required to be *bit-identical* across thread
//! counts and to the netlist's own sequential executor.
//!
//! Case counts are small: every binary gate is a full bootstrap and every
//! mux is two.

use matcha_circuits::netlist::CycleInstruction;
use matcha_circuits::processor::{EncryptedOpcode, Instruction, Processor};
use matcha_circuits::{adder, alu, comparator, multiplier, mux, netlist, popcount, shifter, word};
use matcha_fft::F64Fft;
use matcha_tfhe::{
    CircuitNetlist, ClientKey, GateBatchPool, LweCiphertext, ParameterSet, ServerKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey<F64Fft>>,
    /// One persistent pool per tested thread count.
    pools: Vec<GateBatchPool<F64Fft>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5C8ED);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = Arc::new(ServerKey::with_unrolling(&client, engine, 2, &mut rng));
        let pools = [1, 2, 4]
            .iter()
            .map(|&t| GateBatchPool::new(Arc::clone(&server), t))
            .collect();
        Fixture {
            client,
            server,
            pools,
        }
    })
}

/// Runs `net` on every pool (threads 1, 2, 4) and on the sequential
/// executor; asserts all four output vectors are bit-identical and returns
/// one of them.
fn run_everywhere(
    f: &Fixture,
    net: &CircuitNetlist,
    inputs: &[LweCiphertext],
) -> Vec<LweCiphertext> {
    let sequential = net.execute_sequential(f.server.as_ref(), inputs);
    for pool in &f.pools {
        let scheduled = net.execute(pool, inputs);
        assert_eq!(
            scheduled.outputs,
            sequential.outputs,
            "threads={}",
            pool.threads()
        );
    }
    sequential.outputs
}

fn decrypt_word(f: &Fixture, bits: &[LweCiphertext]) -> u64 {
    word::decrypt(&f.client, bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn adder_netlist_equivalent(x in 0u64..16, y in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);

        let eager = adder::add(f.server.as_ref(), &a, &b);

        let net = netlist::ripple_adder(4);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        // Scheduled == eager, down to the plaintext.
        prop_assert_eq!(decrypt_word(f, &outs[..4]), decrypt_word(f, &eager.sum));
        prop_assert_eq!(f.client.decrypt(&outs[4]), f.client.decrypt(&eager.carry));
        prop_assert_eq!(decrypt_word(f, &outs[..4]), (x + y) & 0xF);
        prop_assert_eq!(f.client.decrypt(&outs[4]), x + y > 0xF);
    }

    #[test]
    fn subtractor_netlist_equivalent(x in 0u64..8, y in 0u64..8, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 3, &mut rng);
        let b = word::encrypt(&f.client, y, 3, &mut rng);

        let eager = adder::sub(f.server.as_ref(), &a, &b);

        let net = netlist::ripple_subtractor(3);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(decrypt_word(f, &outs[..3]), decrypt_word(f, &eager.sum));
        prop_assert_eq!(decrypt_word(f, &outs[..3]), x.wrapping_sub(y) & 0x7);
        prop_assert_eq!(f.client.decrypt(&outs[3]), x >= y);
    }

    #[test]
    fn comparator_netlist_equivalent(x in 0u64..32, y in 0u64..32, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        // Width 5 exercises the odd-layer passthrough of the AND tree.
        let a = word::encrypt(&f.client, x, 5, &mut rng);
        let b = word::encrypt(&f.client, y, 5, &mut rng);

        let eager = comparator::eq(f.server.as_ref(), &a, &b);

        let net = netlist::eq_comparator(5);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(f.client.decrypt(&outs[0]), f.client.decrypt(&eager));
        prop_assert_eq!(f.client.decrypt(&outs[0]), x == y);
    }

    #[test]
    fn mux_tree_netlist_equivalent(idx in 0u64..4, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let width = 2;
        let words: Vec<_> = (0..4u64)
            .map(|v| word::encrypt(&f.client, v ^ 0b01, width, &mut rng))
            .collect();
        let index = word::encrypt(&f.client, idx, 2, &mut rng);

        let eager = mux::select_one_of(f.server.as_ref(), &index, &words);

        let net = netlist::mux_tree(2, width);
        let inputs: Vec<LweCiphertext> = index
            .iter()
            .chain(words.iter().flatten())
            .cloned()
            .collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(decrypt_word(f, &outs), decrypt_word(f, &eager));
        prop_assert_eq!(decrypt_word(f, &outs), idx ^ 0b01);
    }

    // ---- new word-level lowerings, width 4 ----
    //
    // Beyond decrypt-equality, the outputs must be *bit-identical* to the
    // eager ciphertexts: each lowering emits the exact gate DAG of its
    // eager counterpart and bootstrapping is deterministic given the keys.

    #[test]
    fn mul_netlist_bit_identical_to_eager(x in 0u64..16, y in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);

        let eager = multiplier::mul(f.server.as_ref(), &a, &b);

        let net = netlist::mul(4);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), x * y);
    }

    #[test]
    fn alu_netlist_bit_identical_to_eager(
        op_idx in 0usize..4,
        x in 0u64..16,
        y in 0u64..16,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let op = [alu::AluOp::Add, alu::AluOp::Sub, alu::AluOp::And, alu::AluOp::Xor][op_idx];
        let opcode = EncryptedOpcode::encrypt(&f.client, op, &mut rng);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);

        let eager = alu::execute(f.server.as_ref(), opcode.bits(), &a, &b);

        let net = netlist::alu(4);
        let inputs: Vec<LweCiphertext> = opcode
            .bits()
            .iter()
            .chain(a.iter())
            .chain(b.iter())
            .cloned()
            .collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), op.eval(x, y, 4));
    }

    #[test]
    fn popcount_netlist_bit_identical_to_eager(value in 0u64..256, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = word::encrypt(&f.client, value, 8, &mut rng);

        let eager = popcount::popcount(f.server.as_ref(), &bits);

        let net = netlist::popcount(8);
        let outs = run_everywhere(f, &net, &bits);

        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), u64::from(value.count_ones()));
    }

    #[test]
    fn shifter_netlists_bit_identical_to_eager(
        value in 0u64..16,
        amt in 0u64..8,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        // 3 amount bits over width 4 exercise the fully collapsed
        // shift-by-4 level on both directions.
        let a = word::encrypt(&f.client, value, 4, &mut rng);
        let amount = word::encrypt(&f.client, amt, 3, &mut rng);
        let inputs: Vec<LweCiphertext> = amount.iter().chain(a.iter()).cloned().collect();

        let eager_l = shifter::shl(f.server.as_ref(), &a, &amount);
        let outs_l = run_everywhere(f, &netlist::shl(4, 3), &inputs);
        prop_assert_eq!(&outs_l[..], &eager_l[..]);
        let expect_l = if amt >= 4 { 0 } else { (value << amt) & 0xF };
        prop_assert_eq!(decrypt_word(f, &outs_l), expect_l);

        let eager_r = shifter::shr(f.server.as_ref(), &a, &amount);
        let outs_r = run_everywhere(f, &netlist::shr(4, 3), &inputs);
        prop_assert_eq!(&outs_r[..], &eager_r[..]);
        prop_assert_eq!(
            decrypt_word(f, &outs_r),
            value.checked_shr(amt as u32).unwrap_or(0)
        );
    }

    #[test]
    fn processor_cycle_netlist_bit_identical_to_eager_step(
        op_idx in 0usize..4,
        x in 0u64..16,
        y in 0u64..16,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let op = [alu::AluOp::Add, alu::AluOp::Sub, alu::AluOp::And, alu::AluOp::Xor][op_idx];
        let opcode = EncryptedOpcode::encrypt(&f.client, op, &mut rng);
        let r0 = word::encrypt(&f.client, x, 4, &mut rng);
        let r1 = word::encrypt(&f.client, y, 4, &mut rng);

        let mut cpu = Processor::new(vec![r0.clone(), r1.clone()]);
        cpu.step(
            f.server.as_ref(),
            &Instruction::Alu { op: opcode.clone(), dst: 0, src1: 0, src2: 1 },
        );

        let instr = CycleInstruction::Alu { dst: 0, src1: 0, src2: 1 };
        let net = netlist::processor_cycle(2, 4, instr);
        let inputs: Vec<LweCiphertext> = r0
            .iter()
            .chain(r1.iter())
            .chain(opcode.bits().iter())
            .cloned()
            .collect();
        let outs = run_everywhere(f, &net, &inputs);

        // The whole register file comes back: dst computed, r1 passthrough.
        prop_assert_eq!(&outs[..4], &cpu.register(0)[..]);
        prop_assert_eq!(&outs[4..], &cpu.register(1)[..]);
        prop_assert_eq!(decrypt_word(f, &outs[..4]), op.eval(x, y, 4));
        prop_assert_eq!(decrypt_word(f, &outs[4..]), y);
    }

    #[test]
    fn cmov_cycle_netlist_bit_identical_to_eager_step(
        flag in any::<bool>(),
        x in 0u64..16,
        y in 0u64..16,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc_flag = f.client.encrypt_with(flag, &mut rng);
        let r0 = word::encrypt(&f.client, x, 4, &mut rng);
        let r1 = word::encrypt(&f.client, y, 4, &mut rng);

        let mut cpu = Processor::new(vec![r0.clone(), r1.clone()]);
        cpu.step(
            f.server.as_ref(),
            &Instruction::CMov { flag: enc_flag.clone(), dst: 1, src_true: 0, src_false: 1 },
        );

        let instr = CycleInstruction::CMov { dst: 1, src_true: 0, src_false: 1 };
        let net = netlist::processor_cycle(2, 4, instr);
        let inputs: Vec<LweCiphertext> = r0
            .iter()
            .chain(r1.iter())
            .chain(std::iter::once(&enc_flag))
            .cloned()
            .collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(&outs[..4], &cpu.register(0)[..]);
        prop_assert_eq!(&outs[4..], &cpu.register(1)[..]);
        prop_assert_eq!(decrypt_word(f, &outs[..4]), x);
        prop_assert_eq!(decrypt_word(f, &outs[4..]), if flag { x } else { y });
    }
}

// Width-8 legs of the same equivalences: the real library entries, with a
// single random case each — the width-4 blocks above carry the case
// diversity, these pin the exact shapes the server and bench run.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(1))]

    #[test]
    fn mul8_and_mul_low8_netlists_bit_identical_to_eager(
        x in 0u64..256,
        y in 0u64..256,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 8, &mut rng);
        let b = word::encrypt(&f.client, y, 8, &mut rng);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();

        let eager = multiplier::mul(f.server.as_ref(), &a, &b);
        let outs = run_everywhere(f, &netlist::mul(8), &inputs);
        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), x * y);

        let eager_low = multiplier::mul_low(f.server.as_ref(), &a, &b);
        let outs_low = run_everywhere(f, &netlist::mul_low(8), &inputs);
        prop_assert_eq!(&outs_low[..], &eager_low[..]);
        prop_assert_eq!(decrypt_word(f, &outs_low), (x * y) & 0xFF);
    }

    #[test]
    fn alu8_netlist_bit_identical_to_eager(
        op_idx in 0usize..4,
        x in 0u64..256,
        y in 0u64..256,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let op = [alu::AluOp::Add, alu::AluOp::Sub, alu::AluOp::And, alu::AluOp::Xor][op_idx];
        let opcode = EncryptedOpcode::encrypt(&f.client, op, &mut rng);
        let a = word::encrypt(&f.client, x, 8, &mut rng);
        let b = word::encrypt(&f.client, y, 8, &mut rng);

        let eager = alu::execute(f.server.as_ref(), opcode.bits(), &a, &b);

        let inputs: Vec<LweCiphertext> = opcode
            .bits()
            .iter()
            .chain(a.iter())
            .chain(b.iter())
            .cloned()
            .collect();
        let outs = run_everywhere(f, &netlist::alu(8), &inputs);
        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), op.eval(x, y, 8));
    }

    #[test]
    fn popcount16_netlist_bit_identical_to_eager(value in 0u64..65536, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = word::encrypt(&f.client, value, 16, &mut rng);

        let eager = popcount::popcount(f.server.as_ref(), &bits);
        let outs = run_everywhere(f, &netlist::popcount(16), &bits);
        prop_assert_eq!(&outs[..], &eager[..]);
        prop_assert_eq!(decrypt_word(f, &outs), u64::from(value.count_ones()));
    }

    #[test]
    fn shifter8_netlists_bit_identical_to_eager(
        value in 0u64..256,
        amt in 0u64..16,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, value, 8, &mut rng);
        let amount = word::encrypt(&f.client, amt, 4, &mut rng);
        let inputs: Vec<LweCiphertext> = amount.iter().chain(a.iter()).cloned().collect();

        let eager_l = shifter::shl(f.server.as_ref(), &a, &amount);
        let outs_l = run_everywhere(f, &netlist::shl(8, 4), &inputs);
        prop_assert_eq!(&outs_l[..], &eager_l[..]);
        let expect_l = if amt >= 8 { 0 } else { (value << amt) & 0xFF };
        prop_assert_eq!(decrypt_word(f, &outs_l), expect_l);

        let eager_r = shifter::shr(f.server.as_ref(), &a, &amount);
        let outs_r = run_everywhere(f, &netlist::shr(8, 4), &inputs);
        prop_assert_eq!(&outs_r[..], &eager_r[..]);
        prop_assert_eq!(
            decrypt_word(f, &outs_r),
            value.checked_shr(amt as u32).unwrap_or(0)
        );
    }
}
