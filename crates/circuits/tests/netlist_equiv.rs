//! Scheduled-vs-eager equivalence: every lowered netlist, executed
//! wave-by-wave on the persistent batch pool, must decrypt identically to
//! the eager sequential `ServerKey::apply` evaluation of the same circuit
//! — across random operands, RNG seeds, and pool thread counts 1/2/4.
//! Because bootstrapping is deterministic given the keys, the scheduled
//! outputs are additionally required to be *bit-identical* across thread
//! counts and to the netlist's own sequential executor.
//!
//! Case counts are small: every binary gate is a full bootstrap and every
//! mux is two.

use matcha_circuits::{adder, comparator, mux, netlist, word};
use matcha_fft::F64Fft;
use matcha_tfhe::{
    CircuitNetlist, ClientKey, GateBatchPool, LweCiphertext, ParameterSet, ServerKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey<F64Fft>>,
    /// One persistent pool per tested thread count.
    pools: Vec<GateBatchPool<F64Fft>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5C8ED);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = Arc::new(ServerKey::with_unrolling(&client, engine, 2, &mut rng));
        let pools = [1, 2, 4]
            .iter()
            .map(|&t| GateBatchPool::new(Arc::clone(&server), t))
            .collect();
        Fixture {
            client,
            server,
            pools,
        }
    })
}

/// Runs `net` on every pool (threads 1, 2, 4) and on the sequential
/// executor; asserts all four output vectors are bit-identical and returns
/// one of them.
fn run_everywhere(
    f: &Fixture,
    net: &CircuitNetlist,
    inputs: &[LweCiphertext],
) -> Vec<LweCiphertext> {
    let sequential = net.execute_sequential(f.server.as_ref(), inputs);
    for pool in &f.pools {
        let scheduled = net.execute(pool, inputs);
        assert_eq!(
            scheduled.outputs,
            sequential.outputs,
            "threads={}",
            pool.threads()
        );
    }
    sequential.outputs
}

fn decrypt_word(f: &Fixture, bits: &[LweCiphertext]) -> u64 {
    word::decrypt(&f.client, bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn adder_netlist_equivalent(x in 0u64..16, y in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);

        let eager = adder::add(f.server.as_ref(), &a, &b);

        let net = netlist::ripple_adder(4);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        // Scheduled == eager, down to the plaintext.
        prop_assert_eq!(decrypt_word(f, &outs[..4]), decrypt_word(f, &eager.sum));
        prop_assert_eq!(f.client.decrypt(&outs[4]), f.client.decrypt(&eager.carry));
        prop_assert_eq!(decrypt_word(f, &outs[..4]), (x + y) & 0xF);
        prop_assert_eq!(f.client.decrypt(&outs[4]), x + y > 0xF);
    }

    #[test]
    fn subtractor_netlist_equivalent(x in 0u64..8, y in 0u64..8, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 3, &mut rng);
        let b = word::encrypt(&f.client, y, 3, &mut rng);

        let eager = adder::sub(f.server.as_ref(), &a, &b);

        let net = netlist::ripple_subtractor(3);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(decrypt_word(f, &outs[..3]), decrypt_word(f, &eager.sum));
        prop_assert_eq!(decrypt_word(f, &outs[..3]), x.wrapping_sub(y) & 0x7);
        prop_assert_eq!(f.client.decrypt(&outs[3]), x >= y);
    }

    #[test]
    fn comparator_netlist_equivalent(x in 0u64..32, y in 0u64..32, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        // Width 5 exercises the odd-layer passthrough of the AND tree.
        let a = word::encrypt(&f.client, x, 5, &mut rng);
        let b = word::encrypt(&f.client, y, 5, &mut rng);

        let eager = comparator::eq(f.server.as_ref(), &a, &b);

        let net = netlist::eq_comparator(5);
        let inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(f.client.decrypt(&outs[0]), f.client.decrypt(&eager));
        prop_assert_eq!(f.client.decrypt(&outs[0]), x == y);
    }

    #[test]
    fn mux_tree_netlist_equivalent(idx in 0u64..4, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let width = 2;
        let words: Vec<_> = (0..4u64)
            .map(|v| word::encrypt(&f.client, v ^ 0b01, width, &mut rng))
            .collect();
        let index = word::encrypt(&f.client, idx, 2, &mut rng);

        let eager = mux::select_one_of(f.server.as_ref(), &index, &words);

        let net = netlist::mux_tree(2, width);
        let inputs: Vec<LweCiphertext> = index
            .iter()
            .chain(words.iter().flatten())
            .cloned()
            .collect();
        let outs = run_everywhere(f, &net, &inputs);

        prop_assert_eq!(decrypt_word(f, &outs), decrypt_word(f, &eager));
        prop_assert_eq!(decrypt_word(f, &outs), idx ^ 0b01);
    }
}
