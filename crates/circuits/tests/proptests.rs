//! Property-based tests of the circuit layer against plaintext oracles.
//! Case counts are small: every gate is a full bootstrap.

use matcha_circuits::{adder, alu, comparator, mux, popcount, shifter, word};
use matcha_fft::F64Fft;
use matcha_tfhe::{ClientKey, ParameterSet, ServerKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    client: ClientKey,
    server: ServerKey<F64Fft>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC1BC);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
        Fixture { client, server }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn addition_matches_plaintext(x in 0u64..16, y in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);
        let r = adder::add(&f.server, &a, &b);
        prop_assert_eq!(word::decrypt(&f.client, &r.sum), (x + y) & 0xF);
        prop_assert_eq!(f.client.decrypt(&r.carry), x + y > 0xF);
    }

    #[test]
    fn subtraction_matches_plaintext(x in 0u64..16, y in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let b = word::encrypt(&f.client, y, 4, &mut rng);
        let r = adder::sub(&f.server, &a, &b);
        prop_assert_eq!(word::decrypt(&f.client, &r.sum), x.wrapping_sub(y) & 0xF);
        prop_assert_eq!(f.client.decrypt(&r.carry), x >= y);
    }

    #[test]
    fn comparisons_match_plaintext(x in 0u64..8, y in 0u64..8, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 3, &mut rng);
        let b = word::encrypt(&f.client, y, 3, &mut rng);
        prop_assert_eq!(f.client.decrypt(&comparator::lt(&f.server, &a, &b)), x < y);
        prop_assert_eq!(f.client.decrypt(&comparator::eq(&f.server, &a, &b)), x == y);
    }

    #[test]
    fn mux_selects_correctly(sel in any::<bool>(), x in 0u64..8, y in 0u64..8, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let cs = f.client.encrypt_with(sel, &mut rng);
        let a = word::encrypt(&f.client, x, 3, &mut rng);
        let b = word::encrypt(&f.client, y, 3, &mut rng);
        let out = mux::select_word(&f.server, &cs, &a, &b);
        prop_assert_eq!(word::decrypt(&f.client, &out), if sel { x } else { y });
    }

    #[test]
    fn shifts_match_plaintext(x in 0u64..16, amt in 0u64..4, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 4, &mut rng);
        let enc_amt = word::encrypt(&f.client, amt, 2, &mut rng);
        let left = shifter::shl(&f.server, &a, &enc_amt);
        prop_assert_eq!(word::decrypt(&f.client, &left), (x << amt) & 0xF);
    }

    #[test]
    fn popcount_matches_plaintext(x in 0u64..16, seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let bits = word::encrypt(&f.client, x, 4, &mut rng);
        let count = popcount::popcount(&f.server, &bits);
        prop_assert_eq!(word::decrypt(&f.client, &count), x.count_ones() as u64);
    }

    #[test]
    fn alu_matches_oracle(
        op in prop::sample::select(vec![
            alu::AluOp::Add, alu::AluOp::Sub, alu::AluOp::And, alu::AluOp::Xor,
        ]),
        x in 0u64..8,
        y in 0u64..8,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = word::encrypt(&f.client, x, 3, &mut rng);
        let b = word::encrypt(&f.client, y, 3, &mut rng);
        let bits = op.opcode_bits();
        let opcode = vec![
            f.client.encrypt_with(bits[0], &mut rng),
            f.client.encrypt_with(bits[1], &mut rng),
        ];
        let out = alu::execute(&f.server, &opcode, &a, &b);
        prop_assert_eq!(word::decrypt(&f.client, &out), op.eval(x, y, 3));
    }
}
