//! Formal verification of the circuit library: every shipped lowering is
//! **proven** — not sampled — equivalent to its simplified form (BDD
//! function identity per output) and to its plaintext arithmetic spec
//! (exhaustive over all input assignments). A deliberately broken rewrite
//! must be refuted with a counterexample that replays, and the proofs
//! must degrade to `Unknown` (never a wrong verdict, never a blowup)
//! under a starved budget.
//!
//! This is the suite the CI `netlist-equiv` job runs. It spends zero
//! bootstraps: everything here is plaintext static analysis.

use matcha_circuits::analysis::{library, library_specs};
use matcha_tfhe::analyze::equiv::{
    self, check_spec, check_with_words, eval_netlist, EquivBudget, Verdict,
};
use matcha_tfhe::circuit::{CircuitNetlist, GateOp};
use matcha_tfhe::{simplify, Gate};

#[test]
fn every_library_entry_simplifies_to_a_proven_equivalent() {
    let budget = EquivBudget::default();
    let specs = library_specs();
    for ((name, raw), (spec_name, spec)) in library().into_iter().zip(&specs) {
        assert_eq!(name, *spec_name, "library and specs must stay aligned");
        let (simplified, _) = simplify(&raw);
        let report = check_with_words(&raw, &simplified, budget, &spec.input_widths);
        assert!(
            report.is_equivalent(),
            "{name}: simplify must be sound — {report}"
        );
        assert!(
            report.nodes <= budget.max_nodes,
            "{name}: {} nodes exceed the budget",
            report.nodes
        );
    }
}

#[test]
fn every_library_entry_matches_its_plaintext_spec_on_all_inputs() {
    let budget = EquivBudget::default();
    for ((name, raw), (spec_name, spec)) in library().into_iter().zip(library_specs()) {
        assert_eq!(name, spec_name);
        let report = check_spec(&raw, &spec, budget);
        assert!(
            report.is_equivalent(),
            "{name}: lowering must compute its spec — {report}"
        );
        assert_eq!(
            report.outputs_checked,
            raw.outputs().len(),
            "{name}: every output proven"
        );
    }
}

#[test]
fn simplify_is_idempotent_on_the_whole_library() {
    for (name, raw) in library() {
        let (once, _) = simplify(&raw);
        let (twice, report) = simplify(&once);
        assert_eq!(once, twice, "{name}: simplify must be a fixpoint");
        assert_eq!(
            report.bootstraps_saved(),
            0,
            "{name}: a second pass must find nothing"
        );
    }
}

/// Flips the first XOR of a netlist to XNOR — an unsound "rewrite" that
/// must be refuted.
fn flip_first_xor(net: &CircuitNetlist) -> CircuitNetlist {
    let mut ops = net.ops().to_vec();
    let flipped = ops.iter_mut().find_map(|op| {
        if let GateOp::Binary(Gate::Xor, a, b) = *op {
            *op = GateOp::Binary(Gate::Xnor, a, b);
            Some(())
        } else {
            None
        }
    });
    assert!(flipped.is_some(), "netlist has an XOR to break");
    CircuitNetlist::from_parts(ops, net.outputs().to_vec())
        .expect("mutated netlist keeps the canonical shape")
}

#[test]
fn broken_rewrites_are_refuted_with_replayable_counterexamples() {
    let budget = EquivBudget::default();
    let specs = library_specs();
    // Every XOR-bearing entry: break it and demand a counterexample that
    // actually distinguishes the two netlists under eager evaluation.
    for ((name, raw), (_, spec)) in library().into_iter().zip(&specs) {
        if !raw
            .ops()
            .iter()
            .any(|op| matches!(op, GateOp::Binary(Gate::Xor, _, _)))
        {
            continue;
        }
        let broken = flip_first_xor(&raw);
        let report = check_with_words(&raw, &broken, budget, &spec.input_widths);
        match report.verdict {
            Verdict::NotEquivalent {
                output,
                counterexample,
            } => {
                let want = eval_netlist(&raw, &counterexample.bits);
                let got = eval_netlist(&broken, &counterexample.bits);
                assert_ne!(
                    want[output], got[output],
                    "{name}: counterexample {counterexample} must distinguish output {output}"
                );
                // The rendering is per-input-word hex in slot order.
                assert!(
                    counterexample.to_string().starts_with("in[0]=0x"),
                    "{name}: {counterexample}"
                );
            }
            other => panic!("{name}: expected NotEquivalent, got {other:?}"),
        }
    }
}

#[test]
fn starved_budgets_degrade_to_unknown_not_wrong_verdicts() {
    let tiny = EquivBudget {
        max_nodes: 8,
        max_inputs: 64,
    };
    for (name, raw) in library() {
        let (simplified, _) = simplify(&raw);
        let report = equiv::check(&raw, &simplified, tiny);
        assert!(
            matches!(
                report.verdict,
                Verdict::Equivalent | Verdict::Unknown { .. }
            ),
            "{name}: a starved check may give up but never mis-decide: {report}"
        );
    }
    // And the input cap refuses up front.
    let narrow = EquivBudget {
        max_nodes: 1 << 20,
        max_inputs: 4,
    };
    let (_, adder) = &library()[0];
    let (simplified, _) = simplify(adder);
    assert!(
        matches!(
            equiv::check(adder, &simplified, narrow).verdict,
            Verdict::Unknown { .. }
        ),
        "16 inputs must exceed a 4-input budget"
    );
}

#[test]
fn processor_cycle_proof_fits_the_default_node_budget() {
    // The acceptance bar: the largest library entry (18 inputs, a full
    // register-file update) verifies within the default budget.
    let budget = EquivBudget::default();
    let (name, raw) = library().into_iter().last().expect("library is non-empty");
    assert_eq!(name, "processor_cycle8");
    let (simplified, _) = simplify(&raw);
    let report = equiv::check(&raw, &simplified, budget);
    assert!(report.is_equivalent(), "{name}: {report}");
    assert!(
        report.nodes < budget.max_nodes / 4,
        "{name}: {} nodes leaves headroom under the {} budget",
        report.nodes,
        budget.max_nodes
    );
}
