//! Cross-circuit interleaving: correctness, fairness and utilization.
//!
//! The `CircuitServer` fills every pool dispatch with the ready frontier
//! of *all* in-flight circuits. These tests pin the three properties that
//! make that safe and worthwhile:
//!
//! * **Equivalence** — K concurrent clients submitting a mix of lowered
//!   netlists (adder / comparator / mux tree) get results bit-identical
//!   to the eager sequential oracle, across pool thread counts 1/2/4 and
//!   seeds (bootstrapping is deterministic given the keys).
//! * **No starvation** — a short circuit submitted behind a long one
//!   completes while the long one is still in flight.
//! * **Utilization** — interleaving ≥ 2 circuits on ≥ 2 workers fills
//!   strictly more of the offered wave-slots than running the same mix
//!   one circuit at a time (the PR 4 behavior), measured structurally
//!   via the scheduler's task/slot counters.

use matcha_circuits::netlist::CycleInstruction;
use matcha_circuits::processor::{EncryptedOpcode, Instruction, Processor};
use matcha_circuits::{alu, netlist, word};
use matcha_fft::F64Fft;
use matcha_tfhe::{
    CircuitNetlist, CircuitServer, ClientKey, LweCiphertext, ParameterSet, PendingCircuit,
    ServerKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey<F64Fft>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x1A7E);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = Arc::new(ServerKey::with_unrolling(&client, engine, 2, &mut rng));
        Fixture { client, server }
    })
}

/// One mixed workload: an adder, a comparator and a mux tree with their
/// encrypted inputs and expected plaintext outputs.
struct Workload {
    net: CircuitNetlist,
    inputs: Vec<LweCiphertext>,
}

fn mixed_workloads(f: &Fixture, seed: u64) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    {
        let a = word::encrypt(&f.client, 11, 4, &mut rng);
        let b = word::encrypt(&f.client, 6, 4, &mut rng);
        jobs.push(Workload {
            net: netlist::ripple_adder(4),
            inputs: a.into_iter().chain(b).collect(),
        });
    }
    {
        let a = word::encrypt(&f.client, 19, 5, &mut rng);
        let b = word::encrypt(&f.client, (seed % 2) * 19 + 3, 5, &mut rng);
        jobs.push(Workload {
            net: netlist::eq_comparator(5),
            inputs: a.into_iter().chain(b).collect(),
        });
    }
    {
        let index = word::encrypt(&f.client, seed % 4, 2, &mut rng);
        let words = (0..4u64).flat_map(|v| word::encrypt(&f.client, v ^ 0b10, 2, &mut rng));
        jobs.push(Workload {
            net: netlist::mux_tree(2, 2),
            inputs: index.into_iter().chain(words).collect(),
        });
    }
    jobs
}

#[test]
fn interleaved_matches_sequential_across_clients_and_threads() {
    let f = fixture();
    for (threads, seed) in [(1usize, 21u64), (2, 22), (2, 23), (4, 24)] {
        let server = CircuitServer::start(Arc::clone(&f.server), threads);
        let workloads = mixed_workloads(f, seed);
        // The eager oracle, from the same ciphertexts.
        let expected: Vec<Vec<LweCiphertext>> = workloads
            .iter()
            .map(|w| {
                w.net
                    .execute_sequential(f.server.as_ref(), &w.inputs)
                    .outputs
            })
            .collect();
        // One client thread per workload, all submitting at once so the
        // circuits genuinely share super-waves.
        let outputs: Vec<Vec<LweCiphertext>> = std::thread::scope(|scope| {
            let handles: Vec<_> = workloads
                .iter()
                .map(|w| {
                    let handle = server.client();
                    scope.spawn(move || {
                        handle
                            .submit(w.net.clone(), w.inputs.clone())
                            .wait()
                            .completed()
                            .expect("server live")
                            .outputs
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        assert_eq!(
            outputs, expected,
            "threads={threads} seed={seed}: interleaved must be bit-identical to sequential"
        );
        server.shutdown();
    }
}

#[test]
fn long_circuit_does_not_starve_a_short_one() {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(31);
    // One worker: without interleaving the long chain would hold the
    // pool for its entire 24-wave critical path before the short circuit
    // ran at all.
    let server = CircuitServer::start(Arc::clone(&f.server), 1);
    let handle = server.client();
    let long_bits: Vec<bool> = (0..25).map(|i| i % 3 == 0).collect();
    let long = {
        let mut net = CircuitNetlist::new();
        let mut acc = net.input();
        for _ in 0..24 {
            let next = net.input();
            acc = net.gate(matcha_tfhe::Gate::Xor, acc, next);
        }
        net.mark_output(acc);
        handle.submit(
            net,
            long_bits
                .iter()
                .map(|&b| f.client.encrypt_with(b, &mut rng))
                .collect(),
        )
    };
    let short = {
        let mut net = CircuitNetlist::new();
        let (a, b) = (net.input(), net.input());
        let g = net.gate(matcha_tfhe::Gate::And, a, b);
        net.mark_output(g);
        handle.submit(
            net,
            vec![
                f.client.encrypt_with(true, &mut rng),
                f.client.encrypt_with(true, &mut rng),
            ],
        )
    };
    let run = short.wait().completed().expect("short circuit completes");
    assert!(f.client.decrypt(&run.outputs[0]), "true AND true");
    assert!(
        long.try_wait().is_none(),
        "the long circuit must still be in flight when the short one resolves"
    );
    let run = long.wait().completed().expect("long circuit completes");
    assert_eq!(
        f.client.decrypt(&run.outputs[0]),
        long_bits.iter().fold(false, |a, &b| a ^ b)
    );
    server.shutdown();
}

#[test]
fn mul8_interleaves_without_starving_short_circuits() {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(51);
    // An 8×8 multiplier is the deepest, widest DAG the scheduler serves:
    // 320 bootstraps over a ~70-wave critical path. Short circuits from
    // other clients submitted behind it must complete while it is still
    // in flight, even on a single worker.
    let server = CircuitServer::start(Arc::clone(&f.server), 1);
    let (x, y) = (201u64, 174u64);
    let a = word::encrypt(&f.client, x, 8, &mut rng);
    let b = word::encrypt(&f.client, y, 8, &mut rng);
    let mul_net = netlist::mul(8);
    let mul_inputs: Vec<LweCiphertext> = a.iter().chain(b.iter()).cloned().collect();
    let expected = mul_net
        .execute_sequential(f.server.as_ref(), &mul_inputs)
        .outputs;

    let heavy_client = server.client();
    let mul_ticket = heavy_client.submit(mul_net, mul_inputs);

    // Two other clients with short circuits behind the deep DAG.
    let light_client = server.client();
    let short_and = {
        let mut net = CircuitNetlist::new();
        let (p, q) = (net.input(), net.input());
        let g = net.gate(matcha_tfhe::Gate::And, p, q);
        net.mark_output(g);
        light_client.submit(
            net,
            vec![
                f.client.encrypt_with(true, &mut rng),
                f.client.encrypt_with(false, &mut rng),
            ],
        )
    };
    let cmp_client = server.client();
    let cmp_ticket = {
        let u = word::encrypt(&f.client, 9, 4, &mut rng);
        let v = word::encrypt(&f.client, 9, 4, &mut rng);
        cmp_client.submit(
            netlist::eq_comparator(4),
            u.into_iter().chain(v).collect::<Vec<LweCiphertext>>(),
        )
    };

    let run = short_and.wait().completed().expect("short AND completes");
    assert!(!f.client.decrypt(&run.outputs[0]));
    assert!(
        mul_ticket.try_wait().is_none(),
        "the multiplier must still be in flight when the 1-gate circuit resolves"
    );
    let run = cmp_ticket.wait().completed().expect("comparator completes");
    assert!(f.client.decrypt(&run.outputs[0]), "9 == 9");

    let run = mul_ticket.wait().completed().expect("multiplier completes");
    assert_eq!(
        run.outputs, expected,
        "interleaved mul8 must be bit-identical to sequential"
    );
    assert_eq!(word::decrypt(&f.client, &run.outputs), x * y);
    server.shutdown();
}

#[test]
fn encrypted_cpu_program_on_the_server_matches_processor_run() {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(61);
    // A 3-instruction straight-line program on a 3-register, 4-bit
    // machine: r2 ← r0 + r1; r0 ← flag ? r2 : r0; r1 ← r2 XOR r0. Each
    // cycle is one submitted circuit whose register-file outputs feed the
    // next cycle's inputs — the encrypted-CPU serving story.
    let width = 4;
    let (v0, v1) = (9u64, 5u64);
    let r0 = word::encrypt(&f.client, v0, width, &mut rng);
    let r1 = word::encrypt(&f.client, v1, width, &mut rng);
    let r2 = word::encrypt(&f.client, 0, width, &mut rng);

    let add_op = EncryptedOpcode::encrypt(&f.client, alu::AluOp::Add, &mut rng);
    let xor_op = EncryptedOpcode::encrypt(&f.client, alu::AluOp::Xor, &mut rng);
    let flag = f.client.encrypt_with(true, &mut rng);

    // The eager oracle: the same program through Processor::run.
    let mut cpu = Processor::new(vec![r0.clone(), r1.clone(), r2.clone()]);
    cpu.run(
        f.server.as_ref(),
        &[
            Instruction::Alu {
                op: add_op.clone(),
                dst: 2,
                src1: 0,
                src2: 1,
            },
            Instruction::CMov {
                flag: flag.clone(),
                dst: 0,
                src_true: 2,
                src_false: 0,
            },
            Instruction::Alu {
                op: xor_op.clone(),
                dst: 1,
                src1: 2,
                src2: 0,
            },
        ],
    );

    // The served version: consecutive processor-cycle netlists, the
    // register file threading through as ciphertext.
    let server = CircuitServer::start(Arc::clone(&f.server), 2);
    let handle = server.client();
    let mut regs: Vec<LweCiphertext> = r0
        .iter()
        .chain(r1.iter())
        .chain(r2.iter())
        .cloned()
        .collect();
    let program = [
        (
            CycleInstruction::Alu {
                dst: 2,
                src1: 0,
                src2: 1,
            },
            add_op.bits().to_vec(),
        ),
        (
            CycleInstruction::CMov {
                dst: 0,
                src_true: 2,
                src_false: 0,
            },
            vec![flag.clone()],
        ),
        (
            CycleInstruction::Alu {
                dst: 1,
                src1: 2,
                src2: 0,
            },
            xor_op.bits().to_vec(),
        ),
    ];
    for (instr, control) in program {
        let net = netlist::processor_cycle(3, width, instr);
        let inputs: Vec<LweCiphertext> = regs.iter().cloned().chain(control).collect();
        let run = handle
            .submit(net, inputs)
            .wait()
            .completed()
            .expect("cycle completes");
        regs = run.outputs;
    }
    server.shutdown();

    // Register state bit-identical to the eager machine, and
    // decrypt-equal to the plaintext semantics.
    for (i, reg) in (0..3).map(|i| (i, &regs[i * width..(i + 1) * width])) {
        assert_eq!(reg, &cpu.register(i)[..], "r{i} bitwise");
    }
    let sum = (v0 + v1) & 0xF;
    assert_eq!(word::decrypt(&f.client, &regs[..width]), sum); // r0 ← CMov picked r2
    assert_eq!(word::decrypt(&f.client, &regs[width..2 * width]), sum ^ sum); // r1 ← r2^r0
    assert_eq!(word::decrypt(&f.client, &regs[2 * width..]), sum); // r2 ← v0+v1
}

#[test]
fn interleaving_beats_solo_utilization_on_adder_comparator_mix() {
    let f = fixture();
    let mut rng = StdRng::seed_from_u64(41);
    let server = CircuitServer::start(Arc::clone(&f.server), 2);
    let handle = server.client();
    // Two adders and two comparators: the adders' narrow tail waves (a
    // ripple carry chain alternates 2-wide and 1-wide levels) interleave
    // with *each other*, which is where the wasted wave-slots of the
    // solo baseline go — a 1-wide wave on 2 workers idles half the pool.
    let make_jobs = |rng: &mut StdRng| {
        let mut jobs = Vec::new();
        for (x, y) in [(173u64, 91u64), (4, 250)] {
            let a = word::encrypt(&f.client, x, 8, rng);
            let b = word::encrypt(&f.client, y, 8, rng);
            jobs.push((
                netlist::ripple_adder(8),
                a.into_iter().chain(b).collect::<Vec<LweCiphertext>>(),
            ));
        }
        for (x, y) in [(200u64, 200u64), (17, 18)] {
            let a = word::encrypt(&f.client, x, 8, rng);
            let b = word::encrypt(&f.client, y, 8, rng);
            jobs.push((
                netlist::eq_comparator(8),
                a.into_iter().chain(b).collect::<Vec<LweCiphertext>>(),
            ));
        }
        jobs
    };

    // PR 4 baseline: one circuit at a time occupies the pool.
    let s0 = server.stats();
    for (net, inputs) in make_jobs(&mut rng) {
        let run = handle.submit(net, inputs).wait().completed().expect("solo");
        assert!(run.waves > 0);
    }
    let s1 = server.stats();

    // Interleaved: a short chain barrier keeps the scheduler busy for a
    // couple of dispatches (two bootstraps) while the real circuits join
    // the queue, so they are admitted together and share every
    // subsequent super-wave even if this thread gets descheduled
    // mid-submission.
    let barrier = {
        let mut net = CircuitNetlist::new();
        let (a, b, c) = (net.input(), net.input(), net.input());
        let g = net.gate(matcha_tfhe::Gate::Or, a, b);
        let h = net.gate(matcha_tfhe::Gate::Xor, g, c);
        net.mark_output(h);
        handle.submit(
            net,
            vec![
                f.client.encrypt_with(false, &mut rng),
                f.client.encrypt_with(true, &mut rng),
                f.client.encrypt_with(false, &mut rng),
            ],
        )
    };
    let tickets: Vec<PendingCircuit> = make_jobs(&mut rng)
        .into_iter()
        .map(|(net, inputs)| handle.submit(net, inputs))
        .collect();
    assert!(barrier.wait().is_completed());
    for ticket in tickets {
        assert!(ticket.wait().is_completed());
    }
    let s2 = server.stats();

    let solo = s1.since(&s0);
    let interleaved = s2.since(&s1);
    assert_eq!(solo.completed, 4);
    assert_eq!(interleaved.completed, 5);
    assert!(
        s2.max_in_flight >= 2,
        "adder and comparator must have been in flight together (high water {})",
        s2.max_in_flight
    );
    assert!(
        interleaved.utilization() > solo.utilization(),
        "interleaving must fill strictly more wave-slots: solo {:.3} vs interleaved {:.3}",
        solo.utilization(),
        interleaved.utilization()
    );
    server.shutdown();
}
