//! Robustness of the serving stack under scripted faults.
//!
//! The `CircuitServer` claims per-circuit fault isolation, worker
//! self-healing, and a total outcome taxonomy (every ticket resolves to
//! exactly one `CircuitOutcome`). These tests drive those claims with the
//! deterministic `FaultPlan` harness over *lowered* netlists — the same
//! adder/comparator/mux-tree mix the interleaving equivalence suite uses
//! — rather than hand-built chains:
//!
//! * **Property (random plans)** — under random fault plans mixing
//!   panics, delays and worker deaths over a 3-client mixed workload,
//!   every ticket resolves, nothing hangs, and every `Completed` result
//!   is bit-identical to the eager sequential oracle.
//! * **Worker death** — a scripted kill at a real netlist's first gate
//!   heals, retries, and completes bit-identical, with the restart
//!   surfaced in the scheduler stats.
//! * **Injected panic** — faults exactly the circuit owning the site;
//!   neighbors sharing the super-waves complete bit-identical.

use matcha_circuits::{netlist, word};
use matcha_fft::F64Fft;
use matcha_tfhe::{
    CircuitNetlist, CircuitOutcome, CircuitServer, ClientKey, FaultAction, FaultPlan, GateOp,
    LweCiphertext, ParameterSet, ServerConfig, ServerKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Fixture {
    client: ClientKey,
    server: Arc<ServerKey<F64Fft>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xFA17);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = Arc::new(ServerKey::with_unrolling(&client, engine, 2, &mut rng));
        Fixture { client, server }
    })
}

/// One workload: a lowered netlist with its encrypted inputs.
struct Workload {
    net: CircuitNetlist,
    inputs: Vec<LweCiphertext>,
}

/// The 3-client mix: adder, comparator, mux tree.
fn mixed_workloads(f: &Fixture, seed: u64) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut jobs = Vec::new();
    {
        let a = word::encrypt(&f.client, seed % 16, 4, &mut rng);
        let b = word::encrypt(&f.client, (seed / 16) % 16, 4, &mut rng);
        jobs.push(Workload {
            net: netlist::ripple_adder(4),
            inputs: a.into_iter().chain(b).collect(),
        });
    }
    {
        let a = word::encrypt(&f.client, 19, 5, &mut rng);
        let b = word::encrypt(&f.client, (seed % 2) * 19 + 3, 5, &mut rng);
        jobs.push(Workload {
            net: netlist::eq_comparator(5),
            inputs: a.into_iter().chain(b).collect(),
        });
    }
    {
        let index = word::encrypt(&f.client, seed % 4, 2, &mut rng);
        let words = (0..4u64).flat_map(|v| word::encrypt(&f.client, v ^ 0b01, 2, &mut rng));
        jobs.push(Workload {
            net: netlist::mux_tree(2, 2),
            inputs: index.into_iter().chain(words).collect(),
        });
    }
    jobs
}

/// Node indices of the bootstrapped (dispatchable) ops — the sites a
/// fault plan can actually hit.
fn gate_nodes(net: &CircuitNetlist) -> Vec<usize> {
    net.ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, GateOp::Binary(..) | GateOp::Mux { .. }))
        .map(|(id, _)| id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random fault plans over the 3-client mix: panics, small delays and
    /// worker deaths at arbitrary (circuit, node) points. Whatever fires,
    /// every ticket must resolve to exactly one outcome — Completed
    /// (bit-identical to the eager oracle, since only panics may fault a
    /// circuit) or Faulted — and the server must survive to serve a
    /// final clean circuit.
    #[test]
    fn random_fault_plans_leave_every_ticket_resolved(
        seed in any::<u64>(),
        sites in proptest::collection::vec((0u64..3, 0usize..40, 0usize..3), 0..6),
    ) {
        let f = fixture();
        let mut plan = FaultPlan::new();
        for &(circuit, node, kind) in &sites {
            let action = match kind {
                0 => FaultAction::Panic,
                1 => FaultAction::Delay(Duration::from_millis(5)),
                _ => FaultAction::KillWorker,
            };
            plan = plan.inject(circuit, node, action);
        }
        let server = CircuitServer::start_with_faults(
            Arc::clone(&f.server),
            2,
            ServerConfig::default(),
            Arc::new(plan),
        );
        let workloads = mixed_workloads(f, seed);
        let expected: Vec<Vec<LweCiphertext>> = workloads
            .iter()
            .map(|w| w.net.execute_sequential(f.server.as_ref(), &w.inputs).outputs)
            .collect();
        // One distinct client per workload, submitted from one thread so
        // the admission tags are 0, 1, 2 in workload order.
        let tickets: Vec<_> = workloads
            .iter()
            .map(|w| server.client().submit(w.net.clone(), w.inputs.clone()))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            // `wait` returning at all is the no-hang property; the
            // outcome taxonomy is total.
            match ticket.wait() {
                CircuitOutcome::Completed(run) => {
                    prop_assert_eq!(
                        &run.outputs,
                        &expected[i],
                        "workload {} must be bit-identical to the eager oracle",
                        i
                    );
                }
                CircuitOutcome::Faulted(msg) => {
                    // Only an injected panic can fault a circuit: kills
                    // are healed and delays are benign.
                    prop_assert!(
                        sites.iter().any(|&(c, _, kind)| c == i as u64 && kind == 0),
                        "workload {} faulted ({}) without a panic site",
                        i,
                        msg
                    );
                }
                other => prop_assert!(false, "unexpected outcome {:?}", other),
            }
        }
        // The server outlives whatever the plan did to it.
        let w = &mixed_workloads(f, seed.wrapping_add(1))[0];
        let run = server
            .client()
            .submit(w.net.clone(), w.inputs.clone())
            .wait()
            .completed()
            .expect("server survives the fault plan");
        let oracle = w.net.execute_sequential(f.server.as_ref(), &w.inputs);
        prop_assert_eq!(&run.outputs, &oracle.outputs);
        server.shutdown();
    }
}

#[test]
fn worker_death_on_lowered_netlist_heals_and_matches_oracle() {
    let f = fixture();
    let net = netlist::ripple_adder(4);
    let first_gate = gate_nodes(&net)[0];
    let plan = Arc::new(FaultPlan::new().inject(0, first_gate, FaultAction::KillWorker));
    let server = CircuitServer::start_with_faults(
        Arc::clone(&f.server),
        2,
        ServerConfig::default(),
        Arc::clone(&plan),
    );
    let mut rng = StdRng::seed_from_u64(61);
    let a = word::encrypt(&f.client, 9, 4, &mut rng);
    let b = word::encrypt(&f.client, 13, 4, &mut rng);
    let inputs: Vec<LweCiphertext> = a.into_iter().chain(b).collect();
    let run = server
        .client()
        .submit(net.clone(), inputs.clone())
        .wait()
        .completed()
        .expect("adder completes despite the worker death");
    assert!(plan.is_spent(), "the kill fired");
    let oracle = net.execute_sequential(f.server.as_ref(), &inputs);
    assert_eq!(run.outputs, oracle.outputs, "healed run is bit-identical");
    assert_eq!(word::decrypt(&f.client, &run.outputs[..4]), (9 + 13) & 0xF);
    let stats = server.stats();
    assert!(stats.restarts >= 1, "restart surfaced: {}", stats.restarts);
    assert_eq!(stats.faulted, 0);
    server.shutdown();
}

#[test]
fn injected_panic_faults_one_circuit_and_spares_the_mix() {
    let f = fixture();
    let workloads = mixed_workloads(f, 7);
    // Panic the comparator (admission tag 1) at its first gate; the
    // adder and mux tree share its super-waves and must be untouched.
    let comparator_gate = gate_nodes(&workloads[1].net)[0];
    let plan = Arc::new(FaultPlan::new().inject(1, comparator_gate, FaultAction::Panic));
    let server =
        CircuitServer::start_with_faults(Arc::clone(&f.server), 2, ServerConfig::default(), plan);
    let expected: Vec<Vec<LweCiphertext>> = workloads
        .iter()
        .map(|w| {
            w.net
                .execute_sequential(f.server.as_ref(), &w.inputs)
                .outputs
        })
        .collect();
    let tickets: Vec<_> = workloads
        .iter()
        .map(|w| server.client().submit(w.net.clone(), w.inputs.clone()))
        .collect();
    let outcomes: Vec<CircuitOutcome> = tickets.into_iter().map(|t| t.wait()).collect();
    assert!(outcomes[1].is_faulted(), "the panic site faults its owner");
    for i in [0usize, 2] {
        let run = outcomes[i]
            .clone()
            .completed()
            .unwrap_or_else(|| panic!("workload {i} must complete"));
        assert_eq!(run.outputs, expected[i], "workload {i} bit-identical");
    }
    assert_eq!(server.stats().faulted, 1);
    server.shutdown();
}
