//! Wire-vs-in-process equivalence for the session layer, across the
//! lowered netlist library and server pool sizes:
//!
//! * A **packed** submission through a framed duplex-pipe session must be
//!   **bit-identical** to submitting the very same TRLWE samples through
//!   the in-process [`CircuitClient::submit_packed`] — the wire adds
//!   framing, never arithmetic (the unpack is a deterministic sample
//!   extraction plus key switch, and bootstrapping is deterministic given
//!   the keys).
//! * Both must **decrypt identically** to the per-LWE in-process
//!   submission of the same plaintext bits — packing is transport, not
//!   semantics.
//!
//! Case counts are small: every binary gate is a full bootstrap.

use matcha_circuits::analysis;
use matcha_fft::F64Fft;
use matcha_tfhe::server::CircuitServer;
use matcha_tfhe::session::{duplex, SessionClient, SessionServer};
use matcha_tfhe::{packing, CircuitNetlist, ClientKey, LweCiphertext, ParameterSet, ServerKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

struct Fixture {
    client: ClientKey,
    /// One persistent circuit server per tested pool size (1, 2, 4
    /// worker threads), all sharing one server key.
    servers: Vec<CircuitServer>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5E5510);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let key = Arc::new(ServerKey::new(&client, engine, &mut rng));
        let servers = [1, 2, 4]
            .iter()
            .map(|&t| CircuitServer::start(Arc::clone(&key), t))
            .collect();
        Fixture { client, servers }
    })
}

/// Serves one session over a duplex pipe and runs `drive` against its
/// client end; returns after the serving thread has drained.
fn with_session<T>(
    server: &CircuitServer,
    drive: impl FnOnce(&mut SessionClient<matcha_tfhe::session::PipeEnd>) -> T,
) -> T {
    let (near, far) = duplex();
    let sess = SessionServer::new(server.client(), *server.params());
    let handle = std::thread::spawn(move || sess.serve(far));
    let mut wire = SessionClient::connect(near).expect("handshake");
    let out = drive(&mut wire);
    drop(wire);
    handle.join().expect("serving thread").expect("clean close");
    out
}

fn library_entry(index: usize) -> (&'static str, CircuitNetlist) {
    let lib = analysis::library();
    let pick = index % lib.len();
    lib.into_iter().nth(pick).expect("index in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline acceptance property: for a random library circuit,
    /// random input bits, and every pool size, the session-served packed
    /// submission is bit-identical to the in-process packed submission
    /// and decrypt-equal to the in-process per-LWE submission.
    #[test]
    fn wire_packed_equals_in_process(entry in any::<usize>(), seed in any::<u64>()) {
        let f = fixture();
        let (name, net) = library_entry(entry);
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = F64Fft::new(f.client.params().ring_degree);
        let bits: Vec<bool> = (0..net.num_inputs()).map(|_| rng.gen_bool(0.5)).collect();
        // One packed transport sample carries the whole input vector
        // (every library circuit has ≤ N inputs at TEST_FAST).
        let samples = vec![packing::pack_bits(&f.client, &bits, &engine, &mut rng)];
        let lwe_inputs: Vec<LweCiphertext> = bits
            .iter()
            .map(|&b| f.client.encrypt_with(b, &mut rng))
            .collect();

        // Per-LWE in-process run: the reference semantics.
        let reference = f.servers[1]
            .client()
            .submit(net.clone(), lwe_inputs)
            .wait()
            .completed()
            .unwrap_or_else(|| panic!("{name}: per-LWE run must complete"));
        let expected: Vec<bool> = reference
            .outputs
            .iter()
            .map(|c| f.client.decrypt(c))
            .collect();

        for server in &f.servers {
            let over_wire = with_session(server, |wire| {
                wire.submit_packed(&net, samples.clone()).expect("submit");
                let (_, outcome) = wire.wait().expect("outcome");
                outcome
                    .completed()
                    .unwrap_or_else(|| panic!("{name}: wire run must complete"))
            });
            let in_process = server
                .client()
                .submit_packed(net.clone(), samples.clone())
                .wait()
                .completed()
                .unwrap_or_else(|| panic!("{name}: in-process packed run must complete"));
            prop_assert_eq!(
                &over_wire.outputs,
                &in_process.outputs,
                "{}: wire and in-process packed outputs must be bit-identical",
                name
            );
            let decrypted: Vec<bool> = over_wire
                .outputs
                .iter()
                .map(|c| f.client.decrypt(c))
                .collect();
            prop_assert_eq!(
                &decrypted,
                &expected,
                "{}: packed transport must not change circuit semantics",
                name
            );
        }
    }

    /// `submit_bits` (client-side packing inside the session layer)
    /// agrees with packing by hand.
    #[test]
    fn submit_bits_equals_manual_packing(entry in any::<usize>(), seed in any::<u64>()) {
        let f = fixture();
        let (name, net) = library_entry(entry);
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = F64Fft::new(f.client.params().ring_degree);
        let bits: Vec<bool> = (0..net.num_inputs()).map(|_| rng.gen_bool(0.5)).collect();

        let run = with_session(&f.servers[1], |wire| {
            wire.submit_bits(&f.client, &net, &bits, &engine, &mut rng)
                .expect("submit");
            let (_, outcome) = wire.wait().expect("outcome");
            outcome
                .completed()
                .unwrap_or_else(|| panic!("{name}: submit_bits run must complete"))
        });
        let reference = f.servers[0]
            .client()
            .submit(
                net.clone(),
                bits.iter()
                    .map(|&b| f.client.encrypt_with(b, &mut rng))
                    .collect(),
            )
            .wait()
            .completed()
            .unwrap_or_else(|| panic!("{name}: reference run must complete"));
        let got: Vec<bool> = run.outputs.iter().map(|c| f.client.decrypt(c)).collect();
        let want: Vec<bool> = reference
            .outputs
            .iter()
            .map(|c| f.client.decrypt(c))
            .collect();
        prop_assert_eq!(got, want, "{}", name);
    }
}
