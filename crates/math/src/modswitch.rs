//! Modulus switching between the torus and `Z_{2N}`.
//!
//! The first step of bootstrapping (Algorithm 1, line 2) rounds every torus
//! coefficient of the input LWE sample to the `2N`-element subgroup
//! `(1/2N)·Z / Z` so it can be used as the exponent of the `2N`-th root of
//! unity `X` during blind rotation. Rounding adds the "rounding noise" `RO`
//! that Table 3 of the paper tracks.

use crate::torus::Torus32;

/// Rounds a torus element to the nearest multiple of `1/2N`, returning the
/// integer exponent in `[0, 2N)`.
///
/// # Panics
///
/// Panics if `two_n` is not a power of two or exceeds `2^31`.
///
/// # Examples
///
/// ```
/// use matcha_math::{mod_switch_from_torus, Torus32};
///
/// // 0.25 → 2N/4 for N = 1024.
/// assert_eq!(mod_switch_from_torus(Torus32::from_f64(0.25), 2048), 512);
/// ```
#[inline]
pub fn mod_switch_from_torus(x: Torus32, two_n: u32) -> u32 {
    assert!(
        two_n.is_power_of_two() && two_n <= 1 << 31,
        "2N must be a power of two ≤ 2^31"
    );
    let interval = (1u64 << 32) / two_n as u64;
    let half = interval / 2;
    (((x.raw() as u64 + half) / interval) % two_n as u64) as u32
}

/// Embeds an exponent of `Z_{2N}` back onto the torus as `k / 2N`.
///
/// # Panics
///
/// Panics if `two_n` is not a power of two or exceeds `2^31`.
#[inline]
pub fn mod_switch_to_torus(k: u32, two_n: u32) -> Torus32 {
    assert!(
        two_n.is_power_of_two() && two_n <= 1 << 31,
        "2N must be a power of two ≤ 2^31"
    );
    let interval = (1u64 << 32) / two_n as u64;
    Torus32::from_raw(((k as u64 % two_n as u64) * interval) as u32)
}

/// Worst-case rounding error of [`mod_switch_from_torus`] in torus units:
/// `1/(4N)`.
#[inline]
pub fn mod_switch_error_bound(two_n: u32) -> f64 {
    0.5 / two_n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded() {
        let two_n = 2048;
        for i in 0..4096u32 {
            let x = Torus32::from_raw(i.wrapping_mul(0x9e37_79b9).wrapping_add(3));
            let k = mod_switch_from_torus(x, two_n);
            let back = mod_switch_to_torus(k, two_n);
            assert!(
                x.signed_diff(back).abs() <= mod_switch_error_bound(two_n) + 1e-12,
                "rounding error too large for {x:?}"
            );
        }
    }

    #[test]
    fn exact_on_grid() {
        let two_n = 2048;
        for k in [0u32, 1, 7, 1024, 2047] {
            let x = mod_switch_to_torus(k, two_n);
            assert_eq!(mod_switch_from_torus(x, two_n), k);
        }
    }

    #[test]
    fn quarter_turn() {
        assert_eq!(mod_switch_from_torus(Torus32::from_f64(0.25), 2048), 512);
        assert_eq!(mod_switch_from_torus(Torus32::from_f64(-0.25), 2048), 1536);
        assert_eq!(mod_switch_from_torus(Torus32::ZERO, 2048), 0);
    }

    #[test]
    fn result_in_range() {
        for i in 0..1000u32 {
            let x = Torus32::from_raw(i.wrapping_mul(0xdead_beef));
            assert!(mod_switch_from_torus(x, 64) < 64);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = mod_switch_from_torus(Torus32::ZERO, 100);
    }
}
