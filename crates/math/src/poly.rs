//! Negacyclic polynomial rings `T_N[X] = T[X]/(X^N + 1)` and
//! `Z_N[X] = Z[X]/(X^N + 1)`.
//!
//! All TFHE ring operations happen modulo `X^N + 1` with `N` a power of two,
//! which makes `X` a `2N`-th root of `-1`: multiplying by `X^k` is a rotation
//! of the coefficient vector with sign flips on wrap-around. Blind rotation
//! (Algorithm 1 of the paper) is built entirely out of such monomial
//! multiplications plus external products.

use crate::torus::Torus32;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// A polynomial over the discretized torus, `T_N[X]`.
///
/// # Examples
///
/// ```
/// use matcha_math::{TorusPolynomial, Torus32};
///
/// let mut p = TorusPolynomial::zero(4);
/// p.coeffs_mut()[0] = Torus32::from_f64(0.25);
/// // X^4 = -1, so rotating by N negates every coefficient.
/// let q = p.mul_by_monomial(4);
/// assert_eq!(q.coeffs()[0], -Torus32::from_f64(0.25));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TorusPolynomial {
    coeffs: Vec<Torus32>,
}

impl TorusPolynomial {
    /// The zero polynomial of degree bound `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn zero(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "ring degree {n} must be a power of two"
        );
        Self {
            coeffs: vec![Torus32::ZERO; n],
        }
    }

    /// Builds a polynomial from its coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_coeffs(coeffs: Vec<Torus32>) -> Self {
        assert!(
            coeffs.len().is_power_of_two(),
            "length must be a power of two"
        );
        Self { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Torus32, n: usize) -> Self {
        let mut p = Self::zero(n);
        p.coeffs[0] = c;
        p
    }

    /// Degree bound `N` of the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Returns `true` if the ring degree is zero (never for valid rings).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Immutable view of the coefficients, constant term first.
    #[inline]
    pub fn coeffs(&self) -> &[Torus32] {
        &self.coeffs
    }

    /// Mutable view of the coefficients.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [Torus32] {
        &mut self.coeffs
    }

    /// Multiplies by the monomial `X^power` in `T_N[X]` (negacyclic rotation).
    ///
    /// `power` is interpreted modulo `2N`; `X^N = -1`.
    pub fn mul_by_monomial(&self, power: i64) -> Self {
        let mut out = Self::zero(self.len());
        out.rotate_from(self, power);
        out
    }

    /// Writes `src · X^power` into `self` without allocating (once `self`
    /// has `src`'s length). Every output index is written, so no prior
    /// clearing is needed.
    ///
    /// # Panics
    ///
    /// Panics if `self.len() != src.len()`.
    pub fn rotate_from(&mut self, src: &Self, power: i64) {
        let n = src.len() as i64;
        assert_eq!(self.len() as i64, n, "ring degree mismatch");
        let shift = power.rem_euclid(2 * n);
        for (i, &c) in src.coeffs.iter().enumerate() {
            let mut j = i as i64 + shift;
            let mut v = c;
            if j >= 2 * n {
                j -= 2 * n;
            }
            if j >= n {
                j -= n;
                v = -v;
            }
            self.coeffs[j as usize] = v;
        }
    }

    /// Copies `other`'s coefficients into `self` without allocating once
    /// capacity exists (unlike derived `clone_from`, which reallocates).
    pub fn copy_from(&mut self, other: &Self) {
        self.coeffs.clear();
        self.coeffs.extend_from_slice(&other.coeffs);
    }

    /// Sets every coefficient to zero.
    pub fn fill_zero(&mut self) {
        self.coeffs.fill(Torus32::ZERO);
    }

    /// In-place `self += (X^power − 1) · other`, the "rotate minus identity"
    /// update at the heart of blind rotation and bootstrapping-key bundle
    /// construction (paper Fig. 5).
    pub fn add_rotate_minus_one(&mut self, other: &Self, power: i64) {
        debug_assert_eq!(self.len(), other.len());
        let rotated = other.mul_by_monomial(power);
        for ((dst, &rot), &orig) in self
            .coeffs
            .iter_mut()
            .zip(rotated.coeffs.iter())
            .zip(other.coeffs.iter())
        {
            *dst += rot - orig;
        }
    }

    /// Naive `O(N²)` negacyclic product with an integer polynomial.
    ///
    /// This is the correctness reference the FFT engines are validated
    /// against; production code paths use `matcha-fft`.
    pub fn naive_mul_int(&self, rhs: &IntPolynomial) -> Self {
        let n = self.len();
        debug_assert_eq!(n, rhs.len());
        let mut out = vec![Torus32::ZERO; n];
        for (i, &a) in rhs.coeffs().iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in self.coeffs.iter().enumerate() {
                let k = i + j;
                let term = b * a;
                if k < n {
                    out[k] += term;
                } else {
                    out[k - n] -= term;
                }
            }
        }
        Self { coeffs: out }
    }

    /// Maximum absolute centered distance between two polynomials, in torus
    /// units (`[0, 1/2]`). Used to bound FFT approximation error.
    pub fn max_distance(&self, other: &Self) -> f64 {
        self.coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(&a, &b)| a.signed_diff(b).abs())
            .fold(0.0, f64::max)
    }
}

impl Add<&TorusPolynomial> for TorusPolynomial {
    type Output = TorusPolynomial;
    fn add(mut self, rhs: &TorusPolynomial) -> TorusPolynomial {
        self += rhs;
        self
    }
}

impl AddAssign<&TorusPolynomial> for TorusPolynomial {
    fn add_assign(&mut self, rhs: &TorusPolynomial) {
        debug_assert_eq!(self.len(), rhs.len());
        for (a, &b) in self.coeffs.iter_mut().zip(rhs.coeffs.iter()) {
            *a += b;
        }
    }
}

impl Sub<&TorusPolynomial> for TorusPolynomial {
    type Output = TorusPolynomial;
    fn sub(mut self, rhs: &TorusPolynomial) -> TorusPolynomial {
        self -= rhs;
        self
    }
}

impl SubAssign<&TorusPolynomial> for TorusPolynomial {
    fn sub_assign(&mut self, rhs: &TorusPolynomial) {
        debug_assert_eq!(self.len(), rhs.len());
        for (a, &b) in self.coeffs.iter_mut().zip(rhs.coeffs.iter()) {
            *a -= b;
        }
    }
}

impl Neg for TorusPolynomial {
    type Output = TorusPolynomial;
    fn neg(mut self) -> TorusPolynomial {
        for c in &mut self.coeffs {
            *c = -*c;
        }
        self
    }
}

/// A polynomial with (small) integer coefficients, `Z_N[X]`.
///
/// Integer polynomials appear as gadget-decomposition digit vectors (bounded
/// by `Bg/2`) and as binary secret-key polynomials.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntPolynomial {
    coeffs: Vec<i32>,
}

impl IntPolynomial {
    /// The zero polynomial of degree bound `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn zero(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "ring degree {n} must be a power of two"
        );
        Self { coeffs: vec![0; n] }
    }

    /// Builds a polynomial from its coefficient vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_coeffs(coeffs: Vec<i32>) -> Self {
        assert!(
            coeffs.len().is_power_of_two(),
            "length must be a power of two"
        );
        Self { coeffs }
    }

    /// Degree bound `N` of the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Returns `true` if the ring degree is zero (never for valid rings).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Immutable view of the coefficients, constant term first.
    #[inline]
    pub fn coeffs(&self) -> &[i32] {
        &self.coeffs
    }

    /// Mutable view of the coefficients.
    #[inline]
    pub fn coeffs_mut(&mut self) -> &mut [i32] {
        &mut self.coeffs
    }

    /// Largest coefficient magnitude (infinity norm).
    pub fn norm_inf(&self) -> i64 {
        self.coeffs
            .iter()
            .map(|&c| (c as i64).abs())
            .max()
            .unwrap_or(0)
    }

    /// Naive `O(N²)` negacyclic product with another integer polynomial,
    /// evaluated in `i64` (test reference only).
    pub fn naive_mul(&self, rhs: &IntPolynomial) -> Vec<i64> {
        let n = self.len();
        debug_assert_eq!(n, rhs.len());
        let mut out = vec![0i64; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                let k = i + j;
                let term = a as i64 * b as i64;
                if k < n {
                    out[k] += term;
                } else {
                    out[k - n] -= term;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(vals: &[f64]) -> TorusPolynomial {
        TorusPolynomial::from_coeffs(vals.iter().map(|&v| Torus32::from_f64(v)).collect())
    }

    #[test]
    fn monomial_rotation_basics() {
        let p = tp(&[0.25, 0.125, 0.0, 0.0]);
        let q = p.mul_by_monomial(1);
        assert_eq!(q.coeffs()[1], Torus32::from_f64(0.25));
        assert_eq!(q.coeffs()[2], Torus32::from_f64(0.125));
    }

    #[test]
    fn monomial_wraps_negacyclically() {
        let p = tp(&[0.0, 0.0, 0.0, 0.25]);
        let q = p.mul_by_monomial(1); // X^3 · X = X^4 = -1
        assert_eq!(q.coeffs()[0], Torus32::from_f64(-0.25));
    }

    #[test]
    fn monomial_by_2n_is_identity() {
        let p = tp(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.mul_by_monomial(8), p);
        assert_eq!(p.mul_by_monomial(-8), p);
        assert_eq!(p.mul_by_monomial(0), p);
    }

    #[test]
    fn monomial_by_n_negates() {
        let p = tp(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.mul_by_monomial(4), -p);
    }

    #[test]
    fn negative_power_is_inverse_rotation() {
        let p = tp(&[0.1, 0.2, 0.3, 0.4]);
        let q = p.mul_by_monomial(3).mul_by_monomial(-3);
        assert_eq!(q, p);
    }

    #[test]
    fn add_rotate_minus_one_matches_direct_formula() {
        let acc = tp(&[0.05, 0.1, 0.15, 0.2]);
        let other = tp(&[0.01, 0.02, 0.03, 0.04]);
        let mut lhs = acc.clone();
        lhs.add_rotate_minus_one(&other, 3);
        let rhs = acc + &other.mul_by_monomial(3) - &other;
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn naive_mul_int_matches_monomial() {
        // Multiplying by the monomial polynomial X^2 must agree with rotation.
        let p = tp(&[0.1, 0.2, 0.3, 0.4]);
        let mut m = IntPolynomial::zero(4);
        m.coeffs_mut()[2] = 1;
        assert_eq!(p.naive_mul_int(&m), p.mul_by_monomial(2));
    }

    #[test]
    fn naive_mul_int_is_distributive() {
        let p = tp(&[0.1, 0.2, 0.3, 0.4]);
        let a = IntPolynomial::from_coeffs(vec![1, -2, 0, 3]);
        let b = IntPolynomial::from_coeffs(vec![0, 5, -1, 2]);
        let sum = IntPolynomial::from_coeffs(vec![1, 3, -1, 5]);
        let lhs = p.naive_mul_int(&sum);
        let rhs = p.naive_mul_int(&a) + &p.naive_mul_int(&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn int_poly_norms() {
        let a = IntPolynomial::from_coeffs(vec![1, -7, 0, 3]);
        assert_eq!(a.norm_inf(), 7);
        assert_eq!(IntPolynomial::zero(4).norm_inf(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = TorusPolynomial::zero(3);
    }
}
