//! Gadget (signed digit) decomposition.
//!
//! The TGSW external product decomposes every torus coefficient of a TLWE
//! sample into `ℓ` signed digits in base `Bg` (paper §5 uses `Bg = 1024`,
//! `ℓ = 3`). Digits are centered in `[-Bg/2, Bg/2)` so that the noise they
//! inject into the product is balanced around zero. The decomposition is
//! approximate: reconstruction matches the input to within
//! `1/(2·Bg^ℓ)` in torus units.

use crate::poly::{IntPolynomial, TorusPolynomial};
use crate::torus::Torus32;

/// Decomposes torus elements into `ℓ` balanced base-`Bg` digits.
///
/// # Examples
///
/// ```
/// use matcha_math::{GadgetDecomposer, Torus32};
///
/// let decomp = GadgetDecomposer::new(10, 3); // Bg = 1024, ℓ = 3
/// let x = Torus32::from_f64(0.317);
/// let digits = decomp.decompose(x);
/// let rebuilt = decomp.recompose(&digits);
/// assert!(x.signed_diff(rebuilt).abs() <= decomp.precision());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GadgetDecomposer {
    bg_bits: u32,
    levels: usize,
    offset: u32,
}

impl GadgetDecomposer {
    /// Creates a decomposer with base `Bg = 2^bg_bits` and `levels = ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the digits would not fit in 32 bits
    /// (`bg_bits * levels > 32` or `bg_bits ≥ 32`), or if either parameter
    /// is zero.
    pub fn new(bg_bits: u32, levels: usize) -> Self {
        assert!(
            bg_bits > 0 && levels > 0,
            "decomposition parameters must be nonzero"
        );
        // bg_bits = 32 would overflow `1 << bg_bits` in base() even with a
        // single level, so the base itself must fit too.
        assert!(
            bg_bits < 32 && bg_bits as usize * levels <= 32,
            "bg_bits {bg_bits} × levels {levels} exceeds the 32-bit torus"
        );
        // Each level contributes Bg/2 at its own digit position so the
        // extracted fields can be re-centered into [-Bg/2, Bg/2); the final
        // half-ulp bump turns the truncation of sub-precision bits into
        // round-to-nearest.
        let mut offset: u32 = 0;
        for level in 1..=levels as u32 {
            offset = offset.wrapping_add(1u32 << (31 - (level - 1) * bg_bits));
        }
        if (bg_bits as usize * levels) < 32 {
            offset = offset.wrapping_add(1u32 << (31 - levels as u32 * bg_bits));
        }
        Self {
            bg_bits,
            levels,
            offset,
        }
    }

    /// The decomposition base `Bg`.
    #[inline]
    pub fn base(&self) -> u32 {
        1 << self.bg_bits
    }

    /// `log2(Bg)`.
    #[inline]
    pub fn bg_bits(&self) -> u32 {
        self.bg_bits
    }

    /// The number of digit levels `ℓ`.
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Worst-case reconstruction error in torus units: `1/(2·Bg^ℓ)`.
    #[inline]
    pub fn precision(&self) -> f64 {
        0.5 / (self.base() as f64).powi(self.levels as i32)
    }

    /// The gadget element `h_j = 1/Bg^(j+1)` for level `j ∈ [0, ℓ)`.
    ///
    /// Row `j` of a TGSW sample encrypts `μ · h_j`.
    #[inline]
    pub fn gadget(&self, level: usize) -> Torus32 {
        debug_assert!(level < self.levels);
        Torus32::from_raw(1u32 << (32 - (level as u32 + 1) * self.bg_bits))
    }

    /// The offset-shifted representative from which every digit of `x` is
    /// extracted: `x + Σ_j Bg/2·h_j` plus the rounding half-ulp. Feed the
    /// result to [`GadgetDecomposer::digit`] once per level.
    ///
    /// This is the per-coefficient entry point the fused decompose→twist
    /// FFT fold uses: callers that consume one digit level at a time can
    /// extract it on the fly instead of materializing digit polynomials.
    #[inline]
    pub fn shift(&self, x: Torus32) -> u32 {
        x.raw().wrapping_add(self.offset)
    }

    /// Extracts the centered digit of level `level` (`0` = most
    /// significant) from a representative produced by
    /// [`GadgetDecomposer::shift`]. Bit-identical to the corresponding
    /// entry of [`GadgetDecomposer::decompose`].
    #[inline]
    pub fn digit(&self, shifted: u32, level: usize) -> i32 {
        debug_assert!(level < self.levels);
        let mask = self.base() - 1;
        let half = (self.base() / 2) as i32;
        let sh = 32 - (level as u32 + 1) * self.bg_bits;
        ((shifted >> sh) & mask) as i32 - half
    }

    /// Decomposes one torus element into `ℓ` centered digits,
    /// most significant first.
    pub fn decompose(&self, x: Torus32) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.levels);
        self.decompose_into(x, &mut out);
        out
    }

    /// Decomposes into a caller-provided buffer (cleared first) to avoid
    /// allocation in the external-product hot loop.
    pub fn decompose_into(&self, x: Torus32, out: &mut Vec<i32>) {
        out.clear();
        let t = self.shift(x);
        for level in 0..self.levels {
            out.push(self.digit(t, level));
        }
    }

    /// Recomposes digits into the closest representable torus element.
    pub fn recompose(&self, digits: &[i32]) -> Torus32 {
        debug_assert_eq!(digits.len(), self.levels);
        digits
            .iter()
            .enumerate()
            .map(|(j, &d)| self.gadget(j) * d)
            .sum()
    }

    /// Decomposes every coefficient of a torus polynomial, producing one
    /// integer polynomial per level (level 0 = most significant digits).
    pub fn decompose_poly(&self, p: &TorusPolynomial) -> Vec<IntPolynomial> {
        let n = p.len();
        let mut out: Vec<IntPolynomial> =
            (0..self.levels).map(|_| IntPolynomial::zero(n)).collect();
        self.decompose_poly_into(p, &mut out);
        out
    }

    /// Decomposes every coefficient of a torus polynomial into caller-owned
    /// digit polynomials — the zero-allocation form used by the external
    /// product hot loop. `out[level]` receives the digits of that level
    /// (level 0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.levels()` or any output polynomial's
    /// length differs from `p.len()`.
    pub fn decompose_poly_into(&self, p: &TorusPolynomial, out: &mut [IntPolynomial]) {
        assert_eq!(out.len(), self.levels, "one output polynomial per level");
        for poly in out.iter_mut() {
            assert_eq!(poly.len(), p.len(), "digit polynomial length mismatch");
        }
        for (i, &c) in p.coeffs().iter().enumerate() {
            let t = self.shift(c);
            for (level, poly) in out.iter_mut().enumerate() {
                poly.coeffs_mut()[i] = self.digit(t, level);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_are_centered() {
        let d = GadgetDecomposer::new(10, 3);
        let half = (d.base() / 2) as i32;
        for i in 0..2000u32 {
            let x = Torus32::from_raw(i.wrapping_mul(0x9e37_79b9));
            for digit in d.decompose(x) {
                assert!(digit >= -half && digit < half, "digit {digit} out of range");
            }
        }
    }

    #[test]
    fn recompose_within_precision() {
        let d = GadgetDecomposer::new(10, 3);
        for i in 0..2000u32 {
            let x = Torus32::from_raw(i.wrapping_mul(0x85eb_ca6b).wrapping_add(17));
            let back = d.recompose(&d.decompose(x));
            assert!(
                x.signed_diff(back).abs() <= d.precision() + 1e-12,
                "error {} exceeds precision {}",
                x.signed_diff(back).abs(),
                d.precision()
            );
        }
    }

    #[test]
    fn exact_for_representable_values() {
        // Values that are exact multiples of the finest gadget element
        // decompose with zero error.
        let d = GadgetDecomposer::new(10, 2);
        let fine = d.gadget(1); // 1/Bg^2 = 2^-20
        for k in [-5i32, -1, 0, 1, 7, 100] {
            let x = fine * k;
            assert_eq!(d.recompose(&d.decompose(x)), x);
        }
    }

    #[test]
    fn gadget_elements_are_powers_of_base() {
        let d = GadgetDecomposer::new(10, 3);
        assert_eq!(d.gadget(0).raw(), 1 << 22);
        assert_eq!(d.gadget(1).raw(), 1 << 12);
        assert_eq!(d.gadget(2).raw(), 1 << 2);
    }

    #[test]
    fn poly_decomposition_matches_scalar() {
        let d = GadgetDecomposer::new(8, 4);
        let p = TorusPolynomial::from_coeffs(
            (0..8).map(|i| Torus32::from_raw(i * 0x1357_9bdf)).collect(),
        );
        let polys = d.decompose_poly(&p);
        assert_eq!(polys.len(), 4);
        for (i, &c) in p.coeffs().iter().enumerate() {
            let scalar = d.decompose(c);
            for (level, poly) in polys.iter().enumerate() {
                assert_eq!(poly.coeffs()[i], scalar[level]);
            }
        }
    }

    #[test]
    fn per_coefficient_digit_matches_decompose() {
        let d = GadgetDecomposer::new(10, 3);
        for i in 0..500u32 {
            let x = Torus32::from_raw(i.wrapping_mul(0x9e37_79b9).wrapping_add(3));
            let t = d.shift(x);
            let full = d.decompose(x);
            for (level, &digit) in full.iter().enumerate() {
                assert_eq!(d.digit(t, level), digit, "level {level}");
            }
        }
    }

    #[test]
    fn precision_formula() {
        let d = GadgetDecomposer::new(10, 2);
        assert!((d.precision() - 0.5 / 1024.0f64.powi(2)).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit torus")]
    fn oversized_parameters_rejected() {
        let _ = GadgetDecomposer::new(10, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-bit torus")]
    fn full_width_base_rejected() {
        // 32 × 1 passes the product bound but `1 << 32` overflows base().
        let _ = GadgetDecomposer::new(32, 1);
    }
}
