//! Small statistics helpers used for noise measurement (paper Table 3) and
//! FFT error reporting in decibels (paper Figure 8).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stdev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square.
///
/// NaN entries *propagate* (the squared sum is poisoned): an RMS over
/// corrupt data must not masquerade as a valid magnitude.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Largest absolute value.
///
/// NaN entries are *ignored* (`f64::max` propagates the non-NaN operand):
/// the result is the largest magnitude among the finite-or-infinite
/// entries, or 0 if there are none. Noise measurement uses this to report
/// the worst observed error even when a reference slot was unusable.
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
}

/// Ratio expressed in decibels: `20·log10(amplitude_ratio)`.
///
/// Returns `-inf` dB for a zero ratio, matching the convention in the
/// paper's Figure 8 where smaller (more negative) is better.
pub fn amplitude_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Error level of `approx` relative to `reference`, in dB
/// (`20·log10(rms(err)/rms(ref))`).
///
/// Both RMS values are accumulated in one streaming pass with no
/// allocation — this sits inside noise-measurement loops that run once per
/// bootstrapped sample, where a per-call `Vec` of differences was pure
/// overhead. Exact matches (and empty or all-zero references) report
/// `-inf` dB, smaller-is-better as in the paper's Figure 8; NaN anywhere
/// propagates to a NaN result, consistent with [`rms`].
pub fn error_db(reference: &[f64], approx: &[f64]) -> f64 {
    debug_assert_eq!(reference.len(), approx.len());
    let mut err_sq = 0.0;
    let mut ref_sq = 0.0;
    for (&r, &a) in reference.iter().zip(approx.iter()) {
        let e = r - a;
        err_sq += e * e;
        ref_sq += r * r;
    }
    if ref_sq == 0.0 {
        return f64::NEG_INFINITY;
    }
    // The shared 1/n factors cancel in the ratio; the sqrt of the quotient
    // equals the quotient of the sqrts exactly for the dB argument.
    amplitude_db((err_sq / ref_sq).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stdev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0, -3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn db_scale() {
        assert!((amplitude_db(0.1) + 20.0).abs() < 1e-9);
        assert!((amplitude_db(1.0)).abs() < 1e-9);
    }

    #[test]
    fn max_abs_ignores_nan() {
        // Documented semantics: f64::max drops the NaN operand, so the
        // largest non-NaN magnitude wins.
        assert_eq!(max_abs(&[1.0, f64::NAN, -3.0]), 3.0);
        assert_eq!(max_abs(&[f64::NAN]), 0.0);
        assert_eq!(max_abs(&[f64::NAN, f64::NAN]), 0.0);
    }

    #[test]
    fn rms_propagates_nan() {
        // Documented semantics: a poisoned square sum stays poisoned.
        assert!(rms(&[1.0, f64::NAN, 2.0]).is_nan());
        assert!(rms(&[f64::NAN]).is_nan());
    }

    #[test]
    fn error_db_propagates_nan() {
        assert!(error_db(&[1.0, 2.0], &[1.0, f64::NAN]).is_nan());
        assert!(error_db(&[f64::NAN, 2.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn error_db_zero_reference_is_neg_inf() {
        assert_eq!(error_db(&[0.0, 0.0], &[0.5, -0.5]), f64::NEG_INFINITY);
        assert_eq!(error_db(&[], &[]), f64::NEG_INFINITY);
    }

    #[test]
    fn error_db_exact_match_is_neg_inf() {
        let xs = [1.0, -2.0, 0.5];
        assert_eq!(error_db(&xs, &xs), f64::NEG_INFINITY);
    }

    #[test]
    fn error_db_ten_percent() {
        let reference = [1.0, 1.0, 1.0, 1.0];
        let approx = [1.1, 1.1, 1.1, 1.1];
        assert!((error_db(&reference, &approx) + 20.0).abs() < 1e-9);
    }
}
