//! Small statistics helpers used for noise measurement (paper Table 3) and
//! FFT error reporting in decibels (paper Figure 8).

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stdev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root mean square.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Largest absolute value.
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
}

/// Ratio expressed in decibels: `20·log10(amplitude_ratio)`.
///
/// Returns `-inf` dB for a zero ratio, matching the convention in the
/// paper's Figure 8 where smaller (more negative) is better.
pub fn amplitude_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Error level of `approx` relative to `reference`, in dB
/// (`20·log10(rms(err)/rms(ref))`).
pub fn error_db(reference: &[f64], approx: &[f64]) -> f64 {
    debug_assert_eq!(reference.len(), approx.len());
    let err: Vec<f64> = reference
        .iter()
        .zip(approx.iter())
        .map(|(&r, &a)| r - a)
        .collect();
    let signal = rms(reference);
    if signal == 0.0 {
        return f64::NEG_INFINITY;
    }
    amplitude_db(rms(&err) / signal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stdev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0, -3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn db_scale() {
        assert!((amplitude_db(0.1) + 20.0).abs() < 1e-9);
        assert!((amplitude_db(1.0)).abs() < 1e-9);
    }

    #[test]
    fn error_db_exact_match_is_neg_inf() {
        let xs = [1.0, -2.0, 0.5];
        assert_eq!(error_db(&xs, &xs), f64::NEG_INFINITY);
    }

    #[test]
    fn error_db_ten_percent() {
        let reference = [1.0, 1.0, 1.0, 1.0];
        let approx = [1.1, 1.1, 1.1, 1.1];
        assert!((error_db(&reference, &approx) + 20.0).abs() < 1e-9);
    }
}
