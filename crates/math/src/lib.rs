//! Mathematical substrate for the MATCHA TFHE reproduction.
//!
//! TFHE (Chillotti et al.) is defined over the real torus `T = R/Z`, rescaled
//! by `2^32` and represented as 32-bit integers so that every operation is
//! implicitly reduced modulo `2^32` ("Torus Implementation", paper §2).
//! This crate provides that representation ([`Torus32`]), the negacyclic
//! polynomial rings `T_N[X]` and `Z_N[X]` ([`TorusPolynomial`],
//! [`IntPolynomial`]), the gadget (signed digit) decomposition used by TGSW
//! external products ([`GadgetDecomposer`]), modulus switching used by the
//! bootstrapping rounding step, and the random sampling primitives of the
//! scheme.
//!
//! # Examples
//!
//! ```
//! use matcha_math::Torus32;
//!
//! let a = Torus32::from_f64(0.25);
//! let b = Torus32::from_f64(0.5);
//! // 0.25 + 0.5 = 0.75 ≡ -0.25 on the torus.
//! assert!(((a + b).to_f64() - (-0.25)).abs() < 1e-9);
//! ```

pub mod decomp;
pub mod modswitch;
pub mod poly;
pub mod sampling;
pub mod stats;
pub mod torus;

pub use decomp::GadgetDecomposer;
pub use modswitch::{mod_switch_from_torus, mod_switch_to_torus};
pub use poly::{IntPolynomial, TorusPolynomial};
pub use sampling::TorusSampler;
pub use torus::Torus32;
