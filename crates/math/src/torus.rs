//! The discretized torus `T = R/Z` represented as a 32-bit integer.
//!
//! TFHE rescales torus elements by `2^32` and maps them to `u32`, so that
//! additions wrap around exactly like real numbers modulo 1 and no explicit
//! modular reduction is ever performed (paper §2, "Torus Implementation").

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An element of the discretized torus `T = R/Z`, stored as `round(x · 2^32)`.
///
/// `Torus32` is an additive group: elements can be added, subtracted and
/// negated, and scaled by (plain) integers. There is deliberately no
/// `Torus32 × Torus32` product — the torus is a `Z`-module, not a ring.
///
/// # Examples
///
/// ```
/// use matcha_math::Torus32;
///
/// let half = Torus32::from_f64(0.5);
/// assert_eq!(half + half, Torus32::ZERO); // 1 ≡ 0 (mod 1)
/// assert_eq!(half * 3, half);             // 1.5 ≡ 0.5 (mod 1)
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Torus32(u32);

impl Torus32 {
    /// The additive identity, 0 mod 1.
    pub const ZERO: Self = Self(0);
    /// One half: the farthest point from zero on the torus.
    pub const HALF: Self = Self(1 << 31);

    /// Creates a torus element from its raw `2^32`-scaled representation.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw `2^32`-scaled representation.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Creates the torus element `x mod 1` from a real number.
    ///
    /// The fractional part is rounded to the nearest multiple of `2^-32`.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        // Reduce to [0, 1) first so the cast is exact for any finite input.
        let frac = x - x.floor();
        Self((frac * 4294967296.0).round() as u64 as u32)
    }

    /// Returns the centered real representative in `[-1/2, 1/2)`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        (self.0 as i32) as f64 / 4294967296.0
    }

    /// The exact dyadic torus element `num / 2^log_denom`.
    ///
    /// This is how TFHE builds plaintext encodings such as `1/8`
    /// (`Torus32::from_dyadic(1, 3)`).
    ///
    /// # Panics
    ///
    /// Panics if `log_denom > 32`.
    #[inline]
    pub fn from_dyadic(num: i64, log_denom: u32) -> Self {
        assert!(log_denom <= 32, "denominator 2^{log_denom} exceeds 2^32");
        Self((num << (32 - log_denom)) as u32)
    }

    /// Signed distance to zero as a real number in `[-1/2, 1/2)`.
    ///
    /// This is the quantity decryption thresholds compare against: a TFHE
    /// sample decrypts correctly when the phase noise keeps `|distance|`
    /// within the plaintext spacing.
    #[inline]
    pub fn distance_to_zero(self) -> f64 {
        self.to_f64().abs()
    }

    /// Signed torus difference `self - other` as a centered real number.
    #[inline]
    pub fn signed_diff(self, other: Self) -> f64 {
        (self - other).to_f64()
    }

    /// Rounds to the closest of the two gate-plaintext values `±1/8` and
    /// returns the Boolean it encodes (`+1/8 → true`, `-1/8 → false`).
    #[inline]
    pub fn to_bool(self) -> bool {
        (self.0 as i32) >= 0
    }

    /// Encodes a Boolean as the gate plaintext `±1/8`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Self::from_dyadic(1, 3)
        } else {
            Self::from_dyadic(-1, 3)
        }
    }
}

impl Add for Torus32 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for Torus32 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.wrapping_add(rhs.0);
    }
}

impl Sub for Torus32 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for Torus32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.wrapping_sub(rhs.0);
    }
}

impl Neg for Torus32 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.wrapping_neg())
    }
}

/// Integer scaling: the torus is a `Z`-module.
impl Mul<i32> for Torus32 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: i32) -> Self {
        Self(self.0.wrapping_mul(rhs as u32))
    }
}

impl Mul<Torus32> for i32 {
    type Output = Torus32;
    #[inline]
    fn mul(self, rhs: Torus32) -> Torus32 {
        rhs * self
    }
}

impl Sum for Torus32 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Debug for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Torus32({:#010x} ≈ {:+.6})", self.0, self.to_f64())
    }
}

impl fmt::Display for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}", self.to_f64())
    }
}

impl fmt::LowerHex for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Torus32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u32> for Torus32 {
    fn from(raw: u32) -> Self {
        Self::from_raw(raw)
    }
}

impl From<Torus32> for u32 {
    fn from(t: Torus32) -> u32 {
        t.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        for &x in &[0.0, 0.25, -0.25, 0.4999, -0.5, 0.125, -0.125] {
            let t = Torus32::from_f64(x);
            assert!((t.to_f64() - x).abs() < 1e-9 || (t.to_f64() - x).abs() > 0.999);
        }
    }

    #[test]
    fn wrapping_addition_is_mod_one() {
        let a = Torus32::from_f64(0.75);
        let b = Torus32::from_f64(0.75);
        // 1.5 ≡ 0.5 (mod 1), whose centered representative is -0.5.
        assert!(((a + b).to_f64() - (-0.5)).abs() < 1e-9);
        assert_eq!(a + b, Torus32::HALF);
    }

    #[test]
    fn dyadic_constants() {
        assert_eq!(Torus32::from_dyadic(1, 1), Torus32::HALF);
        assert_eq!(Torus32::from_dyadic(1, 3).to_f64(), 0.125);
        assert_eq!(Torus32::from_dyadic(-1, 3).to_f64(), -0.125);
        assert_eq!(Torus32::from_dyadic(4, 3), Torus32::HALF);
    }

    #[test]
    fn bool_encoding_roundtrip() {
        assert!(Torus32::from_bool(true).to_bool());
        assert!(!Torus32::from_bool(false).to_bool());
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = Torus32::from_f64(0.3);
        assert_eq!(a + (-a), Torus32::ZERO);
    }

    #[test]
    #[allow(clippy::erasing_op)] // `a * 0` is exactly the law under test
    fn integer_scaling_matches_repeated_addition() {
        let a = Torus32::from_f64(0.21);
        assert_eq!(a * 5, a + a + a + a + a);
        assert_eq!(a * -2, -(a + a));
        assert_eq!(a * 0, Torus32::ZERO);
    }

    #[test]
    fn signed_diff_is_centered() {
        let a = Torus32::from_f64(0.01);
        let b = Torus32::from_f64(0.99);
        // 0.01 - 0.99 = -0.98 ≡ +0.02 (mod 1): the short way around.
        assert!((a.signed_diff(b) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Torus32::from_f64(0.125);
        assert!(!format!("{a}").is_empty());
        assert!(format!("{a:?}").contains("Torus32"));
        assert_eq!(format!("{a:x}"), "20000000");
    }
}
