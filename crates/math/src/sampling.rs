//! Random sampling for TFHE: uniform torus elements, binary secrets, and
//! Gaussian noise on the torus.
//!
//! Gaussian sampling uses the Box–Muller transform so that the crate needs
//! no distribution library beyond `rand`'s uniform source. TFHE noise
//! standard deviations are tiny (`≈ 2^-25`), far below the `2^-32` torus
//! quantum times a few thousand samples — double precision is ample.

use crate::poly::TorusPolynomial;
use crate::torus::Torus32;
use rand::Rng;

/// A sampler bundling the random distributions used by the scheme.
///
/// The sampler is generic over any [`rand::Rng`], so deterministic tests can
/// seed a `StdRng` while production uses an OS-backed generator.
///
/// # Examples
///
/// ```
/// use matcha_math::TorusSampler;
/// use rand::SeedableRng;
///
/// let mut sampler = TorusSampler::new(rand::rngs::StdRng::seed_from_u64(7));
/// let key: Vec<bool> = sampler.binary_vector(16);
/// assert_eq!(key.len(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct TorusSampler<R: Rng> {
    rng: R,
}

impl<R: Rng> TorusSampler<R> {
    /// Wraps a random generator.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Returns the wrapped generator.
    pub fn into_inner(self) -> R {
        self.rng
    }

    /// Mutable access to the generator, for callers needing raw randomness.
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }

    /// A uniformly random torus element.
    #[inline]
    pub fn uniform(&mut self) -> Torus32 {
        Torus32::from_raw(self.rng.gen::<u32>())
    }

    /// A uniformly random torus polynomial of degree bound `n`.
    pub fn uniform_poly(&mut self, n: usize) -> TorusPolynomial {
        TorusPolynomial::from_coeffs((0..n).map(|_| self.uniform()).collect())
    }

    /// A uniformly random bit.
    #[inline]
    pub fn binary(&mut self) -> bool {
        self.rng.gen::<bool>()
    }

    /// A uniformly random binary vector (LWE secret key).
    pub fn binary_vector(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.binary()).collect()
    }

    /// A centered Gaussian real sample with standard deviation `stdev`,
    /// via Box–Muller.
    ///
    /// Box–Muller needs `u1 ∈ (0, 1]`: `u1 = 0` would make
    /// `(-2·ln u1).sqrt()` infinite, and `Torus32::from_f64` would then
    /// silently saturate the NaN/∞ noise sample. A `[0, 1)` draw is
    /// reflected to `(0, 1]`, and a redraw guard keeps the invariant even
    /// for generators whose `f64` distribution can return exactly `1.0`.
    pub fn gaussian_f64(&mut self, stdev: f64) -> f64 {
        let u1: f64 = loop {
            let u = 1.0 - self.rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = self.rng.gen::<f64>();
        stdev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A torus element sampled from the centered Gaussian of standard
    /// deviation `stdev` (reduced mod 1).
    #[inline]
    pub fn gaussian(&mut self, stdev: f64) -> Torus32 {
        Torus32::from_f64(self.gaussian_f64(stdev))
    }

    /// `mu + e` with `e ← N(0, stdev²)`: the noisy embedding used by every
    /// encryption in the scheme.
    #[inline]
    pub fn gaussian_around(&mut self, mu: Torus32, stdev: f64) -> Torus32 {
        mu + self.gaussian(stdev)
    }

    /// A torus polynomial with i.i.d. Gaussian coefficients.
    pub fn gaussian_poly(&mut self, n: usize, stdev: f64) -> TorusPolynomial {
        TorusPolynomial::from_coeffs((0..n).map(|_| self.gaussian(stdev)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(seed: u64) -> TorusSampler<StdRng> {
        TorusSampler::new(StdRng::seed_from_u64(seed))
    }

    #[test]
    fn gaussian_moments() {
        let mut s = sampler(42);
        let stdev = 1e-3;
        let xs: Vec<f64> = (0..20_000).map(|_| s.gaussian_f64(stdev)).collect();
        let mean = stats::mean(&xs);
        let sd = stats::stdev(&xs);
        assert!(mean.abs() < 5e-5, "mean {mean} too far from 0");
        assert!(
            (sd - stdev).abs() / stdev < 0.05,
            "stdev {sd} vs expected {stdev}"
        );
    }

    /// Adversarial generator driving the uniform source to its extremes:
    /// alternating all-ones / all-zero words, so `gen::<f64>()` hits both
    /// its largest representable value and exactly `0.0`.
    struct ExtremeRng {
        flip: bool,
    }

    impl rand::RngCore for ExtremeRng {
        fn next_u64(&mut self) -> u64 {
            self.flip = !self.flip;
            if self.flip {
                u64::MAX
            } else {
                0
            }
        }
    }

    /// Regression: the Box–Muller draw must stay finite at the extreme ends
    /// of the uniform source — `u1` must never reach 0 (infinite radius) —
    /// and the resulting torus sample must not silently saturate.
    #[test]
    fn gaussian_is_finite_at_uniform_extremes() {
        let mut s = TorusSampler::new(ExtremeRng { flip: false });
        for i in 0..64 {
            let x = s.gaussian_f64(1e-5);
            assert!(x.is_finite(), "draw {i} produced non-finite sample {x}");
            assert!(x.abs() < 1.0, "draw {i}: |{x}| not a plausible noise");
        }
        // A long run through the real generator never produces a
        // non-finite sample either.
        let mut s = sampler(77);
        for _ in 0..100_000 {
            assert!(s.gaussian_f64(1e-7).is_finite());
        }
    }

    #[test]
    fn uniform_covers_both_halves() {
        let mut s = sampler(1);
        let (mut pos, mut neg) = (0, 0);
        for _ in 0..1000 {
            if s.uniform().to_f64() >= 0.0 {
                pos += 1;
            } else {
                neg += 1;
            }
        }
        assert!(pos > 350 && neg > 350, "uniform looks biased: {pos}/{neg}");
    }

    #[test]
    fn binary_vector_is_balanced() {
        let mut s = sampler(2);
        let v = s.binary_vector(2000);
        let ones = v.iter().filter(|&&b| b).count();
        assert!(ones > 800 && ones < 1200, "binary key biased: {ones}/2000");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = sampler(9);
        let mut b = sampler(9);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn gaussian_around_centers_on_mu() {
        let mut s = sampler(3);
        let mu = Torus32::from_f64(0.25);
        let diffs: Vec<f64> = (0..5000)
            .map(|_| s.gaussian_around(mu, 1e-5).signed_diff(mu))
            .collect();
        assert!(stats::mean(&diffs).abs() < 1e-6);
    }
}
