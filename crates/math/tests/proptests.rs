//! Property-based tests for the mathematical substrate.

use matcha_math::{
    mod_switch_from_torus, mod_switch_to_torus, GadgetDecomposer, IntPolynomial, Torus32,
    TorusPolynomial,
};
use proptest::prelude::*;

fn torus() -> impl Strategy<Value = Torus32> {
    any::<u32>().prop_map(Torus32::from_raw)
}

fn torus_poly(n: usize) -> impl Strategy<Value = TorusPolynomial> {
    proptest::collection::vec(torus(), n).prop_map(TorusPolynomial::from_coeffs)
}

fn int_poly(n: usize, bound: i32) -> impl Strategy<Value = IntPolynomial> {
    proptest::collection::vec(-bound..=bound, n).prop_map(IntPolynomial::from_coeffs)
}

proptest! {
    #[test]
    fn torus_addition_is_commutative_and_associative(a in torus(), b in torus(), c in torus()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn torus_negation_inverts(a in torus()) {
        prop_assert_eq!(a + (-a), Torus32::ZERO);
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn torus_scaling_distributes(a in torus(), k in -1000i32..1000, l in -1000i32..1000) {
        prop_assert_eq!(a * (k.wrapping_add(l)), a * k + a * l);
    }

    #[test]
    fn torus_f64_roundtrip_is_tight(a in torus()) {
        let back = Torus32::from_f64(a.to_f64());
        prop_assert!(a.signed_diff(back).abs() < 1e-9);
    }

    #[test]
    fn signed_diff_is_antisymmetric(a in torus(), b in torus()) {
        let d1 = a.signed_diff(b);
        let d2 = b.signed_diff(a);
        // Equal magnitude (up to the -1/2 boundary case).
        prop_assert!((d1 + d2).abs() < 1e-9 || (d1.abs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn monomial_rotations_compose(p in torus_poly(16), i in -64i64..64, j in -64i64..64) {
        let one_step = p.mul_by_monomial(i + j);
        let two_steps = p.mul_by_monomial(i).mul_by_monomial(j);
        prop_assert_eq!(one_step, two_steps);
    }

    #[test]
    fn monomial_rotation_preserves_addition(
        p in torus_poly(16),
        q in torus_poly(16),
        k in -32i64..32,
    ) {
        let lhs = (p.clone() + &q).mul_by_monomial(k);
        let rhs = p.mul_by_monomial(k) + &q.mul_by_monomial(k);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn naive_mul_is_bilinear(
        p in torus_poly(8),
        a in int_poly(8, 64),
        b in int_poly(8, 64),
    ) {
        let sum = IntPolynomial::from_coeffs(
            a.coeffs().iter().zip(b.coeffs()).map(|(&x, &y)| x + y).collect(),
        );
        let lhs = p.naive_mul_int(&sum);
        let rhs = p.naive_mul_int(&a) + &p.naive_mul_int(&b);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn naive_mul_by_x_matches_rotation(p in torus_poly(8)) {
        let mut x = IntPolynomial::zero(8);
        x.coeffs_mut()[1] = 1;
        prop_assert_eq!(p.naive_mul_int(&x), p.mul_by_monomial(1));
    }

    #[test]
    fn gadget_decomposition_error_bounded(x in torus(), bg in 4u32..12) {
        let levels = (30 / bg as usize).clamp(2, 3);
        let d = GadgetDecomposer::new(bg, levels);
        let digits = d.decompose(x);
        prop_assert_eq!(digits.len(), levels);
        let half = (d.base() / 2) as i32;
        for &digit in &digits {
            prop_assert!(digit >= -half && digit < half);
        }
        let back = d.recompose(&digits);
        prop_assert!(x.signed_diff(back).abs() <= d.precision() + 1e-12);
    }

    #[test]
    fn mod_switch_roundtrip_bounded(x in torus(), log_two_n in 3u32..14) {
        let two_n = 1u32 << log_two_n;
        let k = mod_switch_from_torus(x, two_n);
        prop_assert!(k < two_n);
        let back = mod_switch_to_torus(k, two_n);
        prop_assert!(x.signed_diff(back).abs() <= 0.5 / two_n as f64 + 1e-12);
    }

    #[test]
    fn poly_decompose_matches_scalar_decompose(p in torus_poly(8)) {
        let d = GadgetDecomposer::new(8, 3);
        let polys = d.decompose_poly(&p);
        for (i, &c) in p.coeffs().iter().enumerate() {
            let scalar = d.decompose(c);
            for (level, digits) in polys.iter().enumerate() {
                prop_assert_eq!(digits.coeffs()[i], scalar[level]);
            }
        }
    }

    #[test]
    fn add_rotate_minus_one_matches_expansion(
        acc in torus_poly(8),
        src in torus_poly(8),
        e in -32i64..32,
    ) {
        let mut fused = acc.clone();
        fused.add_rotate_minus_one(&src, e);
        let manual = acc + &src.mul_by_monomial(e) - &src;
        prop_assert_eq!(fused, manual);
    }
}
