//! Property-based tests of the accelerator model: physical sanity
//! (latencies positive, more hardware never slower, traffic monotone in m)
//! across randomized configurations.

use matcha_accel::schedule::{schedule, Netlist};
use matcha_accel::{area_power, kernels, pipeline, MatchaConfig, WorkloadParams};
use proptest::prelude::*;

/// Random dependency DAGs, derived arithmetically from drawn words so the
/// stub's strategy set suffices: gate `i` consumes up to three distinct
/// earlier gates picked from its word's bytes.
fn netlist_strategy() -> impl Strategy<Value = Netlist> {
    proptest::collection::vec(any::<u64>(), 1..48).prop_map(|words| {
        let mut net = Netlist::new();
        for (i, w) in words.iter().enumerate() {
            let mut deps: Vec<usize> = (0..(w % 4) as usize)
                .filter(|_| i > 0)
                .map(|k| (w >> (8 * k + 2)) as usize % i)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            net.add_gate(&deps);
        }
        net
    })
}

fn config_strategy() -> impl Strategy<Value = MatchaConfig> {
    (
        1usize..=16,      // pipelines
        1usize..=8,       // ifft cores per EP
        32usize..=512,    // butterfly cores (power-of-two-ish not required)
        1usize..=64,      // ep mac lanes
        1usize..=128,     // tgsw mac lanes
        100.0f64..4000.0, // HBM GB/s
    )
        .prop_map(|(pipes, ifft, butt, ep_lanes, tgsw_lanes, hbm)| {
            let mut cfg = MatchaConfig::paper();
            cfg.tgsw_clusters = pipes;
            cfg.ep_cores = pipes;
            cfg.ifft_cores_per_ep = ifft;
            cfg.butterfly_cores = butt;
            cfg.ep_mac_lanes = ep_lanes;
            cfg.tgsw_mac_lanes = tgsw_lanes;
            cfg.hbm_gb_s = hbm;
            cfg
        })
}

fn workload_strategy() -> impl Strategy<Value = WorkloadParams> {
    (6usize..=11, 100usize..=800, 2usize..=3).prop_map(|(log_n, n, l)| WorkloadParams {
        lwe_dimension: n,
        ring_degree: 1 << log_n,
        decomp_levels: l,
        ks_levels: 8,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn latency_positive_and_finite(cfg in config_strategy(), w in workload_strategy(), m in 1usize..=4) {
        let r = pipeline::simulate_gate(&cfg, &w, m);
        prop_assert!(r.latency_s.is_finite() && r.latency_s > 0.0);
        prop_assert!(r.throughput.is_finite() && r.throughput > 0.0);
        prop_assert!(r.ep_utilization > 0.0 && r.ep_utilization <= 1.0);
    }

    #[test]
    fn doubling_every_resource_never_hurts(
        cfg in config_strategy(),
        w in workload_strategy(),
        m in 1usize..=4,
    ) {
        let base = pipeline::simulate_gate(&cfg, &w, m).latency_s;
        let mut big = cfg.clone();
        big.butterfly_cores *= 2;
        big.ep_mac_lanes *= 2;
        big.tgsw_mac_lanes *= 2;
        big.hbm_gb_s *= 2.0;
        big.poly_unit_lanes *= 2;
        big.ifft_cores_per_ep *= 2;
        let faster = pipeline::simulate_gate(&big, &w, m).latency_s;
        prop_assert!(faster <= base + 1e-12, "{faster} > {base}");
    }

    #[test]
    fn hbm_traffic_monotone_in_m(w in workload_strategy()) {
        for m in 1usize..4 {
            prop_assert!(w.bk_bytes_per_gate(m + 1) >= w.bk_bytes_per_gate(m));
        }
    }

    #[test]
    fn steps_decrease_with_m(w in workload_strategy()) {
        for m in 1usize..4 {
            prop_assert!(w.steps(m + 1) <= w.steps(m));
        }
    }

    #[test]
    fn tgsw_work_grows_exponentially(cfg in config_strategy(), w in workload_strategy()) {
        let c2 = kernels::tgsw_cluster_cycles(&cfg, &w, 2);
        let c3 = kernels::tgsw_cluster_cycles(&cfg, &w, 3);
        let c4 = kernels::tgsw_cluster_cycles(&cfg, &w, 4);
        prop_assert!((c3 / c2 - 7.0 / 3.0).abs() < 1e-9);
        prop_assert!((c4 / c3 - 15.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn power_and_area_positive_and_monotone(cfg in config_strategy()) {
        let b = area_power::design_budget(&cfg);
        prop_assert!(b.total_power_w() > 0.0);
        prop_assert!(b.total_area_mm2() > 0.0);
        let mut bigger = cfg.clone();
        bigger.ep_cores += 1;
        bigger.tgsw_clusters += 1;
        let b2 = area_power::design_budget(&bigger);
        prop_assert!(b2.total_power_w() > b.total_power_w());
        prop_assert!(b2.total_area_mm2() > b.total_area_mm2());
    }

    #[test]
    fn throughput_equals_pipelines_over_latency(
        cfg in config_strategy(),
        w in workload_strategy(),
        m in 1usize..=4,
    ) {
        let r = pipeline::simulate_gate(&cfg, &w, m);
        let expected = cfg.pipelines() as f64 / r.latency_s;
        prop_assert!((r.throughput - expected).abs() < expected * 1e-9);
    }

    #[test]
    fn best_unroll_is_actually_best(cfg in config_strategy(), w in workload_strategy()) {
        let best = pipeline::best_unroll(&cfg, &w, 4);
        let best_latency = pipeline::simulate_gate(&cfg, &w, best).latency_s;
        for m in 1..=4 {
            prop_assert!(pipeline::simulate_gate(&cfg, &w, m).latency_s >= best_latency - 1e-15);
        }
    }

    // ---- list-scheduler invariants (`accel::schedule`) ----

    #[test]
    fn makespan_dominates_critical_path_and_work(
        net in netlist_strategy(),
        pipelines in 1usize..=16,
        latency in 0.125f64..8.0,
    ) {
        let r = schedule(&net, pipelines, latency);
        let cp_bound = net.critical_path() as f64 * latency;
        let work_bound = net.len() as f64 / pipelines as f64 * latency;
        prop_assert!(r.makespan_s >= cp_bound - 1e-9,
            "makespan {} < critical-path bound {cp_bound}", r.makespan_s);
        prop_assert!(r.makespan_s >= work_bound - 1e-9,
            "makespan {} < work bound {work_bound}", r.makespan_s);
        // Never worse than full serialization either.
        prop_assert!(r.makespan_s <= net.len() as f64 * latency + 1e-9);
        prop_assert_eq!(r.gates, net.len());
    }

    #[test]
    fn utilization_is_a_proper_fraction(
        net in netlist_strategy(),
        pipelines in 1usize..=16,
        latency in 0.125f64..8.0,
    ) {
        let r = schedule(&net, pipelines, latency);
        prop_assert!(r.utilization > 0.0, "nonempty netlist: {}", r.utilization);
        prop_assert!(r.utilization <= 1.0 + 1e-12, "{}", r.utilization);
    }

    #[test]
    fn single_pipeline_serializes_exactly(net in netlist_strategy(), latency in 0.125f64..8.0) {
        let r = schedule(&net, 1, latency);
        prop_assert!((r.makespan_s - net.len() as f64 * latency).abs() < 1e-9);
        prop_assert!((r.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_deps_preserves_the_schedule(net in netlist_strategy(), pipelines in 1usize..=8) {
        let deps: Vec<Vec<usize>> = (0..net.len())
            .map(|i| net.dependencies(i).to_vec())
            .collect();
        let rebuilt = Netlist::from_deps(&deps);
        prop_assert_eq!(schedule(&rebuilt, pipelines, 1.0), schedule(&net, pipelines, 1.0));
    }

    #[test]
    fn empty_netlist_is_the_identity(pipelines in 1usize..=16, latency in 0.125f64..8.0) {
        let r = schedule(&Netlist::new(), pipelines, latency);
        prop_assert_eq!(r.makespan_s, 0.0);
        prop_assert_eq!(r.gates, 0);
        prop_assert_eq!(r.critical_path, 0);
        prop_assert_eq!(r.utilization, 0.0);
    }
}
