//! Design-space exploration over MATCHA configurations.
//!
//! The paper fixes one design point (8 pipelines, 128 butterfly cores,
//! 640 GB/s). This module sweeps the structural parameters, evaluates each
//! candidate with the pipeline simulator and the area/power model, and
//! extracts Pareto-optimal designs — the ablation study DESIGN.md calls
//! out for the paper's sizing choices.

use crate::area_power;
use crate::config::{MatchaConfig, WorkloadParams};
use crate::pipeline;

/// One evaluated design candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: MatchaConfig,
    /// The unroll factor used.
    pub unroll: usize,
    /// Gate latency in seconds.
    pub latency_s: f64,
    /// Gate throughput in gates/s.
    pub throughput: f64,
    /// Total power in watts.
    pub power_w: f64,
    /// Total area in mm².
    pub area_mm2: f64,
}

impl DesignPoint {
    /// Throughput per watt, the paper's efficiency metric (Figure 11).
    pub fn throughput_per_watt(&self) -> f64 {
        self.throughput / self.power_w
    }

    /// Returns `true` if `self` dominates `other`: no worse on power,
    /// latency *and* throughput, strictly better on at least one.
    /// (Latency alone would discard every multi-pipeline design: extra
    /// pipelines buy throughput, not single-gate latency.)
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.power_w <= other.power_w
            && self.latency_s <= other.latency_s
            && self.throughput >= other.throughput;
        let better = self.power_w < other.power_w
            || self.latency_s < other.latency_s
            || self.throughput > other.throughput;
        no_worse && better
    }
}

/// The structural axes to sweep.
#[derive(Clone, Debug)]
pub struct SweepSpace {
    /// Pipeline counts (TGSW clusters = EP cores).
    pub pipelines: Vec<usize>,
    /// Butterfly cores per FFT/IFFT core.
    pub butterfly_cores: Vec<usize>,
    /// HBM bandwidths in GB/s.
    pub hbm_gb_s: Vec<f64>,
    /// Unroll factors to try per design (the best is kept).
    pub unrolls: Vec<usize>,
}

impl Default for SweepSpace {
    fn default() -> Self {
        Self {
            pipelines: vec![2, 4, 8, 16],
            butterfly_cores: vec![64, 128, 256],
            hbm_gb_s: vec![320.0, 640.0, 1280.0],
            unrolls: vec![1, 2, 3, 4],
        }
    }
}

/// Evaluates one configuration at its best unroll factor.
///
/// # Panics
///
/// Panics if `unrolls` is empty — a design point needs at least one
/// unroll factor to evaluate. (A fully empty sweep axis is handled one
/// level up: [`sweep`] over any empty axis returns no points without
/// ever calling this.)
pub fn evaluate(cfg: &MatchaConfig, w: &WorkloadParams, unrolls: &[usize]) -> DesignPoint {
    assert!(
        !unrolls.is_empty(),
        "evaluate needs at least one unroll factor to try"
    );
    let best = unrolls
        .iter()
        .map(|&m| pipeline::simulate_gate(cfg, w, m))
        .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
        .expect("non-empty by the assert above");
    let budget = area_power::design_budget(cfg);
    DesignPoint {
        config: cfg.clone(),
        unroll: best.unroll,
        latency_s: best.latency_s,
        throughput: best.throughput,
        power_w: budget.total_power_w(),
        area_mm2: budget.total_area_mm2(),
    }
}

/// Sweeps the whole space, sharding the candidate configurations over a
/// pool of scoped worker threads (the `GateBatchPool` chunking pattern
/// from `matcha_tfhe::batch`, dependency-free). Each worker writes into
/// its own pre-split slice of the output, so the result order is
/// **deterministic** and identical to the sequential nested-loop order:
/// pipelines outermost, then butterfly cores, then HBM bandwidth.
///
/// Any empty axis — including `unrolls` — makes the design-point product
/// empty, so the sweep returns no points (rather than panicking in
/// [`evaluate`]).
pub fn sweep(space: &SweepSpace, w: &WorkloadParams) -> Vec<DesignPoint> {
    if space.unrolls.is_empty() {
        return Vec::new();
    }
    let configs: Vec<MatchaConfig> = space
        .pipelines
        .iter()
        .flat_map(|&p| {
            space.butterfly_cores.iter().flat_map(move |&b| {
                space.hbm_gb_s.iter().map(move |&hbm| {
                    let mut cfg = MatchaConfig::paper();
                    cfg.tgsw_clusters = p;
                    cfg.ep_cores = p;
                    cfg.butterfly_cores = b;
                    cfg.hbm_gb_s = hbm;
                    cfg
                })
            })
        })
        .collect();
    if configs.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(configs.len());
    if threads <= 1 {
        // One core (or one candidate): the scoped-pool spawn overhead
        // buys nothing — evaluate inline.
        return configs
            .iter()
            .map(|cfg| evaluate(cfg, w, &space.unrolls))
            .collect();
    }
    let chunk = configs.len().div_ceil(threads);
    let mut out: Vec<Option<DesignPoint>> = vec![None; configs.len()];
    std::thread::scope(|scope| {
        for (cfgs, slots) in configs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (cfg, slot) in cfgs.iter().zip(slots.iter_mut()) {
                    *slot = Some(evaluate(cfg, w, &space.unrolls));
                }
            });
        }
    });
    out.into_iter()
        .map(|p| p.expect("worker filled every slot"))
        .collect()
}

/// Extracts the Pareto front (minimizing power and latency), sorted by
/// ascending power.
///
/// Design points that coincide on *every* objective axis dominate each
/// other in neither direction, so duplicates would all survive the
/// non-domination filter; the front keeps exactly one representative per
/// objective triple. Sorting tie-breaks on latency and throughput so equal
/// triples are adjacent regardless of input order (a power-only sort could
/// interleave them and leave duplicates standing).
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    front.sort_by(|a, b| {
        a.power_w
            .total_cmp(&b.power_w)
            .then(a.latency_s.total_cmp(&b.latency_s))
            .then(a.throughput.total_cmp(&b.throughput))
    });
    front.dedup_by(|a, b| {
        a.power_w == b.power_w && a.latency_s == b.latency_s && a.throughput == b.throughput
    });
    front
}

/// The cheapest (lowest-power) design meeting a latency target, if any.
pub fn cheapest_meeting_latency(
    points: &[DesignPoint],
    latency_target_s: f64,
) -> Option<DesignPoint> {
    points
        .iter()
        .filter(|p| p.latency_s <= latency_target_s)
        .min_by(|a, b| a.power_w.total_cmp(&b.power_w))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> SweepSpace {
        SweepSpace {
            pipelines: vec![4, 8],
            butterfly_cores: vec![64, 128],
            hbm_gb_s: vec![320.0, 640.0],
            unrolls: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn sweep_covers_product_of_axes() {
        let points = sweep(&small_space(), &WorkloadParams::MATCHA);
        assert_eq!(points.len(), 8);
    }

    #[test]
    fn sweep_order_is_deterministic_and_matches_sequential() {
        // The sharded sweep must return points in exactly the sequential
        // nested-loop order (pipelines, then butterfly cores, then HBM),
        // regardless of how the chunks land on worker threads.
        let space = small_space();
        let parallel = sweep(&space, &WorkloadParams::MATCHA);
        let mut sequential = Vec::new();
        for &p in &space.pipelines {
            for &b in &space.butterfly_cores {
                for &hbm in &space.hbm_gb_s {
                    let mut cfg = MatchaConfig::paper();
                    cfg.tgsw_clusters = p;
                    cfg.ep_cores = p;
                    cfg.butterfly_cores = b;
                    cfg.hbm_gb_s = hbm;
                    sequential.push(evaluate(&cfg, &WorkloadParams::MATCHA, &space.unrolls));
                }
            }
        }
        assert_eq!(parallel, sequential);
        // Twice in a row: identical, not merely order-preserving.
        assert_eq!(parallel, sweep(&space, &WorkloadParams::MATCHA));
    }

    #[test]
    fn sweep_on_any_empty_axis_is_empty() {
        for wipe in 0..4 {
            let mut space = small_space();
            match wipe {
                0 => space.pipelines.clear(),
                1 => space.butterfly_cores.clear(),
                2 => space.hbm_gb_s.clear(),
                _ => space.unrolls.clear(),
            }
            assert!(
                sweep(&space, &WorkloadParams::MATCHA).is_empty(),
                "axis {wipe} empty must give an empty sweep"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one unroll factor")]
    fn evaluate_rejects_empty_unrolls() {
        let _ = evaluate(&MatchaConfig::paper(), &WorkloadParams::MATCHA, &[]);
    }

    #[test]
    fn pareto_front_is_nondominated_and_sorted() {
        let points = sweep(&small_space(), &WorkloadParams::MATCHA);
        let front = pareto_front(&points);
        assert!(!front.is_empty() && front.len() <= points.len());
        for (i, p) in front.iter().enumerate() {
            for q in &front {
                assert!(!q.dominates(p), "front point dominated");
            }
            if i > 0 {
                assert!(front[i - 1].power_w <= p.power_w, "front not sorted");
            }
        }
    }

    #[test]
    fn duplicate_design_points_collapse_to_one_front_entry() {
        // Duplicates are equal on every axis, so neither dominates the
        // other and both pass the non-domination filter; the front must
        // still carry each objective triple exactly once.
        let mut points = sweep(&small_space(), &WorkloadParams::MATCHA);
        let baseline = pareto_front(&points);
        let dupes = points.clone();
        points.extend(dupes);
        // Reverse so each duplicate pair is maximally separated in input
        // order; with a power-only stable sort, equal-power points with
        // differing latency could then land between duplicates and keep
        // them non-adjacent — the regression the three-axis sort fixes.
        points.reverse();
        let front = pareto_front(&points);
        assert_eq!(front.len(), baseline.len(), "duplicates survived");
        for (i, p) in front.iter().enumerate() {
            for q in &front[i + 1..] {
                assert!(
                    !(p.power_w == q.power_w
                        && p.latency_s == q.latency_s
                        && p.throughput == q.throughput),
                    "two front entries share every objective"
                );
            }
        }
    }

    #[test]
    fn paper_design_is_efficient() {
        // Among designs with the paper's HBM bandwidth (a board-level
        // constraint, not a free knob), the paper configuration must not
        // be dominated with 10% slack on every objective.
        let points = sweep(&SweepSpace::default(), &WorkloadParams::MATCHA);
        let paper = evaluate(
            &MatchaConfig::paper(),
            &WorkloadParams::MATCHA,
            &[1, 2, 3, 4],
        );
        let strictly_better = points
            .iter()
            .filter(|p| p.config.hbm_gb_s == paper.config.hbm_gb_s)
            .filter(|p| {
                p.power_w < paper.power_w * 0.9
                    && p.latency_s < paper.latency_s * 0.9
                    && p.throughput > paper.throughput * 1.1
            })
            .count();
        assert_eq!(strictly_better, 0, "paper design clearly dominated");
    }

    #[test]
    fn latency_target_selection() {
        let points = sweep(&small_space(), &WorkloadParams::MATCHA);
        let pick = cheapest_meeting_latency(&points, 1e-3).expect("1 ms is generous");
        assert!(pick.latency_s <= 1e-3);
        // Every cheaper design must miss the target.
        for p in &points {
            if p.power_w < pick.power_w {
                assert!(p.latency_s > 1e-3);
            }
        }
        assert!(cheapest_meeting_latency(&points, 1e-9).is_none());
    }

    #[test]
    fn best_unroll_recorded() {
        let paper = evaluate(
            &MatchaConfig::paper(),
            &WorkloadParams::MATCHA,
            &[1, 2, 3, 4],
        );
        assert_eq!(paper.unroll, 3, "paper config should prefer m = 3");
        assert!(paper.throughput_per_watt() > 0.0);
    }
}
