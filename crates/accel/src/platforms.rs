//! The paper's baseline platforms (§5) and the MATCHA design as a common
//! [`Platform`] abstraction, producing the data series of Figures 9–11.
//!
//! We cannot rerun the authors' Xeon E-2288G, Tesla V100, or Stratix-10
//! testbeds, so the baselines are analytic models: each encodes the
//! *mechanisms* the paper describes (CPU: 8 cores, cache conflicts and no
//! pipelining make `m > 2` regress; GPU: enough parallelism to keep gaining
//! until `m = 4`; FPGA/ASIC: TVE copies without BKU support, fixed
//! `m = 1`), with per-`m` constants calibrated to the paper's published
//! measurements. MATCHA itself is simulated by [`crate::pipeline`].

use crate::config::{MatchaConfig, WorkloadParams};
use crate::pipeline;

/// A hardware platform evaluated in Figures 9–11.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Display name ("CPU", "GPU", "FPGA", "ASIC", "MATCHA").
    pub name: &'static str,
    /// Board/package power in watts.
    pub power_w: f64,
    /// Concurrent gates the platform processes at full utilization.
    pub concurrency: f64,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    /// Per-`m` NAND latencies in seconds (index 0 = m=1); `None` where the
    /// platform does not support that unroll factor.
    Measured([Option<f64>; 4]),
    /// Simulated via the pipeline model.
    Matcha(Box<MatchaConfig>, WorkloadParams),
}

impl Platform {
    /// The 8-core 3.7 GHz Xeon E-2288G running the TFHE library.
    ///
    /// Anchors: 13.1 ms at `m = 1`, 6.67 ms at `m = 2` (paper §6); beyond
    /// that the limited core count, extra cache conflicts from the
    /// `(2^m − 1)`-fold key working set, and the lack of a pipelined
    /// design *prolong* latency — modeled as a mild regression.
    pub fn cpu() -> Self {
        Self {
            name: "CPU",
            power_w: 95.0,
            concurrency: 8.0, // one independent gate per physical core
            kind: Kind::Measured([Some(13.1e-3), Some(6.67e-3), Some(7.3e-3), Some(9.0e-3)]),
        }
    }

    /// The 5120-core Tesla V100 running cuFHE.
    ///
    /// Anchors: 0.37 ms at `m = 1` falling gradually to 0.18 ms at `m = 4`
    /// (paper §6). The effective gate concurrency is calibrated so that the
    /// GPU's best throughput/Watt lands just below the ASIC baseline's, as
    /// the paper reports ("the best throughput per Watt of GPU (m = 4) is
    /// only about 58% of that of ASIC").
    pub fn gpu() -> Self {
        Self {
            name: "GPU",
            power_w: 250.0,
            concurrency: 2.0,
            kind: Kind::Measured([Some(0.37e-3), Some(0.28e-3), Some(0.21e-3), Some(0.18e-3)]),
        }
    }

    /// Eight TFHE Vector Engine copies on a Stratix-10 GX2800 (no BKU).
    pub fn fpga() -> Self {
        Self {
            name: "FPGA",
            power_w: 40.0,
            concurrency: 8.0,
            kind: Kind::Measured([Some(6.9e-3), None, None, None]),
        }
    }

    /// The FPGA baseline re-synthesized at 16 nm (no BKU).
    pub fn asic() -> Self {
        Self {
            name: "ASIC",
            power_w: 26.0,
            concurrency: 8.0,
            kind: Kind::Measured([Some(6.8e-3), None, None, None]),
        }
    }

    /// MATCHA, simulated with the Figure 6 pipeline model.
    pub fn matcha(cfg: MatchaConfig, workload: WorkloadParams) -> Self {
        let power = crate::area_power::design_budget(&cfg).total_power_w();
        let concurrency = cfg.pipelines() as f64;
        Self {
            name: "MATCHA",
            power_w: power,
            concurrency,
            kind: Kind::Matcha(Box::new(cfg), workload),
        }
    }

    /// MATCHA with the paper's configuration and workload.
    pub fn matcha_paper() -> Self {
        Self::matcha(MatchaConfig::paper(), WorkloadParams::MATCHA)
    }

    /// NAND gate latency (seconds) at unroll `m`, if supported.
    pub fn latency_s(&self, m: usize) -> Option<f64> {
        match &self.kind {
            Kind::Measured(table) => table.get(m.checked_sub(1)?).copied().flatten(),
            Kind::Matcha(cfg, w) => {
                if (1..=8).contains(&m) {
                    Some(pipeline::simulate_gate(cfg, w, m).latency_s)
                } else {
                    None
                }
            }
        }
    }

    /// NAND throughput (gates/s) at unroll `m`, if supported.
    pub fn throughput(&self, m: usize) -> Option<f64> {
        self.latency_s(m).map(|l| self.concurrency / l)
    }

    /// NAND throughput per watt at unroll `m`, if supported.
    pub fn throughput_per_watt(&self, m: usize) -> Option<f64> {
        self.throughput(m).map(|t| t / self.power_w)
    }

    /// The best (lowest-latency) supported unroll factor within `1..=4`.
    pub fn best_unroll(&self) -> usize {
        (1..=4)
            .filter(|&m| self.latency_s(m).is_some())
            .min_by(|&a, &b| {
                self.latency_s(a)
                    .unwrap()
                    .total_cmp(&self.latency_s(b).unwrap())
            })
            .unwrap_or(1)
    }
}

/// All five platforms of the evaluation, in the paper's legend order.
pub fn evaluation_platforms() -> Vec<Platform> {
    vec![
        Platform::cpu(),
        Platform::gpu(),
        Platform::matcha_paper(),
        Platform::fpga(),
        Platform::asic(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_shape_matches_paper() {
        let cpu = Platform::cpu();
        // 13.1 ms → 6.67 ms (49% reduction), then regression.
        assert_eq!(cpu.latency_s(1), Some(13.1e-3));
        assert_eq!(cpu.latency_s(2), Some(6.67e-3));
        assert!(cpu.latency_s(3).unwrap() > cpu.latency_s(2).unwrap());
        assert!(cpu.latency_s(4).unwrap() > cpu.latency_s(3).unwrap());
        assert_eq!(cpu.best_unroll(), 2);
    }

    #[test]
    fn gpu_monotone_to_m4() {
        let gpu = Platform::gpu();
        for m in 1..4 {
            assert!(gpu.latency_s(m + 1).unwrap() < gpu.latency_s(m).unwrap());
        }
        assert_eq!(gpu.best_unroll(), 4);
    }

    #[test]
    fn fpga_asic_fixed_at_m1() {
        for p in [Platform::fpga(), Platform::asic()] {
            assert!(p.latency_s(1).unwrap() > 6.5e-3);
            assert_eq!(p.latency_s(2), None);
            assert_eq!(p.best_unroll(), 1);
        }
    }

    #[test]
    fn matcha_beats_gpu_at_m3() {
        // Paper §6: "MATCHA reduces the NAND gate latency by 13% over GPU
        // only when m = 3".
        let matcha = Platform::matcha_paper();
        let gpu = Platform::gpu();
        let m3 = matcha.latency_s(3).unwrap();
        assert!(m3 < gpu.latency_s(3).unwrap(), "{m3}");
        // And MATCHA's best point is m = 3.
        assert_eq!(matcha.best_unroll(), 3);
    }

    #[test]
    fn throughput_ranking_matches_figure_10() {
        // Figure 10: MATCHA > GPU > CPU(m2) > ASIC ≈ FPGA.
        let matcha = Platform::matcha_paper().throughput(3).unwrap();
        let gpu = Platform::gpu().throughput(4).unwrap();
        let cpu = Platform::cpu().throughput(2).unwrap();
        let asic = Platform::asic().throughput(1).unwrap();
        let fpga = Platform::fpga().throughput(1).unwrap();
        assert!(matcha > gpu && gpu > cpu && cpu > asic && asic > fpga);
        // Paper: ~2.3× over GPU; our model credits all 8 lockstep
        // pipelines, so it lands on the high side of that factor.
        let ratio = matcha / Platform::gpu().throughput(3).unwrap();
        assert!(
            ratio > 1.5 && ratio < 6.0,
            "MATCHA/GPU throughput ratio {ratio}"
        );
    }

    #[test]
    fn efficiency_ranking_matches_figure_11() {
        // Figure 11: MATCHA > ASIC > FPGA > CPU; GPU's best is below ASIC.
        let matcha = Platform::matcha_paper().throughput_per_watt(3).unwrap();
        let asic = Platform::asic().throughput_per_watt(1).unwrap();
        let fpga = Platform::fpga().throughput_per_watt(1).unwrap();
        let cpu = Platform::cpu().throughput_per_watt(1).unwrap();
        let gpu_best = Platform::gpu().throughput_per_watt(4).unwrap();
        assert!(matcha > asic && asic > fpga && fpga > cpu);
        assert!(gpu_best < asic, "paper: GPU best ≈ 58% of ASIC");
    }

    #[test]
    fn fpga_efficiency_over_cpu_near_paper() {
        // Paper: FPGA ≈ 2.4× and ASIC ≈ 8.3× CPU throughput/W at m = 1.
        let cpu = Platform::cpu().throughput_per_watt(1).unwrap();
        let fpga = Platform::fpga().throughput_per_watt(1).unwrap() / cpu;
        let asic = Platform::asic().throughput_per_watt(1).unwrap() / cpu;
        assert!(fpga > 1.8 && fpga < 5.0, "FPGA/CPU = {fpga}");
        assert!(asic > 4.0 && asic < 12.0, "ASIC/CPU = {asic}");
    }

    #[test]
    fn evaluation_set_is_complete() {
        let names: Vec<_> = evaluation_platforms().iter().map(|p| p.name).collect();
        assert_eq!(names, ["CPU", "GPU", "MATCHA", "FPGA", "ASIC"]);
    }
}
