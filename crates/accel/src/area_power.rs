//! Area and power model of MATCHA (paper Table 2: 16 nm PTM, 2 GHz).
//!
//! The paper obtained these numbers from RTL synthesis plus CACTI; we model
//! each component with per-unit constants calibrated to Table 2 and expose
//! them as functions of the component counts, so ablations (more EP cores,
//! narrower clusters, …) scale area and power coherently.

use crate::config::MatchaConfig;

/// Power (W) and area (mm²) of one design component.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentBudget {
    /// Component name as it appears in Table 2.
    pub name: &'static str,
    /// Power in watts.
    pub power_w: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

/// The full design budget (Table 2).
#[derive(Clone, Debug, PartialEq)]
pub struct DesignBudget {
    /// Per-component rows in Table 2 order.
    pub components: Vec<ComponentBudget>,
}

impl DesignBudget {
    /// Total power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }
}

// Table 2 per-unit calibration (16 nm PTM @ 2 GHz):
//   one TGSW cluster: 0.98 W, 0.368 mm²  (16 MACs + 16 KB 2-bank regfile)
//   one EP core:      2.87 W, 1.89 mm²   (4 IFFT + 1 FFT cores, 4 MACs,
//                                         256 KB 8-bank regfile)
//   polynomial unit:  2.33 W, 0.32 mm²   (32 lanes + 8 KB regfile)
//   crossbars:        2.11 W, 0.44 mm²   (two 8×32 + one 8×8, 256 b sliced)
//   SPM:              3.52 W, 3.25 mm²   (4 MB, 32 banks)
//   memory ctrl+PHY:  1.225 W, 14.9 mm²  (HBM2)
const TGSW_CLUSTER_W: f64 = 0.98;
const TGSW_CLUSTER_MM2: f64 = 0.368;
const EP_CORE_W: f64 = 2.87;
const EP_CORE_MM2: f64 = 1.89;
const POLY_UNIT_W_PER_LANE: f64 = 2.33 / 32.0;
const POLY_UNIT_MM2_PER_LANE: f64 = 0.32 / 32.0;
// Two 8×32 crossbars + one 8×8 ⇒ 2·(8·32)/8 + 8²/8 = 72 port-slice units
// at the paper configuration.
const XBAR_W_PER_PORT: f64 = 2.11 / 72.0;
const XBAR_MM2_PER_PORT: f64 = 0.44 / 72.0;
const SPM_W_PER_MIB: f64 = 3.52 / 4.0;
const SPM_MM2_PER_MIB: f64 = 3.25 / 4.0;
const MEMCTRL_W: f64 = 1.225;
const MEMCTRL_MM2: f64 = 14.9;

/// Builds the Table 2 budget for a configuration.
///
/// # Examples
///
/// ```
/// use matcha_accel::{area_power, MatchaConfig};
///
/// let budget = area_power::design_budget(&MatchaConfig::paper());
/// // Table 2 totals: 39.98 W and 36.96 mm².
/// assert!((budget.total_power_w() - 39.98).abs() < 0.2);
/// assert!((budget.total_area_mm2() - 36.96).abs() < 0.2);
/// ```
pub fn design_budget(cfg: &MatchaConfig) -> DesignBudget {
    let clock_scale = cfg.clock_ghz / 2.0; // dynamic power ∝ frequency
    let xbar_ports = 2.0 * (cfg.pipelines() * cfg.spm_banks) as f64 / 8.0
        + (cfg.pipelines() * cfg.pipelines()) as f64 / 8.0;
    let components = vec![
        ComponentBudget {
            name: "TGSW clusters",
            power_w: TGSW_CLUSTER_W * cfg.tgsw_clusters as f64 * clock_scale,
            area_mm2: TGSW_CLUSTER_MM2 * cfg.tgsw_clusters as f64,
        },
        ComponentBudget {
            name: "EP cores",
            power_w: EP_CORE_W * ep_scale(cfg) * cfg.ep_cores as f64 * clock_scale,
            area_mm2: EP_CORE_MM2 * ep_scale(cfg) * cfg.ep_cores as f64,
        },
        ComponentBudget {
            name: "polynomial unit",
            power_w: POLY_UNIT_W_PER_LANE * cfg.poly_unit_lanes as f64 * clock_scale,
            area_mm2: POLY_UNIT_MM2_PER_LANE * cfg.poly_unit_lanes as f64,
        },
        ComponentBudget {
            name: "crossbars",
            power_w: XBAR_W_PER_PORT * xbar_ports * clock_scale,
            area_mm2: XBAR_MM2_PER_PORT * xbar_ports,
        },
        ComponentBudget {
            name: "SPM",
            power_w: SPM_W_PER_MIB * cfg.spm_mib * clock_scale,
            area_mm2: SPM_MM2_PER_MIB * cfg.spm_mib,
        },
        ComponentBudget {
            name: "mem ctrl + HBM2 PHY",
            // Half the controller budget follows the PHY lane count
            // (∝ bandwidth); the rest is fixed control logic.
            power_w: MEMCTRL_W * (0.5 + 0.5 * cfg.hbm_gb_s / 640.0),
            area_mm2: MEMCTRL_MM2 * (0.5 + 0.5 * cfg.hbm_gb_s / 640.0),
        },
    ];
    DesignBudget { components }
}

/// EP-core budget scaling: ~70% of an EP core is its five FFT/IFFT cores
/// (128 butterfly cores each at the paper design); the remaining 30% is
/// the register file and MAC lanes.
fn ep_scale(cfg: &MatchaConfig) -> f64 {
    let fft_cores = (cfg.ifft_cores_per_ep + cfg.fft_cores_per_ep) as f64 / 5.0;
    let butterflies = cfg.butterfly_cores as f64 / 128.0;
    0.3 + 0.7 * fft_cores * butterflies
}

/// Energy per gate in joules: total power × gate latency.
pub fn energy_per_gate_j(cfg: &MatchaConfig, gate_latency_s: f64) -> f64 {
    design_budget(cfg).total_power_w() * gate_latency_s
}

/// Per-component energy attribution for one gate at full pipeline
/// utilization: each component contributes `power / throughput`.
///
/// The breakdown shows where MATCHA's energy advantage comes from — the
/// EP cores (multiplication-less butterflies) dominate, while the HBM PHY
/// and SPM stay small, which is why the design lands at 6× better
/// throughput/Watt than the ASIC baseline (Figure 11).
pub fn energy_breakdown_j(cfg: &MatchaConfig, gates_per_second: f64) -> Vec<(&'static str, f64)> {
    assert!(gates_per_second > 0.0, "throughput must be positive");
    design_budget(cfg)
        .components
        .iter()
        .map(|c| (c.name, c.power_w / gates_per_second))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals_match_table2() {
        let b = design_budget(&MatchaConfig::paper());
        assert!(
            (b.total_power_w() - 39.98).abs() < 0.2,
            "power {}",
            b.total_power_w()
        );
        assert!(
            (b.total_area_mm2() - 36.96).abs() < 0.2,
            "area {}",
            b.total_area_mm2()
        );
    }

    #[test]
    fn component_rows_match_table2() {
        let b = design_budget(&MatchaConfig::paper());
        let find = |n: &str| b.components.iter().find(|c| c.name == n).unwrap();
        // Sub-total row of Table 2: 8 EP cores + 8 TGSW clusters = 30.8 W.
        let sub = find("TGSW clusters").power_w + find("EP cores").power_w;
        assert!((sub - 30.8).abs() < 0.1, "subtotal {sub}");
        assert!((find("SPM").power_w - 3.52).abs() < 1e-9);
        assert!((find("mem ctrl + HBM2 PHY").area_mm2 - 14.9).abs() < 1e-9);
    }

    #[test]
    fn power_scales_with_units() {
        let mut cfg = MatchaConfig::paper();
        cfg.ep_cores = 16;
        cfg.tgsw_clusters = 16;
        let b = design_budget(&cfg);
        assert!(b.total_power_w() > 60.0);
    }

    #[test]
    fn power_scales_with_clock() {
        let mut cfg = MatchaConfig::paper();
        cfg.clock_ghz = 1.0;
        let half = design_budget(&cfg);
        let full = design_budget(&MatchaConfig::paper());
        // Logic power halves, the (static-dominated) memory PHY does not.
        assert!(half.total_power_w() < full.total_power_w());
        assert!(half.total_power_w() > full.total_power_w() / 2.0);
    }

    #[test]
    fn energy_per_gate() {
        let cfg = MatchaConfig::paper();
        let e = energy_per_gate_j(&cfg, 0.18e-3);
        // ≈ 40 W × 0.18 ms ≈ 7.2 mJ.
        assert!((e - 7.2e-3).abs() < 0.5e-3, "energy {e}");
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let cfg = MatchaConfig::paper();
        let throughput = 40_000.0;
        let rows = energy_breakdown_j(&cfg, throughput);
        let sum: f64 = rows.iter().map(|(_, e)| e).sum();
        let total = design_budget(&cfg).total_power_w() / throughput;
        assert!((sum - total).abs() < 1e-12);
        // EP cores dominate the budget.
        let ep = rows.iter().find(|(n, _)| *n == "EP cores").unwrap().1;
        assert!(rows.iter().all(|&(n, e)| n == "EP cores" || e <= ep));
    }
}
