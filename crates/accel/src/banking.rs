//! Register-file bank-conflict analysis.
//!
//! The paper's Figure 7 sizes the register files asymmetrically: a TGSW
//! cluster gets **2 banks** because TGSW scale operations stream
//! sequentially ("strong spatial locality" — one bank is read while the
//! other is written), while an EP core gets **8 banks** to serve the
//! *irregular* accesses of FFT/IFFT butterflies. This module makes that
//! design argument checkable: it generates the exact address traces of the
//! kernels, maps them to banks, counts same-cycle conflicts, and confirms
//! the paper's sizing — 2 banks suffice for TGSW streams, FFT needs the
//! wider fan-out, and the depth-first flow (Figure 2b) is gentler on the
//! banks than breadth-first.

/// How addresses map to banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankMapping {
    /// `bank = addr mod banks` — simple interleaving.
    Interleaved,
    /// XOR-folds *every* `log2(banks)`-bit slice of the address into the
    /// bank index, so any power-of-two stride flips at least one bank bit
    /// — the standard conflict-free skew for FFT access patterns.
    XorFold,
}

impl BankMapping {
    /// The bank an address maps to.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two.
    pub fn bank_of(self, addr: usize, banks: usize) -> usize {
        assert!(banks.is_power_of_two(), "bank count must be a power of two");
        match self {
            BankMapping::Interleaved => addr % banks,
            BankMapping::XorFold => {
                let shift = banks.trailing_zeros();
                let mut folded = 0usize;
                let mut rest = addr;
                while rest != 0 {
                    folded ^= rest;
                    rest >>= shift;
                }
                folded % banks
            }
        }
    }
}

/// A cycle-by-cycle address trace: each inner vector holds the addresses
/// issued in one cycle (one per lane).
pub type Trace = Vec<Vec<usize>>;

/// Counts stalls: each cycle, a bank serves `ports` accesses; every extra
/// access beyond that adds one stall.
pub fn conflict_cycles(trace: &Trace, banks: usize, ports: usize, mapping: BankMapping) -> usize {
    assert!(ports > 0, "banks need at least one port");
    let mut stalls = 0;
    let mut hits = vec![0usize; banks];
    for cycle in trace {
        hits.iter_mut().for_each(|h| *h = 0);
        for &addr in cycle {
            hits[mapping.bank_of(addr, banks)] += 1;
        }
        stalls += hits.iter().map(|&h| h.saturating_sub(ports)).sum::<usize>();
    }
    stalls
}

/// The sequential double-buffered trace of a TGSW scale operation:
/// `lanes` consecutive reads per cycle walking a polynomial front to back.
pub fn tgsw_stream_trace(poly_len: usize, lanes: usize) -> Trace {
    (0..poly_len.div_ceil(lanes))
        .map(|c| {
            (0..lanes.min(poly_len - c * lanes))
                .map(|l| c * lanes + l)
                .collect()
        })
        .collect()
}

/// The breadth-first radix-2 FFT trace: for each stage, butterflies issue
/// paired accesses `(i, i + half)` — power-of-two strides that collide on
/// interleaved banks.
pub fn breadth_first_fft_trace(m: usize, lanes: usize) -> Trace {
    assert!(m.is_power_of_two());
    let mut trace = Trace::new();
    let mut len = 2;
    while len <= m {
        let half = len / 2;
        let mut pending: Vec<usize> = Vec::new();
        for start in (0..m).step_by(len) {
            for k in 0..half {
                pending.push(start + k);
                pending.push(start + k + half);
                if pending.len() >= 2 * lanes {
                    trace.push(std::mem::take(&mut pending));
                }
            }
        }
        if !pending.is_empty() {
            trace.push(pending);
        }
        len *= 2;
    }
    trace
}

/// The depth-first trace: sub-transforms complete before moving on, so
/// each cycle's accesses stay within one contiguous sub-block.
pub fn depth_first_fft_trace(m: usize, lanes: usize) -> Trace {
    assert!(m.is_power_of_two());
    let mut trace = Trace::new();
    depth_first_rec(0, m, lanes, &mut trace);
    trace
}

fn depth_first_rec(base: usize, len: usize, lanes: usize, trace: &mut Trace) {
    if len < 2 {
        return;
    }
    let half = len / 2;
    depth_first_rec(base, half, lanes, trace);
    depth_first_rec(base + half, half, lanes, trace);
    let mut pending: Vec<usize> = Vec::new();
    for k in 0..half {
        pending.push(base + k);
        pending.push(base + k + half);
        if pending.len() >= 2 * lanes {
            trace.push(std::mem::take(&mut pending));
        }
    }
    if !pending.is_empty() {
        trace.push(pending);
    }
}

/// Summary of a kernel/bank-configuration pairing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BankReport {
    /// Total issue cycles in the trace.
    pub cycles: usize,
    /// Stall cycles added by bank conflicts.
    pub stalls: usize,
}

impl BankReport {
    /// Fractional slowdown from conflicts (0 = conflict-free).
    pub fn overhead(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stalls as f64 / self.cycles as f64
    }
}

/// Evaluates a trace against a banking configuration (dual-ported banks,
/// as in the paper's "read a register bank while write the other").
pub fn evaluate(trace: &Trace, banks: usize, mapping: BankMapping) -> BankReport {
    BankReport {
        cycles: trace.len(),
        stalls: conflict_cycles(trace, banks, 2, mapping),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 512; // the paper's transform size
    const LANES: usize = 4;

    #[test]
    fn tgsw_stream_needs_only_two_banks() {
        // Paper: "each TGSW cluster has only two register banks, since the
        // memory accesses during a TGSW scale operation have strong
        // spatial locality".
        let trace = tgsw_stream_trace(1024, 2);
        let r = evaluate(&trace, 2, BankMapping::Interleaved);
        assert_eq!(
            r.stalls, 0,
            "sequential streams must be conflict-free on 2 banks"
        );
    }

    #[test]
    fn fft_on_two_banks_thrashes() {
        let trace = breadth_first_fft_trace(M, LANES);
        let two = evaluate(&trace, 2, BankMapping::Interleaved);
        assert!(
            two.overhead() > 0.5,
            "2 banks should thrash: {}",
            two.overhead()
        );
    }

    #[test]
    fn eight_banks_with_xor_fold_tame_the_fft() {
        // Paper: EP cores get 8 banks "to serve the irregular memory
        // accesses in FFT and IFFT kernels".
        let trace = breadth_first_fft_trace(M, LANES);
        let eight_plain = evaluate(&trace, 8, BankMapping::Interleaved);
        let eight_xor = evaluate(&trace, 8, BankMapping::XorFold);
        assert!(
            eight_xor.overhead() < eight_plain.overhead() + 1e-12,
            "XOR folding should not hurt: {} vs {}",
            eight_xor.overhead(),
            eight_plain.overhead()
        );
        assert!(
            eight_xor.overhead() < 0.1,
            "8 XOR-folded dual-ported banks should almost never stall: {}",
            eight_xor.overhead()
        );
        let two = evaluate(&trace, 2, BankMapping::Interleaved);
        assert!(eight_xor.overhead() < two.overhead());
    }

    #[test]
    fn depth_first_no_worse_than_breadth_first() {
        // The Figure 2(b) flow keeps accesses inside contiguous blocks,
        // which the XOR-folded banks exploit.
        let bf = evaluate(&breadth_first_fft_trace(M, LANES), 8, BankMapping::XorFold);
        let df = evaluate(&depth_first_fft_trace(M, LANES), 8, BankMapping::XorFold);
        assert!(
            df.overhead() <= bf.overhead() + 1e-12,
            "depth-first {} vs breadth-first {}",
            df.overhead(),
            bf.overhead()
        );
    }

    #[test]
    fn traces_cover_all_butterflies() {
        // Each radix-2 stage touches every element once: M·log2(M)/2
        // butterflies → M·log2(M) accesses.
        let accesses: usize = breadth_first_fft_trace(M, LANES).iter().map(Vec::len).sum();
        assert_eq!(accesses, M * M.trailing_zeros() as usize);
        let df_accesses: usize = depth_first_fft_trace(M, LANES).iter().map(Vec::len).sum();
        assert_eq!(df_accesses, accesses);
    }

    #[test]
    fn more_banks_never_hurt() {
        let trace = breadth_first_fft_trace(128, LANES);
        let mut prev = usize::MAX;
        for banks in [2usize, 4, 8, 16] {
            let stalls = conflict_cycles(&trace, banks, 2, BankMapping::XorFold);
            assert!(stalls <= prev, "banks={banks}");
            prev = stalls;
        }
    }

    #[test]
    fn bank_mapping_is_total() {
        for mapping in [BankMapping::Interleaved, BankMapping::XorFold] {
            for addr in 0..1024 {
                assert!(mapping.bank_of(addr, 8) < 8);
            }
        }
    }
}
