//! Event-driven simulation of MATCHA's bootstrapping pipeline
//! (paper Figure 6).
//!
//! Each gate owns one (TGSW cluster → EP core) pipeline. Per blind-rotation
//! step the cluster builds the bootstrapping-key bundle while the EP core
//! consumes the previous bundle; pattern keys stream from HBM (the unrolled
//! key — 48 MB/gate already at `m = 1` — cannot fit the 4 MiB scratchpad,
//! so streaming is mandatory). The eight pipelines run the same step
//! schedule, so one HBM key broadcast feeds all clusters.
//!
//! The simulation makes the paper's two qualitative effects emerge
//! mechanistically:
//!
//! * the two stages balance around `m = 3` (TGSW work grows `2^m − 1`
//!   per step while EP work is constant), and
//! * beyond that the `(2^m − 1)`-fold key growth makes the gate
//!   **HBM-bound**, which is why `m = 4` performs worse despite fewer
//!   steps — the paper's "MATCHA cannot support aggressive BKU with m = 4
//!   efficiently".

use crate::config::{MatchaConfig, WorkloadParams};
use crate::kernels;

/// Which resource bounded the gate latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// The EP core (external products).
    EpCore,
    /// The TGSW cluster (bundle construction).
    TgswCluster,
    /// HBM key streaming.
    Hbm,
}

/// The outcome of simulating one gate at a fixed unroll factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateSimResult {
    /// Unroll factor `m`.
    pub unroll: usize,
    /// Blind-rotation steps (`⌈n/m⌉`).
    pub steps: usize,
    /// End-to-end gate latency in seconds (including the key-switch
    /// epilogue).
    pub latency_s: f64,
    /// Gate throughput (gates/s) with all pipelines busy.
    pub throughput: f64,
    /// The dominant resource.
    pub bottleneck: Bottleneck,
    /// Total bootstrapping-key bytes streamed for the gate.
    pub hbm_bytes: f64,
    /// Busy fraction of the EP core (0–1).
    pub ep_utilization: f64,
}

/// Simulates one bootstrapped gate through the two-stage pipeline.
///
/// # Panics
///
/// Panics if the configuration is invalid or `m` is outside `1..=8`.
pub fn simulate_gate(cfg: &MatchaConfig, w: &WorkloadParams, m: usize) -> GateSimResult {
    cfg.validate().expect("invalid accelerator configuration");
    assert!((1..=8).contains(&m), "unroll factor {m} outside 1..=8");
    let steps = w.steps(m);
    let costs = kernels::step_costs(cfg, w, m);
    let hbm_cycles_per_step = costs.hbm_bytes / (cfg.hbm_gb_s * 1e9) / (cfg.clock_ns() * 1e-9);

    // Event-driven recurrence over steps: each stage starts when both its
    // input is ready and the unit is free.
    let mut hbm_done = 0.0f64;
    let mut tgsw_free = 0.0f64;
    let mut ep_free = 0.0f64;
    let mut busy_ep = 0.0f64;
    for _ in 0..steps {
        hbm_done += hbm_cycles_per_step;
        let tgsw_start = tgsw_free.max(hbm_done - hbm_cycles_per_step.min(hbm_done));
        // Keys must have finished streaming before the bundle completes.
        let tgsw_done = (tgsw_start + costs.tgsw_cycles).max(hbm_done);
        tgsw_free = tgsw_done;
        let ep_start = ep_free.max(tgsw_done);
        ep_free = ep_start + costs.ep_cycles;
        busy_ep += costs.ep_cycles;
    }
    let total_cycles = ep_free + kernels::epilogue_cycles(cfg, w);
    let latency_s = cfg.cycles_to_seconds(total_cycles);

    let hbm_total = hbm_cycles_per_step * steps as f64;
    let tgsw_total = costs.tgsw_cycles * steps as f64;
    let ep_total = costs.ep_cycles * steps as f64;
    let bottleneck = if hbm_total >= tgsw_total && hbm_total >= ep_total {
        Bottleneck::Hbm
    } else if tgsw_total >= ep_total {
        Bottleneck::TgswCluster
    } else {
        Bottleneck::EpCore
    };

    GateSimResult {
        unroll: m,
        steps,
        latency_s,
        throughput: cfg.pipelines() as f64 / latency_s,
        bottleneck,
        hbm_bytes: costs.hbm_bytes * steps as f64,
        ep_utilization: busy_ep / ep_free,
    }
}

/// Simulates a sweep over unroll factors.
pub fn sweep(cfg: &MatchaConfig, w: &WorkloadParams, ms: &[usize]) -> Vec<GateSimResult> {
    ms.iter().map(|&m| simulate_gate(cfg, w, m)).collect()
}

/// The unroll factor minimizing latency within `1..=max_m`.
pub fn best_unroll(cfg: &MatchaConfig, w: &WorkloadParams, max_m: usize) -> usize {
    (1..=max_m)
        .min_by(|&a, &b| {
            simulate_gate(cfg, w, a)
                .latency_s
                .total_cmp(&simulate_gate(cfg, w, b).latency_s)
        })
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (MatchaConfig, WorkloadParams) {
        (MatchaConfig::paper(), WorkloadParams::MATCHA)
    }

    #[test]
    fn latency_in_paper_ballpark() {
        // Figure 9: MATCHA's NAND latency is a few hundred microseconds,
        // beating the GPU's 0.21 ms at m = 3.
        let (cfg, w) = paper();
        let r = simulate_gate(&cfg, &w, 3);
        assert!(
            r.latency_s > 50e-6 && r.latency_s < 500e-6,
            "m=3 latency {} out of range",
            r.latency_s
        );
    }

    #[test]
    fn m3_is_the_sweet_spot() {
        // Paper: m = 3 beats m = 1, 2, 4 on MATCHA.
        let (cfg, w) = paper();
        assert_eq!(best_unroll(&cfg, &w, 4), 3);
    }

    #[test]
    fn m4_is_hbm_bound() {
        // Paper §4.3/§6: the exponential key growth at m = 4 exceeds what
        // 640 GB/s can stream, making aggressive BKU inefficient.
        let (cfg, w) = paper();
        let r = simulate_gate(&cfg, &w, 4);
        assert_eq!(r.bottleneck, Bottleneck::Hbm);
        assert!(r.latency_s > simulate_gate(&cfg, &w, 3).latency_s);
    }

    #[test]
    fn small_m_is_ep_bound() {
        let (cfg, w) = paper();
        let r = simulate_gate(&cfg, &w, 1);
        assert_eq!(r.bottleneck, Bottleneck::EpCore);
    }

    #[test]
    fn throughput_counts_all_pipelines() {
        let (cfg, w) = paper();
        let r = simulate_gate(&cfg, &w, 2);
        assert!((r.throughput * r.latency_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn more_hbm_helps_when_hbm_bound() {
        let (mut cfg, w) = paper();
        let before = simulate_gate(&cfg, &w, 4).latency_s;
        cfg.hbm_gb_s *= 2.0;
        let after = simulate_gate(&cfg, &w, 4).latency_s;
        assert!(after < before);
    }

    #[test]
    fn more_ep_mac_lanes_help_when_ep_bound() {
        let (mut cfg, w) = paper();
        let before = simulate_gate(&cfg, &w, 1).latency_s;
        cfg.ep_mac_lanes *= 4;
        let after = simulate_gate(&cfg, &w, 1).latency_s;
        assert!(after < before);
    }

    #[test]
    fn monotone_in_hardware() {
        // Property: strictly more of every resource never hurts latency.
        let (cfg, w) = paper();
        let mut big = cfg.clone();
        big.butterfly_cores *= 2;
        big.ep_mac_lanes *= 2;
        big.tgsw_mac_lanes *= 2;
        big.hbm_gb_s *= 2.0;
        big.poly_unit_lanes *= 2;
        for m in 1..=4 {
            assert!(
                simulate_gate(&big, &w, m).latency_s
                    <= simulate_gate(&cfg, &w, m).latency_s + 1e-12,
                "m={m}"
            );
        }
    }

    #[test]
    fn utilization_is_a_fraction() {
        let (cfg, w) = paper();
        for m in 1..=4 {
            let r = simulate_gate(&cfg, &w, m);
            assert!(r.ep_utilization > 0.0 && r.ep_utilization <= 1.0, "m={m}");
        }
    }

    #[test]
    fn sweep_covers_requested_ms() {
        let (cfg, w) = paper();
        let rs = sweep(&cfg, &w, &[1, 2, 3, 4]);
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[2].unroll, 3);
    }
}
