//! MATCHA hardware configuration (paper §4.3, Figure 7, Table 2).

/// The microarchitectural parameters of a MATCHA instance.
///
/// Defaults reproduce the paper's design: 2 GHz, 8 TGSW clusters + 8 EP
/// cores (one bootstrapping pipeline each), EP cores with 1 FFT + 4 IFFT
/// cores of 128 butterfly cores each, a 4 MB / 32-bank scratchpad, and
/// 640 GB/s of HBM2 bandwidth.
///
/// # Examples
///
/// ```
/// use matcha_accel::MatchaConfig;
///
/// let cfg = MatchaConfig::paper();
/// assert_eq!(cfg.ep_cores, 8);
/// assert_eq!(cfg.clock_ghz, 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MatchaConfig {
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Number of TGSW clusters (bundle builders).
    pub tgsw_clusters: usize,
    /// Number of External Product cores.
    pub ep_cores: usize,
    /// IFFT cores per EP core (coefficient → Lagrange).
    pub ifft_cores_per_ep: usize,
    /// FFT cores per EP core (Lagrange → coefficient).
    pub fft_cores_per_ep: usize,
    /// Butterfly cores per FFT/IFFT core (two 64-bit adders + two 64-bit
    /// shifters each — the multiplication-less butterfly of Figure 3).
    pub butterfly_cores: usize,
    /// 32-bit integer multipliers per TGSW cluster.
    pub tgsw_multipliers: usize,
    /// 32-bit integer multiplier/adder pairs per EP core (pointwise MACs).
    pub ep_multipliers: usize,
    /// Lanes in the polynomial unit (adders/comparators/logic).
    pub poly_unit_lanes: usize,
    /// Scratchpad capacity in MiB.
    pub spm_mib: f64,
    /// Scratchpad banks.
    pub spm_banks: usize,
    /// HBM2 bandwidth in GB/s.
    pub hbm_gb_s: f64,
    /// Effective complex-MAC lanes per TGSW cluster.
    ///
    /// Calibration note: the paper does not state the cluster's per-cycle
    /// complex throughput; this default balances the Figure 6 pipeline at
    /// `m ≈ 3`, reproducing the paper's observation that "the workloads of
    /// the two steps can be approximately balanced by adjusting m".
    pub tgsw_mac_lanes: usize,
    /// Effective complex-MAC lanes per EP core (pointwise products are
    /// streamed through the transform pipeline).
    pub ep_mac_lanes: usize,
}

impl MatchaConfig {
    /// The configuration evaluated in the paper.
    pub fn paper() -> Self {
        Self {
            clock_ghz: 2.0,
            tgsw_clusters: 8,
            ep_cores: 8,
            ifft_cores_per_ep: 4,
            fft_cores_per_ep: 1,
            butterfly_cores: 128,
            tgsw_multipliers: 16,
            ep_multipliers: 4,
            poly_unit_lanes: 32,
            spm_mib: 4.0,
            spm_banks: 32,
            hbm_gb_s: 640.0,
            tgsw_mac_lanes: 32,
            ep_mac_lanes: 4,
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Cycles → seconds at this clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles * self.clock_ns() * 1e-9
    }

    /// Number of independent bootstrapping pipelines
    /// (`min(tgsw_clusters, ep_cores)`).
    pub fn pipelines(&self) -> usize {
        self.tgsw_clusters.min(self.ep_cores)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.pipelines() == 0 {
            return Err("need at least one TGSW cluster and one EP core".into());
        }
        if self.butterfly_cores == 0 || self.ifft_cores_per_ep == 0 || self.fft_cores_per_ep == 0 {
            return Err("EP cores need FFT/IFFT resources".into());
        }
        if self.hbm_gb_s <= 0.0 {
            return Err("HBM bandwidth must be positive".into());
        }
        if self.tgsw_mac_lanes == 0 || self.ep_mac_lanes == 0 {
            return Err("MAC lanes must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for MatchaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The TFHE workload parameters the accelerator model consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadParams {
    /// LWE dimension `n` (blind-rotation steps before unrolling).
    pub lwe_dimension: usize,
    /// Ring degree `N`.
    pub ring_degree: usize,
    /// TGSW decomposition length `ℓ`.
    pub decomp_levels: usize,
    /// Key-switch decomposition length `t`.
    pub ks_levels: usize,
}

impl WorkloadParams {
    /// The paper's §5 parameters.
    pub const MATCHA: Self = Self {
        lwe_dimension: 500,
        ring_degree: 1024,
        decomp_levels: 3,
        ks_levels: 8,
    };

    /// Blind-rotation steps at unroll factor `m`.
    pub fn steps(&self, m: usize) -> usize {
        self.lwe_dimension.div_ceil(m)
    }

    /// Transform size `M = N/2`.
    pub fn transform_points(&self) -> usize {
        self.ring_degree / 2
    }

    /// Radix-2 butterflies per transform: `(M/2)·log2(M)`.
    pub fn butterflies_per_transform(&self) -> usize {
        let m = self.transform_points();
        (m / 2) * m.trailing_zeros() as usize
    }

    /// Polynomials per TGSW sample: `2ℓ` rows × 2 polynomials.
    pub fn polys_per_tgsw(&self) -> usize {
        4 * self.decomp_levels
    }

    /// Bytes of one spectral TGSW sample (64-bit complex pairs).
    pub fn tgsw_bytes(&self) -> usize {
        self.polys_per_tgsw() * self.transform_points() * 16
    }

    /// Bootstrapping-key bytes streamed per gate at unroll `m`:
    /// `⌈n/m⌉ · (2^m − 1)` TGSW samples.
    pub fn bk_bytes_per_gate(&self, m: usize) -> usize {
        self.steps(m) * ((1 << m) - 1) * self.tgsw_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        MatchaConfig::paper().validate().unwrap();
    }

    #[test]
    fn pipelines_take_minimum() {
        let mut cfg = MatchaConfig::paper();
        cfg.tgsw_clusters = 4;
        assert_eq!(cfg.pipelines(), 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = MatchaConfig::paper();
        cfg.clock_ghz = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MatchaConfig::paper();
        cfg.ep_cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn workload_counts() {
        let w = WorkloadParams::MATCHA;
        assert_eq!(w.steps(1), 500);
        assert_eq!(w.steps(3), 167);
        assert_eq!(w.transform_points(), 512);
        assert_eq!(w.butterflies_per_transform(), 256 * 9);
        assert_eq!(w.polys_per_tgsw(), 12);
        assert_eq!(w.tgsw_bytes(), 12 * 512 * 16);
    }

    #[test]
    fn bk_traffic_grows_with_m() {
        let w = WorkloadParams::MATCHA;
        // Table 3: key material grows like 2^m − 1 per group.
        assert!(w.bk_bytes_per_gate(4) > w.bk_bytes_per_gate(3));
        assert!(w.bk_bytes_per_gate(3) > w.bk_bytes_per_gate(1));
        // m = 1: 500 × 1 × 96 KiB = 48 MB of key stream per gate.
        assert_eq!(w.bk_bytes_per_gate(1), 500 * 12 * 512 * 16);
    }

    #[test]
    fn clock_conversion() {
        let cfg = MatchaConfig::paper();
        assert!((cfg.cycles_to_seconds(2e9) - 1.0).abs() < 1e-12);
    }
}
