//! Gate-netlist scheduling on parallel bootstrapping pipelines.
//!
//! The paper motivates MATCHA with whole circuits (a TFHE RISC-V CPU at
//! 1.25 Hz, §1). A circuit is a DAG of bootstrapped gates; with `P`
//! pipelines the achievable latency is bounded below by both the critical
//! path (`depth × gate latency`) and the total work (`gates/P × gate
//! latency`). This module builds gate DAGs for the standard circuits of
//! `matcha-circuits`, list-schedules them onto a platform's pipelines, and
//! reports circuit-level latency — turning the per-gate numbers of
//! Figures 9/10 into end-to-end application estimates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A dependency DAG of equal-cost bootstrapped gates.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// `deps[i]` lists the gate indices gate `i` consumes.
    deps: Vec<Vec<usize>>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a gate depending on `deps` (indices of earlier gates) and
    /// returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any dependency references a not-yet-added gate.
    pub fn add_gate(&mut self, deps: &[usize]) -> usize {
        let id = self.deps.len();
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must reference earlier gates"
        );
        self.deps.push(deps.to_vec());
        id
    }

    /// Builds a netlist from an externally produced dependency skeleton —
    /// the bridge from executable circuits: pass
    /// `CircuitNetlist::schedule_skeleton()` (in `matcha-tfhe`) here and
    /// [`schedule`] predicts the makespan/utilization the batch pool
    /// should achieve, for cross-checking against measured wall-clock.
    ///
    /// # Panics
    ///
    /// Panics if any entry references a not-yet-listed gate (the skeleton
    /// must be topologically ordered).
    pub fn from_deps(deps: &[Vec<usize>]) -> Self {
        let mut net = Self::new();
        for gate_deps in deps {
            net.add_gate(gate_deps);
        }
        net
    }

    /// The dependency list of gate `i`.
    pub fn dependencies(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Returns `true` when the netlist has no gates.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Length (in gates) of the longest dependency chain.
    pub fn critical_path(&self) -> usize {
        let mut depth = vec![0usize; self.deps.len()];
        let mut best = 0;
        for (i, deps) in self.deps.iter().enumerate() {
            depth[i] = deps.iter().map(|&d| depth[d]).max().map_or(1, |m| m + 1);
            best = best.max(depth[i]);
        }
        best
    }

    /// Critical-path priority rank per gate: `ranks()[i]` is the length
    /// (in gates, counting gate `i` itself) of the longest dependency
    /// chain from `i` to any sink. A list scheduler dispatching
    /// highest-rank-first among ready gates is the classic
    /// critical-path-first heuristic; `ranks().max() == critical_path()`.
    pub fn ranks(&self) -> Vec<usize> {
        let n = self.deps.len();
        let mut rank = vec![1usize; n];
        // Single backward sweep: topological order means every consumer
        // has a higher index than its dependencies.
        for i in (0..n).rev() {
            let r = rank[i];
            for &d in &self.deps[i] {
                rank[d] = rank[d].max(r + 1);
            }
        }
        rank
    }

    /// A `width`-bit ripple-carry adder: 5 gates per full adder, with the
    /// carry chaining between stages (the circuit of
    /// `matcha_circuits::adder`).
    pub fn ripple_adder(width: usize) -> Self {
        let mut net = Self::new();
        let mut carry: Option<usize> = None;
        for _ in 0..width {
            let axb = net.add_gate(&[]); // XOR(a, b): inputs are primary
            let and_ab = net.add_gate(&[]);
            let (sum, and_cx) = match carry {
                None => {
                    let sum = net.add_gate(&[axb]);
                    let and_cx = net.add_gate(&[axb]);
                    (sum, and_cx)
                }
                Some(c) => {
                    let sum = net.add_gate(&[axb, c]);
                    let and_cx = net.add_gate(&[axb, c]);
                    (sum, and_cx)
                }
            };
            let _ = sum;
            let cout = net.add_gate(&[and_ab, and_cx]);
            carry = Some(cout);
        }
        net
    }

    /// A `width × width` schoolbook multiplier: `width²` partial-product
    /// ANDs plus `width − 1` chained ripple additions of width `2·width`.
    pub fn multiplier(width: usize) -> Self {
        let mut net = Self::new();
        // Partial products: all independent.
        let mut partials: Vec<Vec<usize>> = Vec::new();
        for _ in 0..width {
            partials.push((0..width).map(|_| net.add_gate(&[])).collect());
        }
        // Chain of additions; each full adder column depends on the two
        // partial-product bits and the previous carry.
        let mut acc: Vec<usize> = partials[0].clone();
        for row in partials.iter().skip(1) {
            let mut carry: Option<usize> = None;
            let mut next_acc = Vec::with_capacity(acc.len().max(row.len()) + 1);
            for col in 0..acc.len().max(row.len()) {
                let mut deps = Vec::new();
                if let Some(&a) = acc.get(col) {
                    deps.push(a);
                }
                if let Some(&r) = row.get(col) {
                    deps.push(r);
                }
                if let Some(c) = carry {
                    deps.push(c);
                }
                // Full adder ≈ 5 gates; model as sum gate + carry gate with
                // three internal gates charged to the sum side.
                let g1 = net.add_gate(&deps);
                let g2 = net.add_gate(&deps);
                let sum = net.add_gate(&[g1, g2]);
                let g3 = net.add_gate(&deps);
                let cout = net.add_gate(&[g3]);
                next_acc.push(sum);
                carry = Some(cout);
            }
            if let Some(c) = carry {
                next_acc.push(c);
            }
            acc = next_acc;
        }
        net
    }

    /// A balanced `width`-bit equality comparator: XNOR leaves + AND tree.
    pub fn comparator(width: usize) -> Self {
        let mut net = Self::new();
        let mut layer: Vec<usize> = (0..width).map(|_| net.add_gate(&[])).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => net.add_gate(&[*a, *b]),
                    [a] => *a,
                    _ => unreachable!(),
                })
                .collect();
        }
        net
    }
}

/// The outcome of scheduling a netlist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleResult {
    /// End-to-end circuit latency in seconds.
    pub makespan_s: f64,
    /// Total gates executed.
    pub gates: usize,
    /// Depth of the critical path in gates.
    pub critical_path: usize,
    /// Mean pipeline utilization (0–1).
    pub utilization: f64,
}

/// List-schedules `netlist` on `pipelines` identical units with a fixed
/// per-gate latency.
///
/// # Panics
///
/// Panics if `pipelines == 0` or `gate_latency_s <= 0`.
pub fn schedule(netlist: &Netlist, pipelines: usize, gate_latency_s: f64) -> ScheduleResult {
    assert!(pipelines > 0, "need at least one pipeline");
    assert!(gate_latency_s > 0.0, "gate latency must be positive");
    let n = netlist.len();
    if n == 0 {
        return ScheduleResult {
            makespan_s: 0.0,
            gates: 0,
            critical_path: 0,
            utilization: 0.0,
        };
    }
    let mut finish = vec![0.0f64; n];
    // Pipelines as a min-heap of free times (f64 bits as ordered ints —
    // all values are non-negative, so the bit pattern orders correctly).
    let mut free: BinaryHeap<Reverse<u64>> = (0..pipelines).map(|_| Reverse(0u64)).collect();
    for i in 0..n {
        let ready = netlist.deps[i]
            .iter()
            .map(|&d| finish[d])
            .fold(0.0f64, f64::max);
        let Reverse(free_bits) = free.pop().expect("heap has `pipelines` entries");
        let start = ready.max(f64::from_bits(free_bits));
        let done = start + gate_latency_s;
        finish[i] = done;
        free.push(Reverse(done.to_bits()));
    }
    let makespan_s = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    let busy = n as f64 * gate_latency_s;
    ScheduleResult {
        makespan_s,
        gates: n,
        critical_path: netlist.critical_path(),
        utilization: busy / (makespan_s * pipelines as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_adder_counts() {
        let net = Netlist::ripple_adder(8);
        assert_eq!(net.len(), 40); // 5 gates per full adder
                                   // Critical path: the carry chain, 3 gates deep per stage after
                                   // the first XOR level.
        assert!(net.critical_path() >= 8);
    }

    #[test]
    fn schedule_respects_bounds() {
        let net = Netlist::ripple_adder(8);
        for pipelines in [1usize, 2, 8, 64] {
            let r = schedule(&net, pipelines, 1.0);
            let cp_bound = net.critical_path() as f64;
            let work_bound = net.len() as f64 / pipelines as f64;
            assert!(r.makespan_s >= cp_bound - 1e-9, "p={pipelines}");
            assert!(r.makespan_s >= work_bound - 1e-9, "p={pipelines}");
            assert!(r.makespan_s <= net.len() as f64 + 1e-9);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
    }

    #[test]
    fn single_pipeline_serializes_everything() {
        let net = Netlist::comparator(8);
        let r = schedule(&net, 1, 2.0);
        assert!((r.makespan_s - net.len() as f64 * 2.0).abs() < 1e-9);
        assert!((r.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_pipelines_never_slower() {
        let net = Netlist::multiplier(4);
        let mut prev = f64::INFINITY;
        for pipelines in [1usize, 2, 4, 8, 16] {
            let r = schedule(&net, pipelines, 1.0);
            assert!(r.makespan_s <= prev + 1e-9, "p={pipelines}");
            prev = r.makespan_s;
        }
    }

    #[test]
    fn comparator_tree_depth_is_logarithmic() {
        let net = Netlist::comparator(16);
        // 1 XNOR level + 4 AND-tree levels.
        assert_eq!(net.critical_path(), 5);
        assert_eq!(net.len(), 16 + 15);
    }

    #[test]
    fn saturating_pipelines_hits_critical_path() {
        let net = Netlist::ripple_adder(4);
        let r = schedule(&net, 1000, 1.0);
        assert!((r.makespan_s - net.critical_path() as f64).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist() {
        let r = schedule(&Netlist::new(), 4, 1.0);
        assert_eq!(r.gates, 0);
        assert_eq!(r.makespan_s, 0.0);
    }

    #[test]
    fn ranks_match_critical_path() {
        for net in [
            Netlist::ripple_adder(8),
            Netlist::comparator(16),
            Netlist::multiplier(4),
        ] {
            let ranks = net.ranks();
            assert_eq!(ranks.len(), net.len());
            assert_eq!(
                ranks.iter().copied().max().unwrap_or(0),
                net.critical_path()
            );
            // A gate's rank strictly exceeds every consumer's rank.
            for (i, deps) in (0..net.len()).map(|i| (i, net.dependencies(i))) {
                for &d in deps {
                    assert!(ranks[d] > ranks[i], "dep {d} of {i}");
                }
            }
        }
    }

    #[test]
    fn ranks_of_chain_descend() {
        let mut net = Netlist::new();
        let a = net.add_gate(&[]);
        let b = net.add_gate(&[a]);
        let c = net.add_gate(&[b]);
        let lone = net.add_gate(&[]);
        assert_eq!(net.ranks(), vec![3, 2, 1, 1]);
        let _ = (c, lone);
    }

    #[test]
    fn from_deps_roundtrips() {
        let orig = Netlist::ripple_adder(4);
        let deps: Vec<Vec<usize>> = (0..orig.len())
            .map(|i| orig.dependencies(i).to_vec())
            .collect();
        let rebuilt = Netlist::from_deps(&deps);
        assert_eq!(rebuilt.len(), orig.len());
        assert_eq!(rebuilt.critical_path(), orig.critical_path());
        let a = schedule(&orig, 4, 1.0);
        let b = schedule(&rebuilt, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "earlier gates")]
    fn from_deps_rejects_forward_references() {
        let _ = Netlist::from_deps(&[vec![], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "earlier gates")]
    fn forward_dependency_rejected() {
        let mut net = Netlist::new();
        let _ = net.add_gate(&[3]);
    }
}
