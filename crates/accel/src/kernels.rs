//! Cycle-cost model of MATCHA's kernels, derived from the Figure 7
//! microarchitecture.
//!
//! Two pipeline stages repeat per blind-rotation step (Figure 6a):
//!
//! 1. **TGSW cluster** — bundle construction: `(2^m − 1)` TGSW scale
//!    operations, each a pointwise complex multiply-accumulate over the
//!    `4ℓ` polynomials (`2ℓ` rows × 2) of a spectral TGSW sample.
//! 2. **EP core** — the external product: `2ℓ` IFFTs of the decomposed
//!    accumulator on the 4 IFFT cores, pointwise MACs against the bundle,
//!    and 2 FFTs back on the single FFT core.
//!
//! Each FFT/IFFT core retires `butterfly_cores` butterflies per cycle plus
//! a pipeline-fill latency of one cycle per stage.

use crate::config::{MatchaConfig, WorkloadParams};

/// Cycle costs of the per-step kernels at a given unroll factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepCosts {
    /// TGSW-cluster cycles per step (bundle construction).
    pub tgsw_cycles: f64,
    /// EP-core cycles per step (external product).
    pub ep_cycles: f64,
    /// Bootstrapping-key bytes streamed from HBM per step.
    pub hbm_bytes: f64,
}

/// Cycles one FFT/IFFT core needs for a single transform.
pub fn transform_cycles(cfg: &MatchaConfig, w: &WorkloadParams) -> f64 {
    let butterflies = w.butterflies_per_transform() as f64;
    let stages = w.transform_points().trailing_zeros() as f64;
    butterflies / cfg.butterfly_cores as f64 + stages
}

/// EP-core cycles for one external product (paper: 4 IFFT cores take the
/// `2ℓ` digit transforms in waves, the FFT core the 2 output transforms;
/// pointwise MACs stream through `ep_mac_lanes` complex lanes and overlap
/// with the transform waves).
pub fn ep_core_cycles(cfg: &MatchaConfig, w: &WorkloadParams) -> f64 {
    let t = transform_cycles(cfg, w);
    let ifft_waves = (2 * w.decomp_levels).div_ceil(cfg.ifft_cores_per_ep) as f64;
    let fft_waves = 2f64 / cfg.fft_cores_per_ep as f64;
    let transform_total = (ifft_waves + fft_waves.ceil()) * t;
    let macs = (w.polys_per_tgsw() * w.transform_points()) as f64;
    let mac_cycles = macs / cfg.ep_mac_lanes as f64;
    // MACs overlap with transform streaming: the longer of the two paths
    // bounds the stage, plus the decomposition handled by the sequential
    // digit extract (absorbed in the fill term).
    transform_total.max(mac_cycles) + t
}

/// TGSW-cluster cycles to build one bundle at unroll `m`:
/// `(2^m − 1)` scale-and-accumulate passes over the sample's polynomials.
pub fn tgsw_cluster_cycles(cfg: &MatchaConfig, w: &WorkloadParams, m: usize) -> f64 {
    let terms = ((1usize << m) - 1) as f64;
    let macs_per_term = (w.polys_per_tgsw() * w.transform_points()) as f64;
    terms * macs_per_term / cfg.tgsw_mac_lanes as f64
}

/// All per-step costs at unroll `m`.
pub fn step_costs(cfg: &MatchaConfig, w: &WorkloadParams, m: usize) -> StepCosts {
    StepCosts {
        tgsw_cycles: tgsw_cluster_cycles(cfg, w, m),
        ep_cycles: ep_core_cycles(cfg, w),
        hbm_bytes: (((1usize << m) - 1) * w.tgsw_bytes()) as f64,
    }
}

/// Cycles for the non-pipelined epilogue of one gate: sample extraction
/// and key switching on the polynomial unit.
///
/// Each polynomial-unit lane is 256 bits wide (the crossbars are 256-bit
/// bit-sliced, §4.3), i.e. 8 32-bit adds per lane per cycle. The
/// key-switching key itself is shared by every concurrent gate, so its
/// HBM traffic amortizes across the pipelines and prefetches during blind
/// rotation — only the compute appears on the critical path.
pub fn epilogue_cycles(cfg: &MatchaConfig, w: &WorkloadParams) -> f64 {
    // Key switch: N coefficients × t levels of LWE-subtractions of width n.
    let ks_ops = (w.ring_degree * w.ks_levels * (w.lwe_dimension + 1)) as f64;
    ks_ops / (cfg.poly_unit_lanes as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (MatchaConfig, WorkloadParams) {
        (MatchaConfig::paper(), WorkloadParams::MATCHA)
    }

    #[test]
    fn transform_cycles_match_hand_count() {
        let (cfg, w) = paper();
        // 2304 butterflies / 128 cores + 9 stages = 27 cycles.
        assert!((transform_cycles(&cfg, &w) - 27.0).abs() < 1e-9);
    }

    #[test]
    fn ep_cycles_are_mac_bound_at_paper_config() {
        let (cfg, w) = paper();
        // 12×512 MACs / 4 lanes = 1536 > (2+2)·27 transform cycles.
        let ep = ep_core_cycles(&cfg, &w);
        assert!(ep > 1500.0 && ep < 1600.0, "ep = {ep}");
    }

    #[test]
    fn tgsw_cycles_scale_with_terms() {
        let (cfg, w) = paper();
        let c1 = tgsw_cluster_cycles(&cfg, &w, 1);
        let c2 = tgsw_cluster_cycles(&cfg, &w, 2);
        let c4 = tgsw_cluster_cycles(&cfg, &w, 4);
        assert!((c2 / c1 - 3.0).abs() < 1e-9);
        assert!((c4 / c1 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_balances_near_m3() {
        // The paper: "the workloads of the two steps can be approximately
        // balanced by adjusting m" — with the default lanes, TGSW work
        // crosses EP work between m = 2 and m = 4.
        let (cfg, w) = paper();
        let ep = ep_core_cycles(&cfg, &w);
        assert!(tgsw_cluster_cycles(&cfg, &w, 2) < ep);
        assert!(tgsw_cluster_cycles(&cfg, &w, 4) > ep);
    }

    #[test]
    fn more_butterfly_cores_speed_up_transforms() {
        let (mut cfg, w) = paper();
        let base = transform_cycles(&cfg, &w);
        cfg.butterfly_cores = 256;
        assert!(transform_cycles(&cfg, &w) < base);
    }

    #[test]
    fn epilogue_is_small_relative_to_rotation() {
        let (cfg, w) = paper();
        let rot = ep_core_cycles(&cfg, &w) * w.steps(1) as f64;
        assert!(epilogue_cycles(&cfg, &w) < rot / 2.0);
    }
}
