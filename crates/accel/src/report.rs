//! Text rendering of the evaluation figures and tables.
//!
//! These helpers produce the row/series text the benchmark binaries print,
//! matching the quantities of the paper's Figures 9–11 and Table 2.

use crate::area_power::DesignBudget;
use crate::platforms::Platform;
use std::fmt::Write as _;

/// Renders a per-platform, per-`m` metric table (one row per platform,
/// columns m=1..=4), with `-` for unsupported points.
pub fn metric_table(
    title: &str,
    unit: &str,
    platforms: &[Platform],
    metric: impl Fn(&Platform, usize) -> Option<f64>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12}   [{unit}]",
        "platform", "m=1", "m=2", "m=3", "m=4"
    );
    for p in platforms {
        let _ = write!(out, "{:<8}", p.name);
        for m in 1..=4 {
            match metric(p, m) {
                Some(v) => {
                    let _ = write!(out, " {v:>12.4}");
                }
                None => {
                    let _ = write!(out, " {:>12}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Figure 9: NAND latency in milliseconds.
pub fn figure9(platforms: &[Platform]) -> String {
    metric_table(
        "Figure 9: TFHE NAND gate latency",
        "ms",
        platforms,
        |p, m| p.latency_s(m).map(|s| s * 1e3),
    )
}

/// Figure 10: NAND throughput in gates/s.
pub fn figure10(platforms: &[Platform]) -> String {
    metric_table(
        "Figure 10: TFHE NAND gate throughput",
        "gate/s",
        platforms,
        |p, m| p.throughput(m),
    )
}

/// Figure 11: throughput per watt in gates/s/W.
pub fn figure11(platforms: &[Platform]) -> String {
    metric_table(
        "Figure 11: TFHE NAND throughput per Watt",
        "gate/s/W",
        platforms,
        |p, m| p.throughput_per_watt(m),
    )
}

/// Table 2: the power/area budget.
pub fn table2(budget: &DesignBudget) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Table 2: MATCHA power and area (16 nm, 2 GHz)");
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>12}",
        "component", "power (W)", "area (mm^2)"
    );
    for c in &budget.components {
        let _ = writeln!(
            out,
            "{:<22} {:>10.3} {:>12.3}",
            c.name, c.power_w, c.area_mm2
        );
    }
    let _ = writeln!(
        out,
        "{:<22} {:>10.3} {:>12.3}",
        "Total",
        budget.total_power_w(),
        budget.total_area_mm2()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area_power::design_budget;
    use crate::config::MatchaConfig;
    use crate::platforms::evaluation_platforms;

    #[test]
    fn figure9_contains_all_platforms() {
        let text = figure9(&evaluation_platforms());
        for name in ["CPU", "GPU", "MATCHA", "FPGA", "ASIC"] {
            assert!(text.contains(name), "missing {name}:\n{text}");
        }
        // FPGA supports only m = 1: the m ≥ 2 columns are dashes.
        let fpga_line = text.lines().find(|l| l.starts_with("FPGA")).unwrap();
        assert_eq!(fpga_line.matches(" -").count(), 3, "{fpga_line}");
    }

    #[test]
    fn table2_totals_rendered() {
        let text = table2(&design_budget(&MatchaConfig::paper()));
        assert!(text.contains("Total"));
        assert!(text.contains("39.9") || text.contains("40.0"), "{text}");
    }

    #[test]
    fn throughput_table_has_units() {
        let text = figure10(&evaluation_platforms());
        assert!(text.contains("gate/s"));
    }
}
