//! Cycle-level performance and energy model of the MATCHA accelerator
//! (paper §4.3–§6) and of the paper's CPU/GPU/FPGA/ASIC baselines.
//!
//! The crate answers the evaluation's questions without the authors' RTL
//! and testbeds (see DESIGN.md for the substitution rationale):
//!
//! * [`config`] — the Figure 7 microarchitecture as data.
//! * [`kernels`] — per-kernel cycle costs (transforms, TGSW scales, MACs).
//! * [`pipeline`] — an event-driven simulation of the Figure 6 two-stage
//!   bootstrapping pipeline, with HBM key streaming.
//! * [`area_power`] — the Table 2 power/area budget, parameterized by
//!   component counts.
//! * [`platforms`] — the baseline platform models and the MATCHA wrapper,
//!   producing the series of Figures 9–11.
//! * [`report`] — text renderers for those figures/tables.
//!
//! # Examples
//!
//! ```
//! use matcha_accel::{pipeline, MatchaConfig, WorkloadParams};
//!
//! let r = pipeline::simulate_gate(&MatchaConfig::paper(), &WorkloadParams::MATCHA, 3);
//! assert!(r.latency_s < 1e-3); // sub-millisecond NAND gates
//! ```

pub mod area_power;
pub mod banking;
pub mod config;
pub mod dse;
pub mod kernels;
pub mod pipeline;
pub mod platforms;
pub mod report;
pub mod schedule;

pub use config::{MatchaConfig, WorkloadParams};
pub use pipeline::{simulate_gate, Bottleneck, GateSimResult};
pub use platforms::{evaluation_platforms, Platform};
