//! Cross-validation of the analytic noise model in [`matcha_tfhe::analyze`]
//! against the empirical [`matcha_tfhe::noise`] harness.
//!
//! The admission-time certificate is only sound if the analytic worst-case
//! variance *dominates* what real bootstraps produce. These tests measure
//! post-bootstrap and pre-key-switch noise on live ciphertexts across two
//! parameter sets and two unrolling factors and assert the model's stdev is
//! an upper bound every time (with real slack — the model charges every key
//! bit and every rounding half-step, so it should not be within a hair).

use matcha_fft::F64Fft;
use matcha_tfhe::noise::{bootstrap_noise, extracted_noise};
use matcha_tfhe::params::ParameterSet;
use matcha_tfhe::{ClientKey, NoiseModel, ServerKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// (label, parameter set, unroll factors worth exercising).
fn cases() -> Vec<(&'static str, ParameterSet, Vec<usize>)> {
    vec![
        ("TEST_FAST", ParameterSet::TEST_FAST, vec![1, 2]),
        ("TEST_MEDIUM", ParameterSet::TEST_MEDIUM, vec![2]),
    ]
}

#[test]
fn analytic_bound_dominates_empirical_bootstrap_noise() {
    for (label, params, unrolls) in cases() {
        for unroll in unrolls {
            let mut rng = StdRng::seed_from_u64(7 + unroll as u64);
            let client = ClientKey::generate(params, &mut rng);
            let engine = F64Fft::new(params.ring_degree);
            let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
            let model = NoiseModel::new(&params, unroll);

            let analytic = model.v_bootstrapped().sqrt();
            let empirical =
                bootstrap_noise(&client, server.kit(), server.engine(), 64, &mut rng).stdev;
            assert!(
                analytic >= empirical,
                "{label} unroll {unroll}: analytic stdev {analytic:.3e} \
                 below empirical {empirical:.3e}"
            );
            // The bound is worst-case, not asymptotically tight, but it
            // should not be vacuous either: within three decades.
            assert!(
                analytic < empirical * 1e3,
                "{label} unroll {unroll}: analytic stdev {analytic:.3e} \
                 is vacuously far above empirical {empirical:.3e}"
            );
        }
    }
}

#[test]
fn analytic_blind_rotate_bound_dominates_extracted_noise() {
    for (label, params, unrolls) in cases() {
        for unroll in unrolls {
            let mut rng = StdRng::seed_from_u64(11 + unroll as u64);
            let client = ClientKey::generate(params, &mut rng);
            let engine = F64Fft::new(params.ring_degree);
            let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
            let model = NoiseModel::new(&params, unroll);

            let analytic = model.v_blind_rotate().sqrt();
            let empirical =
                extracted_noise(&client, server.kit(), server.engine(), 64, &mut rng).stdev;
            assert!(
                analytic >= empirical,
                "{label} unroll {unroll}: blind-rotate stdev bound {analytic:.3e} \
                 below empirical {empirical:.3e}"
            );
        }
    }
}

#[test]
fn variance_ordering_matches_the_pipeline() {
    // Sanity on the model's internal decomposition: each stage adds
    // variance, and a mux output (two blind rotates) is noisier than a
    // binary gate output (one).
    for (_, params, unrolls) in cases() {
        for unroll in unrolls {
            let model = NoiseModel::new(&params, unroll);
            assert!(model.v_blind_rotate() > 0.0);
            assert!(model.v_bootstrapped() > model.v_blind_rotate());
            assert!(model.v_mux_output() > model.v_bootstrapped());
        }
    }
}
