//! Adversarial properties of the wire codec, over every `Codec` impl:
//!
//! * **Roundtrip** — arbitrary-dimension values survive
//!   `to_bytes → from_bytes` exactly.
//! * **Corruption** — flipping any single byte of a valid encoding never
//!   panics: decoding either fails cleanly or yields a value whose
//!   canonical re-encoding is byte-identical to the corrupted input
//!   (the flip landed in a value field, not in structure).
//! * **Truncation** — every strict prefix of a valid encoding fails to
//!   decode (the strict `from_bytes` contract: a message is whole or it
//!   is rejected).

use matcha_math::{Torus32, TorusSampler};
use matcha_tfhe::session::{OutcomeFrame, SessionOutcome};
use matcha_tfhe::{
    CircuitNetlist, Codec, Counterexample, Gate, LweCiphertext, LweSecretKey, ParameterSet,
    RejectReason, RingSecretKey, TrlweCiphertext,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;

/// Decoding any strict prefix fails; decoding the whole buffer succeeds.
fn assert_truncation_rejected<T: Codec>(bytes: &[u8]) {
    for len in 0..bytes.len() {
        assert!(
            T::from_bytes(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes decoded",
            bytes.len()
        );
    }
    assert!(T::from_bytes(bytes).is_ok());
}

/// Flipping one byte either fails cleanly or decodes to a value that
/// re-encodes to exactly the corrupted bytes. Never panics.
fn assert_corruption_contained<T: Codec>(bytes: &[u8], index: usize, flip: u8) {
    let mut corrupted = bytes.to_vec();
    let at = index % corrupted.len();
    corrupted[at] ^= flip;
    if let Ok(v) = T::from_bytes(&corrupted) {
        assert_eq!(
            v.to_bytes(),
            corrupted,
            "corrupt decode must re-encode canonically"
        );
    }
}

fn assert_roundtrip<T: Codec + PartialEq + Debug>(v: &T) {
    assert_eq!(&T::from_bytes(&v.to_bytes()).unwrap(), v);
}

fn pick(rng: &mut StdRng, k: usize) -> usize {
    (rng.gen::<u64>() % k as u64) as usize
}

fn arb_lwe(rng: &mut StdRng, dim: usize) -> LweCiphertext {
    let mut s = TorusSampler::new(rng.clone());
    let a = (0..dim).map(|_| s.uniform()).collect();
    LweCiphertext::from_parts(a, s.uniform())
}

fn arb_trlwe(rng: &mut StdRng, degree: usize) -> TrlweCiphertext {
    let mut s = TorusSampler::new(rng.clone());
    TrlweCiphertext::from_parts(s.uniform_poly(degree), s.uniform_poly(degree))
}

/// A random but well-formed netlist: `nodes` extra nodes over one seed
/// input, every operand drawn from the ids built so far, final node (plus
/// one mid node) marked as outputs.
fn arb_netlist(rng: &mut StdRng, nodes: usize) -> CircuitNetlist {
    let mut net = CircuitNetlist::new();
    let mut ids = vec![net.input()];
    for _ in 0..nodes {
        let id = match rng.gen::<u64>() % 5 {
            0 => net.input(),
            1 => net.constant(rng.gen_bool(0.5)),
            2 => {
                let g = Gate::ALL[pick(rng, Gate::ALL.len())];
                let (a, b) = (ids[pick(rng, ids.len())], ids[pick(rng, ids.len())]);
                net.gate(g, a, b)
            }
            3 => {
                let a = ids[pick(rng, ids.len())];
                net.not(a)
            }
            _ => {
                let (s, a, b) = (
                    ids[pick(rng, ids.len())],
                    ids[pick(rng, ids.len())],
                    ids[pick(rng, ids.len())],
                );
                net.mux(s, a, b)
            }
        };
        ids.push(id);
    }
    net.mark_output(*ids.last().unwrap());
    net.mark_output(ids[ids.len() / 2]);
    net
}

/// An outcome frame carrying the `NotEquivalent` reject payload: a
/// random word partition (widths 1..=12) with matching random bits.
fn arb_notequiv_frame(rng: &mut StdRng) -> OutcomeFrame {
    let words = 1 + pick(rng, 4);
    let mut widths = Vec::new();
    let mut bits = Vec::new();
    for _ in 0..words {
        let w = 1 + pick(rng, 12) as u8;
        widths.push(w);
        for _ in 0..w {
            bits.push(rng.gen_bool(0.5));
        }
    }
    OutcomeFrame {
        id: rng.gen(),
        outcome: SessionOutcome::Rejected(RejectReason::NotEquivalent {
            output: pick(rng, 64),
            counterexample: Counterexample::with_widths(bits, widths),
        }),
    }
}

fn arb_params(rng: &mut StdRng) -> ParameterSet {
    let mut p = ParameterSet::TEST_FAST;
    p.lwe_dimension = 1 + pick(rng, 1024);
    p.ring_degree = 1 << (4 + pick(rng, 7));
    p.lwe_noise_stdev = (1 + pick(rng, 1000)) as f64 * 1e-8;
    p.ring_noise_stdev = (1 + pick(rng, 1000)) as f64 * 1e-9;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lwe_roundtrip_arbitrary_dimension(dim in 1usize..96, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_roundtrip(&arb_lwe(&mut rng, dim));
    }

    #[test]
    fn trlwe_roundtrip_arbitrary_degree(log in 2u32..9, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_roundtrip(&arb_trlwe(&mut rng, 1 << log));
    }

    #[test]
    fn secret_keys_roundtrip(dim in 1usize..96, log in 2u32..9, seed in any::<u64>()) {
        let mut s = TorusSampler::new(StdRng::seed_from_u64(seed));
        assert_roundtrip(&LweSecretKey::generate(dim, &mut s));
        let ring = RingSecretKey::generate(1 << log, &mut s);
        let back = RingSecretKey::from_bytes(&ring.to_bytes()).unwrap();
        prop_assert_eq!(back.as_poly(), ring.as_poly());
    }

    #[test]
    fn params_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_roundtrip(&arb_params(&mut rng));
    }

    #[test]
    fn netlist_roundtrip_arbitrary_structure(nodes in 1usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = arb_netlist(&mut rng, nodes);
        let back = CircuitNetlist::from_bytes(&net.to_bytes()).unwrap();
        prop_assert_eq!(back, net);
    }

    #[test]
    fn notequivalent_reject_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        assert_roundtrip(&arb_notequiv_frame(&mut rng));
    }

    #[test]
    fn corruption_never_panics_and_stays_canonical(
        which in 0usize..6,
        seed in any::<u64>(),
        index in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        match which {
            0 => {
                let dim = 1 + pick(&mut rng, 48);
                assert_corruption_contained::<LweCiphertext>(
                    &arb_lwe(&mut rng, dim).to_bytes(), index, flip);
            }
            1 => {
                let degree = 1 << (2 + pick(&mut rng, 5));
                assert_corruption_contained::<TrlweCiphertext>(
                    &arb_trlwe(&mut rng, degree).to_bytes(), index, flip);
            }
            2 => {
                let mut s = TorusSampler::new(rng.clone());
                let dim = 1 + pick(&mut rng, 48);
                assert_corruption_contained::<LweSecretKey>(
                    &LweSecretKey::generate(dim, &mut s).to_bytes(), index, flip);
            }
            3 => assert_corruption_contained::<ParameterSet>(
                &arb_params(&mut rng).to_bytes(), index, flip),
            4 => assert_corruption_contained::<OutcomeFrame>(
                &arb_notequiv_frame(&mut rng).to_bytes(), index, flip),
            _ => {
                let nodes = 1 + pick(&mut rng, 24);
                assert_corruption_contained::<CircuitNetlist>(
                    &arb_netlist(&mut rng, nodes).to_bytes(), index, flip);
            }
        }
    }

    #[test]
    fn truncation_rejected_at_every_prefix(which in 0usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        match which {
            0 => {
                let dim = 1 + pick(&mut rng, 24);
                assert_truncation_rejected::<LweCiphertext>(&arb_lwe(&mut rng, dim).to_bytes());
            }
            1 => {
                let degree = 1 << (2 + pick(&mut rng, 4));
                assert_truncation_rejected::<TrlweCiphertext>(
                    &arb_trlwe(&mut rng, degree).to_bytes());
            }
            2 => {
                let mut s = TorusSampler::new(rng.clone());
                let dim = 1 + pick(&mut rng, 24);
                assert_truncation_rejected::<LweSecretKey>(
                    &LweSecretKey::generate(dim, &mut s).to_bytes());
            }
            3 => assert_truncation_rejected::<ParameterSet>(
                &arb_params(&mut rng).to_bytes()),
            4 => assert_truncation_rejected::<OutcomeFrame>(
                &arb_notequiv_frame(&mut rng).to_bytes()),
            _ => {
                let nodes = 1 + pick(&mut rng, 12);
                assert_truncation_rejected::<CircuitNetlist>(
                    &arb_netlist(&mut rng, nodes).to_bytes());
            }
        }
    }
}

/// Deterministic spot-check alongside the proptests: every byte position
/// of one small message of each type, all 8 single-bit flips.
#[test]
fn exhaustive_single_bit_flips_on_small_messages() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    let lwe = arb_lwe(&mut rng, 4).to_bytes();
    let trlwe = arb_trlwe(&mut rng, 8).to_bytes();
    let net = arb_netlist(&mut rng, 6).to_bytes();
    let frame = arb_notequiv_frame(&mut rng).to_bytes();
    for bit in 0..8u8 {
        let flip = 1 << bit;
        for i in 0..lwe.len() {
            assert_corruption_contained::<LweCiphertext>(&lwe, i, flip);
        }
        for i in 0..trlwe.len() {
            assert_corruption_contained::<TrlweCiphertext>(&trlwe, i, flip);
        }
        for i in 0..net.len() {
            assert_corruption_contained::<CircuitNetlist>(&net, i, flip);
        }
        for i in 0..frame.len() {
            assert_corruption_contained::<OutcomeFrame>(&frame, i, flip);
        }
    }
}

#[test]
fn trivial_lwe_roundtrips() {
    assert_roundtrip(&LweCiphertext::trivial(Torus32::from_dyadic(1, 3), 16));
}
