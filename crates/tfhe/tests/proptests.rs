//! Property-based tests of the TFHE scheme: homomorphism laws under random
//! keys, gate truth tables on random inputs, and BKU(m) ≡ BKU(1).

use matcha_fft::F64Fft;
use matcha_math::{Torus32, TorusSampler};
use matcha_tfhe::{
    packing, BootstrapKit, ClientKey, Codec, Gate, LweCiphertext, ParameterSet, ServerKey,
    TrlweCiphertext,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Key generation dominates the runtime of these tests, so build one
/// fixture and reuse it for every proptest case.
struct Fixture {
    client: ClientKey,
    server: ServerKey<F64Fft>,
    kit_m1: BootstrapKit<F64Fft>,
    kit_m3: BootstrapKit<F64Fft>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xF1C5);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = ServerKey::with_unrolling(&client, F64Fft::new(256), 2, &mut rng);
        let kit_m1 = BootstrapKit::generate(&client, &engine, 1, &mut rng);
        let kit_m3 = BootstrapKit::generate(&client, &engine, 3, &mut rng);
        Fixture {
            client,
            server,
            kit_m1,
            kit_m3,
        }
    })
}

fn gate_strategy() -> impl Strategy<Value = Gate> {
    prop::sample::select(Gate::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn encryption_roundtrip(message in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = f.client.encrypt_with(message, &mut rng);
        prop_assert_eq!(f.client.decrypt(&c), message);
    }

    #[test]
    fn lwe_addition_is_homomorphic(
        x in -0.2f64..0.2,
        y in -0.2f64..0.2,
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(seed));
        let key = f.client.lwe_key();
        let cx = LweCiphertext::encrypt(Torus32::from_f64(x), key, 1e-8, &mut sampler);
        let cy = LweCiphertext::encrypt(Torus32::from_f64(y), key, 1e-8, &mut sampler);
        let sum = cx + &cy;
        let expected = Torus32::from_f64(x + y);
        prop_assert!(sum.phase(key).signed_diff(expected).abs() < 1e-4);
    }

    #[test]
    fn gates_match_truth_tables_on_random_inputs(
        gate in gate_strategy(),
        a in any::<bool>(),
        b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = f.client.encrypt_with(a, &mut rng);
        let cb = f.client.encrypt_with(b, &mut rng);
        let out = f.server.apply(gate, &ca, &cb);
        prop_assert_eq!(f.client.decrypt(&out), gate.eval(a, b));
    }

    #[test]
    fn bootstrap_is_message_preserving(message in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = f.client.encrypt_with(message, &mut rng);
        let engine = F64Fft::new(256);
        let out = f.kit_m1.bootstrap(&engine, &c, Torus32::from_dyadic(1, 3));
        prop_assert_eq!(f.client.decrypt(&out), message);
    }

    #[test]
    fn unrolled_bootstrap_equals_classic(message in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = f.client.encrypt_with(message, &mut rng);
        let engine = F64Fft::new(256);
        let mu = Torus32::from_dyadic(1, 3);
        let o1 = f.kit_m1.bootstrap(&engine, &c, mu);
        let o3 = f.kit_m3.bootstrap(&engine, &c, mu);
        prop_assert_eq!(f.client.decrypt(&o1), f.client.decrypt(&o3));
    }

    #[test]
    fn de_morgan_holds_homomorphically(
        a in any::<bool>(),
        b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // NOT(a AND b) computed two ways must agree: NAND vs OR of NOTs.
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = f.client.encrypt_with(a, &mut rng);
        let cb = f.client.encrypt_with(b, &mut rng);
        let nand = f.server.nand(&ca, &cb);
        let or_of_nots = f.server.or(&f.server.not(&ca), &f.server.not(&cb));
        prop_assert_eq!(f.client.decrypt(&nand), f.client.decrypt(&or_of_nots));
    }

    #[test]
    fn xor_is_its_own_inverse(
        a in any::<bool>(),
        b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let ca = f.client.encrypt_with(a, &mut rng);
        let cb = f.client.encrypt_with(b, &mut rng);
        let once = f.server.xor(&ca, &cb);
        let twice = f.server.xor(&once, &cb);
        prop_assert_eq!(f.client.decrypt(&twice), a);
    }

    #[test]
    fn lwe_codec_roundtrip_preserves_decryption(message in any::<bool>(), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = f.client.encrypt_with(message, &mut rng);
        let back = LweCiphertext::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back.clone(), c);
        prop_assert_eq!(f.client.decrypt(&back), message);
    }

    #[test]
    fn trlwe_codec_roundtrip(seed in any::<u64>()) {
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(seed));
        let a = sampler.uniform_poly(64);
        let b = sampler.uniform_poly(64);
        let c = TrlweCiphertext::from_parts(a, b);
        prop_assert_eq!(TrlweCiphertext::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn packing_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..32), seed in any::<u64>()) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = F64Fft::new(256);
        let packed = packing::pack_bits(&f.client, &bits, &engine, &mut rng);
        prop_assert_eq!(
            packing::unpack_bits(&f.client, &packed, bits.len(), &engine),
            bits
        );
    }

    #[test]
    fn mux_agrees_with_gate_composition(
        sel in any::<bool>(),
        a in any::<bool>(),
        b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(seed);
        let cs = f.client.encrypt_with(sel, &mut rng);
        let ca = f.client.encrypt_with(a, &mut rng);
        let cb = f.client.encrypt_with(b, &mut rng);
        let mux = f.server.mux(&cs, &ca, &cb);
        prop_assert_eq!(f.client.decrypt(&mux), if sel { a } else { b });
    }
}
