//! The codec's speculative-preallocation cap, pinned with a measuring
//! allocator: a truncated stream whose length prefix claims a huge
//! payload must fail with **no allocation anywhere near the claimed
//! size** — the decoder reserves at most `PREALLOC_BYTES` (16 KiB) up
//! front and only grows past that cap as actual payload bytes arrive.
//! Without the cap, a 9-byte datagram claiming a `MAX_LEN` payload would
//! reserve megabytes before the first read hits EOF.
//!
//! This integration test is its own binary, so the `#[global_allocator]`
//! hook is isolated from the rest of the suite.

use matcha_tfhe::session::{OutcomeFrame, SessionOutcome};
use matcha_tfhe::{
    CircuitNetlist, Codec, Counterexample, LweCiphertext, LweSecretKey, RejectReason,
    TrlweCiphertext,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper tracking the largest single allocation
/// request **per thread**, so the measured windows stay correct when
/// libtest runs this binary's tests concurrently.
struct PeakAlloc;

thread_local! {
    // const-initialized: accessing it inside the allocator cannot itself
    // allocate (no lazy TLS initialization).
    static THREAD_PEAK: Cell<usize> = const { Cell::new(0) };
}

fn record(size: usize) {
    THREAD_PEAK.with(|c| c.set(c.get().max(size)));
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

fn reset_peak() {
    THREAD_PEAK.with(|c| c.set(0));
}

fn peak() -> usize {
    THREAD_PEAK.with(|c| c.get())
}

/// The prealloc cap plus slack for the decoder's fixed-size scratch
/// (error strings, the 1 KiB read chunk). Far below the multi-megabyte
/// reserve an uncapped `Vec::with_capacity(claimed)` would make.
const CEILING: usize = 64 * 1024;

/// 1 << 20 — the codec's `MAX_LEN`, the largest length prefix that
/// passes validation. A claim this size must still not be trusted with
/// a matching preallocation.
const HUGE: u32 = 1 << 20;

/// Builds a message header whose first body field (the element count,
/// at offset 5, after the 4-byte magic and 1-byte version) claims
/// `HUGE` elements — and then ends. Decoding must hit EOF, not OOM.
fn truncated_huge_claim<T: Codec>(sample: &T) -> Vec<u8> {
    let valid = sample.to_bytes();
    let mut bytes = valid[..9].to_vec();
    bytes[5..9].copy_from_slice(&HUGE.to_le_bytes());
    bytes
}

fn assert_bounded_failure<T: Codec>(bytes: Vec<u8>) {
    reset_peak();
    let result = T::from_bytes(&bytes);
    let seen = peak();
    assert!(result.is_err(), "truncated huge claim must not decode");
    assert!(
        seen < CEILING,
        "decoding a truncated stream claiming {HUGE} elements allocated a \
         {seen}-byte block (cap is {CEILING})"
    );
}

#[test]
fn huge_lwe_claim_fails_without_large_allocation() {
    let sample = LweCiphertext::trivial(matcha_math::Torus32::ZERO, 4);
    let bytes = truncated_huge_claim(&sample);
    assert_bounded_failure::<LweCiphertext>(bytes);
}

#[test]
fn huge_trlwe_claim_fails_without_large_allocation() {
    let sample = TrlweCiphertext::zero(16);
    let bytes = truncated_huge_claim(&sample);
    assert_bounded_failure::<TrlweCiphertext>(bytes);
}

#[test]
fn huge_secret_key_claim_fails_without_large_allocation() {
    let sample = LweSecretKey::from_bits(vec![true; 16]);
    let bytes = truncated_huge_claim(&sample);
    assert_bounded_failure::<LweSecretKey>(bytes);
}

#[test]
fn huge_netlist_claim_fails_without_large_allocation() {
    let mut net = CircuitNetlist::new();
    let a = net.input();
    net.mark_output(a);
    let bytes = truncated_huge_claim(&net);
    assert_bounded_failure::<CircuitNetlist>(bytes);
}

#[test]
fn huge_counterexample_claim_fails_without_large_allocation() {
    // The `NotEquivalent` reject payload's first count (the widths list)
    // sits deeper than the generic helper patches: 4 magic + 1 version +
    // 8 id + 1 outcome tag + 1 reason tag + 4 output = offset 19.
    let frame = OutcomeFrame {
        id: 7,
        outcome: SessionOutcome::Rejected(RejectReason::NotEquivalent {
            output: 0,
            counterexample: Counterexample::from_bits(vec![true; 16]),
        }),
    };
    let valid = frame.to_bytes();
    let mut bytes = valid[..23].to_vec();
    bytes[19..23].copy_from_slice(&HUGE.to_le_bytes());
    assert_bounded_failure::<OutcomeFrame>(bytes);
}

#[test]
fn honest_large_payload_still_decodes() {
    // The cap must not break real decoding: a genuinely large ciphertext
    // (bigger than the 16 KiB prealloc cap) roundtrips fine — growth past
    // the cap is paid for by bytes actually received.
    let big = TrlweCiphertext::zero(4096); // 32 KiB of torus words
    let bytes = big.to_bytes();
    reset_peak();
    let back = TrlweCiphertext::from_bytes(&bytes).unwrap();
    assert_eq!(back, big);
}
