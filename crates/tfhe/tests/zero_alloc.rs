//! The headline property of this optimization: a **warmed** scratch
//! bootstrap performs zero heap allocations. Measured directly with a
//! counting global allocator (this integration test is its own binary, so
//! the allocator hook is isolated from the rest of the suite).

use matcha_fft::{ApproxIntFft, F64Fft, FftEngine, Radix4Fft};
use matcha_math::{GadgetDecomposer, Torus32, TorusPolynomial, TorusSampler};
use matcha_tfhe::{
    BootstrapKit, ClientKey, EpScratch, Gate, ParameterSet, RingSecretKey, ServerKey,
    TgswCiphertext, TrlweCiphertext,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper counting every allocation **per thread**, so
/// the measured windows below stay correct when libtest runs the other
/// tests of this binary concurrently (their allocations land on their own
/// threads' counters).
struct CountingAlloc;

thread_local! {
    // const-initialized: accessing it inside the allocator cannot itself
    // allocate (no lazy TLS initialization).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    THREAD_ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the calling thread so far.
fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

/// The fused decompose→twist external product stays allocation-free once
/// its scratch is warmed, on any engine.
fn assert_zero_alloc_external_product<E: FftEngine>(engine: &E, seed: u64) {
    let p = ParameterSet {
        ring_degree: 256,
        ..ParameterSet::TEST_FAST
    };
    let mut sampler = TorusSampler::new(StdRng::seed_from_u64(seed));
    let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
    let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
    let tgsw =
        TgswCiphertext::encrypt_constant(1, &key, &p, engine, &mut sampler).to_spectrum(engine);
    let mu = TorusPolynomial::constant(Torus32::from_f64(0.25), p.ring_degree);
    let mut acc = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, engine, &mut sampler);

    let mut scratch = EpScratch::new(engine, &p);
    // Warm-up: sizes every buffer in the scratch.
    tgsw.external_product_assign(engine, &mut acc, &decomp, &mut scratch);
    tgsw.external_product_assign(engine, &mut acc, &decomp, &mut scratch);

    let before = allocations();
    for _ in 0..4 {
        tgsw.external_product_assign(engine, &mut acc, &decomp, &mut scratch);
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "warmed external product allocated {delta} times");
}

#[test]
fn warmed_external_product_allocates_nothing() {
    assert_zero_alloc_external_product(&F64Fft::new(256), 7);
}

#[test]
fn warmed_external_product_allocates_nothing_radix4() {
    assert_zero_alloc_external_product(&Radix4Fft::new(256), 8);
}

#[test]
fn warmed_external_product_allocates_nothing_with_simd_forced() {
    // The AVX2+FMA kernel leg must stay allocation-free too: the runtime
    // dispatch is a cached atomic load, and the split-complex spectra reuse
    // the same warmed buffers as the scalar leg. Forcing SIMD on is a no-op
    // on CPUs without it (the kernels fall back to scalar), so this test is
    // meaningful exactly where the vector leg actually runs. The override is
    // process-global but both legs are allocation-free with identical buffer
    // sizes, so concurrently running tests in this binary are unaffected; a
    // drop guard restores auto mode even if an assertion fails.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            matcha_fft::force_simd(None);
        }
    }
    let _restore = Restore;
    matcha_fft::force_simd(Some(true));
    assert_zero_alloc_external_product(&F64Fft::new(256), 9);
    assert_zero_alloc_external_product(&Radix4Fft::new(256), 10);
}

#[test]
fn streaming_error_db_allocates_nothing() {
    // `stats::error_db` sits inside noise-measurement loops; it must not
    // allocate a difference vector per call.
    let reference: Vec<f64> = (0..1024).map(|i| (i as f64).sin()).collect();
    let approx: Vec<f64> = reference.iter().map(|x| x + 1e-9).collect();
    let _warm = matcha_math::stats::error_db(&reference, &approx);
    let before = allocations();
    let db = matcha_math::stats::error_db(&reference, &approx);
    let delta = allocations() - before;
    assert_eq!(delta, 0, "error_db allocated {delta} times");
    assert!(
        db < -150.0,
        "1e-9 error on O(1) signal is ≈ -180 dB, got {db}"
    );
}

fn assert_zero_alloc_bootstrap<E>(engine: &E, unroll: usize, seed: u64)
where
    E: matcha_fft::FftEngine,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let kit = BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let mu = Torus32::from_f64(0.125);
    let c = client.encrypt_with(true, &mut rng);
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    let mut scratch = kit.make_scratch(engine);

    // Warm-up: two full bootstraps size every buffer.
    kit.bootstrap_into(engine, &c, mu, &mut out, &mut scratch);
    kit.bootstrap_into(engine, &c, mu, &mut out, &mut scratch);

    let before = allocations();
    kit.bootstrap_into(engine, &c, mu, &mut out, &mut scratch);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warmed bootstrap (unroll={unroll}) allocated {delta} times"
    );
    assert!(client.decrypt(&out), "bootstrap still decrypts");
}

#[test]
fn warmed_bootstrap_allocates_nothing_f64_m1() {
    assert_zero_alloc_bootstrap(&F64Fft::new(256), 1, 71);
}

#[test]
fn warmed_bootstrap_allocates_nothing_f64_m3() {
    assert_zero_alloc_bootstrap(&F64Fft::new(256), 3, 73);
}

#[test]
fn warmed_bootstrap_allocates_nothing_approx_m2() {
    assert_zero_alloc_bootstrap(&ApproxIntFft::new(256, 45), 2, 75);
}

#[test]
fn warmed_heterogeneous_tasks_allocate_nothing() {
    // The pool's worker inner loop is the by-index `GateTask::apply_into`:
    // a warmed scratch must make every task kind — binary gate, free NOT,
    // and the two-bootstrap MUX — allocation-free, operands *borrowed*
    // from the shared value slab rather than cloned into the task, so the
    // heterogeneous interleaved circuit waves keep the zero-alloc
    // property of the homogeneous batch path.
    use matcha_tfhe::{GateTask, ValueSlab};
    let mut rng = StdRng::seed_from_u64(79);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let server = ServerKey::with_unrolling(&client, F64Fft::new(256), 2, &mut rng);
    // Slot 0 holds `true`, slot 1 holds `false`; the tasks reference the
    // operands purely by index.
    let slab = ValueSlab::new(2);
    slab.set(0, client.encrypt_with(true, &mut rng));
    slab.set(1, client.encrypt_with(false, &mut rng));
    let tasks = [
        GateTask::Binary {
            gate: Gate::Nand,
            a: 0,
            b: 1,
        },
        GateTask::Not { a: 0 },
        GateTask::Mux { sel: 0, a: 1, b: 0 },
    ];
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    let mut scratch = server.make_scratch();

    // Warm-up: two passes over every task kind size all buffers (the mux
    // warms the second extraction buffer the binary path never touches).
    for _ in 0..2 {
        for task in &tasks {
            task.apply_into(&server, &slab, &mut out, &mut scratch);
        }
    }

    let before = allocations();
    for task in &tasks {
        task.apply_into(&server, &slab, &mut out, &mut scratch);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "warmed by-index task batch allocated {delta} times"
    );
    // And the results are still right.
    let expected = [true, false, false];
    for (task, want) in tasks.iter().zip(expected) {
        task.apply_into(&server, &slab, &mut out, &mut scratch);
        assert_eq!(client.decrypt(&out), want);
    }
}

#[test]
fn warmed_full_gate_allocates_only_for_outputs() {
    // The whole gate path (linear part + bootstrap + key switch) through
    // `apply_into` is allocation-free once warmed.
    let mut rng = StdRng::seed_from_u64(77);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let server = ServerKey::with_unrolling(&client, F64Fft::new(256), 2, &mut rng);
    let a = client.encrypt_with(true, &mut rng);
    let b = client.encrypt_with(false, &mut rng);
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    let mut scratch = server.make_scratch();

    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);

    let before = allocations();
    server.apply_into(Gate::Nand, &a, &b, &mut out, &mut scratch);
    server.apply_into(Gate::Xor, &a, &b, &mut out, &mut scratch);
    let delta = allocations() - before;
    assert_eq!(delta, 0, "warmed gate evaluation allocated {delta} times");
}
