//! The scratch-based (zero-allocation) pipeline must be **bit-identical**
//! to the allocating seed pipeline at every level: external product,
//! bundle construction, CMux, blind rotation and the full gate bootstrap —
//! plus the regression the issue asks for: a *warmed* scratch still
//! decrypts correctly.

use matcha_fft::{ApproxIntFft, DepthFirstFft, F64Fft, FftEngine, Radix4Fft};
use matcha_math::{GadgetDecomposer, Torus32, TorusPolynomial, TorusSampler};
use matcha_tfhe::cmux::{cmux, cmux_assign};
use matcha_tfhe::{
    BootstrapKit, ClientKey, EpScratch, ParameterSet, RingSecretKey, TgswCiphertext,
    TrlweCiphertext,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MU: f64 = 0.125;

fn params() -> ParameterSet {
    ParameterSet {
        ring_degree: 64,
        ..ParameterSet::TEST_FAST
    }
}

#[test]
fn external_product_assign_is_bit_identical() {
    for seed in [3u64, 17, 99] {
        let p = params();
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(seed));
        let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
        let engine = F64Fft::new(p.ring_degree);
        let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
        let tgsw = TgswCiphertext::encrypt_constant(1, &key, &p, &engine, &mut sampler)
            .to_spectrum(&engine);
        let mu = TorusPolynomial::constant(Torus32::from_f64(0.25), p.ring_degree);
        let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, &engine, &mut sampler);

        let allocating = tgsw.external_product(&engine, &c, &decomp);

        let mut scratch = EpScratch::new(&engine, &p);
        let mut inplace = c.clone();
        tgsw.external_product_assign(&engine, &mut inplace, &decomp, &mut scratch);
        assert_eq!(
            allocating, inplace,
            "seed {seed}: first (cold) call diverged"
        );

        // Warmed scratch: run again from the same input.
        let mut inplace2 = c.clone();
        tgsw.external_product_assign(&engine, &mut inplace2, &decomp, &mut scratch);
        assert_eq!(allocating, inplace2, "seed {seed}: warmed call diverged");
    }
}

/// The fused decompose→twist external product must match the allocating
/// path — which still materializes digit polynomials via
/// `decompose_poly` + `forward_int` — bit for bit, on any engine.
fn check_fused_external_product<E: FftEngine>(engine: &E, seed: u64) {
    let p = params();
    let mut sampler = TorusSampler::new(StdRng::seed_from_u64(seed));
    let key = RingSecretKey::generate(p.ring_degree, &mut sampler);
    let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
    let tgsw =
        TgswCiphertext::encrypt_constant(1, &key, &p, engine, &mut sampler).to_spectrum(engine);
    let mu = TorusPolynomial::constant(Torus32::from_f64(0.25), p.ring_degree);
    let c = TrlweCiphertext::encrypt(&mu, &key, p.ring_noise_stdev, engine, &mut sampler);

    let allocating = tgsw.external_product(engine, &c, &decomp);
    let mut scratch = EpScratch::new(engine, &p);
    let mut inplace = c.clone();
    tgsw.external_product_assign(engine, &mut inplace, &decomp, &mut scratch);
    assert_eq!(allocating, inplace, "cold fused call diverged");

    // Warmed scratch, same input: still bit-identical.
    let mut inplace2 = c.clone();
    tgsw.external_product_assign(engine, &mut inplace2, &decomp, &mut scratch);
    assert_eq!(allocating, inplace2, "warmed fused call diverged");
}

#[test]
fn external_product_assign_matches_on_integer_engine() {
    check_fused_external_product(&ApproxIntFft::new(params().ring_degree, 45), 23);
}

#[test]
fn fused_external_product_matches_on_depth_first_engine() {
    check_fused_external_product(&DepthFirstFft::new(params().ring_degree), 24);
}

#[test]
fn fused_external_product_matches_on_radix4_engine() {
    check_fused_external_product(&Radix4Fft::new(params().ring_degree), 25);
}

#[test]
fn cmux_assign_is_bit_identical() {
    let p = params();
    let mut rng = StdRng::seed_from_u64(29);
    let client = ClientKey::generate(p, &mut rng);
    let engine = F64Fft::new(p.ring_degree);
    let kit = BootstrapKit::generate(&client, &engine, 1, &mut rng);
    let decomp = GadgetDecomposer::new(p.decomp_base_log, p.decomp_levels);
    let mut sampler = TorusSampler::new(StdRng::seed_from_u64(31));
    let key = client.ring_key();
    let m0 = TorusPolynomial::constant(Torus32::from_f64(0.125), p.ring_degree);
    let m1 = TorusPolynomial::constant(Torus32::from_f64(-0.25), p.ring_degree);
    let d0 = TrlweCiphertext::encrypt(&m0, key, p.ring_noise_stdev, &engine, &mut sampler);
    let d1 = TrlweCiphertext::encrypt(&m1, key, p.ring_noise_stdev, &engine, &mut sampler);
    let control =
        TgswCiphertext::encrypt_constant(1, key, &p, &engine, &mut sampler).to_spectrum(&engine);

    let allocating = cmux(&engine, &control, &d0, &d1, &decomp);
    let mut scratch = kit.make_scratch(&engine);
    let mut acc = d0.clone();
    cmux_assign(&engine, &control, &mut acc, &d1, &decomp, &mut scratch);
    assert_eq!(allocating, acc);
}

fn check_bootstrap_equivalence<E: FftEngine>(engine: &E, unroll: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let kit = BootstrapKit::generate(&client, engine, unroll, &mut rng);
    let mu = Torus32::from_f64(MU);
    let mut scratch = kit.make_scratch(engine);
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);

    for (round, message) in [true, false, true, false].into_iter().enumerate() {
        let c = client.encrypt_with(message, &mut rng);
        let allocating = kit.bootstrap(engine, &c, mu);
        // The same scratch is reused across rounds: rounds ≥ 1 run warmed.
        kit.bootstrap_into(engine, &c, mu, &mut out, &mut scratch);
        assert_eq!(
            allocating, out,
            "unroll={unroll} round={round}: scratch bootstrap diverged"
        );
        assert_eq!(
            client.decrypt(&out),
            message,
            "unroll={unroll} round={round}"
        );
    }
}

#[test]
fn warmed_scratch_bootstrap_is_bit_identical_m1() {
    check_bootstrap_equivalence(&F64Fft::new(256), 1, 141);
}

#[test]
fn warmed_scratch_bootstrap_is_bit_identical_m3() {
    check_bootstrap_equivalence(&F64Fft::new(256), 3, 143);
}

#[test]
fn warmed_scratch_bootstrap_is_bit_identical_depth_first() {
    check_bootstrap_equivalence(&DepthFirstFft::new(256), 2, 144);
}

#[test]
fn warmed_scratch_bootstrap_is_bit_identical_approx() {
    check_bootstrap_equivalence(&ApproxIntFft::new(256, 45), 2, 145);
}

/// The issue's regression test: warm a scratch, then keep bootstrapping
/// through it — every output must still decrypt to the right message with
/// healthy noise margins.
#[test]
fn warmed_scratch_keeps_decrypting_correctly() {
    let mut rng = StdRng::seed_from_u64(151);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let mu = Torus32::from_f64(MU);
    let mut scratch = kit.make_scratch(&engine);
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    for i in 0..8 {
        let message = i % 3 == 0;
        let c = client.encrypt_with(message, &mut rng);
        kit.bootstrap_into(&engine, &c, mu, &mut out, &mut scratch);
        assert_eq!(client.decrypt(&out), message, "iteration {i}");
        let noise = client.noise_of(&out, message).abs();
        assert!(noise < 0.03, "iteration {i}: noise {noise}");
    }
}

#[test]
fn lut_bootstrap_into_is_bit_identical() {
    use matcha_tfhe::pbs::Lut;
    let mut rng = StdRng::seed_from_u64(161);
    let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
    let engine = F64Fft::new(256);
    let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
    let eighth = Torus32::from_dyadic(1, 3);
    let lut = Lut::from_fn(256, |k| if k < 128 { eighth } else { -eighth });
    let mut scratch = kit.make_scratch(&engine);
    let mut out = matcha_tfhe::LweCiphertext::trivial(Torus32::ZERO, 1);
    for message in [true, false, true] {
        let c = client.encrypt_with(message, &mut rng);
        let allocating = kit.bootstrap_with_lut(&engine, &c, &lut);
        kit.bootstrap_with_lut_into(&engine, &c, &lut, &mut out, &mut scratch);
        assert_eq!(allocating, out);
    }
}
