//! Empirical noise measurement (paper Table 3).
//!
//! Table 3 compares the noise budget of classic BKU (`m = 2`) against
//! MATCHA's aggressive unrolling: external-product and rounding noise fall
//! like `1/m` (fewer sequential steps), while bootstrapping-key noise grows
//! like `2^m − 1` (more keys summed per bundle) and the approximate FFT adds
//! a floor around −141 dB. This module measures those quantities directly
//! on ciphertexts instead of trusting the analytic formulas.

use crate::bootstrap::BootstrapKit;
use crate::lwe::LweCiphertext;
use crate::secret::ClientKey;
use matcha_fft::FftEngine;
use matcha_math::{stats, Torus32};
use rand::Rng;

/// Summary statistics of measured phase noise (torus units).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NoiseStats {
    /// Mean signed error.
    pub mean: f64,
    /// Standard deviation of the error.
    pub stdev: f64,
    /// Largest absolute error observed.
    pub max_abs: f64,
    /// Number of samples measured.
    pub samples: usize,
}

impl NoiseStats {
    /// Builds the summary from raw signed errors.
    pub fn from_errors(errors: &[f64]) -> Self {
        Self {
            mean: stats::mean(errors),
            stdev: stats::stdev(errors),
            max_abs: stats::max_abs(errors),
            samples: errors.len(),
        }
    }

    /// The stdev expressed in dB relative to the full torus scale
    /// (`20·log10(stdev)`), comparable to Figure 8's axis.
    pub fn stdev_db(&self) -> f64 {
        stats::amplitude_db(self.stdev)
    }
}

/// Measures fresh-encryption noise: the baseline every other measurement
/// is compared against.
pub fn fresh_noise<R: Rng>(client: &ClientKey, trials: usize, rng: &mut R) -> NoiseStats {
    let errors: Vec<f64> = (0..trials)
        .map(|i| {
            let msg = i % 2 == 0;
            let c = client.encrypt_with(msg, rng);
            client.noise_of(&c, msg)
        })
        .collect();
    NoiseStats::from_errors(&errors)
}

/// Measures post-bootstrap noise: encrypt, bootstrap to `±1/8`, compare to
/// the exact plaintext. This is the end-to-end noise that must stay below
/// `1/16` for correct decryption, aggregating EP, rounding, key-switch and
/// (for approximate engines) FFT noise — the rows of Table 3.
pub fn bootstrap_noise<E: FftEngine, R: Rng>(
    client: &ClientKey,
    kit: &BootstrapKit<E>,
    engine: &E,
    trials: usize,
    rng: &mut R,
) -> NoiseStats {
    let mu = Torus32::from_dyadic(1, 3);
    let errors: Vec<f64> = (0..trials)
        .map(|i| {
            let msg = i % 2 == 0;
            let c = client.encrypt_with(msg, rng);
            let out = kit.bootstrap(engine, &c, mu);
            client.noise_of(&out, msg)
        })
        .collect();
    NoiseStats::from_errors(&errors)
}

/// Measures blind-rotation (pre-key-switch) noise in isolation, under the
/// extracted key — the `EP + rounding + BK` part of Table 3 without the
/// key-switch contribution.
pub fn extracted_noise<E: FftEngine, R: Rng>(
    client: &ClientKey,
    kit: &BootstrapKit<E>,
    engine: &E,
    trials: usize,
    rng: &mut R,
) -> NoiseStats {
    let mu = Torus32::from_dyadic(1, 3);
    let extracted_key = client.ring_key().extract_lwe_key();
    let errors: Vec<f64> = (0..trials)
        .map(|i| {
            let msg = i % 2 == 0;
            let c = client.encrypt_with(msg, rng);
            let out = kit.bootstrap_to_extracted(engine, &c, mu);
            let expected = Torus32::from_bool(msg);
            out.phase(&extracted_key).signed_diff(expected)
        })
        .collect();
    NoiseStats::from_errors(&errors)
}

/// Decryption failure probe: runs `trials` NAND-style bootstraps and counts
/// wrong decryptions (the paper's "no decryption failure in 10⁸ gates"
/// experiment, scaled down).
pub fn failure_count<E: FftEngine, R: Rng>(
    client: &ClientKey,
    kit: &BootstrapKit<E>,
    engine: &E,
    trials: usize,
    rng: &mut R,
) -> usize {
    let mu = Torus32::from_dyadic(1, 3);
    let n = client.params().lwe_dimension;
    let eighth = LweCiphertext::trivial(mu, n);
    (0..trials)
        .filter(|&i| {
            let a = i % 2 == 0;
            let b = (i / 2) % 2 == 0;
            let ca = client.encrypt_with(a, rng);
            let cb = client.encrypt_with(b, rng);
            let lin = eighth.clone() - &ca - &cb;
            let out = kit.bootstrap(engine, &lin, mu);
            client.decrypt(&out) == (a && b)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientKey, BootstrapKit<F64Fft>, F64Fft, StdRng) {
        let mut rng = StdRng::seed_from_u64(61);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
        (client, kit, engine, rng)
    }

    #[test]
    fn fresh_noise_matches_parameter() {
        let mut rng = StdRng::seed_from_u64(62);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let stats = fresh_noise(&client, 400, &mut rng);
        let sigma = client.params().lwe_noise_stdev;
        assert!(stats.mean.abs() < 3.0 * sigma, "mean {}", stats.mean);
        assert!(
            stats.stdev > sigma / 3.0 && stats.stdev < sigma * 3.0,
            "stdev {} vs parameter {sigma}",
            stats.stdev
        );
    }

    #[test]
    fn bootstrap_noise_below_margin() {
        let (client, kit, engine, mut rng) = setup();
        let stats = bootstrap_noise(&client, &kit, &engine, 8, &mut rng);
        assert_eq!(stats.samples, 8);
        assert!(stats.max_abs < 1.0 / 16.0, "max noise {}", stats.max_abs);
        assert!(stats.stdev > 0.0);
    }

    #[test]
    fn extracted_noise_is_smaller_than_switched() {
        let (client, kit, engine, mut rng) = setup();
        let pre = extracted_noise(&client, &kit, &engine, 8, &mut rng);
        let post = bootstrap_noise(&client, &kit, &engine, 8, &mut rng);
        // Key switching can only add noise (statistically).
        assert!(
            post.stdev + 1e-9 >= pre.stdev * 0.3,
            "pre {} post {}",
            pre.stdev,
            post.stdev
        );
    }

    #[test]
    fn no_failures_at_test_parameters() {
        let (client, kit, engine, mut rng) = setup();
        assert_eq!(failure_count(&client, &kit, &engine, 16, &mut rng), 0);
    }

    #[test]
    fn stats_db_conversion() {
        let s = NoiseStats {
            mean: 0.0,
            stdev: 0.001,
            max_abs: 0.002,
            samples: 10,
        };
        assert!((s.stdev_db() + 60.0).abs() < 1e-9);
    }
}
