//! A from-scratch implementation of TFHE (Fully Homomorphic Encryption over
//! the Torus) with the accelerator-oriented extensions of the MATCHA paper
//! (DAC 2022): generalized bootstrapping key unrolling and pluggable FFT
//! engines, including the approximate multiplication-less integer FFT.
//!
//! # Architecture
//!
//! * [`params`] — parameter sets (the paper's §5 set, TFHE-library default,
//!   fast test sets).
//! * [`secret`] / [`lwe`] / [`tlwe`] / [`tgsw`] — the ciphertext tower:
//!   scalar LWE samples for gates, ring TRLWE samples for the accumulator,
//!   TGSW samples for the bootstrapping keys, and the external product.
//! * [`bku`] — bootstrapping key unrolling: `2^m − 1` pattern keys per
//!   group of `m` secret bits, bundles built with Lagrange-domain TGSW
//!   scale operations (no extra FFTs).
//! * [`bootstrap`] — Algorithm 1: mod-switch, blind rotation, sample
//!   extraction, key switch.
//! * [`gates`] — the Boolean gate API ([`ServerKey`]).
//! * [`batch`] / [`circuit`] / [`server`] — the serving stack: persistent
//!   heterogeneous gate-batch pool, executable netlists wave-scheduled onto
//!   it, and the multi-client circuit request server.
//! * [`codec`] / [`packing`] / [`session`] — the wire: versioned
//!   serialization for every key and ciphertext, packed TRLWE transport
//!   (2 torus words per bit instead of `n + 1`), and framed sessions
//!   serving whole circuits over any `Read + Write` transport.
//! * [`analyze`] — netlist static analysis: structural lints, the
//!   `simplify` rewriter, analytic worst-case noise certification, and
//!   critical-path cost ranks — run at server admission via
//!   [`AnalysisPolicy`].
//! * [`noise`] / [`profile`] — the measurement harnesses behind the paper's
//!   Table 3 and Figure 1.
//!
//! # Examples
//!
//! ```
//! use matcha_tfhe::{ClientKey, ServerKey, params::ParameterSet};
//! use matcha_fft::F64Fft;
//! use rand::SeedableRng;
//!
//! // TEST_FAST keeps the doctest quick; use ParameterSet::MATCHA for the
//! // paper's 110-bit-security setting.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
//! let engine = F64Fft::new(client.params().ring_degree);
//! let server = ServerKey::new(&client, engine, &mut rng);
//!
//! let a = client.encrypt_with(true, &mut rng);
//! let b = client.encrypt_with(true, &mut rng);
//! let c = server.nand(&a, &b);
//! assert_eq!(client.decrypt(&c), false);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod batch;
pub mod bku;
pub mod bootstrap;
pub mod circuit;
pub mod cmux;
pub mod codec;
pub mod encode;
pub mod faults;
pub mod gates;
pub mod keyswitch;
pub mod lwe;
pub mod noise;
pub mod packing;
pub mod params;
pub mod pbs;
pub mod profile;
pub mod scratch;
pub mod secret;
pub mod server;
pub mod session;
pub mod tgsw;
pub mod tlwe;

pub use analyze::equiv::{Counterexample, EquivBudget, EquivReport, Spec, Verdict};
pub use analyze::{
    analyze, lint, simplify, AnalysisPolicy, CostReport, Lint, LintKind, NetlistReport, NoiseModel,
    NoiseReport, OutputNoise, Severity, SimplifyReport,
};
pub use batch::{DispatchResult, GateBatchPool, GateTask, SlabTask, ValueSlab};
pub use bku::UnrolledBootstrappingKey;
pub use bootstrap::BootstrapKit;
pub use circuit::{CircuitFrontier, CircuitNetlist, CircuitRun, GateOp};
pub use codec::Codec;
pub use encode::BucketEncoding;
pub use faults::{FaultAction, FaultPlan};
pub use gates::{Gate, ServerKey};
pub use keyswitch::KeySwitchKey;
pub use lwe::LweCiphertext;
pub use params::ParameterSet;
pub use pbs::Lut;
pub use scratch::{BootstrapScratch, EpScratch};
pub use secret::{ClientKey, LweSecretKey, RingSecretKey};
pub use server::{
    CircuitClient, CircuitOutcome, CircuitServer, ClientTally, PendingCircuit, RejectReason,
    RewritePass, SchedulerStats, ServerConfig,
};
pub use session::{SessionClient, SessionOutcome, SessionRun, SessionServer};
pub use tgsw::{TgswCiphertext, TgswSpectrum};
pub use tlwe::{TrlweCiphertext, TrlweSpectrum};
