//! Packed TRLWE transport: one ring ciphertext carries up to `N` Booleans.
//!
//! A gate-level LWE sample costs `(n+1)·4` bytes per bit; packing the bits
//! into the coefficients of a single TRLWE sample amortizes that to
//! `2·4` bytes per bit (512× less upload at the paper's parameters for a
//! full payload). The evaluator unpacks individual bits with
//! [`TrlweCiphertext::sample_extract_at`] and a key switch, after which
//! they are ordinary gate inputs.

use crate::keyswitch::KeySwitchKey;
use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::secret::ClientKey;
use crate::tlwe::TrlweCiphertext;
use matcha_fft::FftEngine;
use matcha_math::{Torus32, TorusPolynomial, TorusSampler};
use rand::Rng;

/// Packs up to `N` Booleans (plaintexts `±1/8`) into one TRLWE sample.
///
/// # Panics
///
/// Panics if `bits` is empty or longer than the ring degree.
///
/// # Examples
///
/// ```
/// use matcha_tfhe::{packing, ClientKey, params::ParameterSet};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
/// let engine = F64Fft::new(256);
/// let packed = packing::pack_bits(&client, &[true, false, true], &engine, &mut rng);
/// assert_eq!(packing::unpack_bits(&client, &packed, 3, &engine), vec![true, false, true]);
/// ```
pub fn pack_bits<E: FftEngine, R: Rng>(
    client: &ClientKey,
    bits: &[bool],
    engine: &E,
    rng: &mut R,
) -> TrlweCiphertext {
    let params = client.params();
    let n = params.ring_degree;
    assert!(!bits.is_empty(), "empty payload");
    assert!(
        bits.len() <= n,
        "payload of {} bits exceeds ring degree {n}",
        bits.len()
    );
    let mut mu = TorusPolynomial::zero(n);
    for (i, &b) in bits.iter().enumerate() {
        mu.coeffs_mut()[i] = Torus32::from_bool(b);
    }
    let mut sampler = TorusSampler::new(rng);
    TrlweCiphertext::encrypt(
        &mu,
        client.ring_key(),
        params.ring_noise_stdev,
        engine,
        &mut sampler,
    )
}

/// Client-side unpack (decrypts the packed sample directly).
pub fn unpack_bits<E: FftEngine>(
    client: &ClientKey,
    packed: &TrlweCiphertext,
    count: usize,
    engine: &E,
) -> Vec<bool> {
    let phase = packed.phase(client.ring_key(), engine);
    phase.coeffs()[..count]
        .iter()
        .map(|c| c.to_bool())
        .collect()
}

/// Server-side unpack: extracts bit `index` as a gate-level LWE sample
/// (extracted-key sample plus one key switch).
///
/// # Panics
///
/// Panics if `index` is out of range, if the packed sample's ring degree
/// does not match `params`, or if the key-switch key does not switch from
/// that ring degree — each checked here, at the API boundary, so a
/// mismatched wire submission fails with a message naming the mismatch
/// instead of indexing the wrong coefficient or tripping an assertion
/// deep inside [`KeySwitchKey::switch`].
pub fn extract_bit(
    packed: &TrlweCiphertext,
    index: usize,
    ksk: &KeySwitchKey,
    params: &ParameterSet,
) -> LweCiphertext {
    assert_eq!(
        packed.ring_degree(),
        params.ring_degree,
        "packed sample ring degree {} does not match parameter ring degree {}",
        packed.ring_degree(),
        params.ring_degree
    );
    assert_eq!(
        ksk.from_dimension(),
        params.ring_degree,
        "key-switch key switches from dimension {}, not ring degree {}",
        ksk.from_dimension(),
        params.ring_degree
    );
    assert!(index < params.ring_degree, "index {index} out of range");
    let extracted = packed.sample_extract_at(index);
    ksk.switch(&extracted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapKit;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ClientKey, F64Fft, BootstrapKit<F64Fft>, StdRng) {
        let mut rng = StdRng::seed_from_u64(41);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(256);
        let kit = BootstrapKit::generate(&client, &engine, 2, &mut rng);
        (client, engine, kit, rng)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (client, engine, _, mut rng) = setup();
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let packed = pack_bits(&client, &bits, &engine, &mut rng);
        assert_eq!(unpack_bits(&client, &packed, 64, &engine), bits);
    }

    #[test]
    fn extracted_bits_decrypt_under_gate_key() {
        let (client, engine, kit, mut rng) = setup();
        let bits = [true, false, false, true, true];
        let packed = pack_bits(&client, &bits, &engine, &mut rng);
        for (i, &expected) in bits.iter().enumerate() {
            let lwe = extract_bit(&packed, i, kit.key_switch_key(), client.params());
            assert_eq!(client.decrypt(&lwe), expected, "bit {i}");
        }
    }

    #[test]
    fn extracted_bits_feed_gates() {
        // End to end: pack, extract two bits, NAND them homomorphically.
        let (client, engine, kit, mut rng) = setup();
        let packed = pack_bits(&client, &[true, true], &engine, &mut rng);
        let a = extract_bit(&packed, 0, kit.key_switch_key(), client.params());
        let b = extract_bit(&packed, 1, kit.key_switch_key(), client.params());
        let n = client.params().lwe_dimension;
        let lin = LweCiphertext::trivial(Torus32::from_dyadic(1, 3), n) - &a - &b;
        let out = kit.bootstrap(&engine, &lin, Torus32::from_dyadic(1, 3));
        assert!(!client.decrypt(&out), "NAND(true, true) = false");
    }

    #[test]
    fn expansion_ratio_is_large() {
        // One packed sample: 2N torus words; N LWE samples: N·(n+1) words.
        let p = ParameterSet::MATCHA;
        let packed_words = 2 * p.ring_degree;
        let lwe_words = p.ring_degree * (p.lwe_dimension + 1);
        assert!(lwe_words / packed_words >= 250, "packing should save ≥250×");
    }

    #[test]
    #[should_panic(expected = "exceeds ring degree")]
    fn oversized_payload_rejected() {
        let (client, engine, _, mut rng) = setup();
        let bits = vec![true; 257];
        let _ = pack_bits(&client, &bits, &engine, &mut rng);
    }

    #[test]
    #[should_panic(expected = "does not match parameter ring degree")]
    fn mismatched_packed_degree_rejected() {
        let (client, _, kit, _) = setup();
        // A sample from some other parameter set: half the ring degree.
        let packed = TrlweCiphertext::zero(client.params().ring_degree / 2);
        let _ = extract_bit(&packed, 0, kit.key_switch_key(), client.params());
    }

    #[test]
    #[should_panic(expected = "key-switch key switches from dimension")]
    fn mismatched_keyswitch_key_rejected() {
        let (client, _, kit, _) = setup();
        // Params claiming a smaller ring: the packed sample matches them,
        // but the key-switch key was built for the real ring degree.
        let mut params = *client.params();
        params.ring_degree /= 2;
        let packed = TrlweCiphertext::zero(params.ring_degree);
        let _ = extract_bit(&packed, 0, kit.key_switch_key(), &params);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let (client, engine, kit, mut rng) = setup();
        let packed = pack_bits(&client, &[true], &engine, &mut rng);
        let n = client.params().ring_degree;
        let _ = extract_bit(&packed, n, kit.key_switch_key(), client.params());
    }
}
