//! Gate-level LWE (TLWE scalar) ciphertexts.
//!
//! An LWE sample is `(a, b) ∈ T^n × T` with `b = ⟨a, s⟩ + μ + e` (paper §2).
//! Boolean gates operate on these samples with cheap linear algebra; the
//! expensive part — bootstrapping — lives in [`crate::bootstrap`].

use crate::secret::LweSecretKey;
use matcha_math::{Torus32, TorusSampler};
use rand::Rng;
use std::ops::{Add, Neg, Sub};

/// An LWE ciphertext `(a, b)`.
///
/// Linear operations (`+`, `-`, negation, integer scaling) act on the
/// underlying torus elements and correspondingly on the plaintexts; they add
/// their operands' noise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LweCiphertext {
    a: Vec<Torus32>,
    b: Torus32,
}

impl LweCiphertext {
    /// Encrypts `mu` under `key` with Gaussian noise of stdev `noise`.
    pub fn encrypt<R: Rng>(
        mu: Torus32,
        key: &LweSecretKey,
        noise: f64,
        sampler: &mut TorusSampler<R>,
    ) -> Self {
        let a: Vec<Torus32> = (0..key.dimension()).map(|_| sampler.uniform()).collect();
        let b = key.dot(&a) + sampler.gaussian_around(mu, noise);
        Self { a, b }
    }

    /// The noiseless, keyless encryption of `mu`: `(0, μ)`.
    ///
    /// Trivial samples encode the public constants of gate linear parts
    /// (e.g. the `(0, 1/8)` of a NAND gate).
    pub fn trivial(mu: Torus32, dimension: usize) -> Self {
        Self {
            a: vec![Torus32::ZERO; dimension],
            b: mu,
        }
    }

    /// Builds a ciphertext from raw parts (used by sample extraction and
    /// key switching).
    pub fn from_parts(a: Vec<Torus32>, b: Torus32) -> Self {
        Self { a, b }
    }

    /// Mask dimension `n`.
    pub fn dimension(&self) -> usize {
        self.a.len()
    }

    /// The mask `a`.
    pub fn mask(&self) -> &[Torus32] {
        &self.a
    }

    /// The body `b`.
    pub fn body(&self) -> Torus32 {
        self.b
    }

    /// Mask vector and body mutably (for the in-place pipelines; the mask's
    /// length may be changed by the caller).
    pub fn parts_mut(&mut self) -> (&mut Vec<Torus32>, &mut Torus32) {
        (&mut self.a, &mut self.b)
    }

    /// Resets `self` to the trivial sample `(0, μ)` of dimension
    /// `dimension`, reusing the mask allocation when possible.
    pub fn assign_trivial(&mut self, mu: Torus32, dimension: usize) {
        self.a.clear();
        self.a.resize(dimension, Torus32::ZERO);
        self.b = mu;
    }

    /// Copies `other` into `self` without allocating once capacity exists.
    pub fn copy_from(&mut self, other: &Self) {
        self.a.clear();
        self.a.extend_from_slice(&other.a);
        self.b = other.b;
    }

    /// Adds `delta` to the body (plaintext offset of gate linear parts).
    pub fn add_body(&mut self, delta: Torus32) {
        self.b += delta;
    }

    /// In-place version of [`LweCiphertext::scale`].
    pub fn scale_assign(&mut self, k: i32) {
        for x in &mut self.a {
            *x = *x * k;
        }
        self.b = self.b * k;
    }

    /// The phase `b − ⟨a, s⟩ = μ + e`.
    pub fn phase(&self, key: &LweSecretKey) -> Torus32 {
        self.b - key.dot(&self.a)
    }

    /// Decrypts to the closest gate plaintext (`±1/8 → bool`).
    pub fn decrypt_bool(&self, key: &LweSecretKey) -> bool {
        self.phase(key).to_bool()
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions differ. (A real assert, not a debug
    /// one: a mismatched operand in release builds would otherwise
    /// silently truncate the zip and corrupt the sample — and the batch
    /// pool's panic-isolation contract relies on misuse panicking
    /// identically in every build mode.)
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(
            self.a.len(),
            other.a.len(),
            "LWE dimension mismatch in add_assign"
        );
        for (x, &y) in self.a.iter_mut().zip(other.a.iter()) {
            *x += y;
        }
        self.b += other.b;
    }

    /// In-place `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the mask dimensions differ (see
    /// [`LweCiphertext::add_assign`]).
    pub fn sub_assign(&mut self, other: &Self) {
        assert_eq!(
            self.a.len(),
            other.a.len(),
            "LWE dimension mismatch in sub_assign"
        );
        for (x, &y) in self.a.iter_mut().zip(other.a.iter()) {
            *x -= y;
        }
        self.b -= other.b;
    }

    /// In-place negation (the free homomorphic NOT).
    pub fn neg_assign(&mut self) {
        for x in &mut self.a {
            *x = -*x;
        }
        self.b = -self.b;
    }

    /// Scales the ciphertext (and its plaintext) by a small integer.
    pub fn scale(&self, k: i32) -> Self {
        Self {
            a: self.a.iter().map(|&x| x * k).collect(),
            b: self.b * k,
        }
    }
}

impl Default for LweCiphertext {
    /// The degenerate dimension-0 sample; a placeholder for buffer swaps.
    fn default() -> Self {
        Self {
            a: Vec::new(),
            b: Torus32::ZERO,
        }
    }
}

impl Add<&LweCiphertext> for LweCiphertext {
    type Output = LweCiphertext;
    fn add(mut self, rhs: &LweCiphertext) -> LweCiphertext {
        self.add_assign(rhs);
        self
    }
}

impl Sub<&LweCiphertext> for LweCiphertext {
    type Output = LweCiphertext;
    fn sub(mut self, rhs: &LweCiphertext) -> LweCiphertext {
        self.sub_assign(rhs);
        self
    }
}

impl Neg for LweCiphertext {
    type Output = LweCiphertext;
    fn neg(mut self) -> LweCiphertext {
        self.neg_assign();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (LweSecretKey, TorusSampler<StdRng>) {
        let mut sampler = TorusSampler::new(StdRng::seed_from_u64(11));
        let key = LweSecretKey::generate(32, &mut sampler);
        (key, sampler)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (key, mut sampler) = setup();
        for &m in &[0.125f64, -0.125, 0.25, 0.0] {
            let mu = Torus32::from_f64(m);
            let c = LweCiphertext::encrypt(mu, &key, 1e-8, &mut sampler);
            assert!(c.phase(&key).signed_diff(mu).abs() < 1e-5);
        }
    }

    #[test]
    fn homomorphic_addition() {
        let (key, mut sampler) = setup();
        let c1 = LweCiphertext::encrypt(Torus32::from_f64(0.125), &key, 1e-8, &mut sampler);
        let c2 = LweCiphertext::encrypt(Torus32::from_f64(0.25), &key, 1e-8, &mut sampler);
        let sum = c1 + &c2;
        assert!(sum.phase(&key).signed_diff(Torus32::from_f64(0.375)).abs() < 1e-5);
    }

    #[test]
    fn homomorphic_subtraction_and_negation() {
        let (key, mut sampler) = setup();
        let c1 = LweCiphertext::encrypt(Torus32::from_f64(0.125), &key, 1e-8, &mut sampler);
        let c2 = LweCiphertext::encrypt(Torus32::from_f64(0.25), &key, 1e-8, &mut sampler);
        let diff = c1.clone() - &c2;
        assert!(
            diff.phase(&key)
                .signed_diff(Torus32::from_f64(-0.125))
                .abs()
                < 1e-5
        );
        let neg = -c1;
        assert!(neg.phase(&key).signed_diff(Torus32::from_f64(-0.125)).abs() < 1e-5);
    }

    #[test]
    fn trivial_sample_has_exact_phase() {
        let (key, _) = setup();
        let t = LweCiphertext::trivial(Torus32::from_f64(0.125), 32);
        assert_eq!(t.phase(&key), Torus32::from_f64(0.125));
    }

    #[test]
    fn scaling_scales_plaintext() {
        let (key, mut sampler) = setup();
        let c = LweCiphertext::encrypt(Torus32::from_f64(0.125), &key, 1e-9, &mut sampler);
        let scaled = c.scale(2);
        assert!(
            scaled
                .phase(&key)
                .signed_diff(Torus32::from_f64(0.25))
                .abs()
                < 1e-5
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch in add_assign")]
    fn add_assign_rejects_mismatched_dimensions() {
        let mut c = LweCiphertext::trivial(Torus32::ZERO, 8);
        let other = LweCiphertext::trivial(Torus32::ZERO, 4);
        c.add_assign(&other);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch in sub_assign")]
    fn sub_assign_rejects_mismatched_dimensions() {
        let mut c = LweCiphertext::trivial(Torus32::ZERO, 8);
        let other = LweCiphertext::trivial(Torus32::ZERO, 4);
        c.sub_assign(&other);
    }

    #[test]
    fn neg_assign_matches_neg() {
        let (key, mut sampler) = setup();
        let c = LweCiphertext::encrypt(Torus32::from_f64(0.125), &key, 1e-8, &mut sampler);
        let mut inplace = c.clone();
        inplace.neg_assign();
        assert_eq!(inplace, -c);
    }

    #[test]
    fn fresh_sample_mask_is_random() {
        let (key, mut sampler) = setup();
        let c1 = LweCiphertext::encrypt(Torus32::ZERO, &key, 1e-8, &mut sampler);
        let c2 = LweCiphertext::encrypt(Torus32::ZERO, &key, 1e-8, &mut sampler);
        assert_ne!(c1.mask(), c2.mask());
    }
}
