//! Executable gate netlists and the wave-front circuit executor.
//!
//! `accel::schedule` models circuits as dependency DAGs of equal-cost
//! gates to *predict* makespan on parallel pipelines; this module is the
//! executable counterpart. A [`CircuitNetlist`] carries real operands —
//! encrypted inputs, trivial constants, all ten binary [`Gate`]s, the free
//! `NOT` and the two-bootstrap `MUX` — with dependency edges validated at
//! construction. [`CircuitNetlist::execute`] schedules it level by level:
//! every wave of ready gates is dispatched as one mixed-gate batch onto a
//! persistent [`GateBatchPool`], the software analogue of MATCHA's
//! scheduler keeping its eight resident bootstrapping pipelines busy on
//! dependent gate workloads (the throughput story of Figure 10).
//!
//! [`CircuitNetlist::schedule_skeleton`] exports the dependency structure
//! of the bootstrapped work back to the analytical model, so predicted
//! makespan/utilization can be cross-checked against measured wall-clock.

use crate::batch::{GateBatchPool, GateTask, SlabTask, ValueSlab};
use crate::gates::{Gate, ServerKey};
use crate::lwe::LweCiphertext;
use matcha_fft::FftEngine;
use std::sync::Arc;
use std::time::Instant;

/// One node of an executable netlist. Operand fields are indices of
/// earlier nodes (the netlist is topologically ordered by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// The circuit's `slot`-th encrypted input, supplied at execution time.
    Input(usize),
    /// A trivial (noiseless, unkeyed) Boolean constant.
    Constant(bool),
    /// A two-input bootstrapped gate.
    Binary(Gate, usize, usize),
    /// Free negation — no bootstrap.
    Not(usize),
    /// `sel ? a : b` — two bootstraps + one key switch.
    Mux {
        /// Selector node.
        sel: usize,
        /// Node taken when the selector is true.
        a: usize,
        /// Node taken when the selector is false.
        b: usize,
    },
}

impl GateOp {
    /// The operand node indices this op consumes (`None` entries pad the
    /// fixed-width array; sources consume nothing).
    pub fn operands(&self) -> [Option<usize>; 3] {
        match *self {
            GateOp::Input(_) | GateOp::Constant(_) => [None, None, None],
            GateOp::Binary(_, a, b) => [Some(a), Some(b), None],
            GateOp::Not(a) => [Some(a), None, None],
            GateOp::Mux { sel, a, b } => [Some(sel), Some(a), Some(b)],
        }
    }

    /// Gate bootstraps this op costs (binary gates one, muxes two,
    /// sources and free `NOT`s none).
    pub fn bootstraps(&self) -> usize {
        match self {
            GateOp::Input(_) | GateOp::Constant(_) | GateOp::Not(_) => 0,
            GateOp::Binary(..) => 1,
            GateOp::Mux { .. } => 2,
        }
    }
}

/// An executable netlist: a DAG of [`GateOp`]s with designated outputs.
///
/// Built incrementally — every constructor returns the new node's index,
/// and operands must reference earlier nodes, so the op list is always a
/// valid topological order. Execution is either eager sequential
/// ([`CircuitNetlist::execute_sequential`]) or wave-scheduled onto a
/// [`GateBatchPool`] ([`CircuitNetlist::execute`]); both produce
/// decrypt-identical outputs (bootstrapping is deterministic given the
/// keys, so they are in fact bit-identical).
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::circuit::CircuitNetlist;
/// use matcha_tfhe::{batch::GateBatchPool, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
///
/// // sum = a XOR b, carry = a AND b (a half adder).
/// let mut net = CircuitNetlist::new();
/// let a = net.input();
/// let b = net.input();
/// let sum = net.gate(Gate::Xor, a, b);
/// let carry = net.gate(Gate::And, a, b);
/// net.mark_output(sum);
/// net.mark_output(carry);
///
/// let pool = GateBatchPool::new(server, 8);
/// let inputs = vec![client.encrypt(true), client.encrypt(true)];
/// let run = net.execute(&pool, &inputs);
/// assert!(!client.decrypt(&run.outputs[0])); // 1 ^ 1
/// assert!(client.decrypt(&run.outputs[1])); // 1 & 1
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitNetlist {
    ops: Vec<GateOp>,
    /// Wave level per node: 0 for sources, `1 + max(operand levels)` else.
    level: Vec<usize>,
    inputs: usize,
    outputs: Vec<usize>,
}

impl CircuitNetlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles a netlist from raw parts — the wire decoder's entry
    /// point, returning `Err` (instead of the builder's panics) so a
    /// malformed remote submission cannot take down a server thread.
    ///
    /// Validity requires the builder's canonical form: every operand
    /// references an earlier node, input slots are numbered `0, 1, 2, …`
    /// in node order (each exactly once), and every output marks an
    /// existing node.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn from_parts(ops: Vec<GateOp>, outputs: Vec<usize>) -> Result<Self, String> {
        let mut next_slot = 0usize;
        for (id, op) in ops.iter().enumerate() {
            for operand in op.operands().into_iter().flatten() {
                if operand >= id {
                    return Err(format!(
                        "node {id}: operand {operand} references a not-yet-defined node"
                    ));
                }
            }
            if let GateOp::Input(slot) = *op {
                if slot != next_slot {
                    return Err(format!(
                        "node {id}: input slot {slot}, expected {next_slot} \
                         (slots are numbered in node order)"
                    ));
                }
                next_slot += 1;
            }
        }
        for &o in &outputs {
            if o >= ops.len() {
                return Err(format!("output {o} not in a {}-node netlist", ops.len()));
            }
        }
        // Everything is pre-validated, so the builder's panics are
        // unreachable; replaying through it keeps the level bookkeeping
        // in one place.
        let mut net = Self::new();
        for op in ops {
            match op {
                GateOp::Input(_) => {
                    net.input();
                }
                GateOp::Constant(v) => {
                    net.constant(v);
                }
                GateOp::Binary(g, a, b) => {
                    net.gate(g, a, b);
                }
                GateOp::Not(a) => {
                    net.not(a);
                }
                GateOp::Mux { sel, a, b } => {
                    net.mux(sel, a, b);
                }
            }
        }
        for o in outputs {
            net.mark_output(o);
        }
        Ok(net)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of input slots ([`CircuitNetlist::execute`] expects exactly
    /// this many ciphertexts).
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// The designated output nodes, in marking order.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// The ops, in topological order.
    pub fn ops(&self) -> &[GateOp] {
        &self.ops
    }

    /// Per-node wave levels, parallel to [`CircuitNetlist::ops`]: 0 for
    /// sources (and free `NOT`s of sources), `1 + max(operand levels)`
    /// otherwise. The structural signal `analyze::equiv` derives its
    /// static BDD variable order from.
    pub fn levels(&self) -> &[usize] {
        &self.level
    }

    /// Total gate bootstraps in the circuit (binary gates count one, muxes
    /// two, `NOT`/sources none).
    pub fn bootstraps(&self) -> usize {
        self.ops.iter().map(GateOp::bootstraps).sum()
    }

    /// Number of scheduled waves (the dependency depth over *bootstrapped*
    /// ops — `NOT` is free, resolved inline between waves, and adds no
    /// depth, matching [`CircuitNetlist::schedule_skeleton`]'s model).
    pub fn depth(&self) -> usize {
        self.level.iter().copied().max().unwrap_or(0)
    }

    fn push(&mut self, op: GateOp) -> usize {
        let id = self.ops.len();
        let mut level = 0;
        for operand in op.operands().into_iter().flatten() {
            assert!(
                operand < id,
                "operands must reference earlier nodes ({operand} >= {id})"
            );
            level = level.max(self.level[operand] + 1);
        }
        // A free negation is transparent: its value is available the
        // moment its operand is, so it inherits the operand's level
        // instead of starting a wave of its own.
        if let GateOp::Not(a) = op {
            level = self.level[a];
        }
        self.ops.push(op);
        self.level.push(level);
        id
    }

    /// Adds an encrypted-input node and returns its index. Inputs are
    /// numbered in creation order; execution takes them positionally.
    pub fn input(&mut self) -> usize {
        let slot = self.inputs;
        self.inputs += 1;
        self.push(GateOp::Input(slot))
    }

    /// Adds a trivial constant node.
    pub fn constant(&mut self, value: bool) -> usize {
        self.push(GateOp::Constant(value))
    }

    /// Adds a two-input bootstrapped gate over earlier nodes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if an operand references a not-yet-added node.
    pub fn gate(&mut self, gate: Gate, a: usize, b: usize) -> usize {
        self.push(GateOp::Binary(gate, a, b))
    }

    /// Adds a free negation of earlier node `a`.
    ///
    /// # Panics
    ///
    /// Panics if the operand references a not-yet-added node.
    pub fn not(&mut self, a: usize) -> usize {
        self.push(GateOp::Not(a))
    }

    /// Adds a multiplexer `sel ? a : b` over earlier nodes.
    ///
    /// # Panics
    ///
    /// Panics if an operand references a not-yet-added node.
    pub fn mux(&mut self, sel: usize, a: usize, b: usize) -> usize {
        self.push(GateOp::Mux { sel, a, b })
    }

    /// Marks node `id` as a circuit output. Outputs are returned in
    /// marking order; a node may be marked more than once.
    ///
    /// # Panics
    ///
    /// Panics if `id` references a not-yet-added node.
    pub fn mark_output(&mut self, id: usize) {
        assert!(id < self.ops.len(), "output {id} not in netlist");
        self.outputs.push(id);
    }

    /// Groups the *bootstrapped* ops (binary gates and muxes) into
    /// wave-front levels: wave `r` holds every op whose operands are all
    /// available after wave `r − 1`. Each wave is independent work — one
    /// mixed-gate pool batch. Free `NOT`s are not waves: the executor
    /// resolves them inline the moment their operand's wave completes.
    pub fn waves(&self) -> Vec<Vec<usize>> {
        let depth = self.depth();
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for (id, &level) in self.level.iter().enumerate() {
            if level > 0 && !matches!(self.ops[id], GateOp::Not(_)) {
                waves[level - 1].push(id);
            }
        }
        waves
    }

    /// The dependency skeleton of the *bootstrapped* work, for
    /// [`accel::schedule`]-style analytical models: entry `i` lists the
    /// unit indices unit `i` consumes. Binary gates are one unit; a mux is
    /// two chained units (it occupies a worker for two back-to-back
    /// bootstraps); `NOT` is free and transparent (consumers depend
    /// directly on its operand's unit); inputs and constants cost nothing.
    ///
    /// [`accel::schedule`]: https://docs.rs/matcha-accel
    pub fn schedule_skeleton(&self) -> Vec<Vec<usize>> {
        let mut units: Vec<Vec<usize>> = Vec::new();
        // The unit whose completion makes each node's value available
        // (None for sources and nots-of-sources: available at time 0).
        let mut unit_of: Vec<Option<usize>> = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let unit = match *op {
                GateOp::Input(_) | GateOp::Constant(_) => None,
                GateOp::Not(a) => unit_of[a],
                GateOp::Binary(_, a, b) => {
                    let deps: Vec<usize> = [unit_of[a], unit_of[b]].into_iter().flatten().collect();
                    units.push(deps);
                    Some(units.len() - 1)
                }
                GateOp::Mux { sel, a, b } => {
                    // First bootstrap AND(sel, a); the second, AND(¬sel, b),
                    // runs after it on the same worker.
                    let first: Vec<usize> =
                        [unit_of[sel], unit_of[a]].into_iter().flatten().collect();
                    units.push(first);
                    let u1 = units.len() - 1;
                    let second: Vec<usize> = [Some(u1), unit_of[sel], unit_of[b]]
                        .into_iter()
                        .flatten()
                        .collect();
                    units.push(second);
                    Some(units.len() - 1)
                }
            };
            unit_of.push(unit);
        }
        units
    }

    fn resolve_sources<E: FftEngine>(
        &self,
        server: &ServerKey<E>,
        inputs: &[LweCiphertext],
        values: &mut [Option<LweCiphertext>],
    ) {
        assert_eq!(
            inputs.len(),
            self.inputs,
            "circuit expects {} inputs, got {}",
            self.inputs,
            inputs.len()
        );
        for (id, op) in self.ops.iter().enumerate() {
            match op {
                GateOp::Input(slot) => values[id] = Some(inputs[*slot].clone()),
                GateOp::Constant(v) => values[id] = Some(server.trivial(*v)),
                _ => {}
            }
        }
    }

    fn value(values: &[Option<LweCiphertext>], id: usize) -> LweCiphertext {
        values[id]
            .clone()
            .expect("operand computed in earlier wave")
    }

    /// Executes the circuit wave-by-wave on a persistent pool: each ready
    /// frontier of bootstrapped gates becomes one heterogeneous by-index
    /// [`GateTask`] batch over the run's [`ValueSlab`], so independent
    /// gates of a level run in parallel on the warmed workers with **no
    /// per-wave operand clones**. Free `NOT`s are resolved inline between
    /// waves (they never cost a dispatch or a wave barrier). This is the
    /// solo-circuit driver over [`CircuitFrontier`]; the multi-circuit
    /// interleaving driver is [`CircuitServer`](crate::server::CircuitServer).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`, or if a task panics
    /// in a worker (mismatched input dimensions; the pool survives).
    pub fn execute<E>(&self, pool: &GateBatchPool<E>, inputs: &[LweCiphertext]) -> CircuitRun
    where
        E: FftEngine + Send + Sync + 'static,
    {
        // The netlist clone is O(nodes) of plain indices — noise next to
        // the O(nodes) gate bootstraps the run performs; it buys the
        // frontier the same owned form the interleaving server uses.
        let mut frontier = CircuitFrontier::new(Arc::new(self.clone()), pool.server(), inputs);
        let mut batch: Vec<SlabTask> = Vec::new();
        while !frontier.is_done() {
            batch.clear();
            frontier.take_ready(&mut batch);
            debug_assert!(!batch.is_empty(), "unfinished circuit must have ready work");
            let dispatch = pool.run_tasks(&batch);
            if let Some((index, msg)) = dispatch.failures.first() {
                panic!("pool task {index} panicked in a worker: {msg}");
            }
            for st in &batch {
                frontier.complete(st.node);
            }
        }
        frontier.finish()
    }

    /// Eager sequential reference evaluation: every op runs in netlist
    /// order on the calling thread through the allocating
    /// [`ServerKey::apply`]/[`ServerKey::not`]/[`ServerKey::mux`] path.
    /// The equivalence oracle for [`CircuitNetlist::execute`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn execute_sequential<E: FftEngine>(
        &self,
        server: &ServerKey<E>,
        inputs: &[LweCiphertext],
    ) -> CircuitRun {
        let t0 = Instant::now();
        let mut values: Vec<Option<LweCiphertext>> = vec![None; self.ops.len()];
        self.resolve_sources(server, inputs, &mut values);
        let mut scheduled_ops = 0;
        for (id, op) in self.ops.iter().enumerate() {
            let out = match *op {
                GateOp::Input(_) | GateOp::Constant(_) => continue,
                GateOp::Binary(gate, a, b) => {
                    server.apply(gate, &Self::value(&values, a), &Self::value(&values, b))
                }
                GateOp::Not(a) => server.not(&Self::value(&values, a)),
                GateOp::Mux { sel, a, b } => server.mux(
                    &Self::value(&values, sel),
                    &Self::value(&values, a),
                    &Self::value(&values, b),
                ),
            };
            scheduled_ops += 1;
            values[id] = Some(out);
        }
        self.finish_run(values, t0, self.depth(), scheduled_ops)
    }

    fn finish_run(
        &self,
        values: Vec<Option<LweCiphertext>>,
        t0: Instant,
        waves: usize,
        scheduled_ops: usize,
    ) -> CircuitRun {
        let outputs = self
            .outputs
            .iter()
            .map(|&id| Self::value(&values, id))
            .collect();
        CircuitRun {
            outputs,
            waves,
            scheduled_ops,
            bootstraps: self.bootstraps(),
            elapsed_s: t0.elapsed().as_secs_f64(),
        }
    }
}

/// The ready-frontier of one in-flight circuit execution: which
/// bootstrapped ops can be dispatched *right now*, backed by the run's
/// shared [`ValueSlab`].
///
/// This is the unit the interleaving scheduler juggles: it keeps one
/// `CircuitFrontier` per in-flight circuit and fills every pool dispatch
/// with [`CircuitFrontier::take_ready`] tasks from all of them. The
/// protocol per circuit is: `take_ready` → dispatch the tasks (each
/// worker stores its result in the slab) → [`CircuitFrontier::complete`]
/// each dispatched node → repeat until [`CircuitFrontier::is_done`], then
/// [`CircuitFrontier::finish`]. Free `NOT`s never surface as tasks: they
/// are resolved inline (a local negation) the moment their operand's
/// value lands, so chains of negations add no waves and no dispatches.
pub struct CircuitFrontier {
    net: Arc<CircuitNetlist>,
    slab: Arc<ValueSlab>,
    /// Operand slots (with multiplicity) not yet available, per node.
    pending: Vec<usize>,
    /// Consumer edges: `consumers[v]` lists every node with an operand
    /// slot reading `v`, one entry per slot. Drained when `v` resolves
    /// (each node becomes available exactly once).
    consumers: Vec<Vec<usize>>,
    /// Bootstrapped ops whose operands are all available, not yet taken.
    ready: Vec<usize>,
    /// Bootstrapped ops not yet completed.
    remaining: usize,
    scheduled_ops: usize,
    waves: usize,
    t0: Instant,
}

impl CircuitFrontier {
    /// Starts a run: clones the encrypted inputs into a fresh slab,
    /// resolves constants and source-level `NOT`s, and seeds the ready
    /// set with every bootstrapped op that depends only on sources.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != net.num_inputs()`.
    pub fn new<E: FftEngine>(
        net: Arc<CircuitNetlist>,
        server: &ServerKey<E>,
        inputs: &[LweCiphertext],
    ) -> Self {
        Self::with_tag(net, server, inputs, 0)
    }

    /// Like [`CircuitFrontier::new`], but tagging the run's slab with a
    /// circuit identity (see [`ValueSlab::tagged`]) so scripted
    /// [`FaultPlan`](crate::faults::FaultPlan) sites can address this
    /// run's nodes deterministically. The server tags each admitted
    /// circuit with its admission sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != net.num_inputs()`.
    pub fn with_tag<E: FftEngine>(
        net: Arc<CircuitNetlist>,
        server: &ServerKey<E>,
        inputs: &[LweCiphertext],
        tag: u64,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            net.inputs,
            "circuit expects {} inputs, got {}",
            net.inputs,
            inputs.len()
        );
        Self::with_tag_from(net, server, tag, |slot| inputs[slot].clone())
    }

    /// Like [`CircuitFrontier::with_tag`], but sourcing each input slot
    /// from `fill` instead of cloning out of a slice — the wire-ingest
    /// path: a packed TRLWE submission sample-extracts and key-switches
    /// each bit in `fill` and the resulting sample lands in the slab
    /// directly, with no intermediate ciphertext vector or clone. `fill`
    /// is called exactly once per input slot, in node order.
    ///
    /// # Panics
    ///
    /// Panics if `fill` panics (a malformed slot count surfaces there).
    pub fn with_tag_from<E: FftEngine, F>(
        net: Arc<CircuitNetlist>,
        server: &ServerKey<E>,
        tag: u64,
        mut fill: F,
    ) -> Self
    where
        F: FnMut(usize) -> LweCiphertext,
    {
        let n = net.ops.len();
        let mut pending = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut remaining = 0;
        for (id, op) in net.ops.iter().enumerate() {
            for operand in op.operands().into_iter().flatten() {
                pending[id] += 1;
                consumers[operand].push(id);
            }
            remaining += usize::from(op.bootstraps() > 0);
        }
        let mut frontier = Self {
            slab: Arc::new(ValueSlab::tagged(n, tag)),
            net,
            pending,
            consumers,
            ready: Vec::new(),
            remaining,
            scheduled_ops: 0,
            waves: 0,
            t0: Instant::now(),
        };
        for id in 0..n {
            match frontier.net.ops[id] {
                GateOp::Input(slot) => {
                    frontier.slab.set(id, fill(slot));
                    frontier.mark_available(id);
                }
                GateOp::Constant(v) => {
                    frontier.slab.set(id, server.trivial(v));
                    frontier.mark_available(id);
                }
                _ => {}
            }
        }
        frontier
    }

    /// Propagates "node `id`'s value is in the slab" to its consumers:
    /// newly satisfied free `NOT`s resolve inline (cascading), newly
    /// satisfied bootstrapped ops join the ready set.
    fn mark_available(&mut self, id: usize) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            // Each node resolves exactly once, so its edge list can be
            // consumed rather than borrowed.
            for c in std::mem::take(&mut self.consumers[id]) {
                self.pending[c] -= 1;
                if self.pending[c] == 0 {
                    if let GateOp::Not(a) = self.net.ops[c] {
                        let mut v = self.slab.get(a).clone();
                        v.neg_assign();
                        self.slab.set(c, v);
                        self.scheduled_ops += 1;
                        stack.push(c);
                    } else {
                        self.ready.push(c);
                    }
                }
            }
        }
    }

    /// Drains every currently-ready bootstrapped op into `batch` as
    /// by-index tasks over this run's slab, returning how many were
    /// taken. Ops taken here count as one wave of this circuit; they must
    /// each be [`CircuitFrontier::complete`]d once their worker has
    /// stored the result.
    pub fn take_ready(&mut self, batch: &mut Vec<SlabTask>) -> usize {
        let taken = self.ready.len();
        if taken > 0 {
            self.waves += 1;
        }
        for id in self.ready.drain(..) {
            let task = match self.net.ops[id] {
                GateOp::Binary(gate, a, b) => GateTask::Binary { gate, a, b },
                GateOp::Mux { sel, a, b } => GateTask::Mux { sel, a, b },
                GateOp::Input(_) | GateOp::Constant(_) | GateOp::Not(_) => {
                    unreachable!("only bootstrapped ops enter the ready set")
                }
            };
            batch.push(SlabTask {
                slab: Arc::clone(&self.slab),
                node: id,
                task,
            });
        }
        taken
    }

    /// Records that the worker evaluating `node` has stored its result in
    /// the slab, unlocking downstream ops (and resolving any free `NOT`s
    /// that became computable).
    ///
    /// # Panics
    ///
    /// Panics if `node`'s value is not in the slab (completing a task
    /// whose worker failed) or it was never taken from the ready set.
    pub fn complete(&mut self, node: usize) {
        assert!(
            self.slab.try_get(node).is_some(),
            "completed node {node} has no value in the slab"
        );
        self.remaining -= 1;
        self.scheduled_ops += 1;
        self.mark_available(node);
    }

    /// `true` once every bootstrapped op has completed.
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// Bootstrapped ops currently ready to dispatch.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Bootstrapped ops not yet completed — the work an
    /// [`CircuitFrontier::abandon`] call walks away from.
    pub fn remaining_ops(&self) -> usize {
        self.remaining
    }

    /// Tears the run down mid-flight (deadline expiry, cancellation,
    /// shutdown), returning how many bootstrapped ops were never
    /// dispatched or completed. Consuming `self` drops the ready set,
    /// the dependency bookkeeping, and this side's slab handle; any
    /// worker still evaluating a previously dispatched task holds its own
    /// `Arc` on the slab, so in-flight writes stay safe and the slab's
    /// memory is freed when the last such task replies. Safe to call at
    /// any point **between** dispatches — i.e. when none of this
    /// frontier's taken tasks are awaiting [`CircuitFrontier::complete`];
    /// abandoning with a dispatch outstanding merely wastes that wave's
    /// bootstraps, it cannot corrupt other circuits.
    pub fn abandon(self) -> usize {
        self.remaining
    }

    /// Finishes the run: collects the marked outputs.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not [`CircuitFrontier::is_done`].
    pub fn finish(self) -> CircuitRun {
        assert!(self.is_done(), "circuit still has unfinished work");
        let outputs = self
            .net
            .outputs
            .iter()
            .map(|&id| self.slab.get(id).clone())
            .collect();
        CircuitRun {
            outputs,
            waves: self.waves,
            scheduled_ops: self.scheduled_ops,
            bootstraps: self.net.bootstraps(),
            elapsed_s: self.t0.elapsed().as_secs_f64(),
        }
    }
}

/// The outcome of one circuit execution.
#[derive(Clone, Debug)]
pub struct CircuitRun {
    /// Ciphertexts of the marked outputs, in marking order.
    pub outputs: Vec<LweCiphertext>,
    /// Wave-front levels dispatched (dependency depth).
    pub waves: usize,
    /// Ops evaluated (everything but inputs/constants).
    pub scheduled_ops: usize,
    /// Total gate bootstraps performed.
    pub bootstraps: usize,
    /// Wall-clock seconds for the whole circuit.
    pub elapsed_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::F64Fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup(seed: u64) -> (ClientKey, Arc<ServerKey<F64Fft>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        (client, server, rng)
    }

    /// sum/carry full adder over three inputs, exercising XOR/AND/OR.
    fn full_adder_netlist() -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let cin = net.input();
        let axb = net.gate(Gate::Xor, a, b);
        let sum = net.gate(Gate::Xor, axb, cin);
        let and_ab = net.gate(Gate::And, a, b);
        let and_cx = net.gate(Gate::And, axb, cin);
        let carry = net.gate(Gate::Or, and_ab, and_cx);
        net.mark_output(sum);
        net.mark_output(carry);
        net
    }

    #[test]
    fn wave_levels_follow_dependencies() {
        let net = full_adder_netlist();
        assert_eq!(net.len(), 8);
        assert_eq!(net.depth(), 3); // axb → {sum, and_cx} → carry
        let waves = net.waves();
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![3, 5]); // axb and and_ab are ready at once
        assert_eq!(waves[1], vec![4, 6]);
        assert_eq!(waves[2], vec![7]);
        assert_eq!(net.bootstraps(), 5);
    }

    #[test]
    fn scheduled_matches_sequential_bit_exactly() {
        let (client, server, mut rng) = setup(120);
        let net = full_adder_netlist();
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        for bits in 0u8..8 {
            let inputs: Vec<LweCiphertext> = (0..3)
                .map(|i| client.encrypt_with(bits >> i & 1 == 1, &mut rng))
                .collect();
            let scheduled = net.execute(&pool, &inputs);
            let sequential = net.execute_sequential(server.as_ref(), &inputs);
            assert_eq!(scheduled.outputs, sequential.outputs, "bits={bits:03b}");
            let total = (bits & 1) + (bits >> 1 & 1) + (bits >> 2 & 1);
            assert_eq!(client.decrypt(&scheduled.outputs[0]), total & 1 == 1);
            assert_eq!(client.decrypt(&scheduled.outputs[1]), total >= 2);
        }
    }

    #[test]
    fn constants_not_and_mux_execute() {
        let (client, server, mut rng) = setup(121);
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let t = net.constant(true);
        let na = net.not(a);
        let m = net.mux(na, b, a); // ¬a ? b : a
        let g = net.gate(Gate::Xnor, m, t); // == m
        net.mark_output(m);
        net.mark_output(g);
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let inputs = vec![
                client.encrypt_with(va, &mut rng),
                client.encrypt_with(vb, &mut rng),
            ];
            let run = net.execute(&pool, &inputs);
            let expected = if !va { vb } else { va };
            assert_eq!(client.decrypt(&run.outputs[0]), expected, "a={va} b={vb}");
            assert_eq!(client.decrypt(&run.outputs[1]), expected, "a={va} b={vb}");
            let sequential = net.execute_sequential(server.as_ref(), &inputs);
            assert_eq!(run.outputs, sequential.outputs);
        }
    }

    #[test]
    fn run_stats_are_consistent() {
        let (client, server, mut rng) = setup(122);
        let net = full_adder_netlist();
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let inputs: Vec<LweCiphertext> = (0..3)
            .map(|_| client.encrypt_with(true, &mut rng))
            .collect();
        let run = net.execute(&pool, &inputs);
        assert_eq!(run.waves, 3);
        assert_eq!(run.scheduled_ops, 5);
        assert_eq!(run.bootstraps, 5);
        assert!(run.elapsed_s > 0.0);
    }

    #[test]
    fn skeleton_passes_through_not_and_chains_mux() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g = net.gate(Gate::And, a, b); // unit 0
        let n = net.not(g); // free: transparent
        let h = net.gate(Gate::Or, n, b); // unit 1, depends on unit 0 via NOT
        let m = net.mux(h, a, g); // units 2 and 3 (chained)
        net.mark_output(m);
        let skeleton = net.schedule_skeleton();
        assert_eq!(skeleton.len(), 4); // 2 binary + 2 for the mux
        assert!(skeleton[0].is_empty());
        assert_eq!(skeleton[1], vec![0]);
        assert_eq!(skeleton[2], vec![1]); // mux's first bootstrap: sel=h(1), a=input
        assert_eq!(skeleton[3], vec![2, 1, 0]); // second: chained + sel + g
    }

    #[test]
    fn empty_netlist_executes_to_nothing() {
        let (_, server, _) = setup(123);
        let net = CircuitNetlist::new();
        let pool = GateBatchPool::new(Arc::clone(&server), 1);
        let run = net.execute(&pool, &[]);
        assert!(run.outputs.is_empty());
        assert_eq!(run.waves, 0);
        assert_eq!(run.scheduled_ops, 0);
    }

    #[test]
    #[should_panic(expected = "earlier nodes")]
    fn forward_reference_rejected() {
        let mut net = CircuitNetlist::new();
        let _ = net.gate(Gate::And, 0, 1);
    }

    #[test]
    #[should_panic(expected = "operands must reference earlier nodes")]
    fn not_forward_reference_rejected() {
        let mut net = CircuitNetlist::new();
        let _ = net.not(0);
    }

    #[test]
    #[should_panic(expected = "operands must reference earlier nodes")]
    fn mux_forward_reference_rejected() {
        let mut net = CircuitNetlist::new();
        let sel = net.input();
        let a = net.input();
        let _ = net.mux(sel, a, 7);
    }

    #[test]
    #[should_panic(expected = "output 3 not in netlist")]
    fn mark_output_out_of_range_rejected() {
        let mut net = CircuitNetlist::new();
        let _ = net.input();
        net.mark_output(3);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_input_count_rejected() {
        let (_, server, _) = setup(124);
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g = net.gate(Gate::And, a, b);
        net.mark_output(g);
        let pool = GateBatchPool::new(Arc::clone(&server), 1);
        let _ = net.execute(&pool, &[]);
    }
}
