//! Static analysis of executable netlists: structural lints, a safe
//! simplification rewriter, analytic worst-case noise certification, and
//! critical-path cost analysis — all computed from the DAG alone, before a
//! single bootstrap is spent.
//!
//! Bootstraps are the only expensive resource in gate-level TFHE, and a
//! malformed or noise-over-budget circuit wastes them (or worse, silently
//! decrypts wrong). [`analyze`] walks a [`CircuitNetlist`] once and
//! produces a machine-readable [`NetlistReport`] with three sections:
//!
//! * **Lints** ([`lint`]) — structural findings with [`Severity`] levels:
//!   dead bootstrapped nodes, netlists with work but no outputs
//!   ([`Severity::Error`]), unused inputs, constant-foldable gates,
//!   duplicate gates, muxes with identical arms ([`Severity::Warning`]),
//!   and double negations ([`Severity::Info`]).
//! * **Noise** — per-node worst-case error variance propagated through
//!   each gate's linear combination and reset at every bootstrap (the
//!   [`NoiseModel`] mirrors this crate's blind-rotate / key-switch /
//!   mod-switch pipeline), then turned into a per-output
//!   decryption-failure probability bound via Gaussian tails and a union
//!   bound over the output's backward cone. Tests cross-validate the
//!   bound against the empirical [`noise`](crate::noise) harness.
//! * **Cost** — bootstrap counts, wave depth, and per-node critical-path
//!   priority ranks in bootstrap units, consistent with
//!   `accel::schedule`'s list scheduler over
//!   [`CircuitNetlist::schedule_skeleton`].
//!
//! [`simplify`] applies the safe subset of the lint findings as rewrites —
//! constant folding, double-`NOT` collapse, common-subexpression
//! elimination, and dead-code removal — and reports whether the result is
//! bit-identical to the original (CSE/`NOT` rewrites are; folding a
//! bootstrapped gate into a trivial constant or an alias is
//! decrypt-equivalent only, and the report says so).
//!
//! [`AnalysisPolicy`] packages the admission knobs (`CircuitServer`-side):
//! the minimum lint severity to reject on, the per-output
//! failure-probability budget, and — optionally — a formal-equivalence
//! requirement on the rewrite the server schedules in place of the
//! submitted netlist, proven by the [`equiv`] BDD engine.

pub mod equiv;

use crate::circuit::{CircuitNetlist, GateOp};
use crate::gates::Gate;
use crate::params::ParameterSet;
use std::collections::HashMap;
use std::fmt;

/// How bad a [`Lint`] is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Harmless but noteworthy (costs no bootstraps).
    Info,
    /// Wastes bootstraps or signals likely construction bugs, but the
    /// circuit still computes its outputs.
    Warning,
    /// The circuit burns bootstraps on work that cannot reach any output.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The catalogue of structural findings [`lint`] can report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A bootstrapped node (binary gate or mux) unreachable from every
    /// marked output: the executor still spends its bootstraps.
    DeadNode,
    /// The netlist performs bootstrapped work but marks no outputs — all
    /// of it is wasted.
    NoOutputs,
    /// An input slot no output depends on.
    UnusedInput,
    /// A gate, `NOT`, or mux with a constant operand: partial evaluation
    /// removes or cheapens it ([`simplify`] does).
    ConstantFoldable,
    /// A node structurally identical to an earlier one (same op, same
    /// operands up to commutativity): a CSE candidate.
    DuplicateGate,
    /// A mux whose two data arms are the same node — it can only ever
    /// produce that node's value (at two bootstraps).
    MuxIdenticalArms,
    /// `NOT(NOT(x))` — free, but pure slab traffic.
    DoubleNot,
    /// An admission-time equivalence check came back
    /// [`equiv::Verdict::Unknown`] — the rewrite could not be proven (or
    /// refuted) within its [`equiv::EquivBudget`]. Emitted by the server's
    /// admission path, never by [`lint`] itself; under a strict policy
    /// (`deny <= Warning`) the circuit is rejected, otherwise the
    /// *submitted* netlist is scheduled unrewritten.
    EquivUnknown,
}

impl LintKind {
    /// The fixed severity of this finding.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::DeadNode | LintKind::NoOutputs => Severity::Error,
            LintKind::UnusedInput
            | LintKind::ConstantFoldable
            | LintKind::DuplicateGate
            | LintKind::MuxIdenticalArms
            | LintKind::EquivUnknown => Severity::Warning,
            LintKind::DoubleNot => Severity::Info,
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintKind::DeadNode => "dead-node",
            LintKind::NoOutputs => "no-outputs",
            LintKind::UnusedInput => "unused-input",
            LintKind::ConstantFoldable => "constant-foldable",
            LintKind::DuplicateGate => "duplicate-gate",
            LintKind::MuxIdenticalArms => "mux-identical-arms",
            LintKind::DoubleNot => "double-not",
            LintKind::EquivUnknown => "equiv-unknown",
        })
    }
}

/// One structural finding, anchored at a netlist node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lint {
    /// What was found.
    pub kind: LintKind,
    /// The offending node index (for [`LintKind::NoOutputs`], which has no
    /// single node, this is `0`).
    pub node: usize,
}

impl Lint {
    /// Shorthand for `self.kind.severity()`.
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at node {}",
            self.severity(),
            self.kind,
            self.node
        )
    }
}

/// Nodes reachable (backwards through operands) from any marked output.
fn reachable(net: &CircuitNetlist) -> Vec<bool> {
    let mut seen = vec![false; net.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &out in net.outputs() {
        if !seen[out] {
            seen[out] = true;
            stack.push(out);
        }
    }
    while let Some(id) = stack.pop() {
        for operand in net.ops()[id].operands().into_iter().flatten() {
            if !seen[operand] {
                seen[operand] = true;
                stack.push(operand);
            }
        }
    }
    seen
}

/// `true` when swapping the gate's operands leaves its value (and its
/// exact linear part, hence the output ciphertext bits) unchanged.
fn commutative(gate: Gate) -> bool {
    matches!(
        gate,
        Gate::And | Gate::Or | Gate::Nand | Gate::Nor | Gate::Xor | Gate::Xnor
    )
}

/// The canonical form of an op for duplicate detection: commutative
/// binary gates get their operands sorted.
fn canonical(op: GateOp) -> GateOp {
    match op {
        GateOp::Binary(g, a, b) if commutative(g) && b < a => GateOp::Binary(g, b, a),
        other => other,
    }
}

/// Runs the structural lints over `net`. Findings are reported in node
/// order, severest first within a node; [`LintKind::DeadNode`] and
/// [`LintKind::UnusedInput`] consider reachability from the marked
/// outputs, every other lint only fires on reachable nodes (a dead
/// foldable gate is already reported dead).
pub fn lint(net: &CircuitNetlist) -> Vec<Lint> {
    let mut lints = Vec::new();
    if net.bootstraps() > 0 && net.outputs().is_empty() {
        lints.push(Lint {
            kind: LintKind::NoOutputs,
            node: 0,
        });
    }
    let live = reachable(net);
    let is_const = |id: usize| matches!(net.ops()[id], GateOp::Constant(_));
    let mut seen: HashMap<GateOp, usize> = HashMap::new();
    for (id, &op) in net.ops().iter().enumerate() {
        if !live[id] {
            match op {
                GateOp::Input(_) => lints.push(Lint {
                    kind: LintKind::UnusedInput,
                    node: id,
                }),
                GateOp::Binary(..) | GateOp::Mux { .. } => lints.push(Lint {
                    kind: LintKind::DeadNode,
                    node: id,
                }),
                GateOp::Constant(_) | GateOp::Not(_) => {}
            }
            continue;
        }
        let foldable = match op {
            GateOp::Binary(_, a, b) => is_const(a) || is_const(b),
            GateOp::Not(a) => is_const(a),
            GateOp::Mux { sel, a, b } => is_const(sel) || is_const(a) || is_const(b),
            GateOp::Input(_) | GateOp::Constant(_) => false,
        };
        if foldable {
            lints.push(Lint {
                kind: LintKind::ConstantFoldable,
                node: id,
            });
        }
        if let GateOp::Mux { a, b, .. } = op {
            if a == b {
                lints.push(Lint {
                    kind: LintKind::MuxIdenticalArms,
                    node: id,
                });
            }
        }
        if let GateOp::Not(a) = op {
            if matches!(net.ops()[a], GateOp::Not(_)) {
                lints.push(Lint {
                    kind: LintKind::DoubleNot,
                    node: id,
                });
            }
        }
        if matches!(op, GateOp::Binary(..) | GateOp::Mux { .. } | GateOp::Not(_))
            && seen.insert(canonical(op), id).is_some()
        {
            lints.push(Lint {
                kind: LintKind::DuplicateGate,
                node: id,
            });
        }
    }
    lints
}

/// What [`simplify`] did, and how faithful the result is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyReport {
    /// Node count of the original netlist.
    pub nodes_before: usize,
    /// Node count of the simplified netlist.
    pub nodes_after: usize,
    /// Gate bootstraps in the original netlist.
    pub bootstraps_before: usize,
    /// Gate bootstraps in the simplified netlist.
    pub bootstraps_after: usize,
    /// Ops removed or cheapened by constant folding / partial evaluation.
    pub folded_constants: usize,
    /// `NOT(NOT(x))` chains collapsed to `x`.
    pub collapsed_nots: usize,
    /// Ops aliased to a structurally identical earlier op (CSE).
    pub deduplicated: usize,
    /// Dead (output-unreachable, non-input) nodes swept.
    pub dead_removed: usize,
    /// `true` when every rewrite applied was *bit*-exact: outputs of the
    /// simplified netlist are bit-identical ciphertexts to the original's
    /// (CSE, `NOT` collapse, `NOT`-of-constant, constant pooling, and
    /// dead-code removal all are — bootstrapping is deterministic given
    /// the keys). Folding a *bootstrapped* gate to a constant or an alias
    /// clears this: the outputs then agree on decryption (same plaintext,
    /// noise within the gate margins) but not bit-for-bit.
    pub exact: bool,
}

impl SimplifyReport {
    /// Bootstraps the rewrite saved.
    pub fn bootstraps_saved(&self) -> usize {
        self.bootstraps_before - self.bootstraps_after
    }
}

/// Rewrite pass state shared by the op emitters in [`simplify`].
struct Rewriter {
    mid: CircuitNetlist,
    /// Pooled constant node per value, once emitted.
    const_node: [Option<usize>; 2],
    /// Canonicalized op → emitted node (CSE).
    seen: HashMap<GateOp, usize>,
    report: SimplifyReport,
}

impl Rewriter {
    fn const_of(&self, id: usize) -> Option<bool> {
        match self.mid.ops()[id] {
            GateOp::Constant(v) => Some(v),
            _ => None,
        }
    }

    /// The pooled constant node for `v`, emitting it on first use.
    fn constant(&mut self, v: bool) -> usize {
        match self.const_node[v as usize] {
            Some(id) => id,
            None => {
                let id = self.mid.constant(v);
                self.const_node[v as usize] = Some(id);
                id
            }
        }
    }

    /// Emits (or aliases) `NOT a`, folding constants and collapsing
    /// double negations. Both rewrites are bit-exact: the `false`/`true`
    /// encodings are symmetric (±1/8), so negating a trivial constant is
    /// the other trivial constant, and wrapping negation is an involution.
    fn not(&mut self, a: usize) -> usize {
        if let Some(v) = self.const_of(a) {
            self.report.folded_constants += 1;
            return self.constant(!v);
        }
        if let GateOp::Not(x) = self.mid.ops()[a] {
            self.report.collapsed_nots += 1;
            return x;
        }
        self.dedup_or(GateOp::Not(a))
    }

    /// Emits (or aliases) a binary gate with no constant operands.
    fn gate(&mut self, g: Gate, a: usize, b: usize) -> usize {
        self.dedup_or(canonical(GateOp::Binary(g, a, b)))
    }

    /// Emits `op` unless a structurally identical node exists (then
    /// aliases it — bit-exact, bootstrapping is deterministic).
    fn dedup_or(&mut self, op: GateOp) -> usize {
        if let Some(&id) = self.seen.get(&op) {
            self.report.deduplicated += 1;
            return id;
        }
        let id = match op {
            GateOp::Not(a) => self.mid.not(a),
            GateOp::Binary(g, a, b) => self.mid.gate(g, a, b),
            GateOp::Mux { sel, a, b } => self.mid.mux(sel, a, b),
            GateOp::Input(_) | GateOp::Constant(_) => unreachable!("sources are not deduped here"),
        };
        self.seen.insert(op, id);
        id
    }
}

/// Rewrites `net` into an output-equivalent netlist with fewer (never
/// more) bootstraps, applying the safe subset of the [`lint`] findings:
///
/// * **Constant folding / partial evaluation** — gates, `NOT`s, and muxes
///   with constant operands become constants, aliases, free `NOT`s, or
///   (for one-constant-arm muxes) a single binary gate.
/// * **Double-`NOT` collapse** — `NOT(NOT(x))` aliases `x`.
/// * **CSE** — structurally identical ops (up to operand order for the
///   six commutative gates) are computed once.
/// * **Dead-code removal** — nodes no output depends on are swept.
///
/// Rewrites cascade in one forward pass (folding a gate can make its
/// consumer foldable). Every input node is preserved in slot order, so
/// the simplified netlist takes the same input vector; outputs are
/// remapped and stay in marking order. Muxes with identical (non-constant)
/// arms are *not* rewritten — aliasing the arm would skip a noise reset —
/// they are only linted.
///
/// The returned [`SimplifyReport`] says what fired and whether the result
/// is bit-identical to the original ([`SimplifyReport::exact`]) or
/// decrypt-equivalent only.
pub fn simplify(net: &CircuitNetlist) -> (CircuitNetlist, SimplifyReport) {
    let mut rw = Rewriter {
        mid: CircuitNetlist::new(),
        const_node: [None, None],
        seen: HashMap::new(),
        report: SimplifyReport {
            nodes_before: net.len(),
            bootstraps_before: net.bootstraps(),
            exact: true,
            ..SimplifyReport::default()
        },
    };
    // Pass 1: forward rewrite with an alias map (old node → mid node).
    let mut alias: Vec<usize> = Vec::with_capacity(net.len());
    for &op in net.ops() {
        let new_id = match op {
            GateOp::Input(_) => rw.mid.input(),
            GateOp::Constant(v) => {
                let pooled = rw.const_node[v as usize].is_some();
                if pooled {
                    rw.report.deduplicated += 1;
                }
                rw.constant(v)
            }
            GateOp::Not(a0) => rw.not(alias[a0]),
            GateOp::Binary(g, a0, b0) => {
                let (a, b) = (alias[a0], alias[b0]);
                match (rw.const_of(a), rw.const_of(b)) {
                    (Some(va), Some(vb)) => {
                        rw.report.folded_constants += 1;
                        rw.report.exact = false;
                        rw.constant(g.eval(va, vb))
                    }
                    (Some(va), None) => rw.fold_half(|x| g.eval(va, x), b),
                    (None, Some(vb)) => rw.fold_half(|x| g.eval(x, vb), a),
                    (None, None) => rw.gate(g, a, b),
                }
            }
            GateOp::Mux { sel, a, b } => {
                let (s, a, b) = (alias[sel], alias[a], alias[b]);
                if let Some(vs) = rw.const_of(s) {
                    rw.report.folded_constants += 1;
                    rw.report.exact = false;
                    if vs {
                        a
                    } else {
                        b
                    }
                } else if a == b {
                    // Identical arms: linted, never rewritten — the mux's
                    // bootstraps reset the arm's noise, and the "safe
                    // subset" keeps every noise reset in place.
                    rw.dedup_or(GateOp::Mux { sel: s, a, b })
                } else {
                    match (rw.const_of(a), rw.const_of(b)) {
                        // Arms are pooled constants, distinct ⇒ differing
                        // values: `sel ? v : !v` is `sel` or `NOT sel`.
                        (Some(va), Some(_)) => {
                            rw.report.folded_constants += 1;
                            rw.report.exact = false;
                            if va {
                                s
                            } else {
                                rw.not(s)
                            }
                        }
                        // `sel ? true : b` = `sel OR b`;
                        // `sel ? false : b` = `¬sel AND b`.
                        (Some(va), None) => {
                            rw.report.folded_constants += 1;
                            rw.report.exact = false;
                            let g = if va { Gate::Or } else { Gate::AndNY };
                            rw.gate(g, s, b)
                        }
                        // `sel ? a : true` = `¬sel OR a`;
                        // `sel ? a : false` = `sel AND a`.
                        (None, Some(vb)) => {
                            rw.report.folded_constants += 1;
                            rw.report.exact = false;
                            let g = if vb { Gate::OrNY } else { Gate::And };
                            rw.gate(g, s, a)
                        }
                        (None, None) => rw.dedup_or(GateOp::Mux { sel: s, a, b }),
                    }
                }
            }
        };
        alias.push(new_id);
    }
    for &out in net.outputs() {
        rw.mid.mark_output(alias[out]);
    }
    let Rewriter {
        mid, mut report, ..
    } = rw;

    // Pass 2: sweep dead nodes (inputs always stay — the simplified
    // netlist must take the original input vector positionally).
    let live = reachable(&mid);
    let mut out = CircuitNetlist::new();
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(mid.len());
    for (id, &op) in mid.ops().iter().enumerate() {
        let keep = live[id] || matches!(op, GateOp::Input(_));
        if !keep {
            report.dead_removed += 1;
            remap.push(None);
            continue;
        }
        let m = |x: usize| remap[x].expect("live operand kept");
        let new_id = match op {
            GateOp::Input(_) => out.input(),
            GateOp::Constant(v) => out.constant(v),
            GateOp::Not(a) => out.not(m(a)),
            GateOp::Binary(g, a, b) => out.gate(g, m(a), m(b)),
            GateOp::Mux { sel, a, b } => out.mux(m(sel), m(a), m(b)),
        };
        remap.push(Some(new_id));
    }
    for &o in mid.outputs() {
        out.mark_output(remap[o].expect("outputs are live"));
    }
    report.nodes_after = out.len();
    report.bootstraps_after = out.bootstraps();
    (out, report)
}

impl Rewriter {
    /// Partial evaluation of a binary gate with one constant operand:
    /// `f` is the gate as a function of the remaining operand `other`.
    /// The result is a constant, an alias, or a free `NOT` — never a
    /// bootstrap. Not bit-exact: the original output was a freshly
    /// bootstrapped ciphertext.
    fn fold_half(&mut self, f: impl Fn(bool) -> bool, other: usize) -> usize {
        self.report.folded_constants += 1;
        self.report.exact = false;
        match (f(false), f(true)) {
            (v, w) if v == w => self.constant(v),
            (false, true) => other,
            _ => self.not(other),
        }
    }
}

/// The worst-case per-operation noise variances of this crate's gate
/// bootstrap pipeline, derived from a [`ParameterSet`] and the
/// bootstrapping-key unroll factor `m`. All variances are in squared
/// torus units (the torus is `[-1/2, 1/2)`).
///
/// The model mirrors the implementation, not a generic TFHE bound:
///
/// * **Blind rotate** ([`NoiseModel::v_blind_rotate`]) — `⌈n/m⌉`
///   external products, each against a bundle `1 + Σ_p (X^{e_p} − 1)·BK_p`
///   over the group's `2^m − 1` pattern keys. Scaling a key by
///   `X^e − 1` doubles its per-coefficient noise variance, every nonempty
///   pattern is charged, digits are taken at the worst-case magnitude
///   `Bg/2`, and the gadget's `ℓ`-level approximation contributes
///   `(1 + N)·(2^{-ℓ·log Bg})²` per product.
/// * **Key switch** ([`NoiseModel::v_key_switch`]) — digit multiples are
///   pre-encrypted (`KeySwitchKey` stores `v·s′_i/2^{(j+1)γ}` entries), so
///   each of the `N·t` digits subtracts exactly one fresh-noise sample;
///   rounding each coefficient to `t·γ` bits adds a half-step per
///   coefficient, all `N` charged.
/// * **Mod switch** ([`NoiseModel::v_mod_switch`]) — rounding `n + 1`
///   torus coefficients to multiples of `1/2N`, uniform within a step.
///
/// A bootstrapped gate output carries
/// [`v_bootstrapped`](NoiseModel::v_bootstrapped) `= v_blind_rotate +
/// v_key_switch` regardless of its inputs (the reset that makes
/// gate-level TFHE compose); a mux output carries two blind rotations
/// plus one key switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    v_fresh: f64,
    v_blind_rotate: f64,
    v_key_switch: f64,
    v_mod_switch: f64,
}

/// Margin of the AND-family gate decision: the linear part sits at
/// distance 1/8 from the sign boundary.
const AND_MARGIN: f64 = 0.125;
/// Margin of the XOR/XNOR decision (the `±1/4` encodings)…
const XOR_MARGIN: f64 = 0.25;
/// …whose `2·(a + b)` linear part also scales the operand error by 2
/// (variance by 4).
const XOR_SCALE2: f64 = 4.0;
/// Margin charged to the final decryption of each output: the symmetric
/// ±1/8 encoding decides on the sign, so an error of 1/8 toward the
/// boundary is what flips a decrypted bit. (The empirical
/// [`noise`](crate::noise) harness documents the tighter 1/16 acceptance
/// threshold it checks samples against; the decision margin itself is
/// 1/8.)
const DECRYPT_MARGIN: f64 = 0.125;

impl NoiseModel {
    /// Builds the model for `params` at bootstrapping-key unroll `m`.
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is outside `1..=8` (the [`ServerKey`] bound).
    ///
    /// [`ServerKey`]: crate::gates::ServerKey
    pub fn new(params: &ParameterSet, unroll: usize) -> Self {
        assert!(
            (1..=8).contains(&unroll),
            "unroll factor {unroll} outside 1..=8"
        );
        let n = params.lwe_dimension as f64;
        let big_n = params.ring_degree as f64;
        let groups = params.lwe_dimension.div_ceil(unroll) as f64;
        let patterns = ((1usize << unroll) - 1) as f64;
        let bg = (params.decomp_base_log as f64).exp2();
        let ell = params.decomp_levels as f64;
        // `(X^e − 1)` doubles a pattern key's per-coefficient variance.
        let v_bundle = 2.0 * patterns * params.ring_noise_stdev * params.ring_noise_stdev;
        let eps_bg = (-(params.decomp_base_log as f64 * params.decomp_levels as f64)).exp2();
        let v_blind_rotate = groups
            * (2.0 * ell * big_n * (bg * bg / 4.0) * v_bundle + (1.0 + big_n) * eps_bg * eps_bg);
        let eps_ks = (-(params.ks_base_log as f64 * params.ks_levels as f64)).exp2();
        let v_key_switch =
            big_n * params.ks_levels as f64 * params.lwe_noise_stdev * params.lwe_noise_stdev
                + big_n * (eps_ks / 2.0) * (eps_ks / 2.0);
        let step = 1.0 / (2.0 * big_n);
        let v_mod_switch = (n + 1.0) * step * step / 12.0;
        Self {
            v_fresh: params.lwe_noise_stdev * params.lwe_noise_stdev,
            v_blind_rotate,
            v_key_switch,
            v_mod_switch,
        }
    }

    /// Variance of a fresh client-encrypted input.
    pub fn v_fresh(&self) -> f64 {
        self.v_fresh
    }

    /// Worst-case variance added by one blind rotation.
    pub fn v_blind_rotate(&self) -> f64 {
        self.v_blind_rotate
    }

    /// Worst-case variance added by one key switch (including its
    /// decomposition rounding).
    pub fn v_key_switch(&self) -> f64 {
        self.v_key_switch
    }

    /// Worst-case variance of the mod-switch rounding, charged to every
    /// bootstrap decision.
    pub fn v_mod_switch(&self) -> f64 {
        self.v_mod_switch
    }

    /// Variance of a bootstrapped binary-gate output (blind rotate + key
    /// switch) — independent of the inputs: the noise reset.
    pub fn v_bootstrapped(&self) -> f64 {
        self.v_blind_rotate + self.v_key_switch
    }

    /// Variance of a mux output: two extracted-key bootstraps summed,
    /// then one key switch.
    pub fn v_mux_output(&self) -> f64 {
        2.0 * self.v_blind_rotate + self.v_key_switch
    }

    /// A Gaussian tail bound on the probability that an error of the
    /// given variance exceeds `margin` in absolute value:
    /// `min(1, 2·exp(−margin²/2σ²))`. This dominates the exact
    /// `erfc(margin/σ√2)` for every useful margin (z ≳ 0.8), so the
    /// certificate stays a true upper bound. Zero variance means zero
    /// failure probability (trivial ciphertexts).
    pub fn tail_bound(margin: f64, variance: f64) -> f64 {
        if variance <= 0.0 {
            return 0.0;
        }
        let z2 = margin * margin / variance;
        (2.0 * (-z2 / 2.0).exp()).min(1.0)
    }

    /// Failure-probability bound of one binary-gate bootstrap decision
    /// whose operands carry variances `va` and `vb`. XOR/XNOR place the
    /// encodings at ±1/4 (margin 1/4) but scale operand error by 2;
    /// every other gate decides at margin 1/8 with unit coefficients.
    pub fn gate_failure(&self, gate: Gate, va: f64, vb: f64) -> f64 {
        let (margin, scale2) = match gate {
            Gate::Xor | Gate::Xnor => (XOR_MARGIN, XOR_SCALE2),
            _ => (AND_MARGIN, 1.0),
        };
        Self::tail_bound(margin, scale2 * (va + vb) + self.v_mod_switch)
    }

    /// Summed failure bound of a mux's two AND-type bootstrap decisions,
    /// `AND(sel, a)` and `AND(¬sel, b)`.
    pub fn mux_failure(&self, v_sel: f64, va: f64, vb: f64) -> f64 {
        Self::tail_bound(AND_MARGIN, v_sel + va + self.v_mod_switch)
            + Self::tail_bound(AND_MARGIN, v_sel + vb + self.v_mod_switch)
    }

    /// Failure bound of decrypting a value of variance `v` against the
    /// conservative 1/16 margin.
    pub fn decrypt_failure(&self, v: f64) -> f64 {
        Self::tail_bound(DECRYPT_MARGIN, v)
    }
}

/// The analytic noise certificate for one marked output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutputNoise {
    /// The output's node index in the netlist.
    pub node: usize,
    /// Worst-case variance of the output's value.
    pub variance: f64,
    /// Union bound on the probability that this output decrypts wrong:
    /// the sum of every bootstrap-decision failure bound in the output's
    /// backward cone, plus the final decryption tail. Clamped to 1.
    pub failure_prob: f64,
}

/// The noise section of a [`NetlistReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseReport {
    /// Worst-case value variance per node, in netlist order.
    pub node_variance: Vec<f64>,
    /// Per-output certificates, in marking order.
    pub outputs: Vec<OutputNoise>,
    /// The parameter-derived model the certificates used.
    pub model: NoiseModel,
}

impl NoiseReport {
    /// The largest per-output failure bound (0 when nothing is marked).
    pub fn max_failure_prob(&self) -> f64 {
        self.outputs
            .iter()
            .map(|o| o.failure_prob)
            .fold(0.0, f64::max)
    }
}

fn noise_report(net: &CircuitNetlist, model: NoiseModel) -> NoiseReport {
    let n = net.len();
    let mut variance = vec![0.0f64; n];
    // Failure bound of each node's own bootstrap decisions (0 for free ops).
    let mut decision = vec![0.0f64; n];
    for (id, &op) in net.ops().iter().enumerate() {
        match op {
            GateOp::Input(_) => variance[id] = model.v_fresh(),
            GateOp::Constant(_) => variance[id] = 0.0,
            GateOp::Not(a) => variance[id] = variance[a],
            GateOp::Binary(g, a, b) => {
                decision[id] = model.gate_failure(g, variance[a], variance[b]);
                variance[id] = model.v_bootstrapped();
            }
            GateOp::Mux { sel, a, b } => {
                decision[id] = model.mux_failure(variance[sel], variance[a], variance[b]);
                variance[id] = model.v_mux_output();
            }
        }
    }
    let mut outputs = Vec::with_capacity(net.outputs().len());
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &out in net.outputs() {
        // Union bound over the output's backward cone.
        seen.iter_mut().for_each(|s| *s = false);
        let mut p = model.decrypt_failure(variance[out]);
        seen[out] = true;
        stack.push(out);
        while let Some(id) = stack.pop() {
            p += decision[id];
            for operand in net.ops()[id].operands().into_iter().flatten() {
                if !seen[operand] {
                    seen[operand] = true;
                    stack.push(operand);
                }
            }
        }
        outputs.push(OutputNoise {
            node: out,
            variance: variance[out],
            failure_prob: p.min(1.0),
        });
    }
    NoiseReport {
        node_variance: variance,
        outputs,
        model,
    }
}

/// The cost section of a [`NetlistReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostReport {
    /// Total gate bootstraps (the schedule-skeleton unit count).
    pub bootstraps: usize,
    /// Wave depth (free `NOT`s add none).
    pub depth: usize,
    /// Longest dependency chain in bootstrap units — equals
    /// `accel::schedule::Netlist::from_deps(skeleton).critical_path()`.
    pub critical_path_units: usize,
    /// Critical-path priority rank per *node*, in bootstrap units: the
    /// length of the longest downstream chain including the node's own
    /// bootstraps (binary 1, mux 2, free ops 0). A frontier scheduler
    /// dispatching highest-rank-first is critical-path-first; sources and
    /// `NOT`s carry the rank of their longest consumer chain.
    pub node_ranks: Vec<usize>,
}

fn cost_report(net: &CircuitNetlist) -> CostReport {
    let units = net.schedule_skeleton();
    // Unit-level ranks: longest chain (in units, inclusive) to any sink.
    let mut unit_rank = vec![1usize; units.len()];
    for u in (0..units.len()).rev() {
        let r = unit_rank[u];
        for &d in &units[u] {
            unit_rank[d] = unit_rank[d].max(r + 1);
        }
    }
    // Re-derive the node → unit mapping the skeleton used (mirrors
    // `CircuitNetlist::schedule_skeleton`'s construction order: binary
    // gates one unit, muxes two chained units).
    let mut next_unit = 0usize;
    let mut node_units: Vec<Option<(usize, usize)>> = Vec::with_capacity(net.len());
    for &op in net.ops() {
        node_units.push(match op {
            GateOp::Binary(..) => {
                next_unit += 1;
                Some((next_unit - 1, next_unit - 1))
            }
            GateOp::Mux { .. } => {
                next_unit += 2;
                Some((next_unit - 2, next_unit - 1))
            }
            _ => None,
        });
    }
    debug_assert_eq!(next_unit, units.len());
    let mut ranks = vec![0usize; net.len()];
    for (id, &op) in net.ops().iter().enumerate().rev() {
        if let Some((first, _)) = node_units[id] {
            ranks[id] = ranks[id].max(unit_rank[first]);
        }
        let own = ranks[id];
        for (pos, operand) in op.operands().into_iter().enumerate() {
            let Some(o) = operand else { continue };
            // A mux's `b` arm only feeds its second unit; everything else
            // chains through the node's full rank.
            let contribution = match (op, pos) {
                (GateOp::Mux { .. }, 2) => unit_rank[node_units[id].expect("mux has units").1],
                _ => own,
            };
            ranks[o] = ranks[o].max(contribution);
        }
    }
    CostReport {
        bootstraps: net.bootstraps(),
        depth: net.depth(),
        critical_path_units: unit_rank.iter().copied().max().unwrap_or(0),
        node_ranks: ranks,
    }
}

/// The full machine-readable result of [`analyze`].
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistReport {
    /// Structural findings (see [`lint`]).
    pub lints: Vec<Lint>,
    /// Per-output analytic noise certificates.
    pub noise: NoiseReport,
    /// Bootstrap counts, depth, and priority ranks.
    pub cost: CostReport,
}

impl NetlistReport {
    /// The severest lint severity present, if any lint fired.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.lints.iter().map(Lint::severity).max()
    }

    /// `true` when no lint at or above `deny` fired.
    pub fn is_clean(&self, deny: Severity) -> bool {
        self.lints.iter().all(|l| l.severity() < deny)
    }

    /// The severest lint at or above `deny`, if any — what an admission
    /// policy rejects on.
    pub fn worst_lint_at_least(&self, deny: Severity) -> Option<&Lint> {
        self.lints
            .iter()
            .filter(|l| l.severity() >= deny)
            .max_by_key(|l| l.severity())
    }

    /// The largest per-output failure bound (0 when nothing is marked).
    pub fn max_failure_prob(&self) -> f64 {
        self.noise.max_failure_prob()
    }
}

/// Analyzes `net` in one pass: structural [`lint`]s, analytic per-output
/// noise certification under `params` at bootstrapping-key unroll
/// `unroll`, and critical-path cost analysis.
///
/// # Panics
///
/// Panics if `unroll` is outside `1..=8` (the `ServerKey` bound).
pub fn analyze(net: &CircuitNetlist, params: &ParameterSet, unroll: usize) -> NetlistReport {
    let model = NoiseModel::new(params, unroll);
    NetlistReport {
        lints: lint(net),
        noise: noise_report(net, model),
        cost: cost_report(net),
    }
}

/// Default per-output decryption-failure budget: `2⁻²⁰` (≈ `9.5·10⁻⁷`).
/// Far above the analytic bound of any shipped lowering at any shipped
/// parameter set, far below anything a production client should accept.
pub const DEFAULT_FAILURE_BUDGET: f64 = 1.0 / (1 << 20) as f64;

/// Admission-time analysis knobs for a `CircuitServer` (set on
/// `ServerConfig::analysis`): every submitted netlist is [`analyze`]d
/// before admission and rejected — with a structured reason naming the
/// failing lint or output bound — when it trips either knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnalysisPolicy {
    /// Reject circuits carrying any lint at or above this severity.
    pub deny: Severity,
    /// Reject circuits whose analytic per-output failure bound exceeds
    /// this probability.
    pub max_failure_prob: f64,
    /// When set, the server runs its rewrite pass (by default
    /// [`simplify`]) on every admitted netlist and **proves** the result
    /// function-identical to the submission with the [`equiv`] BDD engine
    /// under this budget before scheduling it. A refuted rewrite is
    /// rejected with a structured counterexample
    /// (`RejectReason::NotEquivalent`); a check that exhausts the budget
    /// surfaces as a [`LintKind::EquivUnknown`] warning — rejected only
    /// under a strict `deny`, otherwise the submitted netlist runs
    /// unrewritten. `None` skips the proof and schedules the submission
    /// as-is.
    pub require_equivalence: Option<equiv::EquivBudget>,
}

impl Default for AnalysisPolicy {
    /// Rejects on [`Severity::Error`] lints and on outputs past
    /// [`DEFAULT_FAILURE_BUDGET`]; no equivalence requirement.
    fn default() -> Self {
        Self {
            deny: Severity::Error,
            max_failure_prob: DEFAULT_FAILURE_BUDGET,
            require_equivalence: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;

    /// sum/carry half adder: clean by construction.
    fn half_adder() -> CircuitNetlist {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let sum = net.gate(Gate::Xor, a, b);
        let carry = net.gate(Gate::And, a, b);
        net.mark_output(sum);
        net.mark_output(carry);
        net
    }

    fn kinds(lints: &[Lint]) -> Vec<LintKind> {
        lints.iter().map(|l| l.kind).collect()
    }

    #[test]
    fn clean_netlist_has_no_lints() {
        assert!(lint(&half_adder()).is_empty());
        assert!(lint(&CircuitNetlist::new()).is_empty());
    }

    #[test]
    fn dead_bootstrapped_node_is_an_error() {
        let mut net = half_adder();
        let a = net.input();
        let dead = net.gate(Gate::Or, 0, a);
        let l = lint(&net);
        assert!(l.contains(&Lint {
            kind: LintKind::DeadNode,
            node: dead
        }));
        assert!(l.contains(&Lint {
            kind: LintKind::UnusedInput,
            node: a
        }));
        assert_eq!(l.iter().map(Lint::severity).max(), Some(Severity::Error));
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let _ = net.gate(Gate::And, a, b);
        assert!(kinds(&lint(&net)).contains(&LintKind::NoOutputs));
        // …but a netlist with no bootstrapped work and no outputs is not
        // burning anything.
        let mut empty = CircuitNetlist::new();
        let _ = empty.input();
        assert!(!kinds(&lint(&empty)).contains(&LintKind::NoOutputs));
    }

    #[test]
    fn foldable_duplicate_double_not_and_mux_arms_lint() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let t = net.constant(true);
        let foldable = net.gate(Gate::And, a, t);
        let g1 = net.gate(Gate::Or, a, b);
        let dup = net.gate(Gate::Or, b, a); // commutative duplicate
        let n1 = net.not(g1);
        let dnot = net.not(n1);
        let mux = net.mux(b, g1, g1);
        for id in [foldable, dup, dnot, mux] {
            net.mark_output(id);
        }
        let l = lint(&net);
        let k = kinds(&l);
        assert!(k.contains(&LintKind::ConstantFoldable));
        assert!(k.contains(&LintKind::DuplicateGate));
        assert!(k.contains(&LintKind::DoubleNot));
        assert!(k.contains(&LintKind::MuxIdenticalArms));
        assert_eq!(l.iter().map(Lint::severity).max(), Some(Severity::Warning));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(LintKind::DeadNode.severity(), Severity::Error);
        assert_eq!(LintKind::DoubleNot.severity(), Severity::Info);
        assert_eq!(
            format!(
                "{}",
                Lint {
                    kind: LintKind::DeadNode,
                    node: 3
                }
            ),
            "error: dead-node at node 3"
        );
    }

    #[test]
    fn simplify_collapses_double_not_exactly() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g = net.gate(Gate::And, a, b);
        let n1 = net.not(g);
        let n2 = net.not(n1);
        net.mark_output(n2);
        let (s, r) = simplify(&net);
        assert!(r.exact);
        assert_eq!(r.collapsed_nots, 1);
        assert_eq!(s.bootstraps(), 1);
        // The double negation and the inner NOT are gone.
        assert_eq!(s.len(), 3);
        assert_eq!(s.outputs(), &[2]);
    }

    #[test]
    fn simplify_dedups_commutative_gates_exactly() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g1 = net.gate(Gate::Xor, a, b);
        let g2 = net.gate(Gate::Xor, b, a);
        let g3 = net.gate(Gate::AndYN, a, b);
        let g4 = net.gate(Gate::AndYN, b, a); // NOT a duplicate (order matters)
        net.mark_output(g1);
        net.mark_output(g2);
        net.mark_output(g3);
        net.mark_output(g4);
        let (s, r) = simplify(&net);
        assert!(r.exact);
        assert_eq!(r.deduplicated, 1);
        assert_eq!(s.bootstraps(), 3);
        // Both XOR outputs alias the same node.
        assert_eq!(s.outputs()[0], s.outputs()[1]);
        assert_ne!(s.outputs()[2], s.outputs()[3]);
    }

    #[test]
    fn simplify_folds_constants_and_cascades() {
        // AND(a, true) → a, then XOR(a, a)… stays: XOR of the same node
        // twice is not folded (it is a duplicate-operand gate, left to
        // run); instead check OR(AND(a,true), false) → a.
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let t = net.constant(true);
        let f = net.constant(false);
        let g1 = net.gate(Gate::And, a, t); // → a
        let g2 = net.gate(Gate::Or, g1, f); // → g1 → a
        net.mark_output(g2);
        let (s, r) = simplify(&net);
        assert!(!r.exact);
        assert_eq!(r.folded_constants, 2);
        assert_eq!(s.bootstraps(), 0);
        // Just the input survives (constants die with their consumers).
        assert_eq!(s.len(), 1);
        assert_eq!(s.outputs(), &[0]);
        assert_eq!(s.num_inputs(), 1);
    }

    #[test]
    fn simplify_folds_not_of_constant_exactly() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let f = net.constant(false);
        let n = net.not(f); // → constant true, bit-exact (symmetric ±1/8)
        let g = net.gate(Gate::Xor, a, n);
        net.mark_output(g);
        let (s, r) = simplify(&net);
        // The XOR still folds (constant operand) — not exact overall…
        assert!(!r.exact);
        // …but run the NOT fold alone and exactness survives:
        let mut net2 = CircuitNetlist::new();
        let _ = net2.input();
        let f2 = net2.constant(false);
        let n2 = net2.not(f2);
        net2.mark_output(n2);
        let (s2, r2) = simplify(&net2);
        assert!(r2.exact);
        assert!(matches!(s2.ops()[s2.outputs()[0]], GateOp::Constant(true)));
        assert_eq!(s.bootstraps(), 0);
    }

    #[test]
    fn simplify_mux_constant_selector_and_arms() {
        let mut net = CircuitNetlist::new();
        let sel = net.input();
        let a = net.input();
        let b = net.input();
        let t = net.constant(true);
        let m1 = net.mux(t, a, b); // const sel → a
        let m2 = net.mux(sel, t, b); // → OR(sel, b)
        let m3 = net.mux(sel, a, t); // → ORNY(sel, a)
        net.mark_output(m1);
        net.mark_output(m2);
        net.mark_output(m3);
        let (s, r) = simplify(&net);
        assert!(!r.exact);
        assert_eq!(r.folded_constants, 3);
        // Three muxes (6 bootstraps) became two binary gates.
        assert_eq!(s.bootstraps(), 2);
        assert!(matches!(
            s.ops()[s.outputs()[1]],
            GateOp::Binary(Gate::Or, _, _)
        ));
        assert!(matches!(
            s.ops()[s.outputs()[2]],
            GateOp::Binary(Gate::OrNY, _, _)
        ));
    }

    #[test]
    fn simplify_keeps_identical_arm_muxes() {
        let mut net = CircuitNetlist::new();
        let sel = net.input();
        let a = net.input();
        let m = net.mux(sel, a, a);
        net.mark_output(m);
        let (s, r) = simplify(&net);
        assert!(r.exact);
        assert_eq!(s.bootstraps(), 2, "the noise reset stays");
    }

    #[test]
    fn simplify_sweeps_dead_nodes_but_keeps_inputs() {
        let mut net = half_adder();
        let c = net.input(); // unused input: kept
        let dead = net.gate(Gate::Nor, 0, c); // dead gate: swept
        let _ = dead;
        let (s, r) = simplify(&net);
        assert!(r.exact);
        assert_eq!(r.dead_removed, 1);
        assert_eq!(s.num_inputs(), 3);
        assert_eq!(s.bootstraps(), 2);
    }

    #[test]
    fn simplify_preserves_output_multiplicity_and_order() {
        let mut net = half_adder();
        net.mark_output(net.outputs()[0]); // sum marked twice
        let (s, r) = simplify(&net);
        assert!(r.exact);
        assert_eq!(s.outputs().len(), 3);
        assert_eq!(s.outputs()[0], s.outputs()[2]);
    }

    #[test]
    fn cost_ranks_match_units() {
        // XOR → AND chain: ranks descend along the chain.
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g1 = net.gate(Gate::Xor, a, b);
        let g2 = net.gate(Gate::And, g1, b);
        let g3 = net.gate(Gate::Or, g2, a);
        net.mark_output(g3);
        let c = cost_report(&net);
        assert_eq!(c.bootstraps, 3);
        assert_eq!(c.critical_path_units, 3);
        assert_eq!(c.node_ranks[g1], 3);
        assert_eq!(c.node_ranks[g2], 2);
        assert_eq!(c.node_ranks[g3], 1);
        assert_eq!(c.node_ranks[a], 3, "source rank = longest chain below");
    }

    #[test]
    fn cost_ranks_charge_mux_as_two_units() {
        let mut net = CircuitNetlist::new();
        let s = net.input();
        let a = net.input();
        let b = net.input();
        let m = net.mux(s, a, b);
        let g = net.gate(Gate::And, m, a);
        net.mark_output(g);
        let c = cost_report(&net);
        assert_eq!(c.critical_path_units, 3);
        assert_eq!(c.node_ranks[m], 3, "two mux units + the AND");
        assert_eq!(c.node_ranks[s], 3);
        assert_eq!(c.node_ranks[a], 3, "a feeds the first mux unit");
        assert_eq!(c.node_ranks[b], 2, "b only feeds the second mux unit");
    }

    #[test]
    fn cost_ranks_not_is_transparent() {
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let g1 = net.gate(Gate::And, a, b);
        let n = net.not(g1);
        let g2 = net.gate(Gate::Or, n, b);
        net.mark_output(g2);
        let c = cost_report(&net);
        assert_eq!(c.node_ranks[n], 1, "NOT carries its consumer's rank");
        assert_eq!(c.node_ranks[g1], 2);
        assert_eq!(c.critical_path_units, 2);
    }

    #[test]
    fn noise_resets_at_each_bootstrap() {
        let model = NoiseModel::new(&ParameterSet::TEST_FAST, 2);
        let mut net = CircuitNetlist::new();
        let a = net.input();
        let b = net.input();
        let mut g = net.gate(Gate::And, a, b);
        for _ in 0..20 {
            g = net.gate(Gate::And, g, b);
        }
        net.mark_output(g);
        let r = noise_report(&net, model);
        // A 21-gate chain's output variance equals a single gate's.
        assert_eq!(r.node_variance[g], model.v_bootstrapped());
        // …but its union failure bound is larger than a single gate's.
        let single = noise_report(&half_adder(), model);
        assert!(r.outputs[0].failure_prob >= single.outputs[1].failure_prob);
        assert!(r.outputs[0].failure_prob <= 1.0);
    }

    #[test]
    fn noise_constants_are_noiseless() {
        let model = NoiseModel::new(&ParameterSet::TEST_FAST, 2);
        let mut net = CircuitNetlist::new();
        let c = net.constant(true);
        let n = net.not(c);
        net.mark_output(n);
        let r = noise_report(&net, model);
        assert_eq!(r.node_variance[n], 0.0);
        assert_eq!(r.outputs[0].failure_prob, 0.0);
    }

    #[test]
    fn tail_bound_behaves() {
        assert_eq!(NoiseModel::tail_bound(0.125, 0.0), 0.0);
        let loose = NoiseModel::tail_bound(0.125, 1.0);
        assert_eq!(loose, 1.0, "hopeless variance clamps to certainty");
        let p1 = NoiseModel::tail_bound(0.125, 1e-4);
        let p2 = NoiseModel::tail_bound(0.25, 1e-4);
        assert!(p2 < p1, "larger margin, smaller failure bound");
        assert!(p1 > 0.0 && p1 < 1.0);
    }

    #[test]
    fn analyze_ties_the_sections_together() {
        let net = half_adder();
        let report = analyze(&net, &ParameterSet::TEST_FAST, 2);
        assert!(report.is_clean(Severity::Info));
        assert_eq!(report.worst_severity(), None);
        assert_eq!(report.cost.bootstraps, 2);
        assert_eq!(report.noise.outputs.len(), 2);
        assert!(report.max_failure_prob() < DEFAULT_FAILURE_BUDGET);
    }

    #[test]
    fn policy_default_rejects_errors_only() {
        let policy = AnalysisPolicy::default();
        assert_eq!(policy.deny, Severity::Error);
        let mut net = half_adder();
        let a = net.input();
        let _dead = net.gate(Gate::Or, 0, a);
        let report = analyze(&net, &ParameterSet::TEST_FAST, 2);
        let worst = report.worst_lint_at_least(policy.deny).expect("dead node");
        assert_eq!(worst.kind, LintKind::DeadNode);
        // A warnings-only netlist passes the default policy.
        let mut warn = CircuitNetlist::new();
        let x = warn.input();
        let t = warn.constant(true);
        let g = warn.gate(Gate::And, x, t);
        warn.mark_output(g);
        let warn_report = analyze(&warn, &ParameterSet::TEST_FAST, 2);
        assert!(warn_report.worst_lint_at_least(policy.deny).is_none());
        assert_eq!(warn_report.worst_severity(), Some(Severity::Warning));
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn model_rejects_bad_unroll() {
        let _ = NoiseModel::new(&ParameterSet::TEST_FAST, 0);
    }

    #[test]
    fn model_variances_are_positive_and_ordered() {
        for p in [
            ParameterSet::MATCHA,
            ParameterSet::TFHE_DEFAULT,
            ParameterSet::TEST_FAST,
            ParameterSet::TEST_MEDIUM,
        ] {
            for unroll in [1, 2, 4] {
                let m = NoiseModel::new(&p, unroll);
                assert!(m.v_fresh() > 0.0);
                assert!(m.v_blind_rotate() > 0.0);
                assert!(m.v_key_switch() > 0.0);
                assert!(m.v_mod_switch() > 0.0);
                assert!(m.v_mux_output() > m.v_bootstrapped());
            }
        }
    }
}
