//! Homomorphic Boolean gates (the paper's `Logic[c0, c1]` operations).
//!
//! Every two-input gate is a linear combination of the input ciphertexts
//! and a trivial constant, followed by a gate bootstrap that simultaneously
//! computes the sign decision and resets the noise. `NOT` is a free
//! negation; `MUX` composes two bootstraps and a key switch as in the TFHE
//! reference library.

use crate::bootstrap::BootstrapKit;
use crate::lwe::LweCiphertext;
use crate::params::ParameterSet;
use crate::profile::{self, Phase};
use crate::secret::ClientKey;
use matcha_fft::FftEngine;
use matcha_math::Torus32;
use rand::Rng;
use std::fmt;

/// The two-input gates MATCHA evaluates (paper §5 studies all of them and
/// reports NAND, whose latency is representative).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical NAND.
    Nand,
    /// Logical NOR.
    Nor,
    /// Logical XOR.
    Xor,
    /// Logical XNOR.
    Xnor,
    /// `a ∧ ¬b`.
    AndYN,
    /// `¬a ∧ b`.
    AndNY,
    /// `a ∨ ¬b`.
    OrYN,
    /// `¬a ∨ b`.
    OrNY,
}

impl Gate {
    /// All supported two-input gates.
    pub const ALL: [Gate; 10] = [
        Gate::And,
        Gate::Or,
        Gate::Nand,
        Gate::Nor,
        Gate::Xor,
        Gate::Xnor,
        Gate::AndYN,
        Gate::AndNY,
        Gate::OrYN,
        Gate::OrNY,
    ];

    /// The plaintext truth table.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            Gate::And => a && b,
            Gate::Or => a || b,
            Gate::Nand => !(a && b),
            Gate::Nor => !(a || b),
            Gate::Xor => a ^ b,
            Gate::Xnor => !(a ^ b),
            Gate::AndYN => a && !b,
            Gate::AndNY => !a && b,
            Gate::OrYN => a || !b,
            Gate::OrNY => !a || b,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Gate::And => "AND",
            Gate::Or => "OR",
            Gate::Nand => "NAND",
            Gate::Nor => "NOR",
            Gate::Xor => "XOR",
            Gate::Xnor => "XNOR",
            Gate::AndYN => "ANDYN",
            Gate::AndNY => "ANDNY",
            Gate::OrYN => "ORYN",
            Gate::OrNY => "ORNY",
        };
        f.write_str(name)
    }
}

/// The evaluator's key: bootstrapping + key-switching keys bound to an FFT
/// engine, exposing the Boolean gate API.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{ClientKey, ServerKey, params::ParameterSet};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let engine = F64Fft::new(client.params().ring_degree);
/// let server = ServerKey::new(&client, engine, &mut rng);
/// let (a, b) = (client.encrypt(true), client.encrypt(false));
/// let c = server.nand(&a, &b);
/// assert!(client.decrypt(&c));
/// ```
#[derive(Clone, Debug)]
pub struct ServerKey<E: FftEngine> {
    kit: BootstrapKit<E>,
    engine: E,
}

/// The gate output plaintext amplitude `1/8`.
const GATE_MU: Torus32 = Torus32::from_raw(1 << 29);
/// `1/8` as the constant of gate linear parts.
const EIGHTH: Torus32 = Torus32::from_raw(1 << 29);
/// `1/4`, used by XOR/XNOR.
const QUARTER: Torus32 = Torus32::from_raw(1 << 30);

impl<E: FftEngine> ServerKey<E> {
    /// Builds a server key with the classic (`m = 1`) bootstrapping flow.
    pub fn new<R: Rng>(client: &ClientKey, engine: E, rng: &mut R) -> Self {
        Self::with_unrolling(client, engine, 1, rng)
    }

    /// Builds a server key with BKU factor `m` (paper §4.2).
    ///
    /// # Panics
    ///
    /// Panics if `unroll ∉ 1..=8` or the engine's ring degree disagrees
    /// with the client parameters.
    pub fn with_unrolling<R: Rng>(
        client: &ClientKey,
        engine: E,
        unroll: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            engine.ring_degree(),
            client.params().ring_degree,
            "engine ring degree must match parameters"
        );
        let kit = BootstrapKit::generate(client, &engine, unroll, rng);
        Self { kit, engine }
    }

    /// The parameter set.
    pub fn params(&self) -> &ParameterSet {
        self.kit.params()
    }

    /// The BKU factor `m`.
    pub fn unroll(&self) -> usize {
        self.kit.unroll()
    }

    /// The underlying bootstrap machinery (for noise experiments).
    pub fn kit(&self) -> &BootstrapKit<E> {
        &self.kit
    }

    /// The FFT engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// A trivial (noiseless, unkeyed) encryption of a Boolean constant.
    pub fn trivial(&self, value: bool) -> LweCiphertext {
        LweCiphertext::trivial(Torus32::from_bool(value), self.params().lwe_dimension)
    }

    fn linear_part(&self, gate: Gate, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let n = self.params().lwe_dimension;
        let mut out = LweCiphertext::trivial(Torus32::ZERO, n);
        self.linear_part_into(gate, a, b, &mut out);
        out
    }

    /// The gate's linear part written into a caller-owned buffer — no
    /// allocation once `out`'s mask has capacity `n`.
    fn linear_part_into(
        &self,
        gate: Gate,
        a: &LweCiphertext,
        b: &LweCiphertext,
        out: &mut LweCiphertext,
    ) {
        profile::timed(Phase::Other, || {
            let n = self.params().lwe_dimension;
            match gate {
                Gate::And | Gate::Or => {
                    out.assign_trivial(if gate == Gate::And { -EIGHTH } else { EIGHTH }, n);
                    out.add_assign(a);
                    out.add_assign(b);
                }
                Gate::Nand | Gate::Nor => {
                    out.assign_trivial(if gate == Gate::Nand { EIGHTH } else { -EIGHTH }, n);
                    out.sub_assign(a);
                    out.sub_assign(b);
                }
                Gate::Xor => {
                    out.assign_trivial(Torus32::ZERO, n);
                    out.add_assign(a);
                    out.add_assign(b);
                    out.scale_assign(2);
                    out.add_body(QUARTER);
                }
                Gate::Xnor => {
                    out.assign_trivial(Torus32::ZERO, n);
                    out.add_assign(a);
                    out.add_assign(b);
                    out.scale_assign(-2);
                    out.add_body(-QUARTER);
                }
                Gate::AndYN | Gate::OrYN => {
                    out.assign_trivial(if gate == Gate::AndYN { -EIGHTH } else { EIGHTH }, n);
                    out.add_assign(a);
                    out.sub_assign(b);
                }
                Gate::AndNY | Gate::OrNY => {
                    out.assign_trivial(if gate == Gate::AndNY { -EIGHTH } else { EIGHTH }, n);
                    out.sub_assign(a);
                    out.add_assign(b);
                }
            }
        })
    }

    /// Applies any two-input gate: linear part + bootstrap + key switch.
    pub fn apply(&self, gate: Gate, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        let lin = self.linear_part(gate, a, b);
        self.kit.bootstrap(&self.engine, &lin, GATE_MU)
    }

    /// Builds a reusable workspace for [`ServerKey::apply_into`].
    pub fn make_scratch(&self) -> crate::scratch::BootstrapScratch<E> {
        self.kit.make_scratch(&self.engine)
    }

    /// [`ServerKey::apply`] into a caller-owned output through the scratch:
    /// a warmed call evaluates the whole gate — linear part, blind
    /// rotation, sample extraction, key switch — with zero heap
    /// allocations, and produces bit-identical results.
    pub fn apply_into(
        &self,
        gate: Gate,
        a: &LweCiphertext,
        b: &LweCiphertext,
        out: &mut LweCiphertext,
        scratch: &mut crate::scratch::BootstrapScratch<E>,
    ) {
        let mut lin = std::mem::take(&mut scratch.lin);
        self.linear_part_into(gate, a, b, &mut lin);
        self.kit
            .bootstrap_into(&self.engine, &lin, GATE_MU, out, scratch);
        scratch.lin = lin;
    }

    /// Logical AND.
    pub fn and(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::And, a, b)
    }

    /// Logical OR.
    pub fn or(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::Or, a, b)
    }

    /// Logical NAND (the gate the paper reports throughput for).
    pub fn nand(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::Nand, a, b)
    }

    /// Logical NOR.
    pub fn nor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::Nor, a, b)
    }

    /// Logical XOR.
    pub fn xor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::Xor, a, b)
    }

    /// Logical XNOR.
    pub fn xnor(&self, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        self.apply(Gate::Xnor, a, b)
    }

    /// Logical NOT — a free negation, no bootstrap (paper §5: "NOT has no
    /// bootstrapping at all").
    pub fn not(&self, a: &LweCiphertext) -> LweCiphertext {
        profile::timed(Phase::Other, || -a.clone())
    }

    /// [`ServerKey::not`] into a caller-owned output — no allocation once
    /// `out`'s mask has capacity for `a`'s dimension.
    pub fn not_into(&self, a: &LweCiphertext, out: &mut LweCiphertext) {
        profile::timed(Phase::Other, || {
            out.copy_from(a);
            out.neg_assign();
        })
    }

    /// Homomorphic multiplexer `sel ? a : b`, built from two bootstraps and
    /// one key switch as in the TFHE reference library.
    pub fn mux(&self, sel: &LweCiphertext, a: &LweCiphertext, b: &LweCiphertext) -> LweCiphertext {
        // u1 = AND(sel, a), u2 = AND(¬sel, b) — both under the extracted key.
        let lin1 = self.linear_part(Gate::And, sel, a);
        let u1 = self
            .kit
            .bootstrap_to_extracted(&self.engine, &lin1, GATE_MU);
        let lin2 = self.linear_part(Gate::AndNY, sel, b);
        let u2 = self
            .kit
            .bootstrap_to_extracted(&self.engine, &lin2, GATE_MU);
        let n_extract = u1.dimension();
        let sum = profile::timed(Phase::Other, || {
            u1 + &u2 + &LweCiphertext::trivial(EIGHTH, n_extract)
        });
        self.kit.key_switch_key().switch(&sum)
    }

    /// [`ServerKey::mux`] into a caller-owned output through the scratch:
    /// both bootstraps, the recombination and the key switch run with zero
    /// heap allocations once warmed, and the result is bit-identical to the
    /// allocating path.
    pub fn mux_into(
        &self,
        sel: &LweCiphertext,
        a: &LweCiphertext,
        b: &LweCiphertext,
        out: &mut LweCiphertext,
        scratch: &mut crate::scratch::BootstrapScratch<E>,
    ) {
        let mut lin = std::mem::take(&mut scratch.lin);
        let mut u1 = std::mem::take(&mut scratch.extracted);
        let mut u2 = std::mem::take(&mut scratch.extracted2);
        // u1 = AND(sel, a), u2 = AND(¬sel, b) — both under the extracted key.
        self.linear_part_into(Gate::And, sel, a, &mut lin);
        self.kit
            .bootstrap_to_extracted_into(&self.engine, &lin, GATE_MU, &mut u1, scratch);
        self.linear_part_into(Gate::AndNY, sel, b, &mut lin);
        self.kit
            .bootstrap_to_extracted_into(&self.engine, &lin, GATE_MU, &mut u2, scratch);
        // u1 + u2 + (0, 1/8): same wrapping adds as the allocating `mux`.
        profile::timed(Phase::Other, || {
            u1.add_assign(&u2);
            u1.add_body(EIGHTH);
        });
        self.kit.key_switch_key().switch_into(&u1, out);
        scratch.lin = lin;
        scratch.extracted = u1;
        scratch.extracted2 = u2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(unroll: usize) -> (ClientKey, ServerKey<F64Fft>, StdRng) {
        let mut rng = StdRng::seed_from_u64(1000 + unroll as u64);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = F64Fft::new(client.params().ring_degree);
        let server = ServerKey::with_unrolling(&client, engine, unroll, &mut rng);
        (client, server, rng)
    }

    #[test]
    fn all_gates_match_truth_tables() {
        let (client, server, mut rng) = setup(1);
        for gate in Gate::ALL {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let ca = client.encrypt_with(a, &mut rng);
                let cb = client.encrypt_with(b, &mut rng);
                let out = server.apply(gate, &ca, &cb);
                assert_eq!(client.decrypt(&out), gate.eval(a, b), "{gate}({a}, {b})");
            }
        }
    }

    #[test]
    fn gates_with_unrolling_m2() {
        let (client, server, mut rng) = setup(2);
        for gate in [Gate::Nand, Gate::Xor] {
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let ca = client.encrypt_with(a, &mut rng);
                let cb = client.encrypt_with(b, &mut rng);
                assert_eq!(
                    client.decrypt(&server.apply(gate, &ca, &cb)),
                    gate.eval(a, b),
                    "{gate}({a}, {b}) m=2"
                );
            }
        }
    }

    #[test]
    fn not_gate_is_free_and_correct() {
        let (client, server, mut rng) = setup(1);
        for v in [true, false] {
            let c = client.encrypt_with(v, &mut rng);
            assert_eq!(client.decrypt(&server.not(&c)), !v);
        }
    }

    #[test]
    fn mux_selects() {
        let (client, server, mut rng) = setup(1);
        for sel in [true, false] {
            for (a, b) in [(true, false), (false, true), (true, true), (false, false)] {
                let cs = client.encrypt_with(sel, &mut rng);
                let ca = client.encrypt_with(a, &mut rng);
                let cb = client.encrypt_with(b, &mut rng);
                let out = server.mux(&cs, &ca, &cb);
                assert_eq!(
                    client.decrypt(&out),
                    if sel { a } else { b },
                    "sel={sel} a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn mux_into_is_bit_identical_to_mux() {
        let (client, server, mut rng) = setup(1);
        let mut scratch = server.make_scratch();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, 1);
        for sel in [true, false] {
            for (a, b) in [(true, false), (false, true)] {
                let cs = client.encrypt_with(sel, &mut rng);
                let ca = client.encrypt_with(a, &mut rng);
                let cb = client.encrypt_with(b, &mut rng);
                let eager = server.mux(&cs, &ca, &cb);
                server.mux_into(&cs, &ca, &cb, &mut out, &mut scratch);
                assert_eq!(out, eager, "sel={sel} a={a} b={b}");
            }
        }
    }

    #[test]
    fn not_into_matches_not() {
        let (client, server, mut rng) = setup(1);
        let mut out = LweCiphertext::trivial(Torus32::ZERO, 1);
        for v in [true, false] {
            let c = client.encrypt_with(v, &mut rng);
            server.not_into(&c, &mut out);
            assert_eq!(out, server.not(&c));
            assert_eq!(client.decrypt(&out), !v);
        }
    }

    #[test]
    fn trivial_constants_feed_gates() {
        let (client, server, mut rng) = setup(1);
        let ct = server.trivial(true);
        let ca = client.encrypt_with(true, &mut rng);
        assert!(client.decrypt(&server.and(&ca, &ct)));
        assert!(!client.decrypt(&server.nand(&ca, &ct)));
    }

    #[test]
    fn gate_chain_survives_noise() {
        // A chain of dependent gates: each output feeds the next.
        let (client, server, mut rng) = setup(2);
        let mut acc = client.encrypt_with(true, &mut rng);
        let mut expected = true;
        for i in 0..6 {
            let fresh_val = i % 2 == 0;
            let fresh = client.encrypt_with(fresh_val, &mut rng);
            acc = server.xor(&acc, &fresh);
            expected ^= fresh_val;
            assert_eq!(client.decrypt(&acc), expected, "step {i}");
        }
    }

    #[test]
    fn nand_with_integer_engine() {
        let mut rng = StdRng::seed_from_u64(77);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let engine = ApproxIntFft::new(client.params().ring_degree, 45);
        let server = ServerKey::with_unrolling(&client, engine, 2, &mut rng);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let ca = client.encrypt_with(a, &mut rng);
            let cb = client.encrypt_with(b, &mut rng);
            assert_eq!(client.decrypt(&server.nand(&ca, &cb)), !(a && b));
        }
    }

    #[test]
    fn gate_display_names() {
        assert_eq!(Gate::Nand.to_string(), "NAND");
        assert_eq!(Gate::AndYN.to_string(), "ANDYN");
    }
}
