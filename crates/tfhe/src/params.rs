//! TFHE parameter sets.
//!
//! The paper evaluates with the 110-bit-security parameters of the TFHE
//! reference library: ring degree `N = 1024`, TLWE dimension `k = 1`,
//! decomposition base `Bg = 1024` with length `ℓ = 3` (§5). The remaining
//! values (LWE dimension, noise rates, key-switch base/length) come from the
//! library's default gate-bootstrapping set. Small `TEST_*` sets keep the
//! unit-test suite fast; they offer no security.

/// A complete TFHE gate-bootstrapping parameter set.
///
/// # Examples
///
/// ```
/// use matcha_tfhe::params::ParameterSet;
///
/// let p = ParameterSet::MATCHA;
/// assert_eq!(p.ring_degree, 1024);
/// assert_eq!(p.decomp_levels, 3);
/// p.validate().expect("paper parameters are consistent");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParameterSet {
    /// LWE dimension `n` (size of the gate-level ciphertext mask).
    pub lwe_dimension: usize,
    /// Ring degree `N` of `T_N[X]` (power of two).
    pub ring_degree: usize,
    /// Gaussian noise stdev of fresh gate-level LWE samples (and of the
    /// key-switching key).
    pub lwe_noise_stdev: f64,
    /// Gaussian noise stdev of the ring (bootstrapping-key) samples.
    pub ring_noise_stdev: f64,
    /// `log2(Bg)`: TGSW gadget decomposition base.
    pub decomp_base_log: u32,
    /// `ℓ`: TGSW gadget decomposition length.
    pub decomp_levels: usize,
    /// `log2` of the key-switching decomposition base.
    pub ks_base_log: u32,
    /// Key-switching decomposition length `t`.
    pub ks_levels: usize,
}

impl ParameterSet {
    /// The paper's evaluation parameters (§5): 110-bit security,
    /// `N = 1024`, `k = 1`, `Bg = 1024`, `ℓ = 3`; LWE side from the TFHE
    /// library defaults.
    pub const MATCHA: Self = Self {
        lwe_dimension: 500,
        ring_degree: 1024,
        lwe_noise_stdev: 2.44e-5,
        ring_noise_stdev: 7.18e-9,
        decomp_base_log: 10,
        decomp_levels: 3,
        ks_base_log: 2,
        ks_levels: 8,
    };

    /// The TFHE reference library's default gate-bootstrapping set
    /// (`ℓ = 2`), for cross-checking against the upstream implementation.
    pub const TFHE_DEFAULT: Self = Self {
        decomp_levels: 2,
        ..Self::MATCHA
    };

    /// Fast, insecure parameters for unit tests: small dimensions, tiny
    /// noise, comfortable correctness margins.
    pub const TEST_FAST: Self = Self {
        lwe_dimension: 16,
        ring_degree: 256,
        lwe_noise_stdev: 1e-7,
        ring_noise_stdev: 1e-9,
        decomp_base_log: 8,
        decomp_levels: 3,
        ks_base_log: 2,
        ks_levels: 8,
    };

    /// Medium-size insecure parameters: large enough to exercise realistic
    /// noise growth, small enough for integration tests.
    pub const TEST_MEDIUM: Self = Self {
        lwe_dimension: 64,
        ring_degree: 512,
        lwe_noise_stdev: 1e-6,
        ring_noise_stdev: 1e-9,
        decomp_base_log: 9,
        decomp_levels: 3,
        ks_base_log: 2,
        ks_levels: 8,
    };

    /// `2N`: the order of `X` in the negacyclic ring, and the modulus the
    /// bootstrap rounding step switches to.
    #[inline]
    pub const fn two_n(&self) -> u32 {
        2 * self.ring_degree as u32
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// non-power-of-two ring degree, zero dimensions, decompositions that
    /// exceed the 32-bit torus, or non-positive noise rates.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ring_degree.is_power_of_two() || self.ring_degree < 4 {
            return Err(format!(
                "ring degree {} must be a power of two ≥ 4",
                self.ring_degree
            ));
        }
        if self.lwe_dimension == 0 {
            return Err("lwe dimension must be nonzero".into());
        }
        if self.decomp_levels == 0 || self.decomp_base_log == 0 {
            return Err("TGSW decomposition must be nonzero".into());
        }
        if self.decomp_base_log as usize * self.decomp_levels > 32 {
            return Err(format!(
                "TGSW decomposition {}×{} exceeds the 32-bit torus",
                self.decomp_base_log, self.decomp_levels
            ));
        }
        if self.ks_levels == 0 || self.ks_base_log == 0 {
            return Err("key-switch decomposition must be nonzero".into());
        }
        if self.ks_base_log as usize * self.ks_levels > 32 {
            return Err(format!(
                "key-switch decomposition {}×{} exceeds the 32-bit torus",
                self.ks_base_log, self.ks_levels
            ));
        }
        if self.lwe_noise_stdev <= 0.0 || self.ring_noise_stdev <= 0.0 {
            return Err("noise rates must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in [
            ParameterSet::MATCHA,
            ParameterSet::TFHE_DEFAULT,
            ParameterSet::TEST_FAST,
            ParameterSet::TEST_MEDIUM,
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn matcha_matches_paper_section_5() {
        let p = ParameterSet::MATCHA;
        assert_eq!(p.ring_degree, 1024);
        assert_eq!(1u32 << p.decomp_base_log, 1024); // Bg = 1024
        assert_eq!(p.decomp_levels, 3); // ℓ = 3
        assert_eq!(p.two_n(), 2048);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = ParameterSet::MATCHA;
        p.ring_degree = 1000;
        assert!(p.validate().is_err());

        let mut p = ParameterSet::MATCHA;
        p.decomp_base_log = 16;
        p.decomp_levels = 3;
        assert!(p.validate().is_err());

        let mut p = ParameterSet::MATCHA;
        p.lwe_noise_stdev = 0.0;
        assert!(p.validate().is_err());
    }
}
