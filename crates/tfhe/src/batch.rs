//! Batched gate evaluation across OS threads.
//!
//! The paper's throughput metric (Figure 10) assumes many independent
//! gates in flight — MATCHA runs 8 bootstrapping pipelines, the GPU
//! batches ciphertexts, and the CPU baseline uses its 8 cores. This module
//! is the software counterpart: it shards a batch of independent gate
//! evaluations over `std::thread` workers sharing one [`ServerKey`], and
//! reports the achieved gates/s, giving this library a measured point on
//! the Figure 10 axis.

use crate::gates::{Gate, ServerKey};
use crate::lwe::LweCiphertext;
use matcha_fft::FftEngine;
use std::time::Instant;

/// The result of a batched run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Gate outputs, in input order.
    pub outputs: Vec<LweCiphertext>,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_s: f64,
    /// Achieved throughput in gates per second.
    pub gates_per_second: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// Evaluates the same two-input gate over a batch of independent operand
/// pairs, sharded across `threads` workers.
///
/// # Panics
///
/// Panics if `threads` is 0.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = ServerKey::new(&client, F64Fft::new(1024), &mut rng);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// let result = batch::run_gate_batch(&server, Gate::Nand, &pairs, 8);
/// println!("{:.0} gates/s", result.gates_per_second);
/// ```
pub fn run_gate_batch<E>(
    server: &ServerKey<E>,
    gate: Gate,
    pairs: &[(LweCiphertext, LweCiphertext)],
    threads: usize,
) -> BatchResult
where
    E: FftEngine + Sync,
    E::Spectrum: Sync,
{
    assert!(threads > 0, "need at least one worker");
    let t0 = Instant::now();
    let threads = threads.min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    let mut outputs: Vec<Option<LweCiphertext>> = vec![None; pairs.len()];

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<LweCiphertext>] = &mut outputs;
        for (w, work) in pairs.chunks(chunk).enumerate() {
            let (slot, rest) = remaining.split_at_mut(work.len());
            remaining = rest;
            let _ = w;
            scope.spawn(move || {
                for ((a, b), out) in work.iter().zip(slot.iter_mut()) {
                    *out = Some(server.apply(gate, a, b));
                }
            });
        }
    });

    let elapsed_s = t0.elapsed().as_secs_f64();
    let outputs: Vec<LweCiphertext> =
        outputs.into_iter().map(|o| o.expect("worker filled every slot")).collect();
    let gates_per_second = if elapsed_s > 0.0 {
        pairs.len() as f64 / elapsed_s
    } else {
        f64::INFINITY
    };
    BatchResult { outputs, elapsed_s, gates_per_second, threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs(
        client: &ClientKey,
        rng: &mut StdRng,
        count: usize,
    ) -> (Vec<(bool, bool)>, Vec<(crate::LweCiphertext, crate::LweCiphertext)>) {
        let plain: Vec<(bool, bool)> =
            (0..count).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
        let enc = plain
            .iter()
            .map(|&(a, b)| (client.encrypt_with(a, rng), client.encrypt_with(b, rng)))
            .collect();
        (plain, enc)
    }

    #[test]
    fn batch_outputs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(81);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (plain, enc) = inputs(&client, &mut rng, 10);
        let result = run_gate_batch(&server, Gate::Nand, &enc, 4);
        assert_eq!(result.outputs.len(), 10);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), !(a & b));
        }
        assert!(result.gates_per_second > 0.0);
    }

    #[test]
    fn single_thread_equals_multi_thread_results() {
        let mut rng = StdRng::seed_from_u64(82);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server =
            ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 6);
        let seq = run_gate_batch(&server, Gate::Xor, &enc, 1);
        let par = run_gate_batch(&server, Gate::Xor, &enc, 3);
        for (s, p) in seq.outputs.iter().zip(par.outputs.iter()) {
            assert_eq!(client.decrypt(s), client.decrypt(p));
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let mut rng = StdRng::seed_from_u64(83);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 2);
        let result = run_gate_batch(&server, Gate::And, &enc, 16);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.threads <= 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let mut rng = StdRng::seed_from_u64(84);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let _ = run_gate_batch(&server, Gate::And, &[], 0);
    }
}
