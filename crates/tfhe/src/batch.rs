//! Batched gate evaluation across OS threads.
//!
//! The paper's throughput metric (Figure 10) assumes many independent
//! gates in flight — MATCHA runs 8 bootstrapping pipelines, the GPU
//! batches ciphertexts, and the CPU baseline uses its 8 cores. This module
//! is the software counterpart, in two forms:
//!
//! * [`run_gate_batch`] shards one batch over scoped workers, each holding
//!   a private [`BootstrapScratch`](crate::scratch::BootstrapScratch) so
//!   every gate after its first runs allocation-free;
//! * [`GateBatchPool`] keeps those workers (and their warmed scratches)
//!   **alive across batches** — the software analogue of MATCHA's eight
//!   always-resident bootstrapping pipelines, and the fix for the seed
//!   implementation's spawn-per-call sharding.
//!
//! Pool tasks pass operands **by index** into a shared [`ValueSlab`]
//! rather than cloning ciphertexts into every task: a [`SlabTask`] binds a
//! [`GateTask`] (node indices only) to the slab it reads from and the slot
//! it writes to, and one [`GateBatchPool::run_tasks`] dispatch may mix
//! tasks over several circuits' slabs — which is how the circuit server
//! interleaves every in-flight circuit's ready wave into one batch.

use crate::faults::{FaultAction, FaultPlan};
use crate::gates::{Gate, ServerKey};
use crate::lwe::LweCiphertext;
use crate::scratch::BootstrapScratch;
use matcha_fft::FftEngine;
use matcha_math::Torus32;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A write-once slab of ciphertext values shared between a dispatcher and
/// the pool workers — one slot per circuit node. Operands are passed **by
/// index** into the slab instead of being cloned into every task, so a
/// wave of gates reading the same value shares one ciphertext. Each slot
/// is set exactly once (by the dispatcher for sources and free `NOT`s, by
/// the worker that evaluated the node otherwise) and read only after the
/// dependency order guarantees it is present.
pub struct ValueSlab {
    slots: Box<[OnceLock<LweCiphertext>]>,
    /// Circuit identity for fault scripting: the
    /// [`CircuitServer`](crate::server::CircuitServer) tags each admitted
    /// circuit's slab with its admission sequence number, so a
    /// [`FaultPlan`] can address "node `n` of the `k`-th admitted
    /// circuit" deterministically. Standalone slabs are tag 0.
    tag: u64,
}

impl ValueSlab {
    /// A slab of `len` empty slots, tagged 0.
    pub fn new(len: usize) -> Self {
        Self::tagged(len, 0)
    }

    /// A slab of `len` empty slots carrying a circuit `tag` — the key
    /// [`FaultPlan`] sites match on.
    pub fn tagged(len: usize, tag: u64) -> Self {
        Self {
            slots: (0..len).map(|_| OnceLock::new()).collect(),
            tag,
        }
    }

    /// The circuit tag fault sites are keyed by.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the slab has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Stores the value of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`, or if the slot was already
    /// written — every node's value is computed exactly once.
    pub fn set(&self, index: usize, value: LweCiphertext) {
        assert!(
            self.slots[index].set(value).is_ok(),
            "value slot {index} written twice"
        );
    }

    /// The value of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`, or if the slot has not been
    /// written — an operand referenced before its wave completed.
    pub fn get(&self, index: usize) -> &LweCiphertext {
        self.slots[index]
            .get()
            .unwrap_or_else(|| panic!("value slot {index} not yet computed"))
    }

    /// The value of node `index`, if already computed.
    pub fn try_get(&self, index: usize) -> Option<&LweCiphertext> {
        self.slots[index].get()
    }

    /// Moves the value out of slot `index` (requires unique ownership of
    /// the slab, i.e. after every worker dropped its handle).
    pub fn take(&mut self, index: usize) -> Option<LweCiphertext> {
        self.slots[index].take()
    }
}

/// One heterogeneous unit of pool work: any gate the circuit layer emits,
/// with **by-index operands** — the fields are node indices into the
/// [`ValueSlab`] the task is dispatched against, not owned ciphertexts.
/// A wave of a [`CircuitNetlist`](crate::circuit::CircuitNetlist) is a
/// mixed batch of these, dispatched with [`GateBatchPool::run_tasks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateTask {
    /// A two-input bootstrapped gate (one bootstrap + key switch).
    Binary {
        /// The gate to evaluate.
        gate: Gate,
        /// Left operand node.
        a: usize,
        /// Right operand node.
        b: usize,
    },
    /// Free negation — no bootstrap.
    Not {
        /// The operand node.
        a: usize,
    },
    /// `sel ? a : b` — two bootstraps + one key switch.
    Mux {
        /// The selector node.
        sel: usize,
        /// Node taken when `sel` is true.
        a: usize,
        /// Node taken when `sel` is false.
        b: usize,
    },
}

impl GateTask {
    /// Evaluates the task into `out` through `scratch`, reading operands
    /// from `slab` by index — the worker inner loop of the pool.
    /// Allocation-free once the scratch and `out` are warmed, for every
    /// variant: operands are borrowed from the slab, never cloned.
    ///
    /// # Panics
    ///
    /// Panics if an operand slot has not been computed yet.
    pub fn apply_into<E: FftEngine>(
        &self,
        server: &ServerKey<E>,
        slab: &ValueSlab,
        out: &mut LweCiphertext,
        scratch: &mut BootstrapScratch<E>,
    ) {
        match *self {
            GateTask::Binary { gate, a, b } => {
                server.apply_into(gate, slab.get(a), slab.get(b), out, scratch)
            }
            GateTask::Not { a } => server.not_into(slab.get(a), out),
            GateTask::Mux { sel, a, b } => {
                server.mux_into(slab.get(sel), slab.get(a), slab.get(b), out, scratch)
            }
        }
    }
}

/// One dispatchable task: a by-index [`GateTask`] bound to the slab its
/// indices refer to, plus the node slot its result is stored at. Batches
/// may freely mix tasks over *different* slabs — that is how the server
/// interleaves waves of several in-flight circuits into one dispatch.
#[derive(Clone)]
pub struct SlabTask {
    /// The value slab `task`'s indices point into.
    pub slab: Arc<ValueSlab>,
    /// Slot the result is stored at ([`ValueSlab::set`] by the worker).
    pub node: usize,
    /// The gate work itself.
    pub task: GateTask,
}

/// Per-batch outcome of [`GateBatchPool::run_tasks`]. Successes are not
/// listed — a task that does not appear in `failures` has stored its
/// result in its slab slot.
#[derive(Clone, Debug)]
pub struct DispatchResult {
    /// `(batch index, panic message)` for every task that panicked in a
    /// worker, ascending by index. Failures are *per task*: the rest of
    /// the batch still completes, so a dispatcher interleaving several
    /// circuits can fault only the circuit that owns the failing task.
    pub failures: Vec<(usize, String)>,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_s: f64,
    /// Worker threads serving the batch.
    pub threads: usize,
}

/// The result of a batched run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Gate outputs, in input order.
    pub outputs: Vec<LweCiphertext>,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_s: f64,
    /// Achieved throughput in gates per second.
    pub gates_per_second: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchResult {
    /// Throughput of `gates` outputs over `elapsed_s` seconds.
    ///
    /// Well-defined on the whole domain: an empty batch is 0 gates/s, and a
    /// zero (or sub-tick) elapsed time — possible on coarse clocks when the
    /// batch is trivially small — is clamped to one nanosecond, the
    /// resolution of [`Instant`], so the result is finite ("at least this
    /// fast") instead of `f64::INFINITY`.
    pub fn throughput(gates: usize, elapsed_s: f64) -> f64 {
        if gates == 0 {
            0.0
        } else {
            gates as f64 / elapsed_s.max(1e-9)
        }
    }
}

fn finish_batch(outputs: Vec<LweCiphertext>, t0: Instant, threads: usize) -> BatchResult {
    let elapsed_s = t0.elapsed().as_secs_f64();
    let gates_per_second = BatchResult::throughput(outputs.len(), elapsed_s);
    BatchResult {
        outputs,
        elapsed_s,
        gates_per_second,
        threads,
    }
}

/// Renders a worker panic payload for re-raising on the submitter's thread.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates the same two-input gate over a batch of independent operand
/// pairs, sharded across `threads` scoped workers. Each worker owns one
/// bootstrap scratch for the whole batch, so per-gate heap traffic is
/// limited to the output ciphertexts.
///
/// For repeated batches against the same key, prefer [`GateBatchPool`],
/// which keeps workers and warmed scratches alive between calls.
///
/// # Panics
///
/// Panics if `threads` is 0.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = ServerKey::new(&client, F64Fft::new(1024), &mut rng);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// let result = batch::run_gate_batch(&server, Gate::Nand, &pairs, 8);
/// println!("{:.0} gates/s", result.gates_per_second);
/// ```
pub fn run_gate_batch<E>(
    server: &ServerKey<E>,
    gate: Gate,
    pairs: &[(LweCiphertext, LweCiphertext)],
    threads: usize,
) -> BatchResult
where
    E: FftEngine + Sync,
    E::Spectrum: Sync,
{
    assert!(threads > 0, "need at least one worker");
    let t0 = Instant::now();
    if pairs.is_empty() {
        // No work: `pairs.chunks(0)` below would panic, and spawning
        // workers for nothing is pointless. Report an empty batch.
        return finish_batch(Vec::new(), t0, 0);
    }
    let threads = threads.min(pairs.len());
    let chunk = pairs.len().div_ceil(threads);
    let mut outputs: Vec<Option<LweCiphertext>> = vec![None; pairs.len()];

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<LweCiphertext>] = &mut outputs;
        for work in pairs.chunks(chunk) {
            let (slot, rest) = remaining.split_at_mut(work.len());
            remaining = rest;
            scope.spawn(move || {
                // One scratch and one output buffer per worker: the first
                // gate warms them, the rest of the chunk reuses them.
                let mut scratch = server.make_scratch();
                let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
                for ((a, b), out_slot) in work.iter().zip(slot.iter_mut()) {
                    server.apply_into(gate, a, b, &mut out, &mut scratch);
                    *out_slot = Some(out.clone());
                }
            });
        }
    });

    let outputs: Vec<LweCiphertext> = outputs
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect();
    finish_batch(outputs, t0, threads)
}

/// One queued unit of pool work: a by-index task, the slab it reads from
/// and writes to, and a reply channel. The reply carries `Err(panic
/// message)` when the task panicked in the worker, so the failure is
/// reported on the dispatching thread instead of killing the worker; on
/// `Ok` the result is already stored in `slab[node]`.
struct Job {
    slab: Arc<ValueSlab>,
    node: usize,
    task: GateTask,
    index: usize,
    reply: mpsc::Sender<(usize, Result<(), String>)>,
}

/// A persistent gate-evaluation worker pool sharing one [`ServerKey`].
///
/// Workers are spawned once and hold their warmed
/// [`BootstrapScratch`](crate::scratch::BootstrapScratch) across an
/// arbitrary number of [`GateBatchPool::run`] calls; jobs are pulled from a
/// shared queue, so uneven gate latencies balance automatically. Dropping
/// the pool shuts the workers down.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch::GateBatchPool, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let pool = GateBatchPool::new(server, 8);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// // Both batches reuse the same warmed workers.
/// let nand = pool.run(Gate::Nand, &pairs);
/// let xor = pool.run(Gate::Xor, &pairs);
/// println!("{:.0} / {:.0} gates/s", nand.gates_per_second, xor.gates_per_second);
/// ```
pub struct GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    tx: Option<mpsc::Sender<Job>>,
    /// The pool keeps its own handle on the job queue's receiving end so
    /// (a) sending never fails even if every worker died, and (b) healed
    /// workers can be attached to the same queue.
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    /// Interior mutability so [`GateBatchPool::heal`] can respawn dead
    /// workers from `&self` (dispatchers hold the pool by shared ref).
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
    server: Arc<ServerKey<E>>,
    faults: Option<Arc<FaultPlan>>,
    restarts: AtomicU64,
}

/// One persistent worker: pulls jobs off the shared queue, evaluates them
/// into its warmed scratch, stores results in the job's slab and replies.
/// Extracted as a free function so [`GateBatchPool::heal`] can respawn a
/// replacement attached to the same queue.
fn spawn_worker<E>(
    server: Arc<ServerKey<E>>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    faults: Option<Arc<FaultPlan>>,
) -> JoinHandle<()>
where
    E: FftEngine + Send + Sync + 'static,
{
    std::thread::spawn(move || {
        let mut scratch = server.make_scratch();
        let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
        loop {
            // Hold the lock only to pull the next job. A
            // poisoned lock is recovered rather than cascaded:
            // the queue itself is never left in a torn state by
            // a panicking worker (jobs are popped whole).
            let job = { rx.lock().unwrap_or_else(PoisonError::into_inner).recv() };
            let Ok(job) = job else { break };
            let Job {
                slab,
                node,
                task,
                index,
                reply,
            } = job;
            // Scripted fault sites, consumed one-shot per (tag, node).
            let injected = faults.as_ref().and_then(|plan| plan.take(slab.tag(), node));
            match injected {
                // Death *outside* the per-task catch_unwind: the thread
                // exits holding the job, so its reply sender is dropped
                // unanswered — exactly what a stack overflow or foreign
                // abort looks like from the dispatcher's side. run_tasks
                // detects the lost reply, heals the pool and retries.
                Some(FaultAction::KillWorker) => return,
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Panic) | None => {}
            }
            // Panic isolation: a malformed job (e.g. a
            // mismatched-dimension operand) must not kill the
            // worker or poison anything — the error is shipped
            // back and reported on the dispatcher's thread,
            // and this worker keeps serving. The scratch stays
            // structurally valid across an unwind — every
            // apply re-sizes its buffers — hence the
            // AssertUnwindSafe; the one cost is that buffers
            // mem::take'n by the panicking apply are left
            // empty, so this worker's next task re-warms them
            // (a few allocations, correctness unaffected).
            let result = catch_unwind(AssertUnwindSafe(|| {
                if matches!(injected, Some(FaultAction::Panic)) {
                    panic!("injected fault: task for node {node} panicked in its worker");
                }
                task.apply_into(&server, &slab, &mut out, &mut scratch);
                slab.set(node, out.clone());
            }))
            .map_err(panic_message);
            // Drop our slab handle *before* replying: once the
            // dispatcher has received every reply of a batch,
            // its own Arc over each slab is unique again.
            drop(slab);
            // The receiver may have given up (run() panicked);
            // dropping the result is then the right behavior.
            let _ = reply.send((index, result));
        }
    })
}

impl<E> GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    /// Spawns `threads` persistent workers over a shared server key.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn new(server: Arc<ServerKey<E>>, threads: usize) -> Self {
        Self::build(server, threads, None)
    }

    /// Like [`GateBatchPool::new`], but with a scripted [`FaultPlan`]
    /// wired into every worker — the deterministic fault-injection
    /// harness the robustness tests drive. Production pools use
    /// [`GateBatchPool::new`]; a faultless plan behaves identically
    /// either way.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn with_faults(server: Arc<ServerKey<E>>, threads: usize, faults: Arc<FaultPlan>) -> Self {
        Self::build(server, threads, Some(faults))
    }

    fn build(server: Arc<ServerKey<E>>, threads: usize, faults: Option<Arc<FaultPlan>>) -> Self {
        assert!(threads > 0, "need at least one worker");
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| spawn_worker(Arc::clone(&server), Arc::clone(&rx), faults.clone()))
            .collect();
        Self {
            tx: Some(tx),
            rx,
            workers: Mutex::new(workers),
            threads,
            server,
            faults,
            restarts: AtomicU64::new(0),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers respawned after dying outside the per-task panic isolation
    /// (see [`GateBatchPool::heal`]). 0 in healthy operation.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Self-healing: joins every worker thread that has exited (death
    /// outside the per-task `catch_unwind` — in production a stack
    /// overflow or foreign abort, in tests [`FaultAction::KillWorker`])
    /// and respawns a replacement with a fresh scratch on the same job
    /// queue, so the pool never silently loses capacity. Returns how many
    /// workers were respawned; each bumps [`GateBatchPool::restarts`].
    /// Called automatically by [`GateBatchPool::run_tasks`] when a reply
    /// goes missing; cheap (a `JoinHandle::is_finished` scan) otherwise.
    pub fn heal(&self) -> usize {
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        let mut respawned = 0;
        for slot in workers.iter_mut() {
            if slot.is_finished() {
                let dead = std::mem::replace(
                    slot,
                    spawn_worker(
                        Arc::clone(&self.server),
                        Arc::clone(&self.rx),
                        self.faults.clone(),
                    ),
                );
                let _ = dead.join();
                self.restarts.fetch_add(1, Ordering::Relaxed);
                respawned += 1;
            }
        }
        respawned
    }

    /// The shared server key the workers evaluate under.
    pub fn server(&self) -> &ServerKey<E> {
        &self.server
    }

    /// Evaluates `gate` over all pairs on the persistent workers, returning
    /// outputs in input order. A convenience wrapper over
    /// [`GateBatchPool::run_tasks`] for the homogeneous binary-gate case:
    /// operands are staged into a throwaway [`ValueSlab`] and the outputs
    /// moved back out of it.
    ///
    /// # Panics
    ///
    /// Panics (on this thread, with the pool left healthy) if any job
    /// panicked in a worker.
    pub fn run(&self, gate: Gate, pairs: &[(LweCiphertext, LweCiphertext)]) -> BatchResult {
        let t0 = Instant::now();
        if pairs.is_empty() {
            // Same contract as `run_gate_batch`: an empty batch is a valid
            // request that produces an empty result, not a panic.
            return finish_batch(Vec::new(), t0, 0);
        }
        let n = pairs.len();
        // Slots 0..n hold the left operands, n..2n the right, 2n..3n the
        // outputs.
        let slab = ValueSlab::new(3 * n);
        for (i, (a, b)) in pairs.iter().enumerate() {
            slab.set(i, a.clone());
            slab.set(n + i, b.clone());
        }
        let slab = Arc::new(slab);
        let batch: Vec<SlabTask> = (0..n)
            .map(|i| SlabTask {
                slab: Arc::clone(&slab),
                node: 2 * n + i,
                task: GateTask::Binary {
                    gate,
                    a: i,
                    b: n + i,
                },
            })
            .collect();
        let dispatch = self.run_tasks(&batch);
        // The batch has fully drained either way; re-raise the
        // lowest-index failure so the panic is deterministic.
        if let Some((index, msg)) = dispatch.failures.first() {
            panic!("pool task {index} panicked in a worker: {msg}");
        }
        drop(batch);
        let mut slab = Arc::try_unwrap(slab)
            .ok()
            .expect("batch drained: no worker still holds the slab");
        let outputs: Vec<LweCiphertext> = (0..n)
            .map(|i| slab.take(2 * n + i).expect("worker stored every output"))
            .collect();
        finish_batch(outputs, t0, self.threads)
    }

    /// Dispatches a heterogeneous batch — any mix of binary gates, free
    /// negations and muxes, possibly spanning **several circuits' slabs**
    /// — onto the persistent workers, blocking until every task has been
    /// answered. Each task reads its operands from its slab by index and
    /// stores its result at `node`; nothing is cloned per operand. This is
    /// the form circuit waves are dispatched in: the server fills one
    /// `run_tasks` call with the ready frontier of every in-flight
    /// circuit, and the warmed per-worker scratches keep each task
    /// allocation-free.
    ///
    /// Operands must already be present in their slabs when the batch is
    /// dispatched — tasks within one batch must not depend on each other.
    ///
    /// A task that panics in a worker (e.g. mismatched operand dimensions)
    /// is reported in [`DispatchResult::failures`] rather than raised:
    /// workers survive, nothing is poisoned, the rest of the batch still
    /// completes, and the dispatcher decides which circuit the failure
    /// faults.
    ///
    /// A worker that *dies* mid-batch (exit outside the per-task panic
    /// isolation) is detected by its lost reply, respawned via
    /// [`GateBatchPool::heal`], and the lost task retried once on the
    /// healed pool; only a task lost twice is reported as a failure. The
    /// batch therefore still completes after any single worker death.
    pub fn run_tasks(&self, tasks: &[SlabTask]) -> DispatchResult {
        let t0 = Instant::now();
        if tasks.is_empty() {
            return DispatchResult {
                failures: Vec::new(),
                elapsed_s: t0.elapsed().as_secs_f64(),
                threads: 0,
            };
        }
        let mut done = vec![false; tasks.len()];
        let mut failures: Vec<(usize, String)> = Vec::new();
        self.dispatch_round(tasks, 0..tasks.len(), &mut done, &mut failures);
        // An index with no reply lost its job inside a dying worker (the
        // job — and its reply sender — were dropped unanswered). Heal the
        // pool and retry those tasks once: a scripted KillWorker was
        // consumed when it fired, so the retry runs clean, and a genuine
        // repeat offender is reported instead of retried forever.
        let missing: Vec<usize> = (0..tasks.len()).filter(|&i| !done[i]).collect();
        if !missing.is_empty() {
            self.heal();
            self.dispatch_round(tasks, missing.into_iter(), &mut done, &mut failures);
            for index in (0..tasks.len()).filter(|&i| !done[i]) {
                failures.push((
                    index,
                    "worker died while executing this task (twice; giving up)".to_string(),
                ));
            }
        }
        failures.sort_unstable_by_key(|&(index, _)| index);
        DispatchResult {
            failures,
            elapsed_s: t0.elapsed().as_secs_f64(),
            threads: self.threads,
        }
    }

    /// Sends the tasks at `indices` and drains their replies until every
    /// job of this round is accounted for: answered, or dropped by a dying
    /// worker (each job holds a reply sender, so the reply channel
    /// disconnects exactly when no job of the round is queued or running
    /// any more). The timeout arm covers the one case disconnection cannot:
    /// every worker dead with jobs still sitting in the queue — those
    /// queued jobs keep the reply channel open forever, so a quiet stretch
    /// triggers a heal, which is a cheap `is_finished` scan when nothing
    /// died and restarts the drain when something did.
    fn dispatch_round(
        &self,
        tasks: &[SlabTask],
        indices: impl Iterator<Item = usize>,
        done: &mut [bool],
        failures: &mut Vec<(usize, String)>,
    ) {
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = self.tx.as_ref().expect("pool is live");
        for index in indices {
            let st = &tasks[index];
            tx.send(Job {
                slab: Arc::clone(&st.slab),
                node: st.node,
                task: st.task,
                index,
                reply: reply_tx.clone(),
            })
            .expect("pool holds the queue receiver, sends cannot fail");
        }
        drop(reply_tx);
        loop {
            match reply_rx.recv_timeout(Duration::from_millis(25)) {
                Ok((index, result)) => {
                    done[index] = true;
                    if let Err(msg) = result {
                        failures.push((index, msg));
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.heal();
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

impl<E> Drop for GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.tx.take());
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type EncryptedPairs = Vec<(crate::LweCiphertext, crate::LweCiphertext)>;

    fn inputs(
        client: &ClientKey,
        rng: &mut StdRng,
        count: usize,
    ) -> (Vec<(bool, bool)>, EncryptedPairs) {
        let plain: Vec<(bool, bool)> = (0..count).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
        let enc = plain
            .iter()
            .map(|&(a, b)| (client.encrypt_with(a, rng), client.encrypt_with(b, rng)))
            .collect();
        (plain, enc)
    }

    #[test]
    fn batch_outputs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(81);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (plain, enc) = inputs(&client, &mut rng, 10);
        let result = run_gate_batch(&server, Gate::Nand, &enc, 4);
        assert_eq!(result.outputs.len(), 10);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), !(a & b));
        }
        assert!(result.gates_per_second > 0.0);
    }

    #[test]
    fn single_thread_equals_multi_thread_results() {
        let mut rng = StdRng::seed_from_u64(82);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 6);
        let seq = run_gate_batch(&server, Gate::Xor, &enc, 1);
        let par = run_gate_batch(&server, Gate::Xor, &enc, 3);
        for (s, p) in seq.outputs.iter().zip(par.outputs.iter()) {
            assert_eq!(client.decrypt(s), client.decrypt(p));
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let mut rng = StdRng::seed_from_u64(83);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 2);
        let result = run_gate_batch(&server, Gate::And, &enc, 16);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.threads <= 2);
    }

    #[test]
    fn empty_batch_returns_empty_result() {
        let mut rng = StdRng::seed_from_u64(88);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let result = run_gate_batch(&server, Gate::Nand, &[], 4);
        assert!(result.outputs.is_empty());
        assert_eq!(result.threads, 0);
        assert_eq!(result.gates_per_second, 0.0);
    }

    #[test]
    fn pool_handles_empty_batch() {
        let mut rng = StdRng::seed_from_u64(89);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let empty = pool.run(Gate::And, &[]);
        assert!(empty.outputs.is_empty());
        assert_eq!(empty.gates_per_second, 0.0);
        // The pool is still usable for real work afterwards.
        let (plain, enc) = inputs(&client, &mut rng, 2);
        let result = pool.run(Gate::And, &enc);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), a & b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let mut rng = StdRng::seed_from_u64(84);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let _ = run_gate_batch(&server, Gate::And, &[], 0);
    }

    #[test]
    fn pool_matches_plaintext_and_survives_reuse() {
        let mut rng = StdRng::seed_from_u64(85);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 8);
        let pool = GateBatchPool::new(Arc::clone(&server), 3);
        // Two batches over the same persistent workers.
        let nand = pool.run(Gate::Nand, &enc);
        let or = pool.run(Gate::Or, &enc);
        for ((a, b), (n, o)) in plain.iter().zip(nand.outputs.iter().zip(or.outputs.iter())) {
            assert_eq!(client.decrypt(n), !(a & b), "nand({a},{b})");
            assert_eq!(client.decrypt(o), a | b, "or({a},{b})");
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn pool_matches_spawn_per_batch_outputs() {
        let mut rng = StdRng::seed_from_u64(86);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::with_unrolling(
            &client,
            F64Fft::new(256),
            2,
            &mut rng,
        ));
        let (_, enc) = inputs(&client, &mut rng, 5);
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let pooled = pool.run(Gate::Xor, &enc);
        let scoped = run_gate_batch(server.as_ref(), Gate::Xor, &enc, 2);
        // Bootstrapping is deterministic given the same keys, so the two
        // paths must agree exactly.
        assert_eq!(pooled.outputs, scoped.outputs);
    }

    #[test]
    fn throughput_zero_elapsed_is_finite() {
        // Sub-tick batches clamp to the 1 ns Instant resolution instead of
        // reporting f64::INFINITY.
        let r = BatchResult::throughput(5, 0.0);
        assert!(r.is_finite(), "zero-elapsed throughput must be finite");
        assert_eq!(r, 5.0e9);
        // Empty batches are 0 gates/s whatever the clock says.
        assert_eq!(BatchResult::throughput(0, 0.0), 0.0);
        assert_eq!(BatchResult::throughput(0, 1.0), 0.0);
        // The ordinary case is untouched.
        assert_eq!(BatchResult::throughput(10, 2.0), 5.0);
        // Clamping is monotone: a faster batch never reports lower.
        assert!(BatchResult::throughput(5, 1e-12) >= BatchResult::throughput(5, 1e-3));
    }

    #[test]
    fn dropping_pool_joins_all_workers() {
        let mut rng = StdRng::seed_from_u64(90);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (_, enc) = inputs(&client, &mut rng, 3);
        let pool = GateBatchPool::new(Arc::clone(&server), 3);
        let _ = pool.run(Gate::Or, &enc);
        drop(pool);
        // Every worker held a clone of the Arc; all of them having exited
        // (joined, not leaked or detached) leaves ours as the only one.
        assert_eq!(Arc::strong_count(&server), 1, "drop must join every worker");
    }

    #[test]
    fn panicking_job_poisons_nothing_and_pool_survives() {
        let mut rng = StdRng::seed_from_u64(91);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let (plain, enc) = inputs(&client, &mut rng, 4);

        // One malformed operand (wrong LWE dimension) makes its task panic
        // inside a worker; the panic must be re-raised on this thread…
        let mut bad = enc.clone();
        bad[1].0 = crate::LweCiphertext::trivial(Torus32::ZERO, 3);
        let raised = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(Gate::And, &bad)));
        let msg = panic_message(raised.expect_err("malformed batch must panic"));
        assert!(
            msg.contains("panicked in a worker"),
            "panic must identify the failing task: {msg}"
        );

        // …while the workers stay alive and unpoisoned: the same pool runs
        // the healthy batch to completion, twice, with correct outputs.
        for _ in 0..2 {
            let result = pool.run(Gate::And, &enc);
            assert_eq!(result.outputs.len(), enc.len());
            for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
                assert_eq!(client.decrypt(out), a & b);
            }
        }
        drop(pool);
        assert_eq!(
            Arc::strong_count(&server),
            1,
            "all workers must still be joinable after a job panic"
        );
    }

    #[test]
    fn mixed_task_batch_evaluates_every_kind() {
        let mut rng = StdRng::seed_from_u64(92);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        // Slots 0/1 hold the shared operands; 2..7 receive the outputs.
        // Every task reads the *same* two ciphertexts by index — nothing
        // is cloned per task.
        let slab = Arc::new(ValueSlab::new(7));
        slab.set(0, client.encrypt_with(true, &mut rng));
        slab.set(1, client.encrypt_with(false, &mut rng));
        let tasks = [
            GateTask::Binary {
                gate: Gate::Nand,
                a: 0,
                b: 0,
            },
            GateTask::Not { a: 1 },
            GateTask::Mux { sel: 0, a: 1, b: 0 },
            GateTask::Binary {
                gate: Gate::Xor,
                a: 0,
                b: 1,
            },
            GateTask::Mux { sel: 1, a: 1, b: 0 },
        ];
        let batch: Vec<SlabTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, &task)| SlabTask {
                slab: Arc::clone(&slab),
                node: 2 + i,
                task,
            })
            .collect();
        let expected = [false, true, false, true, true];
        let result = pool.run_tasks(&batch);
        assert!(result.failures.is_empty());
        for (i, want) in expected.into_iter().enumerate() {
            assert_eq!(client.decrypt(slab.get(2 + i)), want, "task {i}");
        }
    }

    #[test]
    fn dispatch_reports_per_task_failures_and_finishes_the_rest() {
        // A failing task must not take the batch down with it: the other
        // tasks' slots are still filled, and only the failure is reported
        // — the property the interleaving scheduler's per-circuit fault
        // isolation is built on.
        let mut rng = StdRng::seed_from_u64(94);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let slab = Arc::new(ValueSlab::new(6));
        slab.set(0, client.encrypt_with(true, &mut rng));
        slab.set(1, client.encrypt_with(false, &mut rng));
        // Slot 2: right count of coefficients for nothing — wrong LWE
        // dimension, so any gate reading it panics in its worker.
        slab.set(2, crate::LweCiphertext::trivial(Torus32::ZERO, 3));
        let batch: Vec<SlabTask> = [
            (
                3,
                GateTask::Binary {
                    gate: Gate::And,
                    a: 0,
                    b: 1,
                },
            ),
            (
                4,
                GateTask::Binary {
                    gate: Gate::Or,
                    a: 0,
                    b: 2,
                },
            ),
            (
                5,
                GateTask::Binary {
                    gate: Gate::Xor,
                    a: 0,
                    b: 1,
                },
            ),
        ]
        .into_iter()
        .map(|(node, task)| SlabTask {
            slab: Arc::clone(&slab),
            node,
            task,
        })
        .collect();
        let result = pool.run_tasks(&batch);
        assert_eq!(result.failures.len(), 1, "exactly the bad task fails");
        assert_eq!(result.failures[0].0, 1, "failure carries its batch index");
        assert!(!client.decrypt(slab.get(3)), "true AND false");
        assert!(slab.try_get(4).is_none(), "failed task stores nothing");
        assert!(client.decrypt(slab.get(5)), "true XOR false");
        // The pool survives for the next dispatch.
        let healthy = pool.run(
            Gate::And,
            &[(
                client.encrypt_with(true, &mut rng),
                client.encrypt_with(true, &mut rng),
            )],
        );
        assert!(client.decrypt(&healthy.outputs[0]));
    }

    #[test]
    fn slab_set_twice_is_rejected() {
        let slab = ValueSlab::new(2);
        assert_eq!(slab.len(), 2);
        assert!(!slab.is_empty());
        slab.set(0, crate::LweCiphertext::trivial(Torus32::ZERO, 3));
        assert!(slab.try_get(0).is_some());
        assert!(slab.try_get(1).is_none());
        let raised = std::panic::catch_unwind(AssertUnwindSafe(|| {
            slab.set(0, crate::LweCiphertext::trivial(Torus32::ZERO, 3));
        }));
        assert!(raised.is_err(), "double write must be rejected");
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn slab_set_out_of_range_rejected() {
        let slab = ValueSlab::new(2);
        slab.set(2, crate::LweCiphertext::trivial(Torus32::ZERO, 3));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn slab_get_out_of_range_rejected() {
        let slab = ValueSlab::new(1);
        let _ = slab.get(5);
    }

    #[test]
    fn run_delegates_to_tasks_identically() {
        let mut rng = StdRng::seed_from_u64(93);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let (_, enc) = inputs(&client, &mut rng, 5);
        let via_run = pool.run(Gate::Xnor, &enc);
        // The same batch staged by hand on an explicit slab.
        let n = enc.len();
        let slab = Arc::new(ValueSlab::new(3 * n));
        for (i, (a, b)) in enc.iter().enumerate() {
            slab.set(i, a.clone());
            slab.set(n + i, b.clone());
        }
        let batch: Vec<SlabTask> = (0..n)
            .map(|i| SlabTask {
                slab: Arc::clone(&slab),
                node: 2 * n + i,
                task: GateTask::Binary {
                    gate: Gate::Xnor,
                    a: i,
                    b: n + i,
                },
            })
            .collect();
        let dispatch = pool.run_tasks(&batch);
        assert!(dispatch.failures.is_empty());
        // Bootstrapping is deterministic given the keys: exact equality.
        for (i, out) in via_run.outputs.iter().enumerate() {
            assert_eq!(out, slab.get(2 * n + i), "task {i}");
        }
    }

    /// Stages `pairs` as a manual `Gate::And` batch on a tag-0 slab and
    /// returns `(slab, tasks)`; output for pair `i` lands at node
    /// `2 * len + i` — the node fault sites target.
    fn staged_and_batch(enc: &EncryptedPairs) -> (Arc<ValueSlab>, Vec<SlabTask>) {
        let n = enc.len();
        let slab = Arc::new(ValueSlab::new(3 * n));
        for (i, (a, b)) in enc.iter().enumerate() {
            slab.set(i, a.clone());
            slab.set(n + i, b.clone());
        }
        let batch = (0..n)
            .map(|i| SlabTask {
                slab: Arc::clone(&slab),
                node: 2 * n + i,
                task: GateTask::Binary {
                    gate: Gate::And,
                    a: i,
                    b: n + i,
                },
            })
            .collect();
        (slab, batch)
    }

    #[test]
    fn worker_death_heals_and_batch_completes() {
        // A scripted worker death mid-batch: the pool must notice the
        // lost reply, respawn the worker, retry the lost task, and still
        // deliver the whole batch — the tentpole self-healing guarantee.
        let mut rng = StdRng::seed_from_u64(95);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 4);
        let (slab, batch) = staged_and_batch(&enc);
        let plan = Arc::new(FaultPlan::new().inject(0, 2 * enc.len() + 1, FaultAction::KillWorker));
        let pool = GateBatchPool::with_faults(Arc::clone(&server), 2, Arc::clone(&plan));
        let result = pool.run_tasks(&batch);
        assert!(result.failures.is_empty(), "{:?}", result.failures);
        assert_eq!(pool.restarts(), 1, "exactly the killed worker respawned");
        assert!(plan.is_spent(), "the death fired");
        for (i, (a, b)) in plain.iter().enumerate() {
            assert_eq!(client.decrypt(slab.get(2 * enc.len() + i)), a & b);
        }
        // The healed pool keeps serving.
        let again = pool.run(Gate::Or, &enc);
        for ((a, b), out) in plain.iter().zip(again.outputs.iter()) {
            assert_eq!(client.decrypt(out), a | b);
        }
        drop(pool);
        assert_eq!(Arc::strong_count(&server), 1, "healed workers join too");
    }

    #[test]
    fn sole_worker_death_with_queued_jobs_still_completes() {
        // The nastiest liveness case: one worker, killed while the rest
        // of the batch is still *queued*. Those queued jobs hold reply
        // senders, so the reply channel never disconnects on its own —
        // the timeout arm of the drain must heal the pool to get the
        // queue moving again.
        let mut rng = StdRng::seed_from_u64(96);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 3);
        let (slab, batch) = staged_and_batch(&enc);
        // Kill on the *first* task so jobs 1 and 2 are still queued.
        let plan = Arc::new(FaultPlan::new().inject(0, 2 * enc.len(), FaultAction::KillWorker));
        let pool = GateBatchPool::with_faults(Arc::clone(&server), 1, plan);
        let result = pool.run_tasks(&batch);
        assert!(result.failures.is_empty(), "{:?}", result.failures);
        assert_eq!(pool.restarts(), 1);
        for (i, (a, b)) in plain.iter().enumerate() {
            assert_eq!(client.decrypt(slab.get(2 * enc.len() + i)), a & b);
        }
    }

    #[test]
    fn injected_panic_fails_only_its_task() {
        let mut rng = StdRng::seed_from_u64(97);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 3);
        let (slab, batch) = staged_and_batch(&enc);
        let plan = Arc::new(FaultPlan::new().inject(0, 2 * enc.len() + 2, FaultAction::Panic));
        let pool = GateBatchPool::with_faults(Arc::clone(&server), 2, plan);
        let result = pool.run_tasks(&batch);
        assert_eq!(result.failures.len(), 1);
        assert_eq!(result.failures[0].0, 2);
        assert!(
            result.failures[0].1.contains("injected fault"),
            "{}",
            result.failures[0].1
        );
        assert_eq!(pool.restarts(), 0, "a caught panic is not a death");
        for (i, (a, b)) in plain.iter().enumerate().take(2) {
            assert_eq!(client.decrypt(slab.get(2 * enc.len() + i)), a & b);
        }
        assert!(slab.try_get(2 * enc.len() + 2).is_none());
    }

    #[test]
    fn injected_delay_completes_normally() {
        let mut rng = StdRng::seed_from_u64(98);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 2);
        let (slab, batch) = staged_and_batch(&enc);
        // Longer than the 25 ms drain timeout, to prove a slow task is
        // not mistaken for a dead worker (heal is a no-op, no restart).
        let plan = Arc::new(FaultPlan::new().inject(
            0,
            2 * enc.len(),
            FaultAction::Delay(Duration::from_millis(80)),
        ));
        let pool = GateBatchPool::with_faults(Arc::clone(&server), 2, plan);
        let result = pool.run_tasks(&batch);
        assert!(result.failures.is_empty());
        assert_eq!(pool.restarts(), 0, "slow is not dead");
        for (i, (a, b)) in plain.iter().enumerate() {
            assert_eq!(client.decrypt(slab.get(2 * enc.len() + i)), a & b);
        }
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let mut rng = StdRng::seed_from_u64(87);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (_, enc) = inputs(&client, &mut rng, 2);
        {
            let pool = GateBatchPool::new(Arc::clone(&server), 2);
            let _ = pool.run(Gate::And, &enc);
        } // drop joins workers; reaching here without hanging is the test
    }
}
