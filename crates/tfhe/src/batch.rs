//! Batched gate evaluation across OS threads.
//!
//! The paper's throughput metric (Figure 10) assumes many independent
//! gates in flight — MATCHA runs 8 bootstrapping pipelines, the GPU
//! batches ciphertexts, and the CPU baseline uses its 8 cores. This module
//! is the software counterpart, in two forms:
//!
//! * [`run_gate_batch`] shards one batch over scoped workers, each holding
//!   a private [`BootstrapScratch`](crate::scratch::BootstrapScratch) so
//!   every gate after its first runs allocation-free;
//! * [`GateBatchPool`] keeps those workers (and their warmed scratches)
//!   **alive across batches** — the software analogue of MATCHA's eight
//!   always-resident bootstrapping pipelines, and the fix for the seed
//!   implementation's spawn-per-call sharding.

use crate::gates::{Gate, ServerKey};
use crate::lwe::LweCiphertext;
use crate::scratch::BootstrapScratch;
use matcha_fft::FftEngine;
use matcha_math::Torus32;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// One heterogeneous unit of pool work: any gate the circuit layer emits,
/// bundled with its operands. A wave of a
/// [`CircuitNetlist`](crate::circuit::CircuitNetlist) is a mixed
/// `Vec<GateTask>` dispatched with [`GateBatchPool::run_tasks`].
#[derive(Clone, Debug)]
pub enum GateTask {
    /// A two-input bootstrapped gate (one bootstrap + key switch).
    Binary {
        /// The gate to evaluate.
        gate: Gate,
        /// Left operand.
        a: LweCiphertext,
        /// Right operand.
        b: LweCiphertext,
    },
    /// Free negation — no bootstrap.
    Not {
        /// The operand.
        a: LweCiphertext,
    },
    /// `sel ? a : b` — two bootstraps + one key switch.
    Mux {
        /// The selector.
        sel: LweCiphertext,
        /// Taken when `sel` is true.
        a: LweCiphertext,
        /// Taken when `sel` is false.
        b: LweCiphertext,
    },
}

impl GateTask {
    /// Evaluates the task into `out` through `scratch` — the worker inner
    /// loop of the pool. Allocation-free once the scratch and `out` are
    /// warmed, for every variant.
    pub fn apply_into<E: FftEngine>(
        &self,
        server: &ServerKey<E>,
        out: &mut LweCiphertext,
        scratch: &mut BootstrapScratch<E>,
    ) {
        match self {
            GateTask::Binary { gate, a, b } => server.apply_into(*gate, a, b, out, scratch),
            GateTask::Not { a } => server.not_into(a, out),
            GateTask::Mux { sel, a, b } => server.mux_into(sel, a, b, out, scratch),
        }
    }
}

/// The result of a batched run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Gate outputs, in input order.
    pub outputs: Vec<LweCiphertext>,
    /// Wall-clock seconds for the whole batch.
    pub elapsed_s: f64,
    /// Achieved throughput in gates per second.
    pub gates_per_second: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchResult {
    /// Throughput of `gates` outputs over `elapsed_s` seconds.
    ///
    /// Well-defined on the whole domain: an empty batch is 0 gates/s, and a
    /// zero (or sub-tick) elapsed time — possible on coarse clocks when the
    /// batch is trivially small — is clamped to one nanosecond, the
    /// resolution of [`Instant`], so the result is finite ("at least this
    /// fast") instead of `f64::INFINITY`.
    pub fn throughput(gates: usize, elapsed_s: f64) -> f64 {
        if gates == 0 {
            0.0
        } else {
            gates as f64 / elapsed_s.max(1e-9)
        }
    }
}

fn finish_batch(outputs: Vec<LweCiphertext>, t0: Instant, threads: usize) -> BatchResult {
    let elapsed_s = t0.elapsed().as_secs_f64();
    let gates_per_second = BatchResult::throughput(outputs.len(), elapsed_s);
    BatchResult {
        outputs,
        elapsed_s,
        gates_per_second,
        threads,
    }
}

/// Renders a worker panic payload for re-raising on the submitter's thread.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates the same two-input gate over a batch of independent operand
/// pairs, sharded across `threads` scoped workers. Each worker owns one
/// bootstrap scratch for the whole batch, so per-gate heap traffic is
/// limited to the output ciphertexts.
///
/// For repeated batches against the same key, prefer [`GateBatchPool`],
/// which keeps workers and warmed scratches alive between calls.
///
/// # Panics
///
/// Panics if `threads` is 0.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = ServerKey::new(&client, F64Fft::new(1024), &mut rng);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// let result = batch::run_gate_batch(&server, Gate::Nand, &pairs, 8);
/// println!("{:.0} gates/s", result.gates_per_second);
/// ```
pub fn run_gate_batch<E>(
    server: &ServerKey<E>,
    gate: Gate,
    pairs: &[(LweCiphertext, LweCiphertext)],
    threads: usize,
) -> BatchResult
where
    E: FftEngine + Sync,
    E::Spectrum: Sync,
{
    assert!(threads > 0, "need at least one worker");
    let t0 = Instant::now();
    if pairs.is_empty() {
        // No work: `pairs.chunks(0)` below would panic, and spawning
        // workers for nothing is pointless. Report an empty batch.
        return finish_batch(Vec::new(), t0, 0);
    }
    let threads = threads.min(pairs.len());
    let chunk = pairs.len().div_ceil(threads);
    let mut outputs: Vec<Option<LweCiphertext>> = vec![None; pairs.len()];

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<LweCiphertext>] = &mut outputs;
        for work in pairs.chunks(chunk) {
            let (slot, rest) = remaining.split_at_mut(work.len());
            remaining = rest;
            scope.spawn(move || {
                // One scratch and one output buffer per worker: the first
                // gate warms them, the rest of the chunk reuses them.
                let mut scratch = server.make_scratch();
                let mut out = LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
                for ((a, b), out_slot) in work.iter().zip(slot.iter_mut()) {
                    server.apply_into(gate, a, b, &mut out, &mut scratch);
                    *out_slot = Some(out.clone());
                }
            });
        }
    });

    let outputs: Vec<LweCiphertext> = outputs
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect();
    finish_batch(outputs, t0, threads)
}

/// One queued unit of pool work: a heterogeneous task with a reply channel.
/// The reply carries `Err(panic message)` when the task panicked in the
/// worker, so the failure is re-raised on the submitting thread instead of
/// killing the worker.
struct Job {
    task: GateTask,
    index: usize,
    reply: mpsc::Sender<(usize, Result<LweCiphertext, String>)>,
}

/// A persistent gate-evaluation worker pool sharing one [`ServerKey`].
///
/// Workers are spawned once and hold their warmed
/// [`BootstrapScratch`](crate::scratch::BootstrapScratch) across an
/// arbitrary number of [`GateBatchPool::run`] calls; jobs are pulled from a
/// shared queue, so uneven gate latencies balance automatically. Dropping
/// the pool shuts the workers down.
///
/// # Examples
///
/// ```no_run
/// use matcha_tfhe::{batch::GateBatchPool, ClientKey, Gate, ParameterSet, ServerKey};
/// use matcha_fft::F64Fft;
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let client = ClientKey::generate(ParameterSet::MATCHA, &mut rng);
/// let server = Arc::new(ServerKey::new(&client, F64Fft::new(1024), &mut rng));
/// let pool = GateBatchPool::new(server, 8);
/// let pairs: Vec<_> = (0..16)
///     .map(|i| (client.encrypt(i % 2 == 0), client.encrypt(i % 3 == 0)))
///     .collect();
/// // Both batches reuse the same warmed workers.
/// let nand = pool.run(Gate::Nand, &pairs);
/// let xor = pool.run(Gate::Xor, &pairs);
/// println!("{:.0} / {:.0} gates/s", nand.gates_per_second, xor.gates_per_second);
/// ```
pub struct GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    server: Arc<ServerKey<E>>,
}

impl<E> GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    /// Spawns `threads` persistent workers over a shared server key.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    pub fn new(server: Arc<ServerKey<E>>, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker");
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut scratch = server.make_scratch();
                    let mut out =
                        LweCiphertext::trivial(Torus32::ZERO, server.params().lwe_dimension);
                    loop {
                        // Hold the lock only to pull the next job. A
                        // poisoned lock is recovered rather than cascaded:
                        // the queue itself is never left in a torn state by
                        // a panicking worker (jobs are popped whole).
                        let job = { rx.lock().unwrap_or_else(PoisonError::into_inner).recv() };
                        let Ok(job) = job else { break };
                        // Panic isolation: a malformed job (e.g. a
                        // mismatched-dimension operand) must not kill the
                        // worker or poison anything — the error is shipped
                        // back and re-raised on the submitter's thread,
                        // and this worker keeps serving. The scratch stays
                        // structurally valid across an unwind — every
                        // apply re-sizes its buffers — hence the
                        // AssertUnwindSafe; the one cost is that buffers
                        // mem::take'n by the panicking apply are left
                        // empty, so this worker's next task re-warms them
                        // (a few allocations, correctness unaffected).
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            job.task.apply_into(&server, &mut out, &mut scratch);
                            out.clone()
                        }))
                        .map_err(panic_message);
                        // The receiver may have given up (run() panicked);
                        // dropping the result is then the right behavior.
                        let _ = job.reply.send((job.index, result));
                    }
                })
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
            threads,
            server,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared server key the workers evaluate under.
    pub fn server(&self) -> &ServerKey<E> {
        &self.server
    }

    /// Evaluates `gate` over all pairs on the persistent workers, returning
    /// outputs in input order. A convenience wrapper over
    /// [`GateBatchPool::run_tasks`] for the homogeneous binary-gate case.
    ///
    /// # Panics
    ///
    /// Panics (on this thread, with the pool left healthy) if any job
    /// panicked in a worker.
    pub fn run(&self, gate: Gate, pairs: &[(LweCiphertext, LweCiphertext)]) -> BatchResult {
        self.run_tasks(
            pairs
                .iter()
                .map(|(a, b)| GateTask::Binary {
                    gate,
                    a: a.clone(),
                    b: b.clone(),
                })
                .collect(),
        )
    }

    /// Evaluates a heterogeneous batch — any mix of binary gates, free
    /// negations and muxes — on the persistent workers, returning outputs
    /// in task order. This is the form circuit waves are dispatched in:
    /// every wave of a netlist is one `run_tasks` call, and the warmed
    /// per-worker scratches keep each task allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked in a worker (e.g. mismatched operand
    /// dimensions). The panic is re-raised here, on the submitting thread,
    /// after the whole batch has drained — workers survive, nothing is
    /// poisoned, and subsequent `run`/`run_tasks` calls complete normally.
    pub fn run_tasks(&self, tasks: Vec<GateTask>) -> BatchResult {
        let t0 = Instant::now();
        if tasks.is_empty() {
            // Same contract as `run_gate_batch`: an empty batch is a valid
            // request that produces an empty result, not a panic.
            return finish_batch(Vec::new(), t0, 0);
        }
        let count = tasks.len();
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = self.tx.as_ref().expect("pool is live");
        for (index, task) in tasks.into_iter().enumerate() {
            tx.send(Job {
                task,
                index,
                reply: reply_tx.clone(),
            })
            .expect("workers alive");
        }
        drop(reply_tx);
        let mut outputs: Vec<Option<LweCiphertext>> = vec![None; count];
        let mut failure: Option<(usize, String)> = None;
        // Drain the whole batch before re-raising any failure, so the pool
        // is quiescent (no stray in-flight jobs) when the caller unwinds.
        // Replies arrive in completion order; keep the lowest-index
        // failure so the re-raised panic is deterministic.
        for (index, result) in reply_rx {
            match result {
                Ok(c) => outputs[index] = Some(c),
                Err(msg) => {
                    if failure.as_ref().is_none_or(|(i, _)| index < *i) {
                        failure = Some((index, msg));
                    }
                }
            }
        }
        if let Some((index, msg)) = failure {
            panic!("pool task {index} panicked in a worker: {msg}");
        }
        let outputs: Vec<LweCiphertext> = outputs
            .into_iter()
            .map(|o| o.expect("worker answered every job"))
            .collect();
        finish_batch(outputs, t0, self.threads)
    }
}

impl<E> Drop for GateBatchPool<E>
where
    E: FftEngine + Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParameterSet;
    use crate::secret::ClientKey;
    use matcha_fft::{ApproxIntFft, F64Fft};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type EncryptedPairs = Vec<(crate::LweCiphertext, crate::LweCiphertext)>;

    fn inputs(
        client: &ClientKey,
        rng: &mut StdRng,
        count: usize,
    ) -> (Vec<(bool, bool)>, EncryptedPairs) {
        let plain: Vec<(bool, bool)> = (0..count).map(|i| (i % 2 == 0, i % 3 == 0)).collect();
        let enc = plain
            .iter()
            .map(|&(a, b)| (client.encrypt_with(a, rng), client.encrypt_with(b, rng)))
            .collect();
        (plain, enc)
    }

    #[test]
    fn batch_outputs_match_sequential() {
        let mut rng = StdRng::seed_from_u64(81);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (plain, enc) = inputs(&client, &mut rng, 10);
        let result = run_gate_batch(&server, Gate::Nand, &enc, 4);
        assert_eq!(result.outputs.len(), 10);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), !(a & b));
        }
        assert!(result.gates_per_second > 0.0);
    }

    #[test]
    fn single_thread_equals_multi_thread_results() {
        let mut rng = StdRng::seed_from_u64(82);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::with_unrolling(&client, ApproxIntFft::new(256, 40), 2, &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 6);
        let seq = run_gate_batch(&server, Gate::Xor, &enc, 1);
        let par = run_gate_batch(&server, Gate::Xor, &enc, 3);
        for (s, p) in seq.outputs.iter().zip(par.outputs.iter()) {
            assert_eq!(client.decrypt(s), client.decrypt(p));
        }
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let mut rng = StdRng::seed_from_u64(83);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let (_, enc) = inputs(&client, &mut rng, 2);
        let result = run_gate_batch(&server, Gate::And, &enc, 16);
        assert_eq!(result.outputs.len(), 2);
        assert!(result.threads <= 2);
    }

    #[test]
    fn empty_batch_returns_empty_result() {
        let mut rng = StdRng::seed_from_u64(88);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let result = run_gate_batch(&server, Gate::Nand, &[], 4);
        assert!(result.outputs.is_empty());
        assert_eq!(result.threads, 0);
        assert_eq!(result.gates_per_second, 0.0);
    }

    #[test]
    fn pool_handles_empty_batch() {
        let mut rng = StdRng::seed_from_u64(89);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let empty = pool.run(Gate::And, &[]);
        assert!(empty.outputs.is_empty());
        assert_eq!(empty.gates_per_second, 0.0);
        // The pool is still usable for real work afterwards.
        let (plain, enc) = inputs(&client, &mut rng, 2);
        let result = pool.run(Gate::And, &enc);
        for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
            assert_eq!(client.decrypt(out), a & b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let mut rng = StdRng::seed_from_u64(84);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = ServerKey::new(&client, F64Fft::new(256), &mut rng);
        let _ = run_gate_batch(&server, Gate::And, &[], 0);
    }

    #[test]
    fn pool_matches_plaintext_and_survives_reuse() {
        let mut rng = StdRng::seed_from_u64(85);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (plain, enc) = inputs(&client, &mut rng, 8);
        let pool = GateBatchPool::new(Arc::clone(&server), 3);
        // Two batches over the same persistent workers.
        let nand = pool.run(Gate::Nand, &enc);
        let or = pool.run(Gate::Or, &enc);
        for ((a, b), (n, o)) in plain.iter().zip(nand.outputs.iter().zip(or.outputs.iter())) {
            assert_eq!(client.decrypt(n), !(a & b), "nand({a},{b})");
            assert_eq!(client.decrypt(o), a | b, "or({a},{b})");
        }
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn pool_matches_spawn_per_batch_outputs() {
        let mut rng = StdRng::seed_from_u64(86);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::with_unrolling(
            &client,
            F64Fft::new(256),
            2,
            &mut rng,
        ));
        let (_, enc) = inputs(&client, &mut rng, 5);
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let pooled = pool.run(Gate::Xor, &enc);
        let scoped = run_gate_batch(server.as_ref(), Gate::Xor, &enc, 2);
        // Bootstrapping is deterministic given the same keys, so the two
        // paths must agree exactly.
        assert_eq!(pooled.outputs, scoped.outputs);
    }

    #[test]
    fn throughput_zero_elapsed_is_finite() {
        // Sub-tick batches clamp to the 1 ns Instant resolution instead of
        // reporting f64::INFINITY.
        let r = BatchResult::throughput(5, 0.0);
        assert!(r.is_finite(), "zero-elapsed throughput must be finite");
        assert_eq!(r, 5.0e9);
        // Empty batches are 0 gates/s whatever the clock says.
        assert_eq!(BatchResult::throughput(0, 0.0), 0.0);
        assert_eq!(BatchResult::throughput(0, 1.0), 0.0);
        // The ordinary case is untouched.
        assert_eq!(BatchResult::throughput(10, 2.0), 5.0);
        // Clamping is monotone: a faster batch never reports lower.
        assert!(BatchResult::throughput(5, 1e-12) >= BatchResult::throughput(5, 1e-3));
    }

    #[test]
    fn dropping_pool_joins_all_workers() {
        let mut rng = StdRng::seed_from_u64(90);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (_, enc) = inputs(&client, &mut rng, 3);
        let pool = GateBatchPool::new(Arc::clone(&server), 3);
        let _ = pool.run(Gate::Or, &enc);
        drop(pool);
        // Every worker held a clone of the Arc; all of them having exited
        // (joined, not leaked or detached) leaves ours as the only one.
        assert_eq!(Arc::strong_count(&server), 1, "drop must join every worker");
    }

    #[test]
    fn panicking_job_poisons_nothing_and_pool_survives() {
        let mut rng = StdRng::seed_from_u64(91);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let (plain, enc) = inputs(&client, &mut rng, 4);

        // One malformed operand (wrong LWE dimension) makes its task panic
        // inside a worker; the panic must be re-raised on this thread…
        let mut bad = enc.clone();
        bad[1].0 = crate::LweCiphertext::trivial(Torus32::ZERO, 3);
        let raised = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(Gate::And, &bad)));
        let msg = panic_message(raised.expect_err("malformed batch must panic"));
        assert!(
            msg.contains("panicked in a worker"),
            "panic must identify the failing task: {msg}"
        );

        // …while the workers stay alive and unpoisoned: the same pool runs
        // the healthy batch to completion, twice, with correct outputs.
        for _ in 0..2 {
            let result = pool.run(Gate::And, &enc);
            assert_eq!(result.outputs.len(), enc.len());
            for ((a, b), out) in plain.iter().zip(result.outputs.iter()) {
                assert_eq!(client.decrypt(out), a & b);
            }
        }
        drop(pool);
        assert_eq!(
            Arc::strong_count(&server),
            1,
            "all workers must still be joinable after a job panic"
        );
    }

    #[test]
    fn mixed_task_batch_evaluates_every_kind() {
        let mut rng = StdRng::seed_from_u64(92);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let t = client.encrypt_with(true, &mut rng);
        let f = client.encrypt_with(false, &mut rng);
        let tasks = vec![
            GateTask::Binary {
                gate: Gate::Nand,
                a: t.clone(),
                b: t.clone(),
            },
            GateTask::Not { a: f.clone() },
            GateTask::Mux {
                sel: t.clone(),
                a: f.clone(),
                b: t.clone(),
            },
            GateTask::Binary {
                gate: Gate::Xor,
                a: t.clone(),
                b: f.clone(),
            },
            GateTask::Mux {
                sel: f.clone(),
                a: f.clone(),
                b: t.clone(),
            },
        ];
        let expected = [false, true, false, true, true];
        let result = pool.run_tasks(tasks);
        assert_eq!(result.outputs.len(), expected.len());
        for (i, (out, want)) in result.outputs.iter().zip(expected).enumerate() {
            assert_eq!(client.decrypt(out), want, "task {i}");
        }
        assert!(result.gates_per_second.is_finite());
    }

    #[test]
    fn run_delegates_to_tasks_identically() {
        let mut rng = StdRng::seed_from_u64(93);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let pool = GateBatchPool::new(Arc::clone(&server), 2);
        let (_, enc) = inputs(&client, &mut rng, 5);
        let via_run = pool.run(Gate::Xnor, &enc);
        let via_tasks = pool.run_tasks(
            enc.iter()
                .map(|(a, b)| GateTask::Binary {
                    gate: Gate::Xnor,
                    a: a.clone(),
                    b: b.clone(),
                })
                .collect(),
        );
        // Bootstrapping is deterministic given the keys: exact equality.
        assert_eq!(via_run.outputs, via_tasks.outputs);
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let mut rng = StdRng::seed_from_u64(87);
        let client = ClientKey::generate(ParameterSet::TEST_FAST, &mut rng);
        let server = Arc::new(ServerKey::new(&client, F64Fft::new(256), &mut rng));
        let (_, enc) = inputs(&client, &mut rng, 2);
        {
            let pool = GateBatchPool::new(Arc::clone(&server), 2);
            let _ = pool.run(Gate::And, &enc);
        } // drop joins workers; reaching here without hanging is the test
    }
}
